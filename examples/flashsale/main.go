// Flashsale: a retailer announces a 48-hour flash sale and wants at least
// 20% of its customer network to hear about it while the deal is live —
// with every demographic reaching that quota, not just the best-connected
// one. This is the coverage formulation: TCIM-Cover (P2) finds the
// cheapest seed set for the overall quota; FairTCIM-Cover (P6) insists on
// the quota per group. The example prints the greedy iteration trace so
// you can watch P2 saturate the majority while P6 lifts both groups
// together (the paper's Figure 6a).
//
//	go run ./examples/flashsale
package main

import (
	"fmt"
	"log"

	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
)

func main() {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 500, G: 0.7, PHom: 0.025, PHet: 0.001, PActivate: 0.05, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := fairim.DefaultConfig(12)
	cfg.Tau = 2 // two propagation rounds before the sale ends
	cfg.Samples = 300
	cfg.Trace = true
	const quota = 0.2

	p2, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P2, Quota: quota, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	p6, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P6, Quota: quota, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quota: %.0f%% of the network before the sale ends (tau=%d)\n\n", quota*100, cfg.Tau)
	fmt.Printf("P2 (overall quota):   %d seeds; coverage total %.1f%%, group1 %.1f%%, group2 %.1f%%\n",
		len(p2.Seeds), 100*p2.NormTotal, 100*p2.NormPerGroup[0], 100*p2.NormPerGroup[1])
	fmt.Printf("P6 (per-group quota): %d seeds; coverage total %.1f%%, group1 %.1f%%, group2 %.1f%%\n\n",
		len(p6.Seeds), 100*p6.NormTotal, 100*p6.NormPerGroup[0], 100*p6.NormPerGroup[1])

	fmt.Println("greedy trace (optimization-world estimates):")
	fmt.Println("iter   P2-g1%  P2-g2%     P6-g1%  P6-g2%")
	rows := len(p2.Trace)
	if len(p6.Trace) > rows {
		rows = len(p6.Trace)
	}
	at := func(tr []fairim.IterationStat, i int) fairim.IterationStat {
		if i < len(tr) {
			return tr[i]
		}
		return tr[len(tr)-1]
	}
	for i := 0; i < rows; i++ {
		a, b := at(p2.Trace, i), at(p6.Trace, i)
		fmt.Printf("%4d   %6.2f  %6.2f     %6.2f  %6.2f\n",
			i+1, 100*a.NormGroup[0], 100*a.NormGroup[1], 100*b.NormGroup[0], 100*b.NormGroup[1])
	}
	fmt.Printf("\nfairness premium: %d extra seeds buy per-group coverage (Theorem 2 bounds the overhead).\n",
		len(p6.Seeds)-len(p2.Seeds))
}
