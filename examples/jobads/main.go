// Jobads: the paper's motivating scenario — a job posting with an
// application deadline propagates through a university social network.
// Whoever hears about it after the deadline gains nothing. This example
// runs on the Rice-Facebook stand-in and compares the fairness-blind
// optimizer with FairTCIM and with classical seeding heuristics
// (top-degree, PageRank, random, group-proportional degree), reporting
// which age groups actually hear in time.
//
//	go run ./examples/jobads
package main

import (
	"fmt"
	"log"
	"os"

	"fairtcim/internal/baselines"
	"fairtcim/internal/concave"
	"fairtcim/internal/datasets"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/stats"
)

func main() {
	g, err := datasets.RiceFacebook(0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Rice-Facebook stand-in: %d students, %d friendships, %d age groups\n",
		g.N(), g.M()/2, g.NumGroups())

	cfg := fairim.DefaultConfig(2)
	cfg.Tau = 5 // the application window is short
	cfg.Samples = 300
	const budget = 30

	table := stats.NewTable(
		"Who hears about the job before the deadline? (tau=5, B=30)",
		"strategy", "total%", "g1%", "g2%", "g3%", "g4%", "disparity")

	addRow := func(name string, seeds []graph.NodeID) {
		res, err := fairim.Evaluate(g, seeds, fairim.ProblemSpec{Config: cfg})
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(name,
			100*res.NormTotal,
			100*res.NormPerGroup[0], 100*res.NormPerGroup[1],
			100*res.NormPerGroup[2], 100*res.NormPerGroup[3],
			res.Disparity)
	}

	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: budget, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	addRow("greedy-P1", p1.Seeds)

	p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: budget, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	addRow("fair-P4-log", p4.Seeds)

	// With four very unequal age groups, H on raw counts over-rewards the
	// smallest (and best-connected) group. Combining the paper's λ-weight
	// remedy (§6.2.1) with a saturating H yields a budgeted-parity
	// objective: per-capita comparison, and no credit for pushing a group
	// past the target fraction.
	const targetFrac = 0.07
	wcfg := cfg
	wcfg.GroupWeights = fairim.NormalizedGroupWeights(g)
	wcfg.H = concave.Saturated{
		Cap:   float64(g.N()) / float64(g.NumGroups()) * targetFrac,
		Inner: concave.Log{},
	}
	p4s, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: budget, Config: wcfg})
	if err != nil {
		log.Fatal(err)
	}
	addRow("fair-P4-saturated", p4s.Seeds)

	addRow("top-degree", baselines.TopDegree(g, budget))
	pr, err := baselines.TopPageRank(g, budget, baselines.PageRankConfig{})
	if err != nil {
		log.Fatal(err)
	}
	addRow("pagerank", pr)
	addRow("random", baselines.Random(g, budget, 3))
	addRow("group-prop-degree", baselines.GroupProportionalDegree(g, budget))

	fmt.Println()
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading: greedy-P1 and the centrality heuristics chase the dense groups;")
	fmt.Println("plain fair-P4-log lifts starved groups but can overshoot a small,")
	fmt.Println("well-connected one; fair-P4-saturated (per-capita weights + capped H)")
	fmt.Println("should show the lowest disparity at a modest total cost.")
}
