// Healthcampaign: a public-health agency must spread vaccination-drive
// information across a large social platform within two sharing rounds,
// reaching men and women alike. At this scale (tens of thousands of
// nodes), forward Monte-Carlo greedy is expensive, so this example uses
// the reverse-influence-sampling (RIS) solver: τ-bounded RR sets sampled
// per gender group, maximized with lazy greedy, then audited with an
// independent forward simulation.
//
//	go run ./examples/healthcampaign
package main

import (
	"fmt"
	"log"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/datasets"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

func main() {
	// 5% of the published Instagram-Activities scale: ~27k users.
	g, err := datasets.Instagram(0.05, 0.06, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %d users (%d men, %d women), %d ties\n\n",
		g.N(), g.GroupSize(0), g.GroupSize(1), g.M()/2)

	const (
		tau    = 2
		budget = 30
		pool   = 20000 // RR sets per gender
	)

	start := time.Now()
	col, err := ris.Sample(g, tau, []int{pool, pool}, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d τ-bounded RR sets in %v\n", col.NumSets(), time.Since(start).Round(time.Millisecond))

	plainSeeds, _, err := ris.SolveBudget(col, budget, nil)
	if err != nil {
		log.Fatal(err)
	}
	fairSeeds, _, err := ris.SolveFairBudget(col, budget, nil, concave.Log{})
	if err != nil {
		log.Fatal(err)
	}

	audit := func(name string, seeds []graph.NodeID) {
		util, err := influence.Estimate(g, seeds, tau, cascade.IC, 500, 3)
		if err != nil {
			log.Fatal(err)
		}
		norm := []float64{
			util[0] / float64(g.GroupSize(0)),
			util[1] / float64(g.GroupSize(1)),
		}
		fmt.Printf("%-18s reached %.0f people | men %.3f%% women %.3f%% | disparity %.5f\n",
			name, util[0]+util[1], 100*norm[0], 100*norm[1], influence.Disparity(norm))
	}
	fmt.Println("\nindependent forward-simulation audit (500 samples):")
	audit("RIS plain (P1)", plainSeeds)
	audit("RIS fair (P4-log)", fairSeeds)

	fmt.Println("\nthe fair variant redirects reach toward whichever gender the plain")
	fmt.Println("optimizer under-serves; with RIS the whole pipeline runs in seconds")
	fmt.Println("at this scale (vs minutes for forward Monte-Carlo greedy).")
}
