// Quickstart: generate a small imbalanced social network, solve the
// standard time-critical influence maximization problem (P1) and its
// fairness-aware surrogate (P4), and compare who actually receives the
// information before the deadline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
)

func main() {
	// A 500-node network with a 70% majority, strong homophily and weak
	// across-group connectivity — the paper's default synthetic setting.
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		log.Fatal(err)
	}
	s := g.ComputeStats()
	fmt.Printf("network: %d nodes, %d edges, groups %v\n\n", s.N, s.M/2, s.GroupSizes)

	cfg := fairim.DefaultConfig(2) // τ = 20, IC model, 200 MC samples
	const budget = 30

	unfair, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: budget, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	report("TCIM-Budget (P1, fairness-blind)", unfair)

	cfg.H = concave.Log{}
	fair, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: budget, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	report("FairTCIM-Budget (P4, H=log)", fair)

	fmt.Printf("cost of fairness: total influence %.1f -> %.1f (%.1f%%), disparity %.3f -> %.3f\n",
		unfair.Total, fair.Total, 100*(fair.Total-unfair.Total)/unfair.Total,
		unfair.Disparity, fair.Disparity)
}

func report(name string, r *fairim.Result) {
	fmt.Printf("%s\n", name)
	fmt.Printf("  influenced before deadline: %.1f people (%.1f%% of the network)\n",
		r.Total, 100*r.NormTotal)
	for i, frac := range r.NormPerGroup {
		fmt.Printf("  group %d: %.1f%% informed\n", i+1, 100*frac)
	}
	fmt.Printf("  disparity (Eq. 2): %.3f\n\n", r.Disparity)
}
