package fairtcim

// End-to-end integration tests crossing module boundaries: generate →
// serialize → parse → solve → audit, theorem guarantees across estimators,
// and solver agreement between the forward and RIS pipelines.

import (
	"bytes"
	"math"
	"testing"

	"fairtcim/internal/baselines"
	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/datasets"
	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

// TestPipelineRoundTrip drives the full user path: generate a graph, write
// it to the text format, read it back, solve P4 on the copy, and check the
// result matches solving on the original.
func TestPipelineRoundTrip(t *testing.T) {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 150, G: 0.7, PHom: 0.06, PHet: 0.004, PActivate: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fairim.DefaultConfig(2)
	cfg.Tau = 8
	cfg.Samples = 80
	a, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: 5, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fairim.Solve(g2, fairim.ProblemSpec{Problem: fairim.P4, Budget: 5, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("seed counts differ: %d vs %d", len(a.Seeds), len(b.Seeds))
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("round-tripped graph produced different seeds: %v vs %v", a.Seeds, b.Seeds)
		}
	}
	if a.Total != b.Total {
		t.Fatalf("totals differ: %v vs %v", a.Total, b.Total)
	}
}

// TestFairnessStoryAcrossDatasets asserts the paper's headline qualitative
// claim on every dataset stand-in: P4-log yields no higher disparity than
// P1 for the max-disparity pair, under the dataset's paper parameters.
func TestFairnessStoryAcrossDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	type ds struct {
		name string
		load func() (*graph.Graph, error)
		tau  int32
	}
	cases := []ds{
		{"synthetic", func() (*graph.Graph, error) {
			return generate.TwoBlock(generate.DefaultTwoBlock(3))
		}, 20},
		{"rice", func() (*graph.Graph, error) { return datasets.RiceFacebook(0.01, 3) }, 20},
		{"instagram", func() (*graph.Graph, error) { return datasets.Instagram(0.02, 0.06, 3) }, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			g, err := c.load()
			if err != nil {
				t.Fatal(err)
			}
			cfg := fairim.DefaultConfig(4)
			cfg.Tau = c.tau
			cfg.Samples = 120
			cfg.EvalSamples = 240
			p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: 20, Config: cfg})
			if err != nil {
				t.Fatal(err)
			}
			p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: 20, Config: cfg})
			if err != nil {
				t.Fatal(err)
			}
			// The pair the unfair solution most disadvantages must improve.
			gi, gj := 0, 1
			worst := -1.0
			for i := 0; i < len(p1.NormPerGroup); i++ {
				for j := i + 1; j < len(p1.NormPerGroup); j++ {
					d := math.Abs(p1.NormPerGroup[i] - p1.NormPerGroup[j])
					if d > worst {
						worst, gi, gj = d, i, j
					}
				}
			}
			d1 := math.Abs(p1.NormPerGroup[gi] - p1.NormPerGroup[gj])
			d4 := math.Abs(p4.NormPerGroup[gi] - p4.NormPerGroup[gj])
			if d4 > d1+0.02 {
				t.Fatalf("%s: P4 pair disparity %v exceeds P1 %v", c.name, d4, d1)
			}
		})
	}
}

// TestGreedyBeatsBaselinesOnObjective: the greedy P1 solver should match or
// beat heuristic seed selections on estimated total influence.
func TestGreedyBeatsBaselinesOnObjective(t *testing.T) {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 200, G: 0.7, PHom: 0.05, PHet: 0.004, PActivate: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fairim.DefaultConfig(6)
	cfg.Tau = 5
	cfg.Samples = 150
	const B = 8
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for name, seeds := range map[string][]graph.NodeID{
		"degree": baselines.TopDegree(g, B),
		"random": baselines.Random(g, B, 7),
	} {
		res, err := fairim.Evaluate(g, seeds, fairim.ProblemSpec{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Total > p1.Total*1.1 {
			t.Fatalf("baseline %s (%v) beats greedy (%v) by >10%%", name, res.Total, p1.Total)
		}
	}
}

// TestRISAndForwardAgreeOnFigOneGraph cross-validates the two estimation
// pipelines on the small deterministic example graph.
func TestRISAndForwardAgreeOnFigOneGraph(t *testing.T) {
	g, names := generate.Fig1Example()
	seeds := []graph.NodeID{names["a"], names["c"]}
	const tau = 2

	fwd, err := influence.Estimate(g, seeds, tau, cascade.IC, 6000, 8)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ris.Sample(g, tau, []int{12000, 12000}, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	est := ris.NewEstimator(col)
	for _, s := range seeds {
		est.Add(s)
	}
	rr := est.GroupUtilities()
	for i := range fwd {
		if math.Abs(fwd[i]-rr[i]) > 0.6 {
			t.Fatalf("group %d: forward %v vs RIS %v", i, fwd[i], rr[i])
		}
	}
}

// TestP6DisparityBound: any feasible FairTCIM-Cover solution has disparity
// at most 1 − Q up to Monte-Carlo noise (§5.2.2).
func TestP6DisparityBound(t *testing.T) {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 200, G: 0.7, PHom: 0.05, PHet: 0.01, PActivate: 0.1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, quota := range []float64{0.1, 0.3, 0.5} {
		cfg := fairim.DefaultConfig(10)
		cfg.Tau = 10
		cfg.Samples = 150
		res, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P6, Quota: quota, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Disparity > (1-quota)+0.08 {
			t.Fatalf("Q=%v: disparity %v breaks the 1-Q bound", quota, res.Disparity)
		}
	}
}

// TestSaturatedWeightedObjective: the budgeted-parity extension (per-capita
// weights + saturated H) must not increase disparity relative to plain P1
// on an imbalanced graph.
func TestSaturatedWeightedObjective(t *testing.T) {
	g, err := datasets.RiceFacebook(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fairim.DefaultConfig(2)
	cfg.Tau = 5
	cfg.Samples = 150
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: 20, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := cfg
	wcfg.GroupWeights = fairim.NormalizedGroupWeights(g)
	wcfg.H = concave.Saturated{
		Cap:   float64(g.N()) / float64(g.NumGroups()) * 0.06,
		Inner: concave.Log{},
	}
	sat, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: 20, Config: wcfg})
	if err != nil {
		t.Fatal(err)
	}
	if sat.Disparity > p1.Disparity {
		t.Fatalf("saturated objective disparity %v exceeds P1 %v", sat.Disparity, p1.Disparity)
	}
}

// TestNormalizedGroupWeights checks the λ construction.
func TestNormalizedGroupWeights(t *testing.T) {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 100, G: 0.8, PHom: 0.05, PHet: 0.01, PActivate: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := fairim.NormalizedGroupWeights(g)
	// λᵢ·|Vᵢ| must be equal across groups (per-capita comparability).
	a := w[0] * float64(g.GroupSize(0))
	b := w[1] * float64(g.GroupSize(1))
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("λ·|V| differs: %v vs %v", a, b)
	}
	// λᵢ·|Vᵢ| = |V|/k: the common per-capita scale.
	if math.Abs(a-float64(g.N())/2) > 1e-9 {
		t.Fatalf("λ·|V| = %v, want %v", a, float64(g.N())/2)
	}
}
