package server

import (
	"container/list"
	"fmt"

	"fairtcim/internal/fairim"
)

// Seed-set prefix memoization. Greedy influence maximization is
// incremental by nature: the seeds a budget-k solve picks are exactly
// the first k picks of any larger-budget solve over the same sample and
// objective. The cache exploits that by memoizing, per (sample,
// problem, deadline, wrapper), the longest solved seed prefix together
// with the CELF heap snapshot the optimizer held after its last pick.
// A later request for a larger budget replays the prefix (no gain
// evaluations) and resumes CELF from the snapshot; a smaller budget is
// answered by pure replay. Parity with a cold solve — identical seeds,
// values and traces — is pinned by fairim's warm-start tests.

// prefixKey identifies one memoized greedy prefix. Everything the pick
// sequence depends on is part of the key: the full sample identity
// (graph, engine, sampling budgets, seed), the problem kind, the
// deadline the estimator is bound to (sampleKey.tau is deliberately
// zeroed for forward MC, whose worlds are shared across deadlines, but
// the gains a solve sees are τ-dependent), and the concave wrapper for
// P4.
type prefixKey struct {
	sample  sampleKey
	problem fairim.Problem
	tau     int32
	h       string // concave-wrapper identity (P4 only); "" for P1
}

// prefixEntry is one memo slot; warm is replaced in place when a longer
// prefix for the same key is captured.
type prefixEntry struct {
	key  prefixKey
	warm *fairim.WarmStart
	elem *list.Element
}

// prefixKeyFor decides whether a solve may consume and produce prefix
// state, and keys it. Only plain budgeted CELF solves qualify: cover
// problems have no budget axis to extend along, PlainGreedy skips the
// CELF heap the snapshot captures, and candidate or group-weight
// overrides (or a caller-injected estimator or warm state) change the
// gain landscape the snapshot encodes.
func prefixKeyFor(key sampleKey, spec fairim.ProblemSpec) (prefixKey, bool) {
	if !spec.Problem.IsBudget() || spec.PlainGreedy ||
		spec.GroupWeights != nil || spec.Candidates != nil ||
		spec.Estimator != nil || spec.Warm != nil {
		return prefixKey{}, false
	}
	pk := prefixKey{sample: key, problem: spec.Problem, tau: spec.Tau}
	if spec.Problem == fairim.P4 {
		pk.h = fmt.Sprintf("%#v", spec.H)
	}
	return pk, true
}

// warmFor returns the memoized prefix for key, if any. Any stored
// length helps the caller: shorter than the asked budget resumes CELF
// where it stopped, longer (or equal) answers by pure replay.
func (c *Cache) warmFor(key prefixKey) *fairim.WarmStart {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.prefix[key]
	if !ok {
		return nil
	}
	c.prefixLRU.MoveToFront(e.elem)
	c.prefixHits++
	return e.warm
}

// storeWarm memoizes a solve's captured prefix, keeping the longest
// seen per key — a k=50 state answers every k ≤ 50 by replay and
// extends everything above. Stored state is immutable by contract
// (resume copies the heap before mutating; replay only reads Seeds), so
// one entry safely serves any number of concurrent later solves.
func (c *Cache) storeWarm(key prefixKey, warm *fairim.WarmStart) {
	if warm == nil || warm.Snapshot == nil || len(warm.Seeds) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.prefix[key]; ok {
		c.prefixLRU.MoveToFront(e.elem)
		if len(warm.Seeds) <= len(e.warm.Seeds) {
			return
		}
		e.warm = warm
		c.prefixStores++
		return
	}
	e := &prefixEntry{key: key, warm: warm}
	e.elem = c.prefixLRU.PushFront(e)
	c.prefix[key] = e
	c.prefixStores++
	for len(c.prefix) > c.prefixCap {
		back := c.prefixLRU.Back()
		old := back.Value.(*prefixEntry)
		c.prefixLRU.Remove(back)
		delete(c.prefix, old.key)
	}
}
