package server

import (
	"container/list"
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/estimator"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

// sampleKey identifies one warm optimization sample. Everything the
// sample's distribution depends on is part of the key, so a cached entry
// can be reused verbatim by any request with matching parameters.
type sampleKey struct {
	graph string // registry name
	// version is the registry version of the graph snapshot the sample was
	// built from. Updates bump it, so post-update requests can never be
	// served a sketch drawn from the pre-update snapshot: they key to a
	// different entry (and a different disk file).
	version uint64
	engine  fairim.Engine
	model   cascade.Model // forward-MC world model (IC for RIS)
	// tau is the deadline RR sets are bounded by; always 0 for forward
	// MC, whose live-edge worlds are τ-independent — one world set serves
	// every deadline, so requests differing only in τ share the entry.
	tau    int32
	budget int   // RR sets per group (RIS) or live-edge worlds (forward MC); 0 when accuracy-sized
	seed   int64 // sampling seed
	// Accuracy-sized samples key by the (ε,δ) target and the seed-set
	// size the stopping rule unions over instead of an explicit budget.
	// All three are zero for explicitly budgeted samples.
	epsBits, deltaBits uint64
	sizingK            int
	// evalOnly marks an accuracy-sized sample that only estimates fixed
	// seed sets (/v1/estimate): forward-MC worlds need no candidate
	// union, so the pool is far smaller than a solve's and must not be
	// confused with one. RIS pools are solve-sized either way (shareable
	// with solves by construction, though keyed separately here).
	evalOnly bool
}

// sampleKeyFor maps a decoded spec onto the cache key: forward-MC keys by
// world count with τ omitted (worlds are τ-independent, so one set serves
// every deadline), RIS by per-group pool size and the τ that bounded the
// sketch (model pinned to IC, the only one RIS supports).
// Accuracy-targeted requests key by (ε, δ, sizing k) instead of a count —
// two requests demanding the same accuracy share one stopping-rule-sized
// sample.
func sampleKeyFor(graphName string, version uint64, g *graph.Graph, spec fairim.ProblemSpec, evalOnly bool) sampleKey {
	k := sampleKey{
		graph:   graphName,
		version: version,
		engine:  spec.Engine,
		model:   spec.Model,
		seed:    spec.Seed,
	}
	if spec.Engine == fairim.EngineRIS {
		k.model = cascade.IC
		k.tau = spec.Tau
	}
	if acc := spec.Sampling.Accuracy; acc != nil {
		k.epsBits = math.Float64bits(acc.Epsilon)
		k.deltaBits = math.Float64bits(acc.Delta)
		k.sizingK = spec.SizingSeeds(g)
		k.evalOnly = evalOnly
		return k
	}
	if spec.Engine == fairim.EngineRIS {
		k.budget = spec.Sampling.RISPerGroup
	} else {
		k.budget = spec.Sampling.Samples
	}
	return k
}

// sample is the cached, immutable artifact: an RR-sketch Collection or a
// live-edge world set. Both are read-only after sampling and safe to
// share across goroutines; per-request estimators are layered on top.
type sample struct {
	g      *graph.Graph
	col    *ris.Collection  // EngineRIS
	worlds []*cascade.World // EngineForwardMC
	// Refresh provenance, echoed in responses: when the sample was produced
	// by incrementally refreshing an earlier version's sketch, rrRefreshed
	// counts the RR sets that were resampled and rrRetained the ones
	// carried over verbatim. Both are zero for cold builds and disk loads.
	rrRefreshed int
	rrRetained  int
}

// newEstimator builds a fresh single-request estimator over the shared
// sample: coverage bitmaps for RIS, activation-time matrices for forward
// MC. The allocation is proportional to samples×N for forward MC, so
// handlers call this inside a worker slot, never per queued request. tau
// applies only to forward MC (a Collection is already bound to the τ it
// was sampled with).
func (s *sample) newEstimator(tau int32) (estimator.Estimator, error) {
	if s.col != nil {
		return ris.NewEstimator(s.col), nil
	}
	return influence.NewEvaluator(s.g, s.worlds, tau)
}

// cacheEntry is one cache slot. ready is closed once sample/err are
// final, so concurrent requests for an in-flight key block on the same
// build instead of starting their own (singleflight). started is closed
// the moment the builder actually holds a worker slot and begins the
// load/build — before that the entry is only a reservation, and joiners
// whose gate bounds queueing may give up on it (see joinEntry).
type cacheEntry struct {
	key     sampleKey
	ready   chan struct{}
	started chan struct{}
	sample  *sample
	err     error
	elem    *list.Element
	buildMS float64
}

// Cache is the keyed estimator-sample cache: LRU over sampleKey with
// singleflight builds and an optional write-through disk tier. All
// exported access goes through SampleFor and Stats.
type Cache struct {
	// disk, when non-nil, persists every built sample and answers memory
	// misses before sampling. Loads run inside the singleflight, so disk
	// is read once per key; saves are write-behind (diskSaveAsync), off
	// the request path entirely. Set once before first use.
	disk *diskStore

	// history, when non-nil, answers "which arc heads changed between
	// versions a and b of this graph" so a memory+disk miss at version v
	// can refresh an in-memory sketch from an earlier version instead of
	// rebuilding cold. Set once before first use (to the Registry).
	history versionHistory

	// refreshThreshold is the dirty-set fraction above which an
	// incremental refresh falls back to a full rebuild; <=0 uses
	// ris.DefaultRefreshThreshold. Set once before first use.
	refreshThreshold float64

	// peers, when non-nil, answers memory+disk misses by fetching the
	// warm frame from another replica before sampling (sharded serving).
	// The fetch runs inside the singleflight like the disk load, so a key
	// goes over the wire at most once per process no matter the fan-in.
	// Set once before first use.
	peers peerSource

	// flushWG tracks write-behind disk saves in flight; flushing mirrors
	// it as a gauge for CacheStats. WaitFlushes drains it on shutdown.
	flushWG  sync.WaitGroup
	flushing atomic.Int64

	mu         sync.Mutex
	capacity   int
	entries    map[sampleKey]*cacheEntry
	lru        *list.List // of *cacheEntry; front = most recently used
	hits       int64      // requests served from an existing (or in-flight) entry
	misses     int64      // requests that had to start a build
	builds     int64      // samples actually built (not loaded from disk)
	evictions  int64      // entries dropped by the LRU
	diskHits   int64      // memory misses served from a persisted sample
	diskWrites int64      // built samples persisted successfully
	diskErrors int64      // unusable state files (corrupt/mismatched) or failed writes

	refreshes    int64 // misses served by incrementally refreshing an older version's sketch
	rrRefreshedN int64 // RR sets resampled across all refreshes
	rrRetainedN  int64 // RR sets carried over verbatim across all refreshes
	invalidated  int64 // entries dropped by graph updates (forward-MC world sets)

	// The seed-set prefix memo: solved greedy prefixes with their CELF
	// heap snapshots, so a larger-budget repeat of a solved problem
	// resumes where the smaller budget stopped instead of re-picking
	// from scratch. Keyed alongside (not inside) the sample entries —
	// a prefix stays useful even if its sample was evicted, since the
	// sample rebuilds bit-identically from its key.
	prefixCap    int
	prefix       map[prefixKey]*prefixEntry
	prefixLRU    *list.List // of *prefixEntry; front = most recently used
	prefixHits   int64
	prefixStores int64
}

// versionHistory is what the cache needs from the registry to refresh
// sketches across graph versions; see Registry.TouchedSince.
type versionHistory interface {
	TouchedSince(name string, from, to uint64) (heads []graph.NodeID, groupsChanged bool, ok bool)
}

// peerSource is the cache's hook into cross-replica sketch exchange: a
// nil return means no peer produced a usable sample (build cold). The
// implementation (clusterState.fetchSample) validates fetched frames as
// strictly as a disk load, so the cache can trust what it gets back.
type peerSource interface {
	fetchSample(ctx context.Context, key sampleKey, g *graph.Graph) *sample
}

// NewCache returns a cache holding at most capacity samples; capacity
// <= 0 defaults to 32. The prefix memo shares the same bound: snapshots
// are O(candidates) each, the same order as a sample's estimator.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 32
	}
	return &Cache{
		capacity:  capacity,
		entries:   map[sampleKey]*cacheEntry{},
		lru:       list.New(),
		prefixCap: capacity,
		prefix:    map[prefixKey]*prefixEntry{},
		prefixLRU: list.New(),
	}
}

// CacheStats snapshots cache effectiveness counters. A "hit" includes
// joining an in-flight build: the request did not sample anything. The
// disk counters stay zero unless the daemon runs with a state dir:
// DiskHits counts memory misses answered from persisted samples (no
// rebuild), DiskWrites completed write-behinds, DiskErrors rejected
// state files (corrupt, truncated, version- or graph-mismatched) plus
// failed writes — a missing file is a cold start, not an error.
// FlushesInFlight gauges write-behinds started but not yet on disk.
// The Prefix* counters track the seed-set prefix memo: PrefixHits are
// solves that warm-started from a memoized prefix, PrefixStores are
// prefixes (re)captured into the memo.
type CacheStats struct {
	Entries         int   `json:"entries"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Builds          int64 `json:"builds"`
	Evictions       int64 `json:"evictions"`
	DiskHits        int64 `json:"disk_hits"`
	DiskWrites      int64 `json:"disk_writes"`
	DiskErrors      int64 `json:"disk_errors"`
	DiskGCRemovals  int64 `json:"disk_gc_removals"`
	FlushesInFlight int64 `json:"disk_flushes_inflight"`
	Refreshes       int64 `json:"refreshes"`
	RRRefreshed     int64 `json:"rr_refreshed"`
	RRRetained      int64 `json:"rr_retained"`
	Invalidated     int64 `json:"invalidated"`
	PrefixEntries   int   `json:"prefix_entries"`
	PrefixHits      int64 `json:"prefix_hits"`
	PrefixStores    int64 `json:"prefix_stores"`
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	inFlight := c.flushing.Load()
	var gcRemovals int64
	if c.disk != nil {
		gcRemovals = c.disk.gcRemovals.Load()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:         len(c.entries),
		Hits:            c.hits,
		Misses:          c.misses,
		Builds:          c.builds,
		Evictions:       c.evictions,
		DiskHits:        c.diskHits,
		DiskWrites:      c.diskWrites,
		DiskErrors:      c.diskErrors,
		DiskGCRemovals:  gcRemovals,
		FlushesInFlight: inFlight,
		Refreshes:       c.refreshes,
		RRRefreshed:     c.rrRefreshedN,
		RRRetained:      c.rrRetainedN,
		Invalidated:     c.invalidated,
		PrefixEntries:   len(c.prefix),
		PrefixHits:      c.prefixHits,
		PrefixStores:    c.prefixStores,
	}
}

// ErrCapacity is returned when a build cannot obtain a worker slot;
// handlers map it to 503.
var ErrCapacity = errors.New("server at capacity")

// errBuildAbandoned resolves an entry whose would-be builder never
// started the build: its request context was cancelled while queued
// (client disconnect) or its own gate shed it at capacity. It is never
// returned to callers — the abandoning builder reports its own error
// (ctx.Err() or ErrCapacity), and singleflight joiners that observe it
// retry the key under their *own* gate policy. That keeps queueing
// policies from leaking across request classes: an async job joining a
// synchronous request's build must not inherit the sync path's
// queue-timeout 503 (jobs wait as long as they must), and nobody
// inherits a cancellation they did not issue.
var errBuildAbandoned = errors.New("server: sample build abandoned before start")

// workerGate bounds CPU-heavy phases (sample builds, solves). A nil gate
// means unbounded. Only the goroutine that actually builds a sample holds
// a slot; singleflight joiners wait slot-free on the entry.
type workerGate interface {
	acquire(ctx context.Context) bool
	release()
}

// joinBounded is the optional workerGate refinement for gates whose
// queueing policy sheds after a timeout (the synchronous request path):
// such a gate also bounds how long its requests wait for someone else's
// not-yet-started build. Without it (async jobs, nil gates, tests) a
// joiner waits as long as its context allows.
type joinBounded interface {
	joinBound() time.Duration
}

// joinEntry waits for another caller's in-flight entry to resolve. A
// bounded gate waits at most its bound for the build to *start*: a
// synchronous request that singleflight-joins a build reserved by a
// queued async job (which may sit behind a saturated worker pool far
// longer than any queue timeout) must shed like the rest of its class
// instead of hanging until the client gives up. Once the build has
// started, the joiner commits regardless of the bound — the sample is
// actively being produced and abandoning it would only duplicate work.
func joinEntry(ctx context.Context, e *cacheEntry, gate workerGate) error {
	if bg, ok := gate.(joinBounded); ok {
		if bound := bg.joinBound(); bound > 0 {
			timer := time.NewTimer(bound)
			defer timer.Stop()
			select {
			case <-e.ready:
				return nil
			case <-e.started:
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
				select {
				case <-e.started: // started right at the deadline: commit
				case <-e.ready:
					return nil
				default:
					return ErrCapacity
				}
			}
		}
	}
	select {
	case <-e.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SampleFor returns the shared, read-only sample for key, building it at
// most once across concurrent callers. The build runs inside gate;
// joiners of an in-flight build hold no slot while they wait, but
// respect ctx cancellation. Callers layer a per-request estimator on top
// with sample.newEstimator — inside their own worker slot, since that
// allocation is not free. hit reports whether the sample was reused
// (including joining an in-flight build, or loading a persisted sample
// from the disk tier instead of re-sampling); buildMS is the wall time
// whichever request built (or loaded) the entry spent, echoed to every
// request that reuses it.
func (c *Cache) SampleFor(ctx context.Context, key sampleKey, g *graph.Graph, parallelism int, gate workerGate) (smp *sample, hit bool, buildMS float64, err error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			c.hits++
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			if err := joinEntry(ctx, e, gate); err != nil {
				return nil, true, 0, err
			}
			if e.err == errBuildAbandoned {
				// The would-be builder was cancelled or shed before the
				// build started and the entry was dropped; take over.
				continue
			}
			if e.err != nil {
				return nil, true, e.buildMS, e.err
			}
			return e.sample, true, e.buildMS, nil
		}
		c.misses++
		e = &cacheEntry{key: key, ready: make(chan struct{}), started: make(chan struct{})}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.evictLocked()
		c.mu.Unlock()

		// The entry is registered, so the build MUST be resolved on every
		// path or joiners would block forever.
		if gate != nil && !gate.acquire(ctx) {
			// The build never started: resolve the entry with the internal
			// retry sentinel so joiners rebuild under their own gates, and
			// report this caller's own failure — its cancellation if the
			// context died, a capacity shed otherwise.
			e.err = errBuildAbandoned
			c.dropEntry(e)
			close(e.ready)
			if cerr := ctx.Err(); cerr != nil {
				return nil, false, 0, cerr
			}
			return nil, false, 0, ErrCapacity
		}
		close(e.started) // slot held: bounded joiners now commit to the wait
		start := time.Now()
		diskHit := false
		peerHit := false
		if smp := c.diskLoad(key, g); smp != nil {
			e.sample, diskHit = smp, true
		} else if smp := c.refreshFrom(key, g, parallelism, ctx.Done()); smp != nil {
			// An older version's in-memory sketch was refreshed in place of
			// a cold build; it is persisted below like any fresh build.
			e.sample = smp
		} else if smp := c.peerLoad(ctx, key, g); smp != nil {
			// A warm peer answered the miss: the frame validated like a
			// state file and nothing was sampled. Persisted below like a
			// fresh build, so the next restart is warm without the peer.
			e.sample, peerHit = smp, true
		} else {
			c.mu.Lock()
			c.builds++
			c.mu.Unlock()
			e.sample, e.err = buildSample(key, g, parallelism, ctx.Done())
		}
		e.buildMS = float64(time.Since(start).Microseconds()) / 1000
		if gate != nil {
			gate.release()
		}
		if e.err != nil && ctx.Err() != nil && errors.Is(e.err, context.Canceled) {
			// The build died of this caller's own mid-sampling
			// cancellation (client disconnect, job DELETE). Joiners must
			// not inherit a cancellation they did not issue: resolve with
			// the retry sentinel and report the context error here only.
			e.err = errBuildAbandoned
			c.dropEntry(e)
			close(e.ready)
			return nil, false, e.buildMS, ctx.Err()
		}
		if e.err != nil {
			// Drop failed builds so the next request can retry.
			c.dropEntry(e)
		}
		close(e.ready)
		if e.err != nil {
			return nil, false, e.buildMS, e.err
		}
		if !diskHit {
			// Write-behind: the response never waits on the disk tier.
			c.diskSaveAsync(key, e.sample)
		}
		// A disk-loaded or peer-fetched sample counts as a hit: nothing
		// was sampled, the replica started warm.
		return e.sample, diskHit || peerHit, e.buildMS, nil
	}
}

// peerLoad tries the cluster for key's warm frame; nil without peers.
// Counter bumps (peer_fetches, peer_fetch_errors) happen inside the
// peerSource, which owns the cluster counters.
func (c *Cache) peerLoad(ctx context.Context, key sampleKey, g *graph.Graph) *sample {
	if c.peers == nil {
		return nil
	}
	return c.peers.fetchSample(ctx, key, g)
}

// peek returns the ready, error-free sample cached under key without
// joining or starting any build — the sketch transfer endpoint's read:
// either the frame is warm right now, or the peer is told 404 and moves
// on. Serving a peer counts as a use for the LRU.
func (c *Cache) peek(key sampleKey) *sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	select {
	case <-e.ready:
	default:
		return nil
	}
	if e.err != nil {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	return e.sample
}

// diskLoad tries the persisted sample for key. Any unusable state file is
// counted and ignored — persistence can only ever make a request faster,
// never fail it.
func (c *Cache) diskLoad(key sampleKey, g *graph.Graph) *sample {
	if c.disk == nil {
		return nil
	}
	smp, err := c.disk.load(key, g)
	if err != nil {
		c.mu.Lock()
		c.diskErrors++
		c.mu.Unlock()
		return nil
	}
	if smp == nil {
		return nil
	}
	c.mu.Lock()
	c.diskHits++
	c.mu.Unlock()
	return smp
}

// diskSave writes a freshly built sample to disk, counting the outcome.
func (c *Cache) diskSave(key sampleKey, smp *sample) {
	if c.disk == nil {
		return
	}
	err := c.disk.save(key, smp)
	c.mu.Lock()
	if err != nil {
		c.diskErrors++
	} else {
		c.diskWrites++
	}
	c.mu.Unlock()
}

// diskSaveAsync persists a built sample in the background: the request
// that built it is served the moment the sample is ready, and the disk
// tier catches up behind it. Samples are immutable after the build, so
// the flush goroutine needs no synchronization beyond the counters.
func (c *Cache) diskSaveAsync(key sampleKey, smp *sample) {
	if c.disk == nil {
		return
	}
	c.flushWG.Add(1)
	c.flushing.Add(1)
	go func() {
		defer c.flushWG.Done()
		defer c.flushing.Add(-1)
		c.diskSave(key, smp)
	}()
}

// WaitFlushes blocks until every write-behind started so far has hit
// disk. The daemon calls it on shutdown so a restart finds every built
// sketch persisted; tests call it before asserting on-disk state.
func (c *Cache) WaitFlushes() { c.flushWG.Wait() }

// refreshFrom tries to satisfy a memory+disk miss at key.version by
// incrementally refreshing a resident sketch of the same shape built at an
// earlier version of the same graph: only RR sets containing a touched arc
// head are resampled, the rest carry over verbatim. Returns nil when the
// miss must build cold instead — no version history, no eligible source
// entry, group labels moved, or the engine/sizing rules it out
// (accuracy-sized keys re-run their stopping rule from scratch so the
// sizing itself reflects the new graph; forward-MC worlds realize every
// edge coin and never survive a delta).
func (c *Cache) refreshFrom(key sampleKey, g *graph.Graph, parallelism int, cancel <-chan struct{}) *sample {
	if c.history == nil || key.engine != fairim.EngineRIS || key.epsBits != 0 || key.version <= 1 {
		return nil
	}
	// Newest ready, error-free entry whose key differs only by an earlier
	// version.
	want := key
	c.mu.Lock()
	var src *cacheEntry
	for k, e := range c.entries {
		if k.version == 0 || k.version >= key.version {
			continue
		}
		want.version = k.version
		if k != want {
			continue
		}
		select {
		case <-e.ready:
		default:
			continue
		}
		if e.err != nil || e.sample == nil || e.sample.col == nil {
			continue
		}
		if src == nil || k.version > src.key.version {
			src = e
		}
	}
	c.mu.Unlock()
	if src == nil {
		return nil
	}
	heads, groupsChanged, ok := c.history.TouchedSince(key.graph, src.key.version, key.version)
	if !ok || groupsChanged {
		return nil
	}
	// Mix the target version into the refresh seed so resampled sets never
	// replay the exact coin streams that produced the dirty sets they
	// replace (key.seed alone would).
	seed := key.seed ^ int64(key.version*0x9E3779B97F4A7C15)
	col, stats, err := src.sample.col.Refresh(g, heads, seed, parallelism, c.refreshThreshold, cancel)
	if err != nil {
		return nil // cold build will surface its own error/cancellation
	}
	c.mu.Lock()
	if stats.FullRebuild {
		// Refresh bailed to a full resample (dirty fraction above the
		// threshold): the work is a cold build and is counted as one.
		c.builds++
	} else {
		c.refreshes++
		c.rrRefreshedN += int64(stats.Refreshed)
		c.rrRetainedN += int64(stats.Retained)
	}
	c.mu.Unlock()
	if stats.FullRebuild {
		return &sample{g: g, col: col}
	}
	return &sample{g: g, col: col, rrRefreshed: stats.Refreshed, rrRetained: stats.Retained}
}

// invalidateGraph drops cached forward-MC world sets for the named graph
// after an update. Live-edge worlds realize every edge coin, so none
// survive a delta — unlike RR sketches, which stay resident as refresh
// sources for the next version and age out through the LRU (their
// version-keyed entries can never serve a post-update request anyway).
// Returns how many entries were dropped and how many of their worlds
// realized at least one touched arc, for the update response.
func (c *Cache) invalidateGraph(name string, arcs []graph.Arc) (dropped, worldsTouched int) {
	c.mu.Lock()
	var victims []*cacheEntry
	for k, e := range c.entries {
		if k.graph != name || k.engine == fairim.EngineRIS {
			continue
		}
		select {
		case <-e.ready:
		default:
			// In-flight build: its key binds it to the pre-update snapshot,
			// which stays correct for requests at that version; leave it to
			// resolve and age out.
			continue
		}
		victims = append(victims, e)
	}
	for _, e := range victims {
		delete(c.entries, e.key)
		c.lru.Remove(e.elem)
		c.invalidated++
		dropped++
	}
	c.mu.Unlock()
	for _, e := range victims {
		if e.err == nil && e.sample != nil && e.sample.worlds != nil {
			worldsTouched += cascade.WorldsTouchedByArcs(e.sample.worlds, arcs)
		}
	}
	return dropped, worldsTouched
}

// dropEntry removes e from the index if it is still the current entry for
// its key.
func (c *Cache) dropEntry(e *cacheEntry) {
	c.mu.Lock()
	if cur, still := c.entries[e.key]; still && cur == e {
		delete(c.entries, e.key)
		c.lru.Remove(e.elem)
	}
	c.mu.Unlock()
}

// evictLocked drops least-recently-used *ready* entries beyond capacity.
// In-flight entries are never evicted: dropping one would let an
// identical request start a duplicate build, breaking the
// one-build-per-key singleflight guarantee. If every entry is still
// building, the cache temporarily overflows and the next insertion
// evicts the backlog.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.capacity {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			select {
			case <-e.ready:
				c.lru.Remove(el)
				delete(c.entries, e.key)
				c.evictions++
				evicted = true
			default: // in flight; keep
			}
			if evicted {
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// buildSample draws the optimization sample key describes. Accuracy keys
// resolve their budget here — inside the singleflight, so the (possibly
// doubling) sizing run happens once per key no matter the fan-in. cancel
// aborts the sampling loops cooperatively (context.Canceled): a client
// that disconnects mid-build stops burning worker time on a sample
// nobody is waiting for.
func buildSample(key sampleKey, g *graph.Graph, parallelism int, cancel <-chan struct{}) (*sample, error) {
	if key.epsBits != 0 {
		eps := math.Float64frombits(key.epsBits)
		delta := math.Float64frombits(key.deltaBits)
		if key.engine == fairim.EngineRIS {
			col, err := ris.SampleForAccuracyCancel(g, key.tau, key.sizingK, eps, delta, key.seed, parallelism, cancel)
			if err != nil {
				return nil, err
			}
			return &sample{g: g, col: col}, nil
		}
		var m int
		if key.evalOnly {
			// Fixed-seed-set estimation: no candidate union, the per-set
			// Hoeffding count suffices.
			var err error
			m, err = fairim.EvalWorlds(fairim.Accuracy{Epsilon: eps, Delta: delta}, g.NumGroups())
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			m, err = fairim.HoeffdingWorlds(eps, delta, key.sizingK, g.N(), g.NumGroups())
			if err != nil {
				return nil, err
			}
		}
		worlds, err := cascade.SampleWorldsCancel(g, key.model, m, key.seed, parallelism, cancel)
		if err != nil {
			return nil, err
		}
		return &sample{g: g, worlds: worlds}, nil
	}
	if key.engine == fairim.EngineRIS {
		perGroup := make([]int, g.NumGroups())
		for i := range perGroup {
			perGroup[i] = key.budget
		}
		col, err := ris.SampleCancel(g, key.tau, perGroup, key.seed, parallelism, cancel)
		if err != nil {
			return nil, err
		}
		return &sample{g: g, col: col}, nil
	}
	worlds, err := cascade.SampleWorldsCancel(g, key.model, key.budget, key.seed, parallelism, cancel)
	if err != nil {
		return nil, err
	}
	return &sample{g: g, worlds: worlds}, nil
}
