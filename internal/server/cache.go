package server

import (
	"container/list"
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/estimator"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

// sampleKey identifies one warm optimization sample. Everything the
// sample's distribution depends on is part of the key, so a cached entry
// can be reused verbatim by any request with matching parameters.
type sampleKey struct {
	graph  string        // registry name
	engine fairim.Engine //
	model  cascade.Model // forward-MC world model (IC for RIS)
	// tau is the deadline RR sets are bounded by; always 0 for forward
	// MC, whose live-edge worlds are τ-independent — one world set serves
	// every deadline, so requests differing only in τ share the entry.
	tau    int32
	budget int   // RR sets per group (RIS) or live-edge worlds (forward MC); 0 when accuracy-sized
	seed   int64 // sampling seed
	// Accuracy-sized samples key by the (ε,δ) target and the seed-set
	// size the stopping rule unions over instead of an explicit budget.
	// All three are zero for explicitly budgeted samples.
	epsBits, deltaBits uint64
	sizingK            int
	// evalOnly marks an accuracy-sized sample that only estimates fixed
	// seed sets (/v1/estimate): forward-MC worlds need no candidate
	// union, so the pool is far smaller than a solve's and must not be
	// confused with one. RIS pools are solve-sized either way (shareable
	// with solves by construction, though keyed separately here).
	evalOnly bool
}

// sampleKeyFor maps a decoded spec onto the cache key: forward-MC keys by
// world count with τ omitted (worlds are τ-independent, so one set serves
// every deadline), RIS by per-group pool size and the τ that bounded the
// sketch (model pinned to IC, the only one RIS supports).
// Accuracy-targeted requests key by (ε, δ, sizing k) instead of a count —
// two requests demanding the same accuracy share one stopping-rule-sized
// sample.
func sampleKeyFor(graphName string, g *graph.Graph, spec fairim.ProblemSpec, evalOnly bool) sampleKey {
	k := sampleKey{
		graph:  graphName,
		engine: spec.Engine,
		model:  spec.Model,
		seed:   spec.Seed,
	}
	if spec.Engine == fairim.EngineRIS {
		k.model = cascade.IC
		k.tau = spec.Tau
	}
	if acc := spec.Sampling.Accuracy; acc != nil {
		k.epsBits = math.Float64bits(acc.Epsilon)
		k.deltaBits = math.Float64bits(acc.Delta)
		k.sizingK = spec.SizingSeeds(g)
		k.evalOnly = evalOnly
		return k
	}
	if spec.Engine == fairim.EngineRIS {
		k.budget = spec.Sampling.RISPerGroup
	} else {
		k.budget = spec.Sampling.Samples
	}
	return k
}

// sample is the cached, immutable artifact: an RR-sketch Collection or a
// live-edge world set. Both are read-only after sampling and safe to
// share across goroutines; per-request estimators are layered on top.
type sample struct {
	g      *graph.Graph
	col    *ris.Collection  // EngineRIS
	worlds []*cascade.World // EngineForwardMC
}

// newEstimator builds a fresh single-request estimator over the shared
// sample: coverage bitmaps for RIS, activation-time matrices for forward
// MC. The allocation is proportional to samples×N for forward MC, so
// handlers call this inside a worker slot, never per queued request. tau
// applies only to forward MC (a Collection is already bound to the τ it
// was sampled with).
func (s *sample) newEstimator(tau int32) (estimator.Estimator, error) {
	if s.col != nil {
		return ris.NewEstimator(s.col), nil
	}
	return influence.NewEvaluator(s.g, s.worlds, tau)
}

// cacheEntry is one cache slot. ready is closed once sample/err are
// final, so concurrent requests for an in-flight key block on the same
// build instead of starting their own (singleflight).
type cacheEntry struct {
	key     sampleKey
	ready   chan struct{}
	sample  *sample
	err     error
	elem    *list.Element
	buildMS float64
}

// Cache is the keyed estimator-sample cache: LRU over sampleKey with
// singleflight builds. All exported access goes through EstimatorFor and
// Stats.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[sampleKey]*cacheEntry
	lru       *list.List // of *cacheEntry; front = most recently used
	hits      int64      // requests served from an existing (or in-flight) entry
	misses    int64      // requests that had to start a build
	builds    int64      // samples actually built
	evictions int64      // entries dropped by the LRU
}

// NewCache returns a cache holding at most capacity samples; capacity
// <= 0 defaults to 32.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 32
	}
	return &Cache{
		capacity: capacity,
		entries:  map[sampleKey]*cacheEntry{},
		lru:      list.New(),
	}
}

// CacheStats snapshots cache effectiveness counters. A "hit" includes
// joining an in-flight build: the request did not sample anything.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Builds:    c.builds,
		Evictions: c.evictions,
	}
}

// ErrCapacity is returned when a build cannot obtain a worker slot;
// handlers map it to 503.
var ErrCapacity = errors.New("server at capacity")

// workerGate bounds CPU-heavy phases (sample builds, solves). A nil gate
// means unbounded. Only the goroutine that actually builds a sample holds
// a slot; singleflight joiners wait slot-free on the entry.
type workerGate interface {
	acquire(ctx context.Context) bool
	release()
}

// SampleFor returns the shared, read-only sample for key, building it at
// most once across concurrent callers. The build runs inside gate;
// joiners of an in-flight build hold no slot while they wait, but
// respect ctx cancellation. Callers layer a per-request estimator on top
// with sample.newEstimator — inside their own worker slot, since that
// allocation is not free. hit reports whether the sample was reused
// (including joining an in-flight build); buildMS is the wall time
// whichever request built the entry spent sampling, echoed to every
// request that reuses it.
func (c *Cache) SampleFor(ctx context.Context, key sampleKey, g *graph.Graph, parallelism int, gate workerGate) (smp *sample, hit bool, buildMS float64, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, true, 0, ctx.Err()
		}
	} else {
		c.misses++
		e = &cacheEntry{key: key, ready: make(chan struct{})}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.evictLocked()
		c.mu.Unlock()

		// The entry is registered, so the build MUST be resolved on every
		// path or joiners would block forever.
		if gate != nil && !gate.acquire(ctx) {
			e.err = ErrCapacity
			c.dropEntry(e)
			close(e.ready)
			return nil, false, 0, e.err
		}
		c.mu.Lock()
		c.builds++
		c.mu.Unlock()
		start := time.Now()
		e.sample, e.err = buildSample(key, g, parallelism)
		e.buildMS = float64(time.Since(start).Microseconds()) / 1000
		if gate != nil {
			gate.release()
		}
		if e.err != nil {
			// Drop failed builds so the next request can retry.
			c.dropEntry(e)
		}
		close(e.ready)
	}
	if e.err != nil {
		return nil, ok, e.buildMS, e.err
	}
	return e.sample, ok, e.buildMS, nil
}

// dropEntry removes e from the index if it is still the current entry for
// its key.
func (c *Cache) dropEntry(e *cacheEntry) {
	c.mu.Lock()
	if cur, still := c.entries[e.key]; still && cur == e {
		delete(c.entries, e.key)
		c.lru.Remove(e.elem)
	}
	c.mu.Unlock()
}

// evictLocked drops least-recently-used *ready* entries beyond capacity.
// In-flight entries are never evicted: dropping one would let an
// identical request start a duplicate build, breaking the
// one-build-per-key singleflight guarantee. If every entry is still
// building, the cache temporarily overflows and the next insertion
// evicts the backlog.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.capacity {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			select {
			case <-e.ready:
				c.lru.Remove(el)
				delete(c.entries, e.key)
				c.evictions++
				evicted = true
			default: // in flight; keep
			}
			if evicted {
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// buildSample draws the optimization sample key describes. Accuracy keys
// resolve their budget here — inside the singleflight, so the (possibly
// doubling) sizing run happens once per key no matter the fan-in.
func buildSample(key sampleKey, g *graph.Graph, parallelism int) (*sample, error) {
	if key.epsBits != 0 {
		eps := math.Float64frombits(key.epsBits)
		delta := math.Float64frombits(key.deltaBits)
		if key.engine == fairim.EngineRIS {
			col, err := ris.SampleForAccuracy(g, key.tau, key.sizingK, eps, delta, key.seed, parallelism)
			if err != nil {
				return nil, err
			}
			return &sample{g: g, col: col}, nil
		}
		var m int
		if key.evalOnly {
			// Fixed-seed-set estimation: no candidate union, the per-set
			// Hoeffding count suffices.
			m = fairim.EvalWorlds(fairim.Accuracy{Epsilon: eps, Delta: delta}, g.NumGroups())
		} else {
			var err error
			m, err = fairim.HoeffdingWorlds(eps, delta, key.sizingK, g.N(), g.NumGroups())
			if err != nil {
				return nil, err
			}
		}
		worlds := cascade.SampleWorlds(g, key.model, m, key.seed, parallelism)
		return &sample{g: g, worlds: worlds}, nil
	}
	if key.engine == fairim.EngineRIS {
		perGroup := make([]int, g.NumGroups())
		for i := range perGroup {
			perGroup[i] = key.budget
		}
		col, err := ris.Sample(g, key.tau, perGroup, key.seed, parallelism)
		if err != nil {
			return nil, err
		}
		return &sample{g: g, col: col}, nil
	}
	worlds := cascade.SampleWorlds(g, key.model, key.budget, key.seed, parallelism)
	return &sample{g: g, worlds: worlds}, nil
}
