package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fairtcim/internal/estimator"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
)

// The batched query planner. Concurrent ProblemSpecs against the same
// graph version and sketch shape mostly differ only in their budget or
// report mode, yet each used to pay a full greedy pass over the shared
// sample. fairim.SolveBatch coalesces compatible specs onto one shared
// estimator and one CELF run, peeling each query's answer at its own
// budget boundary with bit-identical output (the parity matrix in
// internal/fairim pins that guarantee). This file is the serving-side
// harness: the POST /v1/select/batch endpoint, the optional coalescing
// window that batches concurrent /v1/select traffic transparently, and
// the planner counters in /v1/stats.

// maxBatchRequests bounds one POST /v1/select/batch body; larger
// batches should be split by the client (each sub-batch still coalesces
// internally).
const maxBatchRequests = 256

// BatchSolveRequest is the body of POST /v1/select/batch: an ordered
// list of SolveRequests, answered positionally. The requests may target
// different graphs; coalescing happens per (graph, version, sample key,
// problem shape) — see the README for the exact compatibility rules.
type BatchSolveRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// BatchItem is one request's outcome inside a batch response: exactly
// one of Response or Error is set. Item errors use the same envelope
// payload as the single-request endpoints, so clients can reuse their
// error handling per item.
type BatchItem struct {
	Response *SolveResponse `json:"response,omitempty"`
	Error    *apiError      `json:"error,omitempty"`
}

// BatchSolveResponse is the body of a POST /v1/select/batch answer.
// The planner tallies describe this batch: PlannerGroups shared runs
// served ≥2 requests each, PlannerSingletons requests ran alone, and
// Coalesced requests in total rode a shared run.
type BatchSolveResponse struct {
	Items             []BatchItem `json:"items"`
	PlannerGroups     int         `json:"planner_groups"`
	PlannerSingletons int         `json:"planner_singletons"`
	Coalesced         int         `json:"coalesced"`
}

// PlannerStats is the /v1/stats roll-up of batched planning since
// start: explicit batch requests plus coalescing-window batches.
type PlannerStats struct {
	Batches    int64 `json:"batches"`
	Groups     int64 `json:"groups"`
	Singletons int64 `json:"singletons"`
	Coalesced  int64 `json:"coalesced"`
}

// batchItemResult is one spec's outcome from the batch core, before
// wire encoding.
type batchItemResult struct {
	resp *SolveResponse
	err  error
}

// solveBatch runs decoded specs against one graph snapshot, sharing
// work across them: every distinct sample key is fetched (or built)
// once up front, then a single worker slot hosts one fairim.SolveBatch
// over all specs. Samples are prefetched before the slot is taken —
// SampleFor acquires and releases the gate itself, and holding the
// batch's slot across those builds would deadlock a MaxConcurrent=1
// server against its own prefetch. Per-spec failures (bad spec, failed
// sample build) land in that item only; the returned error is
// batch-fatal (capacity, caller gone) and means no item ran.
func (s *Server) solveBatch(ctx context.Context, gate workerGate, graphName string, version uint64, g *graph.Graph, specs []fairim.ProblemSpec) ([]batchItemResult, fairim.BatchReport, error) {
	type fetched struct {
		smp     *sample
		hit     bool
		buildMS float64
		err     error
	}
	samples := make(map[sampleKey]*fetched)
	keys := make([]sampleKey, len(specs))
	for i := range specs {
		specs[i].Parallelism = s.parallelism
		key := sampleKeyFor(graphName, version, g, specs[i], false)
		keys[i] = key
		if samples[key] == nil {
			f := &fetched{}
			f.smp, f.hit, f.buildMS, f.err = s.cache.SampleFor(ctx, key, g, s.parallelism, gate)
			samples[key] = f
		}
	}

	// One worker slot hosts the whole batch solve; that single slot is
	// the point of the planner — N queries, one unit of pool pressure.
	if !gate.acquire(ctx) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fairim.BatchReport{}, cerr
		}
		return nil, fairim.BatchReport{}, ErrCapacity
	}
	defer gate.release()

	// The whole batch is one occupant of the pool, so it shares one
	// occupancy-adapted worker count (computed while holding the slot).
	effPar := s.effectiveParallelism()
	for i := range specs {
		specs[i].Parallelism = effPar
	}

	// warmLens records, per group id, how many memoized seeds primed the
	// shared run; members report min(that, own budget) as warm_seeds.
	// SolveBatch runs groups sequentially on this goroutine, so plain
	// maps are safe.
	warmLens := make(map[int]int)
	opts := &fairim.BatchOptions{
		Estimator: func(gid int, rep fairim.ProblemSpec) (estimator.Estimator, error) {
			f := samples[sampleKeyFor(graphName, version, g, rep, false)]
			if f == nil || f.err != nil {
				// A failed prefetch fails the group — every member shares
				// the sample key, so the error lands exactly on the items
				// that needed it (nil, nil would silently rebuild inside
				// the batch's slot instead).
				if f != nil {
					return nil, f.err
				}
				return nil, fmt.Errorf("server: no prefetched sample for batch group %d", gid)
			}
			return f.smp.newEstimator(rep.Tau)
		},
		Warm: func(gid int, rep fairim.ProblemSpec) *fairim.WarmStart {
			pk, ok := prefixKeyFor(sampleKeyFor(graphName, version, g, rep, false), rep)
			if !ok {
				return nil
			}
			w := s.cache.warmFor(pk)
			if w != nil {
				warmLens[gid] = len(w.Seeds)
			}
			return w
		},
		OnWarm: func(gid int, rep fairim.ProblemSpec, w *fairim.WarmStart) {
			if pk, ok := prefixKeyFor(sampleKeyFor(graphName, version, g, rep, false), rep); ok {
				s.cache.storeWarm(pk, w)
			}
		},
	}

	start := time.Now()
	outcomes, report := fairim.SolveBatch(g, specs, opts)
	solveMS := float64(time.Since(start).Microseconds()) / 1000

	items := make([]batchItemResult, len(specs))
	for i, out := range outcomes {
		if out.Err != nil {
			items[i] = batchItemResult{err: out.Err}
			continue
		}
		res := out.Result
		f := samples[keys[i]]
		warm := 0
		if gid := report.GroupOf[i]; gid >= 0 && specs[i].Problem.IsBudget() {
			if warm = warmLens[gid]; warm > specs[i].Budget {
				warm = specs[i].Budget
			}
		}
		items[i] = batchItemResult{resp: &SolveResponse{
			Problem:              res.Problem,
			Graph:                graphName,
			Engine:               specs[i].Engine.String(),
			UtilityReport:        reportOf(res),
			Evaluations:          res.Evaluations,
			CacheHit:             f.hit,
			GraphVersion:         version,
			RRRefreshed:          f.smp.rrRefreshed,
			RRRetained:           f.smp.rrRetained,
			WarmSeeds:            warm,
			SampleMS:             f.buildMS,
			SolveMS:              solveMS, // the whole shared pass; per-item attribution would be fiction
			ResolvedSamples:      res.Samples,
			ResolvedRISPerGroup:  res.RISPerGroup,
			Trace:                traceEvents(res.Trace),
			EffectiveParallelism: effPar,
		}}
	}
	s.plannerBatches.Add(1)
	s.plannerGroups.Add(int64(report.Groups))
	s.plannerSingletons.Add(int64(report.Singletons))
	s.plannerCoalesced.Add(int64(report.Coalesced))
	return items, report, nil
}

// errItem wraps a pipeline error as a wire item, mirroring
// writeSolveError's code mapping.
func errItem(err error) BatchItem {
	code := errCode(err)
	msg := err.Error()
	if code == CodeCapacity {
		msg = "server at capacity; retry later"
	}
	return BatchItem{Error: &apiError{Code: code, Message: msg}}
}

// handleSelectBatch is POST /v1/select/batch. The response is
// positional: items[i] answers requests[i], each item carrying either a
// full SolveResponse or its own error envelope, so one bad spec never
// fails its neighbors. Requests are grouped by graph; each graph's
// snapshot is resolved exactly once, so every item for a graph reports
// the same graph_version — a batch can never mix versions.
func (s *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req BatchSolveRequest
	if !decodeStrict(w, body, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "empty batch")
		return
	}
	if len(req.Requests) > maxBatchRequests {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "batch of %d exceeds the %d-request limit", len(req.Requests), maxBatchRequests)
		return
	}
	// A batch whose requests all route to the same owner is proxied as a
	// unit; mixed batches are served here (correct either way — routing
	// only concentrates cache affinity).
	if key, uniform := batchRouteKey(req.Requests); uniform {
		if cands := s.routeCandidates(r, key); cands != nil {
			if s.proxyWithFailover(w, r, cands, "/v1/select/batch", body, nil) {
				return
			}
		}
	}

	resp := BatchSolveResponse{Items: make([]BatchItem, len(req.Requests))}
	// Partition decodable requests by graph, preserving arrival order
	// within each partition (group ids are assigned by first occurrence,
	// so order is part of the planner's determinism).
	specs := make([]fairim.ProblemSpec, len(req.Requests))
	var graphOrder []string
	byGraph := make(map[string][]int)
	for i, sub := range req.Requests {
		spec, err := sub.toSpec()
		if err != nil {
			resp.Items[i] = BatchItem{Error: &apiError{Code: CodeBadSpec, Message: err.Error()}}
			continue
		}
		specs[i] = spec
		if _, seen := byGraph[sub.Graph]; !seen {
			graphOrder = append(graphOrder, sub.Graph)
		}
		byGraph[sub.Graph] = append(byGraph[sub.Graph], i)
	}

	for _, name := range graphOrder {
		idxs := byGraph[name]
		g, version, err := s.reg.GetVersioned(name)
		if err != nil {
			for _, i := range idxs {
				resp.Items[i] = errItem(err)
			}
			continue
		}
		part := make([]fairim.ProblemSpec, len(idxs))
		for j, i := range idxs {
			part[j] = specs[i]
		}
		items, report, err := s.solveBatch(r.Context(), serverGate{s}, name, version, g, part)
		if err != nil {
			for _, i := range idxs {
				resp.Items[i] = errItem(err)
			}
			continue
		}
		for j, i := range idxs {
			if items[j].err != nil {
				resp.Items[i] = errItem(items[j].err)
			} else {
				resp.Items[i] = BatchItem{Response: items[j].resp}
			}
		}
		resp.PlannerGroups += report.Groups
		resp.PlannerSingletons += report.Singletons
		resp.Coalesced += report.Coalesced
	}
	writeJSON(w, http.StatusOK, resp)
}

// coalescer batches concurrent single-request /v1/select traffic: the
// first arrival for a graph opens a window; requests landing inside it
// join the pending batch; when the window closes, the timer goroutine
// runs one shared solveBatch and hands each waiter its own item. A
// request pays at most the window in added latency, and under real
// concurrency earns a shared sketch pass and a shared CELF run in
// return. Keyed by graph name: specs for different graphs can never
// share work, so windowing them together would only add latency.
type coalescer struct {
	s       *Server
	window  time.Duration
	mu      sync.Mutex
	pending map[string]*pendingBatch
}

type pendingBatch struct {
	graph string
	items []*pendingSelect
}

type pendingSelect struct {
	spec fairim.ProblemSpec
	done chan batchItemResult
}

func newCoalescer(s *Server, window time.Duration) *coalescer {
	return &coalescer{s: s, window: window, pending: make(map[string]*pendingBatch)}
}

// submit enrolls one decoded request and blocks until its result is
// ready or the caller gives up. A caller that abandons ship leaves its
// buffered channel behind; the leader's send completes regardless.
func (c *coalescer) submit(ctx context.Context, graphName string, spec fairim.ProblemSpec) (*SolveResponse, error) {
	item := &pendingSelect{spec: spec, done: make(chan batchItemResult, 1)}
	c.mu.Lock()
	b := c.pending[graphName]
	if b == nil {
		b = &pendingBatch{graph: graphName}
		c.pending[graphName] = b
		time.AfterFunc(c.window, func() { c.flush(b) })
	}
	b.items = append(b.items, item)
	c.mu.Unlock()

	select {
	case res := <-item.done:
		return res.resp, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flush closes the window: detach the batch so new arrivals start a
// fresh one, then solve it and distribute. Runs on the window timer's
// goroutine — the batch occupies no HTTP handler while it executes.
func (c *coalescer) flush(b *pendingBatch) {
	c.mu.Lock()
	if c.pending[b.graph] == b {
		delete(c.pending, b.graph)
	}
	items := b.items
	c.mu.Unlock()

	fail := func(err error) {
		for _, it := range items {
			it.done <- batchItemResult{err: err}
		}
	}
	g, version, err := c.s.reg.GetVersioned(b.graph)
	if err != nil {
		fail(err)
		return
	}
	specs := make([]fairim.ProblemSpec, len(items))
	for i, it := range items {
		specs[i] = it.spec
	}
	// The window's batch is background work once waiters detach, so it
	// runs under its own context; individual waiters' disconnects must
	// not cancel their batchmates.
	results, _, err := c.s.solveBatch(context.Background(), serverGate{c.s}, b.graph, version, g, specs)
	if err != nil {
		fail(err)
		return
	}
	for i, it := range items {
		it.done <- results[i]
	}
}
