package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// startRouter mounts a Router over the given replica URLs.
func startRouter(t *testing.T, replicas []string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(RouterConfig{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// TestRouterRoutesSelect: the router relays a select to the fleet and
// returns the owner's answer; the proxied counter moves on the router,
// and only the owner builds.
func TestRouterRoutesSelect(t *testing.T) {
	srvs, urls := startFleet(t, 2, nil)
	rt, rts := startRouter(t, urls)
	resp, body := postJSON(t, rts.URL+"/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select via router: %d %s", resp.StatusCode, body)
	}
	if len(decodeSolve(t, body).Seeds) != 2 {
		t.Fatalf("bad answer: %s", body)
	}
	if p := rt.Stats().Proxied; p != 1 {
		t.Fatalf("router proxied=%d, want 1", p)
	}
	owner, other := ownerOf(t, srvs, urls)
	if b := srvs[owner].CacheStats().Builds; b != 1 {
		t.Fatalf("owner builds=%d, want 1", b)
	}
	if b := srvs[other].CacheStats().Builds; b != 0 {
		t.Fatalf("non-owner builds=%d, want 0", b)
	}
	// The router agrees with the replicas on ownership, so the receiving
	// replica never re-proxies.
	if p := srvs[owner].ClusterStats().Proxied; p != 0 {
		t.Fatalf("owner re-proxied %d requests", p)
	}
}

// TestRouterJobLifecycle: submit via the router, poll and cancel via the
// router; the job id routes to the replica that accepted it.
func TestRouterJobLifecycle(t *testing.T) {
	_, urls := startFleet(t, 2, nil)
	rt, rts := startRouter(t, urls)
	resp, body := postJSON(t, rts.URL+"/v1/jobs", clusterSelectBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via router: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.cs.jobRoute(st.ID); !ok {
		t.Fatalf("router did not remember job %s", st.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := http.Get(rts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("poll via router: %d %s", res.StatusCode, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The merged listing sees it too.
	res, err := http.Get(rts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(data), st.ID) {
		t.Fatalf("merged listing misses job %s: %s", st.ID, data)
	}
}

// TestRouterJobScan: a job the router never saw (submitted directly to a
// replica) is still found by scanning the fleet.
func TestRouterJobScan(t *testing.T) {
	_, urls := startFleet(t, 2, nil)
	rt, rts := startRouter(t, urls)
	resp, body := postLocal(t, urls[0], "/v1/jobs", clusterSelectBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("direct submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(rts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("scan poll: %d %s", res.StatusCode, data)
	}
	if _, ok := rt.cs.jobRoute(st.ID); !ok {
		t.Fatal("scan did not remember the discovered owner")
	}
	// An id nobody holds is a clean 404 envelope.
	res, err = http.Get(rts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound || !strings.Contains(string(data), CodeJobNotFound) {
		t.Fatalf("unknown job via router: %d %s", res.StatusCode, data)
	}
}

// TestRouterFleetDown: with every replica unreachable the router answers
// 502 with the peer_unreachable envelope code — the signal the CLI turns
// into an actionable hint.
func TestRouterFleetDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, rts := startRouter(t, []string{deadURL})
	resp, body := postJSON(t, rts.URL+"/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("fleet-down select: %d %s", resp.StatusCode, body)
	}
	var env errorResponse
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodePeerUnreachable {
		t.Fatalf("want peer_unreachable envelope, got %s (err %v)", body, err)
	}
}

// TestRouterUpdateFanout: an update via the router lands on one replica,
// which fans it out — the fleet converges and the response carries the
// peer rows.
func TestRouterUpdateFanout(t *testing.T) {
	srvs, urls := startFleet(t, 2, nil)
	_, rts := startRouter(t, urls)
	resp, body := postJSON(t, rts.URL+"/v1/graphs/twostars/updates", `{"edges":[{"from":0,"to":5,"p":0.9}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update via router: %d %s", resp.StatusCode, body)
	}
	var out GraphUpdateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Peers) != 1 || out.Peers[0].Code != "" {
		t.Fatalf("fanout rows: %+v", out.Peers)
	}
	for i, s := range srvs {
		if _, v, err := s.reg.GetVersioned("twostars"); err != nil || v != out.Version {
			t.Fatalf("replica %d at version %d (err %v), want %d", i, v, err, out.Version)
		}
	}
}

// TestMetricsEndpoint: per-route counters and latency histograms appear
// in the Prometheus text format, alongside the stats counter families.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v1/select", clusterSelectBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", res.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		`fairtcim_http_requests_total{route="POST /v1/select",code="200"} 1`,
		`fairtcim_http_request_duration_seconds_bucket{route="POST /v1/select",le="+Inf"} 1`,
		`fairtcim_http_request_duration_seconds_count{route="POST /v1/select"} 1`,
		"fairtcim_cache_builds_total 1",
		"fairtcim_workers_capacity",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Cluster-mode metrics include the cluster family; router /metrics too.
	_, urls := startFleet(t, 2, nil)
	_, rts := startRouter(t, urls)
	res, err = http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(data), "fairtcim_cluster_peers_known 2") {
		t.Fatalf("router /metrics missing cluster family:\n%s", data)
	}
}

// TestRequestLog: each completed request writes one JSON line with the
// route pattern, status and latency.
func TestRequestLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{RequestLog: &buf})
	if resp, body := postJSON(t, ts.URL+"/v1/select", clusterSelectBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}
	line := strings.TrimSpace(buf.String())
	var rec struct {
		Method string  `json:"method"`
		Route  string  `json:"route"`
		Status int     `json:"status"`
		MS     float64 `json:"ms"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if rec.Method != "POST" || rec.Route != "POST /v1/select" || rec.Status != 200 || rec.MS < 0 {
		t.Fatalf("bad access record: %+v", rec)
	}
}

// TestEffectiveParallelism pins the occupancy scaling: a lone request
// keeps its full parallelism; a saturated pool scales down, never below
// one; and the effective value is reported in the response.
func TestEffectiveParallelism(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4, SolverParallelism: 8})
	// Simulate occupancy directly: effectiveParallelism reads len(sem)
	// as "slots in use including mine".
	cases := []struct{ occupied, want int }{
		{1, 8}, // alone: (8*(4-1+1)+3)/4 = 8
		{2, 6}, // (8*3+3)/4 = 6
		{4, 2}, // full: (8*1+3)/4 = 2
	}
	for _, c := range cases {
		for i := 0; i < c.occupied; i++ {
			s.sem <- struct{}{}
		}
		if got := s.effectiveParallelism(); got != c.want {
			t.Fatalf("occupied=%d: effectiveParallelism=%d, want %d", c.occupied, got, c.want)
		}
		for i := 0; i < c.occupied; i++ {
			<-s.sem
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}
	if out := decodeSolve(t, body); out.EffectiveParallelism != 8 {
		t.Fatalf("effective_parallelism=%d, want 8: %s", out.EffectiveParallelism, body)
	}
}

// syncBuffer is a goroutine-safe bytes buffer for the access-log test.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
