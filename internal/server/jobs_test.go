package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"fairtcim/internal/fairim"
)

// pollJob polls GET /v1/jobs/{id} until the job leaves the active states
// or the deadline passes.
func pollJob(t *testing.T, base, id string, deadline time.Duration) JobStatus {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == JobDone || st.Status == JobFailed {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %q after %v", id, st.Status, deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func submitJob(t *testing.T, base, body string) JobStatus {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.Status != JobQueued && st.Status != JobRunning) {
		t.Fatalf("implausible submission response: %s", raw)
	}
	return st
}

// TestJobLifecycle: a submitted job runs to completion and reports the
// same result the synchronous endpoint computes for the identical spec.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50}`

	st := submitJob(t, ts.URL, body)
	final := pollJob(t, ts.URL, st.ID, 30*time.Second)
	if final.Status != JobDone || final.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", final)
	}
	if final.Picks != 2 || len(final.Result.Seeds) != 2 {
		t.Fatalf("picks=%d seeds=%v, want 2 picks", final.Picks, final.Result.Seeds)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/select", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync select: %s", raw)
	}
	var sync SolveResponse
	if err := json.Unmarshal(raw, &sync); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(final.Result.Seeds) != fmt.Sprint(sync.Seeds) || final.Result.Total != sync.Total {
		t.Fatalf("job result %v/%v differs from sync %v/%v",
			final.Result.Seeds, final.Result.Total, sync.Seeds, sync.Total)
	}
	// The job built the sample; the sync repeat must have hit the cache.
	if !sync.CacheHit {
		t.Error("sync repeat after the job missed the sample cache")
	}
}

// TestJobAccuracyTarget is the acceptance criterion: a job submitted with
// only an (ε,δ) accuracy target — no sample counts — completes a P4 solve
// whose pool size was derived by the stopping rule.
func TestJobAccuracyTarget(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Forward MC (default engine): the Hoeffding-based world count.
	st := submitJob(t, ts.URL,
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"accuracy":{"epsilon":0.2,"delta":0.05}}`)
	final := pollJob(t, ts.URL, st.ID, 60*time.Second)
	if final.Status != JobDone || final.Result == nil {
		t.Fatalf("accuracy job failed: %+v", final)
	}
	want, err := fairim.HoeffdingWorlds(0.2, 0.05, 2, 17, 2)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.ResolvedSamples != want {
		t.Errorf("resolved_samples = %d, want Hoeffding %d", final.Result.ResolvedSamples, want)
	}
	if len(final.Result.Seeds) != 2 {
		t.Errorf("seeds = %v, want 2", final.Result.Seeds)
	}

	// RIS: the geometric-doubling pool sizer.
	st = submitJob(t, ts.URL,
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","accuracy":{"epsilon":0.3,"delta":0.1}}`)
	final = pollJob(t, ts.URL, st.ID, 60*time.Second)
	if final.Status != JobDone || final.Result == nil {
		t.Fatalf("ris accuracy job failed: %+v", final)
	}
	if final.Result.ResolvedRISPerGroup < 256 {
		t.Errorf("resolved_ris_per_group = %d, want >= pilot pool", final.Result.ResolvedRISPerGroup)
	}

	// Identical accuracy request: the stopping-rule-sized sample must be
	// shared through the cache, not re-derived.
	resp, raw := postJSON(t, ts.URL+"/v1/select",
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","accuracy":{"epsilon":0.3,"delta":0.1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm accuracy select: %s", raw)
	}
	var warm SolveResponse
	if err := json.Unmarshal(raw, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("identical accuracy request missed the cache")
	}
	if warm.ResolvedRISPerGroup != final.Result.ResolvedRISPerGroup {
		t.Errorf("cached pool %d differs from job's %d", warm.ResolvedRISPerGroup, final.Result.ResolvedRISPerGroup)
	}
}

// TestJobTraceStreams consumes the SSE endpoint and checks one "pick"
// event arrives per greedy iteration, terminated by a "done" event.
func TestJobTraceStreams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitJob(t, ts.URL,
		`{"graph":"twostars","problem":"p1","budget":2,"tau":3,"engine":"ris","samples":50,"seed":7}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var picks []TraceEvent
	var done bool
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "pick":
				var ev TraceEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad pick payload %q: %v", data, err)
				}
				picks = append(picks, ev)
			case "done":
				done = true
			}
		}
		if done {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if len(picks) != 2 {
		t.Fatalf("streamed %d picks, want 2 (one per greedy iteration)", len(picks))
	}
	for i, ev := range picks {
		if ev.Iteration != i+1 {
			t.Errorf("pick %d has iteration %d", i, ev.Iteration)
		}
		if len(ev.NormGroup) != 2 {
			t.Errorf("pick %d: %d groups in snapshot", i, len(ev.NormGroup))
		}
	}
	// Utilities grow monotonically along the greedy path.
	for i := 1; i < len(picks); i++ {
		if picks[i].Total < picks[i-1].Total {
			t.Errorf("total decreased: %v -> %v", picks[i-1].Total, picks[i].Total)
		}
	}

	final := pollJob(t, ts.URL, st.ID, 10*time.Second)
	if final.Status != JobDone || final.Picks != 2 {
		t.Fatalf("final job state: %+v", final)
	}
}

func TestJobErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown graph", `{"graph":"nope"}`, http.StatusNotFound},
		{"bad body", `{"graph":`, http.StatusBadRequest},
		{"unknown problem", `{"graph":"twostars","problem":"p9"}`, http.StatusBadRequest},
		{"accuracy and samples", `{"graph":"twostars","samples":50,"accuracy":{"epsilon":0.2,"delta":0.05}}`, http.StatusBadRequest},
		{"bad epsilon", `{"graph":"twostars","accuracy":{"epsilon":2,"delta":0.05}}`, http.StatusBadRequest},
		{"bad delta", `{"graph":"twostars","accuracy":{"epsilon":0.2}}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/deadbeef/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}
}

// TestStatsEndpoint: /v1/stats rolls up cache, worker-pool and job
// counters.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 3})
	// One sync solve and one job, so both cache and job counters move.
	resp, raw := postJSON(t, ts.URL+"/v1/select",
		`{"graph":"twostars","problem":"p1","budget":1,"tau":3,"samples":30}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %s", raw)
	}
	st := submitJob(t, ts.URL, `{"graph":"twostars","problem":"p1","budget":1,"tau":3,"samples":30}`)
	pollJob(t, ts.URL, st.ID, 30*time.Second)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers.Capacity != 3 {
		t.Errorf("capacity %d, want 3", stats.Workers.Capacity)
	}
	if stats.Cache.Builds < 1 || stats.Cache.Hits < 1 {
		t.Errorf("cache counters did not move: %+v", stats.Cache)
	}
	if stats.Jobs.Done < 1 {
		t.Errorf("jobs.done = %d, want >= 1", stats.Jobs.Done)
	}
	if stats.Jobs.Queued != 0 || stats.Jobs.Running != 0 {
		t.Errorf("active job counts nonzero after completion: %+v", stats.Jobs)
	}

	// The job listing mirrors the store.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job listing %+v, want the one submitted job", list.Jobs)
	}
	if list.Jobs[0].Result != nil {
		t.Error("listing should omit full results")
	}
}

// TestSyncTraceField: a synchronous request with trace:true carries the
// per-iteration picks inline.
func TestSyncTraceField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/select",
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"samples":40,"trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Trace) != 2 {
		t.Fatalf("trace has %d events, want 2: %s", len(out.Trace), raw)
	}
	if out.Trace[0].Iteration != 1 || out.Trace[0].Seed != out.Seeds[0] {
		t.Errorf("first trace event %+v does not match first seed %d", out.Trace[0], out.Seeds[0])
	}
}
