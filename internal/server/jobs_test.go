package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"fairtcim/internal/fairim"
)

// pollJob polls GET /v1/jobs/{id} until the job leaves the active states
// or the deadline passes.
func pollJob(t *testing.T, base, id string, deadline time.Duration) JobStatus {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if terminal(st.Status) {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %q after %v", id, st.Status, deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func submitJob(t *testing.T, base, body string) JobStatus {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.Status != JobQueued && st.Status != JobRunning) {
		t.Fatalf("implausible submission response: %s", raw)
	}
	return st
}

// TestJobLifecycle: a submitted job runs to completion and reports the
// same result the synchronous endpoint computes for the identical spec.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50}`

	st := submitJob(t, ts.URL, body)
	final := pollJob(t, ts.URL, st.ID, 30*time.Second)
	if final.Status != JobDone || final.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", final)
	}
	if final.Picks != 2 || len(final.Result.Seeds) != 2 {
		t.Fatalf("picks=%d seeds=%v, want 2 picks", final.Picks, final.Result.Seeds)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/select", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync select: %s", raw)
	}
	var sync SolveResponse
	if err := json.Unmarshal(raw, &sync); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(final.Result.Seeds) != fmt.Sprint(sync.Seeds) || final.Result.Total != sync.Total {
		t.Fatalf("job result %v/%v differs from sync %v/%v",
			final.Result.Seeds, final.Result.Total, sync.Seeds, sync.Total)
	}
	// The job built the sample; the sync repeat must have hit the cache.
	if !sync.CacheHit {
		t.Error("sync repeat after the job missed the sample cache")
	}
}

// TestJobAccuracyTarget is the acceptance criterion: a job submitted with
// only an (ε,δ) accuracy target — no sample counts — completes a P4 solve
// whose pool size was derived by the stopping rule.
func TestJobAccuracyTarget(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Forward MC (default engine): the Hoeffding-based world count.
	st := submitJob(t, ts.URL,
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"accuracy":{"epsilon":0.2,"delta":0.05}}`)
	final := pollJob(t, ts.URL, st.ID, 60*time.Second)
	if final.Status != JobDone || final.Result == nil {
		t.Fatalf("accuracy job failed: %+v", final)
	}
	want, err := fairim.HoeffdingWorlds(0.2, 0.05, 2, 17, 2)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.ResolvedSamples != want {
		t.Errorf("resolved_samples = %d, want Hoeffding %d", final.Result.ResolvedSamples, want)
	}
	if len(final.Result.Seeds) != 2 {
		t.Errorf("seeds = %v, want 2", final.Result.Seeds)
	}

	// RIS: the geometric-doubling pool sizer.
	st = submitJob(t, ts.URL,
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","accuracy":{"epsilon":0.3,"delta":0.1}}`)
	final = pollJob(t, ts.URL, st.ID, 60*time.Second)
	if final.Status != JobDone || final.Result == nil {
		t.Fatalf("ris accuracy job failed: %+v", final)
	}
	if final.Result.ResolvedRISPerGroup < 256 {
		t.Errorf("resolved_ris_per_group = %d, want >= pilot pool", final.Result.ResolvedRISPerGroup)
	}

	// Identical accuracy request: the stopping-rule-sized sample must be
	// shared through the cache, not re-derived.
	resp, raw := postJSON(t, ts.URL+"/v1/select",
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","accuracy":{"epsilon":0.3,"delta":0.1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm accuracy select: %s", raw)
	}
	var warm SolveResponse
	if err := json.Unmarshal(raw, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("identical accuracy request missed the cache")
	}
	if warm.ResolvedRISPerGroup != final.Result.ResolvedRISPerGroup {
		t.Errorf("cached pool %d differs from job's %d", warm.ResolvedRISPerGroup, final.Result.ResolvedRISPerGroup)
	}
}

// TestJobTraceStreams consumes the SSE endpoint and checks one "pick"
// event arrives per greedy iteration, terminated by a "done" event.
func TestJobTraceStreams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitJob(t, ts.URL,
		`{"graph":"twostars","problem":"p1","budget":2,"tau":3,"engine":"ris","samples":50,"seed":7}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var picks []TraceEvent
	var done bool
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "pick":
				var ev TraceEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad pick payload %q: %v", data, err)
				}
				picks = append(picks, ev)
			case "done":
				done = true
			}
		}
		if done {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if len(picks) != 2 {
		t.Fatalf("streamed %d picks, want 2 (one per greedy iteration)", len(picks))
	}
	for i, ev := range picks {
		if ev.Iteration != i+1 {
			t.Errorf("pick %d has iteration %d", i, ev.Iteration)
		}
		if len(ev.NormGroup) != 2 {
			t.Errorf("pick %d: %d groups in snapshot", i, len(ev.NormGroup))
		}
	}
	// Utilities grow monotonically along the greedy path.
	for i := 1; i < len(picks); i++ {
		if picks[i].Total < picks[i-1].Total {
			t.Errorf("total decreased: %v -> %v", picks[i-1].Total, picks[i].Total)
		}
	}

	final := pollJob(t, ts.URL, st.ID, 10*time.Second)
	if final.Status != JobDone || final.Picks != 2 {
		t.Fatalf("final job state: %+v", final)
	}
}

func TestJobErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown graph", `{"graph":"nope"}`, http.StatusNotFound},
		{"bad body", `{"graph":`, http.StatusBadRequest},
		{"unknown problem", `{"graph":"twostars","problem":"p9"}`, http.StatusBadRequest},
		{"accuracy and samples", `{"graph":"twostars","samples":50,"accuracy":{"epsilon":0.2,"delta":0.05}}`, http.StatusBadRequest},
		{"bad epsilon", `{"graph":"twostars","accuracy":{"epsilon":2,"delta":0.05}}`, http.StatusBadRequest},
		{"bad delta", `{"graph":"twostars","accuracy":{"epsilon":0.2}}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/deadbeef/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}
}

// TestStatsEndpoint: /v1/stats rolls up cache, worker-pool and job
// counters.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 3})
	// One sync solve and one job, so both cache and job counters move.
	resp, raw := postJSON(t, ts.URL+"/v1/select",
		`{"graph":"twostars","problem":"p1","budget":1,"tau":3,"samples":30}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %s", raw)
	}
	st := submitJob(t, ts.URL, `{"graph":"twostars","problem":"p1","budget":1,"tau":3,"samples":30}`)
	pollJob(t, ts.URL, st.ID, 30*time.Second)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers.Capacity != 3 {
		t.Errorf("capacity %d, want 3", stats.Workers.Capacity)
	}
	if stats.Cache.Builds < 1 || stats.Cache.Hits < 1 {
		t.Errorf("cache counters did not move: %+v", stats.Cache)
	}
	if stats.Jobs.Done < 1 {
		t.Errorf("jobs.done = %d, want >= 1", stats.Jobs.Done)
	}
	if stats.Jobs.Queued != 0 || stats.Jobs.Running != 0 {
		t.Errorf("active job counts nonzero after completion: %+v", stats.Jobs)
	}

	// The job listing mirrors the store.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job listing %+v, want the one submitted job", list.Jobs)
	}
	if list.Jobs[0].Result != nil {
		t.Error("listing should omit full results")
	}
}

// TestSyncTraceField: a synchronous request with trace:true carries the
// per-iteration picks inline.
func TestSyncTraceField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/select",
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"samples":40,"trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Trace) != 2 {
		t.Fatalf("trace has %d events, want 2: %s", len(out.Trace), raw)
	}
	if out.Trace[0].Iteration != 1 || out.Trace[0].Seed != out.Seeds[0] {
		t.Errorf("first trace event %+v does not match first seed %d", out.Trace[0], out.Seeds[0])
	}
}

// TestJobCancelQueued: DELETE on a job still waiting for a worker slot
// aborts it before it ever acquires one — deterministically, by holding
// the single slot while the job is queued.
func TestJobCancelQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	s.sem <- struct{}{} // occupy the only worker slot
	released := false
	defer func() {
		if !released {
			<-s.sem
		}
	}()

	st := submitJob(t, ts.URL, `{"graph":"twostars","problem":"p1","budget":2,"tau":3,"samples":30}`)
	if st.Status != JobQueued {
		t.Fatalf("job with a saturated pool reported %q, want queued", st.Status)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d, want 202", resp.StatusCode)
	}

	final := pollJob(t, ts.URL, st.ID, 10*time.Second)
	if final.Status != JobCanceled {
		t.Fatalf("job ended %q, want canceled", final.Status)
	}
	if final.Picks != 0 {
		t.Errorf("canceled-while-queued job made %d picks", final.Picks)
	}
	// The slot was never consumed by the canceled job.
	<-s.sem
	released = true

	stats := s.Stats()
	if stats.Jobs.Canceled != 1 || stats.Jobs.Queued != 0 || stats.Jobs.Running != 0 {
		t.Errorf("job stats after cancel: %+v", stats.Jobs)
	}

	// Cancelling a finished job conflicts.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("second cancel status %d, want 409", resp.StatusCode)
	}

	// Unknown ids are 404.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/deadbeef", nil)
	resp, err = http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-id cancel status %d, want 404", resp.StatusCode)
	}
}

// TestSolveCancelMidRun drives the server solve pipeline with a context
// cancelled from the OnIteration callback — exactly between greedy picks,
// the seam DELETE /v1/jobs/{id} relies on — and checks the cancellation
// comes back as such, not as a capacity 503 or a finished solve.
func TestSolveCancelMidRun(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	g, err := s.reg.Get("twostars")
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{Graph: "twostars", Problem: "p1", Budget: 5, Engine: "ris", Samples: 50}
	spec, err := req.toSpec()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec.Cancel = ctx.Done()
	picks := 0
	_, err = s.solve(ctx, blockingGate{s}, "twostars", 1, g, spec, func(fairim.IterationStat) {
		picks++
		if picks == 1 {
			cancel()
		}
	})
	if !errors.Is(err, fairim.ErrCanceled) {
		t.Fatalf("err = %v, want fairim.ErrCanceled", err)
	}
	if picks != 1 {
		t.Fatalf("solve made %d picks after the cancel, want exactly 1", picks)
	}
	// The worker slot was released on the error path.
	if len(s.sem) != 0 {
		t.Fatalf("%d worker slots leaked", len(s.sem))
	}
}

// TestJobEvictionOnFinish: finished history above the retention bound is
// trimmed when jobs finish, not only on the next submit, and the active
// cap is tracked incrementally across finishes.
func TestJobEvictionOnFinish(t *testing.T) {
	st := newJobStore(2, 3, nil)
	finish := func(j *job) {
		j.finish(&SolveResponse{}, nil)
		st.noteFinished(j)
	}
	// The active cap binds...
	j1, err := st.add("g", "P1")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := st.add("g", "P1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.add("g", "P1"); err == nil {
		t.Fatal("third active job accepted over maxActive=2")
	}
	// ...and frees up as jobs finish, without any submit in between.
	finish(j1)
	finish(j2)
	for i := 0; i < 3; i++ {
		j, err := st.add("g", "P1")
		if err != nil {
			t.Fatalf("add %d after finishes: %v", i, err)
		}
		finish(j)
	}
	// 5 finished jobs, retention 3: eviction happened on noteFinished.
	st.mu.Lock()
	kept := len(st.order)
	st.mu.Unlock()
	if kept != 3 {
		t.Fatalf("%d finished jobs retained, want 3", kept)
	}
	if s := st.stats(); s.Done != 5 {
		t.Errorf("cumulative done = %d, want 5 (eviction must not erase counters)", s.Done)
	}
	// The oldest jobs are the evicted ones.
	if _, ok := st.get(j1.id); ok {
		t.Error("oldest finished job still resident")
	}
}
