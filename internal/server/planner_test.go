package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestBatchSelectEndpoint drives POST /v1/select/batch end to end:
// compatible requests coalesce onto one shared run and one sample
// build, answers are positional and bit-identical to the per-request
// endpoint, and a bad spec or unknown graph fails only its own item.
func TestBatchSelectEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/select/batch", `{"requests":[
		{"graph":"twostars","problem":"p1","budget":1,"tau":3,"engine":"ris","samples":50},
		{"graph":"twostars","problem":"p1","budget":2,"tau":3,"engine":"ris","samples":50},
		{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50},
		{"graph":"twostars","problem":"p9"},
		{"graph":"nowhere","problem":"p1","budget":1}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchSolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if len(out.Items) != 5 {
		t.Fatalf("%d items for 5 requests: %s", len(out.Items), body)
	}
	// The two p1 specs share a run; p4 differs in objective and runs alone.
	if out.PlannerGroups != 1 || out.PlannerSingletons != 1 || out.Coalesced != 2 {
		t.Fatalf("planner tallies groups=%d singletons=%d coalesced=%d, want 1/1/2: %s",
			out.PlannerGroups, out.PlannerSingletons, out.Coalesced, body)
	}
	for i := 0; i < 3; i++ {
		it := out.Items[i]
		if it.Error != nil || it.Response == nil {
			t.Fatalf("item %d failed: %+v", i, it.Error)
		}
		if it.Response.GraphVersion != out.Items[0].Response.GraphVersion {
			t.Fatalf("items mix graph versions: %s", body)
		}
	}
	if got := len(out.Items[0].Response.Seeds); got != 1 {
		t.Fatalf("item 0: %d seeds, want its own budget 1", got)
	}
	if got := out.Items[1].Response.Seeds; len(got) != 2 || got[0] != 0 || got[1] != 11 {
		t.Fatalf("item 1 seeds = %v, want the two hubs [0 11]", got)
	}
	if out.Items[3].Error == nil || out.Items[3].Error.Code != CodeBadSpec {
		t.Fatalf("bad problem not rejected per-item: %+v", out.Items[3])
	}
	if out.Items[4].Error == nil || out.Items[4].Error.Code != CodeGraphNotFound {
		t.Fatalf("unknown graph not rejected per-item: %+v", out.Items[4])
	}
	// All three solvable specs share one sample key → exactly one build.
	if st := s.CacheStats(); st.Builds != 1 {
		t.Fatalf("cache stats %+v, want exactly 1 build for the whole batch", st)
	}
	if st := s.Stats().Planner; st.Batches != 1 || st.Groups != 1 || st.Singletons != 1 || st.Coalesced != 2 {
		t.Fatalf("/v1/stats planner counters %+v", st)
	}

	// Parity with the per-request endpoint, spec by spec.
	singles := []string{
		`{"graph":"twostars","problem":"p1","budget":1,"tau":3,"engine":"ris","samples":50}`,
		`{"graph":"twostars","problem":"p1","budget":2,"tau":3,"engine":"ris","samples":50}`,
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50}`,
	}
	for i, req := range singles {
		resp, body := postJSON(t, ts.URL+"/v1/select", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single %d status %d: %s", i, resp.StatusCode, body)
		}
		var single SolveResponse
		if err := json.Unmarshal(body, &single); err != nil {
			t.Fatal(err)
		}
		batched := out.Items[i].Response
		if len(single.Seeds) != len(batched.Seeds) {
			t.Fatalf("spec %d: %d vs %d seeds", i, len(single.Seeds), len(batched.Seeds))
		}
		for j := range single.Seeds {
			if single.Seeds[j] != batched.Seeds[j] {
				t.Fatalf("spec %d: seeds %v != %v", i, single.Seeds, batched.Seeds)
			}
		}
		if single.Total != batched.Total || single.Disparity != batched.Disparity || single.NormTotal != batched.NormTotal {
			t.Fatalf("spec %d: utilities diverge between batch and single path", i)
		}
	}
}

// TestBatchSelectWarmAcrossBatches checks the planner reads and feeds
// the prefix memo: a later batch extending an earlier batch's budget
// replays the memoized seeds (warm_seeds echoes the reuse) with seeds
// identical to a cold run.
func TestBatchSelectWarmAcrossBatches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	first := `{"requests":[{"graph":"twostars","problem":"p4","budget":1,"tau":3,"engine":"ris","samples":50}]}`
	resp, body := postJSON(t, ts.URL+"/v1/select/batch", first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: %d %s", resp.StatusCode, body)
	}
	second := `{"requests":[
		{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50},
		{"graph":"twostars","problem":"p4","budget":1,"tau":3,"engine":"ris","samples":50}
	]}`
	resp, body = postJSON(t, ts.URL+"/v1/select/batch", second)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second batch: %d %s", resp.StatusCode, body)
	}
	var out BatchSolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Coalesced != 2 {
		t.Fatalf("second batch did not coalesce: %s", body)
	}
	ext := out.Items[0].Response
	if ext == nil || ext.WarmSeeds != 1 {
		t.Fatalf("extension did not consume the memoized prefix: %s", body)
	}
	if len(ext.Seeds) != 2 || ext.Seeds[0] != 0 || ext.Seeds[1] != 11 {
		t.Fatalf("warm extension seeds = %v, want [0 11]", ext.Seeds)
	}
	if rep := out.Items[1].Response; rep == nil || rep.WarmSeeds != 1 || len(rep.Seeds) != 1 {
		t.Fatalf("budget-1 repeat should be a pure replay: %s", body)
	}
}

// TestCoalesceWindowBatchesSelects checks the transparent batching
// path: with a coalescing window configured, concurrent /v1/select
// requests for one graph land in one shared planner batch and still
// each receive their own correct response.
func TestCoalesceWindowBatchesSelects(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceWindow: 300 * time.Millisecond})
	var wg sync.WaitGroup
	responses := make([]SolveResponse, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"graph":"twostars","problem":"p1","budget":%d,"tau":3,"engine":"ris","samples":50}`, i%2+1)
			resp, raw := postJSON(t, ts.URL+"/v1/select", body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			errs[i] = json.Unmarshal(raw, &responses[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want := i%2 + 1
		if len(responses[i].Seeds) != want {
			t.Fatalf("request %d got %d seeds, want %d", i, len(responses[i].Seeds), want)
		}
		if responses[i].Seeds[0] != 0 {
			t.Fatalf("request %d picked %v, want hub 0 first", i, responses[i].Seeds)
		}
	}
	st := s.Stats().Planner
	if st.Batches != 1 || st.Coalesced != 3 {
		t.Fatalf("planner stats %+v, want all 3 selects coalesced into 1 window batch", st)
	}
	if builds := s.CacheStats().Builds; builds != 1 {
		t.Fatalf("%d sample builds, want 1 shared build", builds)
	}
}

// TestBatchUpdateRaceSoak drives concurrent batched solves against
// graph-update churn. Run with -race. Each batch must see exactly one
// graph snapshot: every item reports the same graph_version, and no
// solve errors (torn snapshots, mixed-version estimators) surface.
func TestBatchUpdateRaceSoak(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	const (
		clients    = 4
		iterations = 6
		updates    = 12
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for u := 0; u < updates; u++ {
			p := 0.05 + float64(u%3)*0.01
			body := fmt.Sprintf(`{"edges":[{"from":1,"to":0,"p":%.2f}]}`, p)
			resp, raw := postJSON(t, ts.URL+"/v1/graphs/twostars/updates", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("update %d: status %d: %s", u, resp.StatusCode, raw)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	batch := `{"requests":[
		{"graph":"twostars","problem":"p1","budget":1,"tau":3,"engine":"ris","samples":40},
		{"graph":"twostars","problem":"p1","budget":2,"tau":3,"engine":"ris","samples":40},
		{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":40}
	]}`
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				resp, raw := postJSON(t, ts.URL+"/v1/select/batch", batch)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d: %s", resp.StatusCode, raw)
					return
				}
				var out BatchSolveResponse
				if err := json.Unmarshal(raw, &out); err != nil {
					t.Error(err)
					return
				}
				version := uint64(0)
				for i, item := range out.Items {
					if item.Error != nil {
						t.Errorf("item %d errored under churn: %+v", i, item.Error)
						return
					}
					if i == 0 {
						version = item.Response.GraphVersion
					} else if item.Response.GraphVersion != version {
						t.Errorf("batch mixed graph versions %d and %d", version, item.Response.GraphVersion)
						return
					}
					if want := []int{1, 2, 2}[i]; len(item.Response.Seeds) != want {
						t.Errorf("item %d: %d seeds, want %d", i, len(item.Response.Seeds), want)
						return
					}
				}
				select {
				case <-stop:
					// Updates are done; a couple more reads are enough.
					if it >= iterations-2 {
						return
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
}
