package server

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"fairtcim/internal/cascade"
	"fairtcim/internal/cluster"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

// Sharded serving: when the daemon runs with peers, every replica builds
// the same consistent-hash ring over the fleet and owns a slice of the
// (graph, spec-key) space. A request landing on a non-owner is proxied to
// the owner (proxy.go); a cache miss for a key this replica owns first
// asks the peers for the warm frame before sampling (fetchSample below);
// and GET /v1/sketches/{key} is the transfer endpoint the fetch side
// talks to — it streams the exact internal/persist frame a state-dir
// save would write, so the wire format and the disk format are one.

// Cross-replica request headers. A proxied request is always served
// locally by the receiver (the loop guard that makes mismatched member
// URL spellings degrade to one extra hop instead of a ping-pong loop); a
// fanned-out graph update is applied locally and never re-fanned.
const (
	proxiedHeader = "X-Fairtcim-Proxied"
	fanoutHeader  = "X-Fairtcim-Fanout"
)

// wireKey encodes a sampleKey as its cluster-wide sketch name: the graph
// name (query-escaped, with '~' escaped by hand since it is both our
// separator and a character QueryEscape leaves alone) followed by every
// other key field in a fixed order. Two replicas holding the same graph
// under the same name derive the same wire key for the same request, so
// a fetch asks for exactly the frame the peer's own cache is keyed by.
func (k sampleKey) wireKey() string {
	name := strings.ReplaceAll(url.QueryEscape(k.graph), "~", "%7E")
	evalOnly := 0
	if k.evalOnly {
		evalOnly = 1
	}
	return fmt.Sprintf("%s~%d~%d~%d~%d~%d~%d~%d~%d~%d~%d",
		name, k.version, int(k.engine), int(k.model), k.tau, k.budget, k.seed,
		k.epsBits, k.deltaBits, k.sizingK, evalOnly)
}

// parseWireKey inverts wireKey. Anything malformed is a client error on
// the transfer endpoint — a well-behaved replica never sends one.
func parseWireKey(s string) (sampleKey, error) {
	var k sampleKey
	parts := strings.Split(s, "~")
	if len(parts) != 11 {
		return k, fmt.Errorf("sketch key has %d fields, want 11", len(parts))
	}
	name, err := url.QueryUnescape(parts[0])
	if err != nil {
		return k, fmt.Errorf("bad graph name: %v", err)
	}
	k.graph = name
	if k.version, err = strconv.ParseUint(parts[1], 10, 64); err != nil {
		return k, fmt.Errorf("bad version: %v", err)
	}
	engine, err := strconv.Atoi(parts[2])
	if err != nil {
		return k, fmt.Errorf("bad engine: %v", err)
	}
	k.engine = fairim.Engine(engine)
	if k.engine != fairim.EngineForwardMC && k.engine != fairim.EngineRIS {
		return k, fmt.Errorf("unknown engine %d", engine)
	}
	model, err := strconv.Atoi(parts[3])
	if err != nil {
		return k, fmt.Errorf("bad model: %v", err)
	}
	k.model = cascade.Model(model)
	if k.model != cascade.IC && k.model != cascade.LT {
		return k, fmt.Errorf("unknown model %d", model)
	}
	tau, err := strconv.ParseInt(parts[4], 10, 32)
	if err != nil {
		return k, fmt.Errorf("bad tau: %v", err)
	}
	k.tau = int32(tau)
	if k.budget, err = strconv.Atoi(parts[5]); err != nil {
		return k, fmt.Errorf("bad budget: %v", err)
	}
	if k.seed, err = strconv.ParseInt(parts[6], 10, 64); err != nil {
		return k, fmt.Errorf("bad seed: %v", err)
	}
	if k.epsBits, err = strconv.ParseUint(parts[7], 10, 64); err != nil {
		return k, fmt.Errorf("bad epsilon bits: %v", err)
	}
	if k.deltaBits, err = strconv.ParseUint(parts[8], 10, 64); err != nil {
		return k, fmt.Errorf("bad delta bits: %v", err)
	}
	if k.sizingK, err = strconv.Atoi(parts[9]); err != nil {
		return k, fmt.Errorf("bad sizing k: %v", err)
	}
	switch parts[10] {
	case "0":
	case "1":
		k.evalOnly = true
	default:
		return k, fmt.Errorf("bad eval-only flag %q", parts[10])
	}
	return k, nil
}

// fpMemo memoizes persist.GraphFingerprint per graph snapshot — the hash
// walks the full adjacency and one snapshot backs many keys. Same memo
// policy as the diskStore's (bounded, flushed wholesale over fpMemoCap so
// superseded dynamic-graph snapshots cannot pin memory through it).
type fpMemo struct {
	mu  sync.Mutex
	fps map[*graph.Graph]uint64
}

func (m *fpMemo) fingerprint(g *graph.Graph) uint64 {
	m.mu.Lock()
	if m.fps == nil {
		m.fps = map[*graph.Graph]uint64{}
	}
	fp, ok := m.fps[g]
	m.mu.Unlock()
	if ok {
		return fp
	}
	fp = persist.GraphFingerprint(g)
	m.mu.Lock()
	if len(m.fps) >= fpMemoCap {
		m.fps = map[*graph.Graph]uint64{}
	}
	m.fps[g] = fp
	m.mu.Unlock()
	return fp
}

// jobRouteCap bounds the proxied-job route memory; beyond it the oldest
// routes are forgotten (their jobs are long finished or findable by
// asking the owner directly).
const jobRouteCap = 4096

// clusterState ties the cluster membership into the serving layer: the
// ring/health/counter core from internal/cluster, a fingerprint memo for
// framing sketches, and the memory of which peer owns which proxied job.
type clusterState struct {
	c    *cluster.Cluster
	self string
	fp   *fpMemo

	routeMu   sync.Mutex
	jobRoutes map[string]string
	jobOrder  []string
}

func newClusterState(c *cluster.Cluster, fp *fpMemo) *clusterState {
	return &clusterState{c: c, self: c.Self(), fp: fp, jobRoutes: map[string]string{}}
}

// rememberJob records that a proxied job submission landed on peer, so
// later GET/DELETE/trace calls for that id at this replica forward there.
func (cs *clusterState) rememberJob(id, peer string) {
	cs.routeMu.Lock()
	if _, dup := cs.jobRoutes[id]; !dup {
		cs.jobOrder = append(cs.jobOrder, id)
		if len(cs.jobOrder) > jobRouteCap {
			delete(cs.jobRoutes, cs.jobOrder[0])
			cs.jobOrder = cs.jobOrder[1:]
		}
	}
	cs.jobRoutes[id] = peer
	cs.routeMu.Unlock()
}

func (cs *clusterState) jobRoute(id string) (string, bool) {
	cs.routeMu.Lock()
	peer, ok := cs.jobRoutes[id]
	cs.routeMu.Unlock()
	return peer, ok
}

// fetchSample implements the cache's peerSource hook: on a memory+disk
// miss, ask the fleet for the warm frame before sampling. Peers are tried
// in ring order from the key (the owner first — routing concentrates the
// key's traffic there, so that is where the sketch is warmest). Every
// received frame is validated exactly like a state file — persist frame
// checks against this replica's own graph fingerprint, then the decoded
// artifact against the key's parameters — and anything unusable bumps
// peer_fetch_errors and degrades to the next peer, then to a cold build.
// A transferred sketch can make a request faster, never wrong.
func (cs *clusterState) fetchSample(ctx context.Context, key sampleKey, g *graph.Graph) *sample {
	wire := key.wireKey()
	want := frameMeta(key, cs.fp.fingerprint(g))
	for _, peer := range cs.c.FetchOrder(wire) {
		if ctx.Err() != nil {
			return nil
		}
		data, err := cs.c.FetchSketch(ctx, peer, wire)
		if err != nil {
			if err != cluster.ErrNotFound && ctx.Err() == nil {
				cs.c.PeerFetchErrors.Add(1)
			}
			continue
		}
		payload, version, err := persist.DecodeRange(data, want, minCodecVersion(key))
		if err != nil {
			cs.c.PeerFetchErrors.Add(1)
			continue
		}
		smp, err := decodeSamplePayload(key, g, payload, version)
		if err != nil {
			cs.c.PeerFetchErrors.Add(1)
			continue
		}
		cs.c.PeerFetches.Add(1)
		cs.c.PeerFetchBytes.Add(int64(len(data)))
		return smp
	}
	return nil
}

// handleSketchGet is GET /v1/sketches/{key}: stream the persist frame
// for a warm sample. Sources, in order: a ready cache entry (framed from
// memory — against the snapshot the sample was actually built from, so a
// version-keyed entry stays servable after the registry moved on), then
// the raw state-dir file verbatim. The endpoint never builds anything: a
// replica that lacks the frame answers 404 and the fetcher moves on.
func (s *Server) handleSketchGet(w http.ResponseWriter, r *http.Request) {
	key, err := parseWireKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad sketch key: %v", err)
		return
	}
	if smp := s.cache.peek(key); smp != nil {
		var payload []byte
		if smp.col != nil {
			payload = smp.col.EncodePayload()
		} else {
			payload = cascade.EncodeWorlds(smp.worlds)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_ = persist.EncodeTo(w, frameMeta(key, s.fpm.fingerprint(smp.g)), payload)
		return
	}
	if s.cache.disk != nil {
		if raw, ok := s.cache.disk.rawFrame(key); ok {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(raw)
			return
		}
	}
	writeError(w, http.StatusNotFound, CodeSketchNotFound, "no warm sketch for this key")
}

// RunClusterProbes drives periodic peer health probes until ctx ends,
// ejecting unreachable replicas from routing and readmitting them when
// they answer /healthz again. No-op without peers; the daemon runs it on
// its own goroutine for the process lifetime.
func (s *Server) RunClusterProbes(ctx context.Context) {
	if s.cluster == nil {
		return
	}
	s.cluster.c.Monitor().Run(ctx)
}

// ClusterStats snapshots the cluster counters; nil without peers.
func (s *Server) ClusterStats() *cluster.Stats {
	if s.cluster == nil {
		return nil
	}
	st := s.cluster.c.Stats()
	return &st
}
