package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sync"

	"fairtcim/internal/cascade"
	"fairtcim/internal/cluster"
	"fairtcim/internal/fairim"
)

// Peer-aware request routing. A replica that does not own a request's
// route key proxies it to the owner (so the owner's cache concentrates
// that key's sketch) with bounded failover: a transport failure marks the
// peer down, counts a failover, and moves to the next ring candidate —
// reaching self means "serve locally", which is where every request ends
// up when the whole fleet but this replica is gone. HTTP-level responses
// from the owner (409, 503, ...) pass through verbatim: an answer is an
// answer, not a reason to ask someone else.

// maxBodyBytes bounds a buffered request body. Bodies are buffered so
// they can be replayed against a failover candidate; solve and update
// bodies are small JSON, so the bound only stops abuse.
const maxBodyBytes = 64 << 20

// readBody buffers the request body for decode + proxy replay.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading request body: %v", err)
		return nil, false
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "request body exceeds %d bytes", maxBodyBytes)
		return nil, false
	}
	return body, true
}

// decodeStrict unmarshals a buffered body with unknown fields rejected,
// writing the bad_request envelope on failure.
func decodeStrict(w http.ResponseWriter, body []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// routeKeyFor maps a decoded request onto its cluster routing key. The
// key mirrors sampleKeyFor's normalization (RIS pins the model, forward
// MC drops τ) so requests that would share a sketch route to the same
// owner — but needs no graph object and no registry version: replicas
// with skewed versions must still agree on who owns a request, and a
// router holds no graphs at all.
func routeKeyFor(graphName string, spec fairim.ProblemSpec) string {
	engine, model, tau := spec.Engine, spec.Model, spec.Tau
	if engine == fairim.EngineRIS {
		model = cascade.IC
	} else {
		tau = 0
	}
	var eps, delta uint64
	if acc := spec.Sampling.Accuracy; acc != nil {
		eps = math.Float64bits(acc.Epsilon)
		delta = math.Float64bits(acc.Delta)
	}
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d|%d|%d",
		graphName, int(engine), int(model), tau,
		spec.Sampling.Samples, spec.Sampling.RISPerGroup, spec.Seed, eps, delta)
}

func proxyHeader() http.Header {
	return http.Header{proxiedHeader: []string{"1"}}
}

// routeCandidates decides whether a request must leave this replica:
// nil means serve locally (no cluster, already proxied once, or this
// replica owns the key); otherwise the full ring-failover candidate list.
func (s *Server) routeCandidates(r *http.Request, key string) []string {
	if s.cluster == nil || r.Header.Get(proxiedHeader) != "" {
		return nil
	}
	cands := s.cluster.c.Candidates(key)
	if len(cands) == 0 || cands[0] == s.cluster.self {
		return nil
	}
	return cands
}

// proxy walks candidates in ring order: a live peer gets the request
// replayed and its response streamed back verbatim; a transport failure
// counts a failover and moves on; reaching self returns false — the
// caller serves locally. observe, when non-nil, sees successful responses
// buffered (peer, status, body) before they are written — the job-submit
// path uses it to remember which peer owns the new job. Returns true once
// a response has been written. Shared by the peer-aware replica (whose
// self sits on the ring) and the standalone router (whose self is empty
// and therefore never matches — exhausting the list is its 502).
func (cs *clusterState) proxy(w http.ResponseWriter, r *http.Request, cands []string, path string, body []byte, observe func(peer string, status int, data []byte)) bool {
	for _, cand := range cands {
		if cand == cs.self {
			return false
		}
		resp, err := cs.c.Forward(r.Context(), cand, r.Method, path, body, proxyHeader())
		if err != nil {
			if r.Context().Err() != nil {
				// The client is gone; nobody is owed a response.
				return true
			}
			cs.c.Failovers.Add(1)
			continue
		}
		cs.c.Proxied.Add(1)
		if observe == nil {
			cluster.CopyResponse(w, resp)
			return true
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if rerr == nil {
			observe(cand, resp.StatusCode, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(data)
		return true
	}
	// Only a ring without self (a pure router) can exhaust its candidates.
	writeError(w, http.StatusBadGateway, CodePeerUnreachable, "no reachable replica owns this request")
	return true
}

func (s *Server) proxyWithFailover(w http.ResponseWriter, r *http.Request, cands []string, path string, body []byte, observe func(peer string, status int, data []byte)) bool {
	return s.cluster.proxy(w, r, cands, path, body, observe)
}

// batchRouteKey returns the common route key of a batch when every
// request decodes and routes identically — the only case a batch is
// proxied as a unit. Mixed batches are served locally: correctness never
// depends on routing, only cache affinity does.
func batchRouteKey(reqs []SolveRequest) (string, bool) {
	key := ""
	for i, sub := range reqs {
		spec, err := sub.toSpec()
		if err != nil {
			return "", false
		}
		k := routeKeyFor(sub.Graph, spec)
		if i == 0 {
			key = k
		} else if k != key {
			return "", false
		}
	}
	return key, key != ""
}

// forwardJobRequest forwards a job GET/DELETE/trace for an id this
// replica does not hold but remembers proxying to a peer. No failover:
// the job state lives only on that peer, so an unreachable owner is a
// peer_unreachable error, not someone else's answer.
func (s *Server) forwardJobRequest(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.cluster == nil || r.Header.Get(proxiedHeader) != "" {
		return false
	}
	return s.cluster.forwardJob(w, r, id)
}

// forwardJob is the shared forwarding core behind forwardJobRequest and
// the router's job handlers: look up the remembered owner and relay.
func (cs *clusterState) forwardJob(w http.ResponseWriter, r *http.Request, id string) bool {
	peer, ok := cs.jobRoute(id)
	if !ok {
		return false
	}
	resp, err := cs.c.Forward(r.Context(), peer, r.Method, r.URL.Path, nil, proxyHeader())
	if err != nil {
		if r.Context().Err() != nil {
			return true
		}
		cs.c.Failovers.Add(1)
		writeError(w, http.StatusBadGateway, CodePeerUnreachable, "job %q lives on an unreachable replica", id)
		return true
	}
	cs.c.Proxied.Add(1)
	cluster.CopyResponse(w, resp)
	return true
}

// PeerUpdateResult is one peer's outcome of a graph-update fanout. A
// converged peer reports its new version (equal to the origin's when the
// fleet was in sync); a failed one carries the peer's own error envelope
// code — version_conflict marks a replica whose graph had drifted.
type PeerUpdateResult struct {
	Peer    string `json:"peer"`
	Version uint64 `json:"version,omitempty"`
	Code    string `json:"code,omitempty"`
	Error   string `json:"error,omitempty"`
}

// fanoutUpdate forwards an applied delta batch to every configured peer
// with expect_version pinned to the version this replica just moved
// from, so each peer either converges to the same new version or
// surfaces version_conflict — never silently diverges. Down peers are
// attempted too (their error rows are the operator's signal); the fanout
// header stops receivers from re-fanning.
func (s *Server) fanoutUpdate(ctx context.Context, name string, expect uint64, req GraphUpdateRequest) []PeerUpdateResult {
	peers := s.cluster.c.Peers()
	if len(peers) == 0 {
		return nil
	}
	s.cluster.c.UpdateFanouts.Add(1)
	req.ExpectVersion = expect
	body, err := json.Marshal(req)
	if err != nil {
		return nil
	}
	path := "/v1/graphs/" + url.PathEscape(name) + "/updates"
	out := make([]PeerUpdateResult, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			out[i] = s.pushUpdate(ctx, peer, path, body)
		}(i, peer)
	}
	wg.Wait()
	return out
}

// pushUpdate delivers one fanned-out batch to one peer and decodes the
// outcome for the origin's response.
func (s *Server) pushUpdate(ctx context.Context, peer, path string, body []byte) PeerUpdateResult {
	res := PeerUpdateResult{Peer: peer}
	hdr := proxyHeader()
	hdr.Set(fanoutHeader, "1")
	resp, err := s.cluster.c.Forward(ctx, peer, http.MethodPost, path, body, hdr)
	if err != nil {
		res.Code = CodePeerUnreachable
		res.Error = err.Error()
		return res
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusOK {
		var ur GraphUpdateResponse
		if json.Unmarshal(data, &ur) == nil {
			res.Version = ur.Version
		}
		return res
	}
	var env errorResponse
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		res.Code, res.Error = env.Error.Code, env.Error.Message
	} else {
		res.Code, res.Error = CodeInternal, fmt.Sprintf("HTTP %d", resp.StatusCode)
	}
	return res
}
