package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"fairtcim/internal/cascade"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
	"fairtcim/internal/ris"
)

// diskStore is the cache's write-through backing: one persist-framed file
// per sampleKey under <state-dir>/sketches. Loads and saves happen inside
// the cache's singleflight, so each key touches disk at most once per
// process no matter the request fan-in. A file that is missing, corrupt,
// version-skewed, or bound to a different graph is never used — the
// caller falls back to a cold build (and, for save, simply keeps serving
// from memory).
type diskStore struct {
	dir string

	mu  sync.Mutex
	fps map[*graph.Graph]uint64 // memoized GraphFingerprint per loaded graph
}

// newDiskStore roots a sample store at dir, creating it if needed.
func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	return &diskStore{dir: dir, fps: map[*graph.Graph]uint64{}}, nil
}

// fingerprint memoizes persist.GraphFingerprint — the hash walks the full
// adjacency, and one graph backs many keys.
func (d *diskStore) fingerprint(g *graph.Graph) uint64 {
	d.mu.Lock()
	fp, ok := d.fps[g]
	d.mu.Unlock()
	if ok {
		return fp
	}
	fp = persist.GraphFingerprint(g)
	d.mu.Lock()
	d.fps[g] = fp
	d.mu.Unlock()
	return fp
}

// fileName derives the stable on-disk name for a key: a sanitized graph
// name for debuggability plus a hash of every key field, so any parameter
// change lands on a different file.
func (d *diskStore) fileName(key sampleKey) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%d|%016x|%016x|%d|%t",
		key.graph, key.engine, key.model, key.tau, key.budget, key.seed,
		key.epsBits, key.deltaBits, key.sizingK, key.evalOnly)
	safe := make([]byte, 0, len(key.graph))
	for i := 0; i < len(key.graph) && i < 40; i++ {
		c := key.graph[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return filepath.Join(d.dir, fmt.Sprintf("%s-%016x.sample", safe, h.Sum64()))
}

// meta frames a key's payload: the codec kind/version follow the engine,
// the fingerprint binds the file to the graph's exact structure.
func (d *diskStore) meta(key sampleKey, g *graph.Graph) persist.Meta {
	m := persist.Meta{Fingerprint: d.fingerprint(g)}
	if key.engine == fairim.EngineRIS {
		m.Kind, m.Version = ris.CodecKind, ris.CodecVersion
	} else {
		m.Kind, m.Version = cascade.WorldCodecKind, cascade.WorldCodecVersion
	}
	return m
}

// load reads the persisted sample for key, if any. It returns (nil, nil)
// when no file exists (a cold start, not an error) and an error when a
// file exists but is unusable — the caller counts it and builds cold.
// Frames from any codec version down to the engine's minimum are
// accepted and decoded with the matching layout, so bumping the codec
// never strands a state dir written by an earlier release. Beyond the
// frame checks, the decoded sample is validated against the key's own
// parameters (τ, explicit budgets), so even a valid file that somehow
// landed under the wrong name cannot serve wrong answers.
func (d *diskStore) load(key sampleKey, g *graph.Graph) (*sample, error) {
	minVersion := uint32(cascade.WorldCodecMinVersion)
	if key.engine == fairim.EngineRIS {
		minVersion = ris.CodecMinVersion
	}
	payload, version, err := persist.LoadRange(d.fileName(key), d.meta(key, g), minVersion)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if key.engine == fairim.EngineRIS {
		col, err := ris.DecodePayloadVersion(version, payload, g)
		if err != nil {
			return nil, err
		}
		if col.Tau() != key.tau {
			return nil, fmt.Errorf("server: persisted sketch bounded by τ=%d, key wants %d", col.Tau(), key.tau)
		}
		if key.budget > 0 {
			for i, s := range col.PoolSizes() {
				if s != key.budget {
					return nil, fmt.Errorf("server: persisted pool for group %d has %d RR sets, key wants %d", i, s, key.budget)
				}
			}
		}
		return &sample{g: g, col: col}, nil
	}
	worlds, err := cascade.DecodeWorldsVersion(version, payload, g.N())
	if err != nil {
		return nil, err
	}
	if len(worlds) == 0 {
		return nil, fmt.Errorf("server: persisted world set is empty")
	}
	if key.budget > 0 && len(worlds) != key.budget {
		return nil, fmt.Errorf("server: persisted world set has %d worlds, key wants %d", len(worlds), key.budget)
	}
	return &sample{g: g, worlds: worlds}, nil
}

// save writes a freshly built sample under the key's file name.
func (d *diskStore) save(key sampleKey, smp *sample) error {
	var payload []byte
	if smp.col != nil {
		payload = smp.col.EncodePayload()
	} else {
		payload = cascade.EncodeWorlds(smp.worlds)
	}
	return persist.Save(d.fileName(key), d.meta(key, smp.g), payload)
}
