package server

import (
	"container/list"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
	"fairtcim/internal/ris"
)

// diskStore is the cache's write-through backing: one persist-framed file
// per sampleKey under <state-dir>/sketches. Loads and saves happen inside
// the cache's singleflight, so each key touches disk at most once per
// process no matter the request fan-in. A file that is missing, corrupt,
// version-skewed, or bound to a different graph is never used — the
// caller falls back to a cold build (and, for save, simply keeps serving
// from memory).
//
// The store also garbage-collects itself: dynamic graphs mint a new file
// per (key, graph version), so without a bound the sketch dir grows with
// every update. maxBytes caps the total size (least-recently-used files
// go first) and maxAge drops files untouched for longer than the window;
// either is 0 to disable. Load order is tracked in memory and mirrored to
// file mtimes, so the LRU survives restarts.
type diskStore struct {
	dir      string
	maxBytes int64
	maxAge   time.Duration

	gcRemovals atomic.Int64 // files deleted by the GC, surfaced in CacheStats

	mu  sync.Mutex
	fps map[*graph.Graph]uint64 // memoized GraphFingerprint per loaded graph
	// GC manifest: every known state file by path, LRU-ordered (front =
	// most recently used), with the running total size.
	files      map[string]*list.Element // of *gcFile
	gcLRU      *list.List
	totalBytes int64
}

// gcFile is one manifest row.
type gcFile struct {
	path string
	size int64
	last time.Time
}

// fpMemoCap bounds the fingerprint memo. Static deployments hold one
// graph pointer per registered graph forever; dynamic graphs mint a new
// immutable snapshot per update, and without a bound every superseded
// snapshot would stay reachable through the memo alone.
const fpMemoCap = 64

// newDiskStore roots a sample store at dir, creating it if needed, and
// scans any files a previous run left behind into the GC manifest
// (ordered by mtime) so the bounds apply across restarts.
func newDiskStore(dir string, maxBytes int64, maxAge time.Duration) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	d := &diskStore{
		dir:      dir,
		maxBytes: maxBytes,
		maxAge:   maxAge,
		fps:      map[*graph.Graph]uint64{},
		files:    map[string]*list.Element{},
		gcLRU:    list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	type scanned struct {
		path string
		size int64
		last time.Time
	}
	var found []scanned
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".sample" {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{filepath.Join(dir, ent.Name()), info.Size(), info.ModTime()})
	}
	// Oldest first, so after the PushFront loop the LRU front holds the
	// most recently touched file.
	for i := 1; i < len(found); i++ {
		for j := i; j > 0 && found[j].last.Before(found[j-1].last); j-- {
			found[j], found[j-1] = found[j-1], found[j]
		}
	}
	d.mu.Lock()
	for _, f := range found {
		d.files[f.path] = d.gcLRU.PushFront(&gcFile{path: f.path, size: f.size, last: f.last})
		d.totalBytes += f.size
	}
	d.gcLocked(time.Now())
	d.mu.Unlock()
	return d, nil
}

// gcLocked enforces the age window, then the size cap, deleting
// least-recently-used files until both hold. Callers hold d.mu.
func (d *diskStore) gcLocked(now time.Time) {
	remove := func(el *list.Element) {
		f := el.Value.(*gcFile)
		d.gcLRU.Remove(el)
		delete(d.files, f.path)
		d.totalBytes -= f.size
		if err := os.Remove(f.path); err == nil || errors.Is(err, fs.ErrNotExist) {
			d.gcRemovals.Add(1)
		}
	}
	if d.maxAge > 0 {
		cutoff := now.Add(-d.maxAge)
		for el := d.gcLRU.Back(); el != nil; {
			f := el.Value.(*gcFile)
			if !f.last.Before(cutoff) {
				break // LRU order: everything further forward is newer
			}
			prev := el.Prev()
			remove(el)
			el = prev
		}
	}
	if d.maxBytes > 0 {
		for d.totalBytes > d.maxBytes && d.gcLRU.Len() > 1 {
			// Never evict the most recently used file to make room: the
			// entry just written must survive its own GC pass.
			remove(d.gcLRU.Back())
		}
	}
}

// touch moves path to the manifest front and mirrors the use to the file
// mtime so the LRU order survives a restart.
func (d *diskStore) touch(path string, now time.Time) {
	d.mu.Lock()
	if el, ok := d.files[path]; ok {
		el.Value.(*gcFile).last = now
		d.gcLRU.MoveToFront(el)
	}
	d.mu.Unlock()
	_ = os.Chtimes(path, now, now)
}

// record registers a freshly saved file (replacing any previous entry for
// the same path) and runs the GC.
func (d *diskStore) record(path string, size int64, now time.Time) {
	d.mu.Lock()
	if el, ok := d.files[path]; ok {
		f := el.Value.(*gcFile)
		d.totalBytes += size - f.size
		f.size, f.last = size, now
		d.gcLRU.MoveToFront(el)
	} else {
		d.files[path] = d.gcLRU.PushFront(&gcFile{path: path, size: size, last: now})
		d.totalBytes += size
	}
	d.gcLocked(now)
	d.mu.Unlock()
}

// fingerprint memoizes persist.GraphFingerprint — the hash walks the full
// adjacency, and one graph backs many keys.
func (d *diskStore) fingerprint(g *graph.Graph) uint64 {
	d.mu.Lock()
	fp, ok := d.fps[g]
	d.mu.Unlock()
	if ok {
		return fp
	}
	fp = persist.GraphFingerprint(g)
	d.mu.Lock()
	if len(d.fps) >= fpMemoCap {
		d.fps = map[*graph.Graph]uint64{}
	}
	d.fps[g] = fp
	d.mu.Unlock()
	return fp
}

// fileName derives the stable on-disk name for a key: a sanitized graph
// name for debuggability plus a hash of every key field — including the
// graph version, so a post-update request misses cleanly (fs.ErrNotExist,
// a cold start) instead of tripping over the pre-update file.
func (d *diskStore) fileName(key sampleKey) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%d|%d|%016x|%016x|%d|%t",
		key.graph, key.version, key.engine, key.model, key.tau, key.budget, key.seed,
		key.epsBits, key.deltaBits, key.sizingK, key.evalOnly)
	safe := make([]byte, 0, len(key.graph))
	for i := 0; i < len(key.graph) && i < 40; i++ {
		c := key.graph[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return filepath.Join(d.dir, fmt.Sprintf("%s-%016x.sample", safe, h.Sum64()))
}

// frameMeta frames a key's payload: the codec kind/version follow the
// engine; the fingerprint binds the frame to the graph's exact structure
// AND its registry version. Content alone is not identity for dynamic
// graphs — a delta and its inverse restore the structural fingerprint
// while the version keeps moving, and the stale frame must not satisfy
// the round trip. Shared by the disk tier and the cross-replica sketch
// exchange: the wire format IS the state-file format.
func frameMeta(key sampleKey, fp uint64) persist.Meta {
	m := persist.Meta{Fingerprint: persist.VersionedFingerprint(fp, key.version)}
	if key.engine == fairim.EngineRIS {
		m.Kind, m.Version = ris.CodecKind, ris.CodecVersion
	} else {
		m.Kind, m.Version = cascade.WorldCodecKind, cascade.WorldCodecVersion
	}
	return m
}

// minCodecVersion is the oldest payload codec a key's engine still
// decodes; frames from any version in [min, current] are accepted.
func minCodecVersion(key sampleKey) uint32 {
	if key.engine == fairim.EngineRIS {
		return ris.CodecMinVersion
	}
	return cascade.WorldCodecMinVersion
}

// meta frames a key's payload for this store's graph.
func (d *diskStore) meta(key sampleKey, g *graph.Graph) persist.Meta {
	return frameMeta(key, d.fingerprint(g))
}

// load reads the persisted sample for key, if any. It returns (nil, nil)
// when no file exists (a cold start, not an error) and an error when a
// file exists but is unusable — the caller counts it and builds cold.
// Frames from any codec version down to the engine's minimum are
// accepted and decoded with the matching layout, so bumping the codec
// never strands a state dir written by an earlier release. Beyond the
// frame checks, the decoded sample is validated against the key's own
// parameters (τ, explicit budgets), so even a valid file that somehow
// landed under the wrong name cannot serve wrong answers.
func (d *diskStore) load(key sampleKey, g *graph.Graph) (*sample, error) {
	path := d.fileName(key)
	payload, version, err := persist.LoadRange(path, d.meta(key, g), minCodecVersion(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	d.touch(path, time.Now())
	return decodeSamplePayload(key, g, payload, version)
}

// decodeSamplePayload turns a verified frame payload back into a sample,
// then validates the decoded artifact against the key's own parameters
// (τ, explicit budgets): even a valid frame that somehow landed under the
// wrong name — or arrived from a confused peer — cannot serve wrong
// answers. Shared by the disk tier and the cross-replica sketch fetch,
// so a transferred frame passes exactly the checks a local load would.
func decodeSamplePayload(key sampleKey, g *graph.Graph, payload []byte, version uint32) (*sample, error) {
	if key.engine == fairim.EngineRIS {
		col, err := ris.DecodePayloadVersion(version, payload, g)
		if err != nil {
			return nil, err
		}
		if col.Tau() != key.tau {
			return nil, fmt.Errorf("server: persisted sketch bounded by τ=%d, key wants %d", col.Tau(), key.tau)
		}
		if key.budget > 0 {
			for i, s := range col.PoolSizes() {
				if s != key.budget {
					return nil, fmt.Errorf("server: persisted pool for group %d has %d RR sets, key wants %d", i, s, key.budget)
				}
			}
		}
		return &sample{g: g, col: col}, nil
	}
	worlds, err := cascade.DecodeWorldsVersion(version, payload, g.N())
	if err != nil {
		return nil, err
	}
	if len(worlds) == 0 {
		return nil, fmt.Errorf("server: persisted world set is empty")
	}
	if key.budget > 0 && len(worlds) != key.budget {
		return nil, fmt.Errorf("server: persisted world set has %d worlds, key wants %d", len(worlds), key.budget)
	}
	return &sample{g: g, worlds: worlds}, nil
}

// rawFrame returns the stored frame bytes for key verbatim — the sketch
// transfer endpoint streams state files as-is, and the fetching replica
// validates the frame exactly as it would a local file. Serving counts
// as a use for the GC's LRU.
func (d *diskStore) rawFrame(key sampleKey) ([]byte, bool) {
	path := d.fileName(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	d.touch(path, time.Now())
	return data, true
}

// save writes a freshly built sample under the key's file name and runs
// the GC over the grown store.
func (d *diskStore) save(key sampleKey, smp *sample) error {
	var payload []byte
	if smp.col != nil {
		payload = smp.col.EncodePayload()
	} else {
		payload = cascade.EncodeWorlds(smp.worlds)
	}
	path := d.fileName(key)
	if err := persist.Save(path, d.meta(key, smp.g), payload); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	d.record(path, info.Size(), time.Now())
	return nil
}
