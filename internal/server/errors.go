package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The unified /v1/* error envelope: every non-2xx response body is
// {"error": {"code", "message"}}. Codes are stable, machine-readable
// contract surface — clients branch on them, messages are for humans and
// may change freely.
const (
	// CodeBadRequest marks bodies that do not parse as the endpoint's
	// request shape at all.
	CodeBadRequest = "bad_request"
	// CodeBadSpec marks well-formed requests whose fields are invalid or
	// inconsistent (unknown engine, out-of-range budgets, empty deltas...).
	CodeBadSpec = "bad_spec"
	// CodeGraphNotFound marks references to graph names never registered.
	CodeGraphNotFound = "graph_not_found"
	// CodeJobNotFound marks references to unknown job ids.
	CodeJobNotFound = "job_not_found"
	// CodeJobFinished marks cancellation of a job already in a terminal
	// state.
	CodeJobFinished = "job_finished"
	// CodeCapacity marks requests shed because the worker pool or job
	// queue is full; retry later.
	CodeCapacity = "capacity"
	// CodeVersionConflict marks graph updates whose expect_version lost a
	// race with a concurrent update; re-read the version and retry.
	CodeVersionConflict = "version_conflict"
	// CodePeerUnreachable marks requests that had to reach another
	// replica (proxy, failover, job lookup) when every candidate was
	// down; retry once the fleet recovers.
	CodePeerUnreachable = "peer_unreachable"
	// CodeSketchNotFound marks sketch-transfer fetches for a key this
	// replica holds neither in memory nor on disk; the fetcher builds
	// cold.
	CodeSketchNotFound = "sketch_not_found"
	// CodeInternal marks server-side failures.
	CodeInternal = "internal"
)

// apiError is the machine-readable error payload.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// errStatus maps a solve-pipeline failure onto an HTTP status: capacity
// shedding and client-gone cancellations are 503, update races 409,
// anything else is a bad request.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrCapacity), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrVersionConflict):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// errCode maps a solve-pipeline failure onto its envelope code, in the
// same order as errStatus.
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrCapacity), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCapacity
	case errors.Is(err, ErrVersionConflict):
		return CodeVersionConflict
	case errors.Is(err, ErrUnknownGraph):
		return CodeGraphNotFound
	}
	return CodeBadSpec
}

func writeSolveError(w http.ResponseWriter, err error) {
	status := errStatus(err)
	if status == http.StatusServiceUnavailable {
		writeError(w, status, CodeCapacity, "server at capacity; retry later")
		return
	}
	writeError(w, status, errCode(err), "%v", err)
}
