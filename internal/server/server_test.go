package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

// testRegistry registers the deterministic two-star fixture and a small
// two-block SBM.
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.RegisterGraph("twostars", "synthetic:twostars", generate.TwoStars()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("twoblock", "synthetic:twoblock", func() (*graph.Graph, error) {
		cfg := generate.DefaultTwoBlock(1)
		cfg.N = 200
		cfg.PHom, cfg.PHet = 0.06, 0.003
		return generate.TwoBlock(cfg)
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = testRegistry(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestSelectTwoStars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/select",
		`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SelectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if len(out.Seeds) != 2 {
		t.Fatalf("got %d seeds, want 2: %s", len(out.Seeds), body)
	}
	// The deterministic fixture forces the two hubs.
	if out.Seeds[0] != 0 || out.Seeds[1] != 11 {
		t.Fatalf("seeds = %v, want [0 11]", out.Seeds)
	}
	if out.Problem != "P4" || out.Engine != "ris" || out.CacheHit {
		t.Fatalf("unexpected metadata: %s", body)
	}
	if out.Total <= 0 || out.Disparity < 0 {
		t.Fatalf("implausible utilities: %s", body)
	}
}

func TestSelectRepeatHitsCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"graph":"twostars","problem":"p1","budget":1,"tau":3,"engine":"ris","samples":50}`
	resp, body := postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	var out SelectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatalf("second identical request missed the cache: %s", body)
	}
	st := s.CacheStats()
	if st.Builds != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 build and 1 hit", st)
	}
}

// TestForwardMCSharesWorldsAcrossTau pins the τ-free forward-MC cache
// key: live-edge worlds are deadline-independent, so a τ sweep reuses one
// world set instead of rebuilding per deadline.
func TestForwardMCSharesWorldsAcrossTau(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i, tau := range []int32{5, 10, 20} {
		body := fmt.Sprintf(`{"graph":"twostars","problem":"p1","budget":1,"tau":%d,"samples":40}`, tau)
		resp, out := postJSON(t, ts.URL+"/v1/select", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tau=%d: status %d: %s", tau, resp.StatusCode, out)
		}
		var sel SelectResponse
		if err := json.Unmarshal(out, &sel); err != nil {
			t.Fatal(err)
		}
		if wantHit := i > 0; sel.CacheHit != wantHit {
			t.Fatalf("tau=%d: cache_hit=%v, want %v", tau, sel.CacheHit, wantHit)
		}
	}
	if st := s.CacheStats(); st.Builds != 1 {
		t.Fatalf("τ sweep built %d world sets, want 1 (%+v)", st.Builds, st)
	}
	// RIS sketches are τ-bound, so changing τ there does rebuild.
	for _, tau := range []int32{2, 3} {
		body := fmt.Sprintf(`{"graph":"twostars","problem":"p1","budget":1,"tau":%d,"engine":"ris","samples":40}`, tau)
		resp, out := postJSON(t, ts.URL+"/v1/select", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ris tau=%d: status %d: %s", tau, resp.StatusCode, out)
		}
	}
	if st := s.CacheStats(); st.Builds != 3 {
		t.Fatalf("expected 2 RIS builds on top of 1 world set, got %d total (%+v)", st.Builds, st)
	}
}

func TestSelectErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown graph", `{"graph":"nope"}`, http.StatusNotFound},
		{"unknown engine", `{"graph":"twostars","engine":"quantum"}`, http.StatusBadRequest},
		{"unknown problem", `{"graph":"twostars","problem":"p9"}`, http.StatusBadRequest},
		{"unknown model", `{"graph":"twostars","model":"sir"}`, http.StatusBadRequest},
		{"missing graph", `{"problem":"p1"}`, http.StatusBadRequest},
		{"bad json", `{"graph":`, http.StatusBadRequest},
		{"unknown field", `{"graph":"twostars","bogus":1}`, http.StatusBadRequest},
		{"ris+lt", `{"graph":"twostars","engine":"ris","model":"lt"}`, http.StatusBadRequest},
		{"negative tau", `{"graph":"twostars","tau":-7}`, http.StatusBadRequest},
		{"negative samples", `{"graph":"twostars","samples":-10}`, http.StatusBadRequest},
		{"negative ris pool", `{"graph":"twostars","engine":"ris","ris_per_group":-5}`, http.StatusBadRequest},
		{"negative eval samples", `{"graph":"twostars","eval_samples":-1}`, http.StatusBadRequest},
		{"negative max seeds", `{"graph":"twostars","max_seeds":-1}`, http.StatusBadRequest},
		{"negative budget", `{"graph":"twostars","problem":"p1","budget":-3}`, http.StatusBadRequest},
		{"bad quota", `{"graph":"twostars","problem":"p6","quota":1.5}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/select", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" || e.Error.Code == "" {
			t.Errorf("%s: no JSON error envelope in %s", tc.name, body)
		}
	}
}

func TestEstimate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/estimate",
		`{"graph":"twostars","seeds":[0,11],"tau":3,"engine":"ris","samples":50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EstimateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// Certain edges: the two hubs reach all 17 nodes within τ=3.
	if out.Total < 16.5 || out.Total > 17.5 {
		t.Fatalf("total = %v, want ≈17 (%s)", out.Total, body)
	}
	if out.Disparity != 0 {
		t.Fatalf("disparity = %v, want 0 on full coverage", out.Disparity)
	}

	// Estimate with no seeds is a client error.
	resp, _ = postJSON(t, ts.URL+"/v1/estimate", `{"graph":"twostars","seeds":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty seeds: status %d, want 400", resp.StatusCode)
	}
	// Out-of-range seed ids are rejected by fairim validation.
	resp, _ = postJSON(t, ts.URL+"/v1/estimate", `{"graph":"twostars","seeds":[99]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seed id: status %d, want 400", resp.StatusCode)
	}
}

func TestGraphsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/select", `{"graph":"twostars","problem":"p1","budget":1,"tau":3,"samples":20}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup select failed: %s", body)
	}

	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Graphs) != 2 {
		t.Fatalf("got %d graphs, want 2", len(list.Graphs))
	}
	byName := map[string]GraphInfo{}
	for _, gi := range list.Graphs {
		byName[gi.Name] = gi
	}
	if !byName["twostars"].Loaded || byName["twostars"].Nodes != 17 || byName["twostars"].Groups != 2 {
		t.Fatalf("twostars info wrong: %+v", byName["twostars"])
	}
	if byName["twoblock"].Loaded {
		t.Fatalf("twoblock should not be force-loaded by introspection: %+v", byName["twoblock"])
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string     `json:"status"`
		Cache  CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Cache.Builds != 1 {
		t.Fatalf("health = %+v", health)
	}
}

// TestSingleflight issues many concurrent identical requests and checks
// the RR-sketch pool was built exactly once.
func TestSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 16})
	const workers = 8
	req := `{"graph":"twoblock","problem":"p1","budget":3,"tau":20,"engine":"ris","samples":100,"eval":"sample"}`
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSONAsync(ts.URL+"/v1/select", req)
			if resp == nil {
				errs <- fmt.Errorf("request failed")
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Builds != 1 {
		t.Fatalf("%d concurrent identical requests built %d sketches, want exactly 1 (stats %+v)", workers, st.Builds, st)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d (stats %+v)", st.Hits, workers-1, st)
	}
}

// postJSONAsync is postJSON without *testing.T for use inside goroutines.
func postJSONAsync(url, body string) (*http.Response, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestSingleflightJoinersHoldNoSlot runs concurrent identical cold
// requests against a single-slot pool: only the builder may hold the slot
// while sampling, so joiners must not shed or deadlock — everyone gets a
// 200 from one build.
func TestSingleflightJoinersHoldNoSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	const workers = 4
	req := `{"graph":"twoblock","problem":"p1","budget":2,"tau":20,"engine":"ris","ris_per_group":20000,"samples":100,"eval":"sample"}`
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSONAsync(ts.URL+"/v1/select", req)
			if resp == nil || resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("response %v: %s", resp, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Builds != 1 {
		t.Fatalf("built %d sketches, want 1 (%+v)", st.Builds, st)
	}
}

// TestWarmRequestFaster asserts the acceptance criterion: a repeated
// request against the warm sketch cache is measurably faster than the
// cold request that built it.
func TestWarmRequestFaster(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A pool large enough that sketch sampling dominates the cold request.
	req := `{"graph":"twoblock","problem":"p4","budget":5,"tau":20,"engine":"ris","samples":100,"ris_per_group":30000,"eval":"sample"}`

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/select", req)
	cold := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, body)
	}
	var coldOut SelectResponse
	if err := json.Unmarshal(body, &coldOut); err != nil {
		t.Fatal(err)
	}
	if coldOut.CacheHit || coldOut.SampleMS <= 0 {
		t.Fatalf("cold request should build the sketch: %s", body)
	}

	start = time.Now()
	resp, body = postJSON(t, ts.URL+"/v1/select", req)
	warm := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	var warmOut SelectResponse
	if err := json.Unmarshal(body, &warmOut); err != nil {
		t.Fatal(err)
	}
	if !warmOut.CacheHit {
		t.Fatalf("warm request missed the cache: %s", body)
	}
	if warmOut.Total != coldOut.Total || len(warmOut.Seeds) != len(coldOut.Seeds) {
		t.Fatalf("warm result differs from cold: %v vs %v", warmOut, coldOut)
	}
	if warm >= cold {
		t.Fatalf("warm request (%v) not faster than cold (%v) despite cache hit", warm, cold)
	}
	t.Logf("cold %v (sample %.1fms), warm %v — %.1fx speedup", cold, coldOut.SampleMS, warm, float64(cold)/float64(warm))
}

// TestOverloadSheds checks graceful degradation: with one worker slot and
// a tiny queue timeout, a request arriving while the slot is held is shed
// with 503 instead of piling up.
func TestOverloadSheds(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueTimeout: time.Millisecond})
	slow := `{"graph":"twoblock","problem":"p1","budget":3,"tau":20,"engine":"ris","ris_per_group":30000,"samples":100,"seed":11,"eval":"sample"}`
	fast := `{"graph":"twostars","problem":"p1","budget":1,"tau":3,"samples":20,"seed":12}`

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		postJSONAsync(ts.URL+"/v1/select", slow)
	}()
	<-started
	// Give the slow solve a moment to take the worker slot, then collide.
	deadline := time.Now().Add(2 * time.Second)
	sawShed := false
	for time.Now().Before(deadline) {
		resp, _ := postJSONAsync(ts.URL+"/v1/select", fast)
		if resp != nil && resp.StatusCode == http.StatusServiceUnavailable {
			sawShed = true
			break
		}
		select {
		case <-done: // slow request finished before we collided; reissue it
			t.Skip("slow request completed too quickly to observe shedding")
		default:
		}
	}
	<-done
	if !sawShed {
		t.Fatal("never observed a 503 while the single worker slot was held")
	}
}
