package server

import (
	"errors"
	"net/http"

	"fairtcim/internal/graph"
)

// GraphUpdateRequest is the body of POST /v1/graphs/{name}/updates: one
// atomic batch of edge and group deltas. ExpectVersion, when non-zero,
// makes the update conditional on the graph still being at that version
// (optimistic concurrency; a lost race is a 409 version_conflict).
type GraphUpdateRequest struct {
	ExpectVersion uint64             `json:"expect_version,omitempty"`
	Edges         []graph.EdgeDelta  `json:"edges,omitempty"`
	Groups        []graph.GroupDelta `json:"groups,omitempty"`
}

// GraphUpdateInvalidation reports what the batch cost the warm state:
// EntriesDropped cached forward-MC world sets were discarded (worlds
// realize every edge coin, so none survive a delta), WorldsTouched of
// their worlds had actually realized a changed arc. RR sketches are not
// dropped — they refresh incrementally on the next request at the new
// version.
type GraphUpdateInvalidation struct {
	EntriesDropped int `json:"entries_dropped"`
	WorldsTouched  int `json:"worlds_touched"`
}

// GraphUpdateResponse is the body of a successful update: the new version
// plus what the batch changed. TouchedHeads are the distinct heads of
// changed arcs — exactly the nodes whose presence marks an RR set dirty
// for the incremental refresh.
type GraphUpdateResponse struct {
	Graph         string                  `json:"graph"`
	Version       uint64                  `json:"version"`
	Nodes         int                     `json:"nodes"`
	Edges         int                     `json:"edges"`
	EdgesAdded    int                     `json:"edges_added"`
	EdgesUpdated  int                     `json:"edges_updated"`
	EdgesRemoved  int                     `json:"edges_removed"`
	GroupsChanged int                     `json:"groups_changed"`
	TouchedHeads  []graph.NodeID          `json:"touched_heads"`
	Invalidation  GraphUpdateInvalidation `json:"invalidation"`
	// Peers reports the fleet fanout of this batch (peer-aware mode
	// only): each configured peer's converged version or its error. The
	// local apply succeeds regardless — a peer row with code
	// version_conflict or peer_unreachable is the operator's signal that
	// a replica diverged or missed the batch.
	Peers []PeerUpdateResult `json:"peers,omitempty"`
}

// handleGraphUpdate is POST /v1/graphs/{name}/updates. The batch applies
// atomically: the registry swaps in a new immutable snapshot and bumps
// the version, so a concurrent solve reads either the whole batch or
// none of it, and in-flight solves on the old snapshot finish unharmed.
func (s *Server) handleGraphUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req GraphUpdateRequest
	if !decodeStrict(w, body, &req) {
		return
	}
	d := graph.Delta{Edges: req.Edges, Groups: req.Groups}
	if d.Empty() {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "empty update: no edge or group deltas")
		return
	}
	ng, version, res, err := s.reg.ApplyUpdate(name, req.ExpectVersion, d)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownGraph):
			writeError(w, http.StatusNotFound, CodeGraphNotFound, "%v", err)
		case errors.Is(err, ErrVersionConflict):
			writeError(w, http.StatusConflict, CodeVersionConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
		}
		return
	}
	dropped, touched := s.cache.invalidateGraph(name, res.TouchedArcs)
	// Fan the applied batch out to the fleet with expect_version pinned
	// to the version this replica just moved from, so every peer either
	// converges to the same new version or surfaces version_conflict. A
	// batch that arrived via fanout is applied locally only — the origin
	// reaches every peer itself.
	var peerResults []PeerUpdateResult
	if s.cluster != nil && r.Header.Get(fanoutHeader) == "" {
		peerResults = s.fanoutUpdate(r.Context(), name, version-1, req)
	}
	writeJSON(w, http.StatusOK, GraphUpdateResponse{
		Graph:         name,
		Version:       version,
		Nodes:         ng.N(),
		Edges:         ng.M(),
		EdgesAdded:    res.EdgesAdded,
		EdgesUpdated:  res.EdgesUpdated,
		EdgesRemoved:  res.EdgesRemoved,
		GroupsChanged: res.GroupsChanged,
		TouchedHeads:  res.TouchedHeads,
		Invalidation:  GraphUpdateInvalidation{EntriesDropped: dropped, WorldsTouched: touched},
		Peers:         peerResults,
	})
}
