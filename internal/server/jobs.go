package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
)

// The async job API: POST /v1/jobs submits a solve and returns
// immediately with a job id; GET /v1/jobs/{id} reports status and, once
// finished, the result; GET /v1/jobs/{id}/trace streams one server-sent
// "pick" event per greedy iteration while the solve runs; DELETE
// /v1/jobs/{id} cancels a queued or running job (a running solve aborts
// cooperatively at the next greedy pick boundary). Long solves on large
// graphs therefore hold a worker slot only while actually solving — never
// an HTTP connection of the submitter. With a state dir, finished jobs
// are journaled so history survives restarts.

// Job states.
const (
	JobQueued   = "queued"   // accepted, waiting for a worker slot
	JobRunning  = "running"  // solving
	JobDone     = "done"     // finished successfully; result available
	JobFailed   = "failed"   // finished with an error
	JobCanceled = "canceled" // canceled via DELETE before finishing
)

// terminal reports whether a job state is final.
func terminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCanceled
}

// defaultJobRetention bounds how many finished jobs are kept for status
// polling when Config.JobRetention is unset; the oldest finished jobs are
// evicted first (counters survive eviction).
const defaultJobRetention = 256

// job is one submitted solve. All mutable state is guarded by mu; notify
// is closed and replaced on every change so any number of trace streams
// can wait for progress without polling.
type job struct {
	id      string
	graphN  string
	problem string
	created time.Time

	mu       sync.Mutex
	state    string
	started  time.Time
	finished time.Time
	result   *SolveResponse
	errMsg   string
	trace    []TraceEvent
	notify   chan struct{}
	// cancel aborts the solve context; set by arm before the job
	// goroutine starts. cancelReq records that DELETE asked for the
	// cancellation, distinguishing it from other context failures.
	cancel    context.CancelFunc
	cancelReq bool
	// restoredPicks carries the pick count of a journal-restored job,
	// whose trace buffer is gone.
	restoredPicks int
}

// signalLocked wakes every waiter; callers hold mu.
func (j *job) signalLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendPick records one greedy pick and wakes trace streams. It is the
// fairim.Config.OnIteration callback, called synchronously from the
// solver goroutine.
func (j *job) appendPick(st fairim.IterationStat) {
	j.mu.Lock()
	j.trace = append(j.trace, TraceEvent{
		Iteration: len(j.trace) + 1,
		Seed:      st.Seed,
		Objective: st.Objective,
		Total:     st.Total,
		NormGroup: st.NormGroup,
	})
	j.signalLocked()
	j.mu.Unlock()
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.signalLocked()
	j.mu.Unlock()
}

// finish moves the job to its terminal state. A cancellation-shaped
// error after a DELETE request lands in JobCanceled; any other error is a
// genuine failure even if a cancel raced in behind it.
func (j *job) finish(resp *SolveResponse, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = resp
	case j.cancelReq && (errors.Is(err, fairim.ErrCanceled) || errors.Is(err, context.Canceled)):
		j.state = JobCanceled
		j.errMsg = "canceled"
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
	}
	j.signalLocked()
	j.mu.Unlock()
}

// arm installs the solve-context cancel function. If a DELETE raced in
// before arming, the context is cancelled immediately.
func (j *job) arm(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	canceled := j.cancelReq
	j.mu.Unlock()
	if canceled {
		cancel()
	}
}

// requestCancel marks the job canceled-on-request and fires its solve
// context. It reports false when the job had already finished.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return false
	}
	j.cancelReq = true
	cancel := j.cancel
	j.signalLocked()
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// record snapshots the job for the journal.
func (j *job) record() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	picks := len(j.trace)
	if picks == 0 {
		picks = j.restoredPicks
	}
	return jobRecord{
		ID:       j.id,
		Graph:    j.graphN,
		Problem:  j.problem,
		Status:   j.state,
		Error:    j.errMsg,
		Picks:    picks,
		Result:   j.result,
		Created:  j.created,
		Finished: j.finished,
	}
}

// JobStatus is the wire form of a job, returned by POST /v1/jobs (202)
// and GET /v1/jobs/{id}.
type JobStatus struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Graph   string `json:"graph"`
	Problem string `json:"problem"`
	// Picks counts greedy iterations completed so far — live progress for
	// pollers who do not consume the SSE trace.
	Picks     int            `json:"picks"`
	Error     string         `json:"error,omitempty"`
	Result    *SolveResponse `json:"result,omitempty"`
	StatusURL string         `json:"status_url"`
	TraceURL  string         `json:"trace_url"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	picks := len(j.trace)
	if picks == 0 {
		picks = j.restoredPicks
	}
	return JobStatus{
		ID:        j.id,
		Status:    j.state,
		Graph:     j.graphN,
		Problem:   j.problem,
		Picks:     picks,
		Error:     j.errMsg,
		Result:    j.result,
		StatusURL: "/v1/jobs/" + j.id,
		TraceURL:  "/v1/jobs/" + j.id + "/trace",
	}
}

// JobStats counts jobs by lifecycle state; done/failed/canceled are
// cumulative (they survive retention eviction, and with a state dir the
// journal re-seeds them across restarts with the retained history).
type JobStats struct {
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
}

// jobStore indexes jobs by id, bounds how many are active at once, and
// retains a bounded history of finished jobs — journaled to disk when a
// journal is attached.
type jobStore struct {
	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // insertion order, for retention eviction
	maxActive int
	retention int
	active    int   // queued + running, maintained incrementally
	done      int64 // cumulative, incl. evicted
	failed    int64
	canceled  int64
	journal   *jobJournal // nil without a state dir

	journalErrors atomic.Int64 // failed journal appends (history-at-risk signal)
}

func newJobStore(maxActive, retention int, journal *jobJournal) *jobStore {
	if maxActive <= 0 {
		maxActive = 64
	}
	if retention <= 0 {
		retention = defaultJobRetention
	}
	return &jobStore{jobs: map[string]*job{}, maxActive: maxActive, retention: retention, journal: journal}
}

// restore seeds the store with journaled finished jobs, oldest first.
// Non-terminal records (which a clean journal never contains) and
// duplicate ids are skipped.
func (st *jobStore) restore(records []jobRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, rec := range records {
		if !terminal(rec.Status) {
			continue
		}
		if _, dup := st.jobs[rec.ID]; dup {
			continue
		}
		j := &job{
			id:            rec.ID,
			graphN:        rec.Graph,
			problem:       rec.Problem,
			created:       rec.Created,
			state:         rec.Status,
			finished:      rec.Finished,
			result:        rec.Result,
			errMsg:        rec.Error,
			restoredPicks: rec.Picks,
			notify:        make(chan struct{}),
		}
		st.jobs[j.id] = j
		st.order = append(st.order, j)
		switch rec.Status {
		case JobDone:
			st.done++
		case JobFailed:
			st.failed++
		case JobCanceled:
			st.canceled++
		}
	}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: job id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// add registers a new queued job. The active cap is checked against the
// incrementally maintained count — O(1), where it used to rescan every
// retained job under both locks.
func (st *jobStore) add(graphName, problem string) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active >= st.maxActive {
		return nil, ErrCapacity
	}
	j := &job{
		id:      newJobID(),
		graphN:  graphName,
		problem: problem,
		created: time.Now(),
		state:   JobQueued,
		notify:  make(chan struct{}),
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j)
	st.active++
	st.evictLocked()
	return j, nil
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// It runs on both add and noteFinished, so history shrinks as soon as a
// job finishes over the bound instead of lingering until the next submit.
func (st *jobStore) evictLocked() {
	if len(st.order) <= st.retention {
		return
	}
	kept := st.order[:0]
	excess := len(st.order) - st.retention
	for _, j := range st.order {
		j.mu.Lock()
		finished := terminal(j.state)
		j.mu.Unlock()
		if excess > 0 && finished {
			delete(st.jobs, j.id)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	st.order = kept
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// noteFinished records a job's terminal state: the active count drops,
// the cumulative counter for its outcome bumps, the record is journaled,
// and over-retention history is evicted immediately.
func (st *jobStore) noteFinished(j *job) {
	rec := j.record()
	st.mu.Lock()
	st.active--
	switch rec.Status {
	case JobFailed:
		st.failed++
	case JobCanceled:
		st.canceled++
	default:
		st.done++
	}
	st.evictLocked()
	journal := st.journal
	st.mu.Unlock()
	if journal != nil {
		if err := journal.append(rec); err != nil {
			st.journalErrors.Add(1)
		}
		// Opportunistic compaction: once appends have grown the file past
		// ~4× retention, rewrite it from the retained in-memory history.
		if _, err := journal.maybeCompact(st.retainedRecords); err != nil {
			st.journalErrors.Add(1)
		}
	}
}

// retainedRecords snapshots the store's retained finished jobs in
// insertion order — exactly what a freshly compacted journal should
// hold. Called by the journal under its own lock; the journal.mu →
// jobStore.mu order is safe because no store method calls into the
// journal while holding st.mu.
func (st *jobStore) retainedRecords() []jobRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	var recs []jobRecord
	for _, j := range st.order {
		rec := j.record()
		if terminal(rec.Status) {
			recs = append(recs, rec)
		}
	}
	return recs
}

func (st *jobStore) stats() JobStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := JobStats{Done: st.done, Failed: st.failed, Canceled: st.canceled}
	for _, j := range st.order {
		j.mu.Lock()
		switch j.state {
		case JobQueued:
			out.Queued++
		case JobRunning:
			out.Running++
		}
		j.mu.Unlock()
	}
	return out
}

func (st *jobStore) list() []JobStatus {
	st.mu.Lock()
	jobs := append([]*job(nil), st.order...)
	st.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		s := j.status()
		s.Result = nil // keep the listing light; fetch one job for the result
		out[i] = s
	}
	return out
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req SolveRequest
	if !decodeStrict(w, body, &req) {
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
		return
	}
	// Jobs route like solves — the owner's cache hosts the sketch. The
	// accepted job's id is remembered against the peer that took it, so
	// status polls and trace streams landing here forward correctly.
	if cands := s.routeCandidates(r, routeKeyFor(req.Graph, spec)); cands != nil {
		proxied := s.proxyWithFailover(w, r, cands, "/v1/jobs", body, func(peer string, status int, data []byte) {
			var js JobStatus
			if status == http.StatusAccepted && json.Unmarshal(data, &js) == nil && js.ID != "" {
				s.cluster.rememberJob(js.ID, peer)
			}
		})
		if proxied {
			return
		}
	}
	// Resolve the graph synchronously so unknown names are a 404 at
	// submission, not a failed job discovered later. The job solves the
	// snapshot current at submission: an update applied while it queues
	// does not retarget it.
	g, version, ok := s.getGraph(w, req.Graph)
	if !ok {
		return
	}
	j, err := s.jobs.add(req.Graph, spec.Problem.String())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, CodeCapacity, "job queue full; retry later")
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.arm(cancel)
	go s.runJob(ctx, j, g, req.Graph, version, spec)
	writeJSON(w, http.StatusAccepted, j.status())
}

// startGate wraps a workerGate so the job flips from "queued" to
// "running" only when it first actually holds a worker slot — until then
// GET /v1/jobs/{id} and the /v1/stats queue counters report the backlog
// truthfully.
type startGate struct {
	workerGate
	once    *sync.Once
	started func()
}

func (g startGate) acquire(ctx context.Context) bool {
	if !g.workerGate.acquire(ctx) {
		return false
	}
	g.once.Do(g.started)
	return true
}

// runJob executes one submitted solve. It runs detached from the
// submitting request: the sample build and solve gate on the shared
// worker pool without a queue timeout (blockingGate), and every greedy
// pick is forwarded to the job's trace buffer for streaming. The job
// stays "queued" until the solve first holds a worker slot. ctx is the
// job's cancellation context (fired by DELETE /v1/jobs/{id}): a queued
// job aborts while waiting for its slot, a running solve at the next
// greedy pick via the fairim.Config.Cancel seam.
func (s *Server) runJob(ctx context.Context, j *job, g *graph.Graph, graphName string, version uint64, spec fairim.ProblemSpec) {
	defer j.cancel() // release the context once the job is decided
	gate := startGate{workerGate: blockingGate{s}, once: &sync.Once{}, started: j.setRunning}
	spec.Cancel = ctx.Done()
	resp, err := s.solve(ctx, gate, graphName, version, g, spec, j.appendPick)
	if resp != nil {
		// The job trace is streamed separately; keep the stored result to
		// the synchronous shape (trace only when the request asked).
		if !spec.Trace {
			resp.Trace = nil
		}
	}
	j.finish(resp, err)
	s.jobs.noteFinished(j)
}

// handleJobCancel is DELETE /v1/jobs/{id}: ask a queued or running job to
// stop. Cancellation is cooperative — the response reports the state at
// request time; poll GET /v1/jobs/{id} (or the trace stream) for the
// terminal "canceled". A job that already finished is a 409.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		if s.forwardJobRequest(w, r, r.PathValue("id")) {
			return
		}
		writeError(w, http.StatusNotFound, CodeJobNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, CodeJobFinished, "job %q already finished", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.jobs.list()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		if s.forwardJobRequest(w, r, r.PathValue("id")) {
			return
		}
		writeError(w, http.StatusNotFound, CodeJobNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobTrace streams the job's greedy picks as server-sent events:
// one "pick" event per iteration (replaying history first, then live),
// then a terminal "done" event carrying the final status. The stream ends
// when the job finishes or the client disconnects.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		// Forwarded traces stream live through the proxy (CopyResponse
		// flushes per chunk).
		if s.forwardJobRequest(w, r, r.PathValue("id")) {
			return
		}
		writeError(w, http.StatusNotFound, CodeJobNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sent := 0
	for {
		j.mu.Lock()
		pending := append([]TraceEvent(nil), j.trace[sent:]...)
		state := j.state
		errMsg := j.errMsg
		notify := j.notify
		// Journal-restored jobs have no trace buffer to replay; their
		// terminal event still reports the pick count on record.
		donePicks := len(j.trace)
		if donePicks == 0 {
			donePicks = j.restoredPicks
		}
		j.mu.Unlock()

		for _, ev := range pending {
			if err := writeSSE(w, "pick", ev); err != nil {
				return
			}
			sent++
		}
		if len(pending) > 0 {
			fl.Flush()
		}
		if terminal(state) {
			_ = writeSSE(w, "done", struct {
				Status string `json:"status"`
				Picks  int    `json:"picks"`
				Error  string `json:"error,omitempty"`
			}{Status: state, Picks: donePicks, Error: errMsg})
			fl.Flush()
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one server-sent event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
