package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
)

// The async job API: POST /v1/jobs submits a solve and returns
// immediately with a job id; GET /v1/jobs/{id} reports status and, once
// finished, the result; GET /v1/jobs/{id}/trace streams one server-sent
// "pick" event per greedy iteration while the solve runs. Long solves on
// large graphs therefore hold a worker slot only while actually solving —
// never an HTTP connection of the submitter.

// Job states.
const (
	JobQueued  = "queued"  // accepted, waiting for a worker slot
	JobRunning = "running" // solving
	JobDone    = "done"    // finished successfully; result available
	JobFailed  = "failed"  // finished with an error
)

// jobRetention bounds how many finished jobs are kept for status polling;
// the oldest finished jobs are evicted first (counters survive eviction).
const jobRetention = 256

// job is one submitted solve. All mutable state is guarded by mu; notify
// is closed and replaced on every change so any number of trace streams
// can wait for progress without polling.
type job struct {
	id      string
	graphN  string
	problem string
	created time.Time

	mu       sync.Mutex
	state    string
	started  time.Time
	finished time.Time
	result   *SolveResponse
	errMsg   string
	trace    []TraceEvent
	notify   chan struct{}
}

// signalLocked wakes every waiter; callers hold mu.
func (j *job) signalLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendPick records one greedy pick and wakes trace streams. It is the
// fairim.Config.OnIteration callback, called synchronously from the
// solver goroutine.
func (j *job) appendPick(st fairim.IterationStat) {
	j.mu.Lock()
	j.trace = append(j.trace, TraceEvent{
		Iteration: len(j.trace) + 1,
		Seed:      st.Seed,
		Objective: st.Objective,
		Total:     st.Total,
		NormGroup: st.NormGroup,
	})
	j.signalLocked()
	j.mu.Unlock()
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.signalLocked()
	j.mu.Unlock()
}

func (j *job) finish(resp *SolveResponse, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.result = resp
	}
	j.signalLocked()
	j.mu.Unlock()
}

// JobStatus is the wire form of a job, returned by POST /v1/jobs (202)
// and GET /v1/jobs/{id}.
type JobStatus struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Graph   string `json:"graph"`
	Problem string `json:"problem"`
	// Picks counts greedy iterations completed so far — live progress for
	// pollers who do not consume the SSE trace.
	Picks     int            `json:"picks"`
	Error     string         `json:"error,omitempty"`
	Result    *SolveResponse `json:"result,omitempty"`
	StatusURL string         `json:"status_url"`
	TraceURL  string         `json:"trace_url"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.id,
		Status:    j.state,
		Graph:     j.graphN,
		Problem:   j.problem,
		Picks:     len(j.trace),
		Error:     j.errMsg,
		Result:    j.result,
		StatusURL: "/v1/jobs/" + j.id,
		TraceURL:  "/v1/jobs/" + j.id + "/trace",
	}
}

// JobStats counts jobs by lifecycle state; done/failed are cumulative
// (they survive retention eviction).
type JobStats struct {
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
	Done    int64 `json:"done"`
	Failed  int64 `json:"failed"`
}

// jobStore indexes jobs by id, bounds how many are active at once, and
// retains a bounded history of finished jobs.
type jobStore struct {
	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // insertion order, for retention eviction
	maxActive int
	done      int64 // cumulative, incl. evicted
	failed    int64
}

func newJobStore(maxActive int) *jobStore {
	if maxActive <= 0 {
		maxActive = 64
	}
	return &jobStore{jobs: map[string]*job{}, maxActive: maxActive}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: job id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// add registers a new queued job, enforcing the active cap and evicting
// the oldest finished jobs beyond retention.
func (st *jobStore) add(graphName, problem string) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	active := 0
	for _, j := range st.order {
		j.mu.Lock()
		if j.state == JobQueued || j.state == JobRunning {
			active++
		}
		j.mu.Unlock()
	}
	if active >= st.maxActive {
		return nil, ErrCapacity
	}
	j := &job{
		id:      newJobID(),
		graphN:  graphName,
		problem: problem,
		created: time.Now(),
		state:   JobQueued,
		notify:  make(chan struct{}),
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j)
	st.evictLocked()
	return j, nil
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
func (st *jobStore) evictLocked() {
	if len(st.order) <= jobRetention {
		return
	}
	kept := st.order[:0]
	excess := len(st.order) - jobRetention
	for _, j := range st.order {
		j.mu.Lock()
		finished := j.state == JobDone || j.state == JobFailed
		j.mu.Unlock()
		if excess > 0 && finished {
			delete(st.jobs, j.id)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	st.order = kept
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

func (st *jobStore) noteFinished(failed bool) {
	st.mu.Lock()
	if failed {
		st.failed++
	} else {
		st.done++
	}
	st.mu.Unlock()
}

func (st *jobStore) stats() JobStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := JobStats{Done: st.done, Failed: st.failed}
	for _, j := range st.order {
		j.mu.Lock()
		switch j.state {
		case JobQueued:
			out.Queued++
		case JobRunning:
			out.Running++
		}
		j.mu.Unlock()
	}
	return out
}

func (st *jobStore) list() []JobStatus {
	st.mu.Lock()
	jobs := append([]*job(nil), st.order...)
	st.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		s := j.status()
		s.Result = nil // keep the listing light; fetch one job for the result
		out[i] = s
	}
	return out
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve the graph synchronously so unknown names are a 404 at
	// submission, not a failed job discovered later.
	g, ok := s.getGraph(w, req.Graph)
	if !ok {
		return
	}
	j, err := s.jobs.add(req.Graph, spec.Problem.String())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "job queue full; retry later")
		return
	}
	go s.runJob(j, g, req.Graph, spec)
	writeJSON(w, http.StatusAccepted, j.status())
}

// startGate wraps a workerGate so the job flips from "queued" to
// "running" only when it first actually holds a worker slot — until then
// GET /v1/jobs/{id} and the /v1/stats queue counters report the backlog
// truthfully.
type startGate struct {
	workerGate
	once    *sync.Once
	started func()
}

func (g startGate) acquire(ctx context.Context) bool {
	if !g.workerGate.acquire(ctx) {
		return false
	}
	g.once.Do(g.started)
	return true
}

// runJob executes one submitted solve. It runs detached from the
// submitting request: the sample build and solve gate on the shared
// worker pool without a queue timeout (blockingGate), and every greedy
// pick is forwarded to the job's trace buffer for streaming. The job
// stays "queued" until the solve first holds a worker slot.
func (s *Server) runJob(j *job, g *graph.Graph, graphName string, spec fairim.ProblemSpec) {
	gate := startGate{workerGate: blockingGate{s}, once: &sync.Once{}, started: j.setRunning}
	resp, err := s.solve(context.Background(), gate, graphName, g, spec, j.appendPick)
	if resp != nil {
		// The job trace is streamed separately; keep the stored result to
		// the synchronous shape (trace only when the request asked).
		if !spec.Trace {
			resp.Trace = nil
		}
	}
	j.finish(resp, err)
	s.jobs.noteFinished(err != nil)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.jobs.list()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobTrace streams the job's greedy picks as server-sent events:
// one "pick" event per iteration (replaying history first, then live),
// then a terminal "done" event carrying the final status. The stream ends
// when the job finishes or the client disconnects.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sent := 0
	for {
		j.mu.Lock()
		pending := append([]TraceEvent(nil), j.trace[sent:]...)
		state := j.state
		errMsg := j.errMsg
		notify := j.notify
		j.mu.Unlock()

		for _, ev := range pending {
			if err := writeSSE(w, "pick", ev); err != nil {
				return
			}
			sent++
		}
		if len(pending) > 0 {
			fl.Flush()
		}
		if state == JobDone || state == JobFailed {
			_ = writeSSE(w, "done", struct {
				Status string `json:"status"`
				Picks  int    `json:"picks"`
				Error  string `json:"error,omitempty"`
			}{Status: state, Picks: sent, Error: errMsg})
			fl.Flush()
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one server-sent event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
