package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"fairtcim/internal/cluster"
)

// The standalone routing tier (fairtcimd -route). A Router holds no
// graphs and builds no sketches: it computes the same consistent-hash
// ring the replicas do (its own self is empty, so it owns nothing) and
// relays every request to the key's owner with the same bounded
// failover, so clients can talk to one stable address while the fleet
// behind it scales, drains and recovers. Responses pass through
// verbatim — including error envelopes — and forwarded requests carry
// the proxied header, so a replica receiving them always serves locally
// even if its own ring view briefly disagrees with the router's.

// RouterConfig parametrizes NewRouter.
type RouterConfig struct {
	// Replicas are the fleet members' base URLs (required, non-empty).
	// Every replica should run with -peers naming the same fleet so the
	// router and the replicas agree on key ownership.
	Replicas []string
	// VirtualNodes per ring member; <= 0 means cluster.DefaultVirtualNodes.
	VirtualNodes int
	// ProbeInterval is the replica health-probe period; <= 0 means 2s.
	ProbeInterval time.Duration
	// Client issues the forwarded requests and probes; nil means a client
	// with a 30s timeout.
	Client *http.Client
	// RequestLog, when non-nil, receives the structured access log (one
	// JSON line per routed request); see Config.RequestLog.
	RequestLog io.Writer
}

// Router routes requests across a replica fleet without serving any
// itself. Construct with NewRouter, mount via Handler, and run
// RunProbes for the process lifetime so dead replicas are ejected.
type Router struct {
	cs      *clusterState
	mux     *http.ServeMux
	metrics *httpMetrics
}

// NewRouter builds a Router over cfg.Replicas.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("server: RouterConfig.Replicas is required")
	}
	c := cluster.New(cluster.Config{
		Peers:         cfg.Replicas,
		VirtualNodes:  cfg.VirtualNodes,
		ProbeInterval: cfg.ProbeInterval,
		Client:        cfg.Client,
	})
	rt := &Router{cs: newClusterState(c, nil), mux: http.NewServeMux(), metrics: newHTTPMetrics(cfg.RequestLog)}
	rt.mux.HandleFunc("POST /v1/select", rt.handleSelect)
	rt.mux.HandleFunc("POST /v1/select/batch", rt.handleSelectBatch)
	rt.mux.HandleFunc("POST /v1/estimate", rt.handleAny)
	rt.mux.HandleFunc("POST /v1/jobs", rt.handleJobSubmit)
	rt.mux.HandleFunc("GET /v1/jobs", rt.handleJobList)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJob)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/trace", rt.handleJob)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/graphs", rt.handleAny)
	rt.mux.HandleFunc("GET /v1/graphs/{name}", rt.handleAny)
	rt.mux.HandleFunc("POST /v1/graphs/{name}/updates", rt.handleAny)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// Handler returns the router's HTTP handler, instrumented like the
// replica's (per-route metrics, optional access log).
func (rt *Router) Handler() http.Handler { return rt.metrics.wrap(rt.mux) }

// RunProbes drives periodic replica health probes until ctx ends; see
// Server.RunClusterProbes.
func (rt *Router) RunProbes(ctx context.Context) {
	rt.cs.c.Monitor().Run(ctx)
}

// Stats snapshots the router's cluster counters.
func (rt *Router) Stats() cluster.Stats { return rt.cs.c.Stats() }

// order returns every replica with the live ones first — the attempt
// order for requests any replica can answer. Down replicas stay on the
// list as a last resort: the probe view may be stale, and a dial that
// fails costs one failover, while dropping the only live replica costs
// the request.
func (rt *Router) order() []string {
	members := rt.cs.c.Peers()
	out := make([]string, 0, len(members))
	var down []string
	mon := rt.cs.c.Monitor()
	for _, m := range members {
		if mon.Alive(m) {
			out = append(out, m)
		} else {
			down = append(down, m)
		}
	}
	return append(out, down...)
}

// candidates returns the keyed failover order, falling back to "try
// everyone" when health probes have ejected the whole fleet.
func (rt *Router) candidates(key string) []string {
	if cands := rt.cs.c.Candidates(key); len(cands) > 0 {
		return cands
	}
	return rt.order()
}

// handleSelect routes POST /v1/select to the spec's owner.
func (rt *Router) handleSelect(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req SolveRequest
	if !decodeStrict(w, body, &req) {
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
		return
	}
	rt.cs.proxy(w, r, rt.candidates(routeKeyFor(req.Graph, spec)), "/v1/select", body, nil)
}

// handleSelectBatch routes a uniform batch to its common owner; a mixed
// batch goes to any live replica, which coalesces and answers it whole.
func (rt *Router) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req BatchSolveRequest
	if !decodeStrict(w, body, &req) {
		return
	}
	cands := rt.order()
	if key, uniform := batchRouteKey(req.Requests); uniform {
		cands = rt.candidates(key)
	}
	rt.cs.proxy(w, r, cands, "/v1/select/batch", body, nil)
}

// handleJobSubmit routes POST /v1/jobs like a solve and remembers which
// replica accepted the job, so polls and traces for its id route back.
func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req SolveRequest
	if !decodeStrict(w, body, &req) {
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
		return
	}
	rt.cs.proxy(w, r, rt.candidates(routeKeyFor(req.Graph, spec)), "/v1/jobs", body, func(peer string, status int, data []byte) {
		var js JobStatus
		if status == http.StatusAccepted && json.Unmarshal(data, &js) == nil && js.ID != "" {
			rt.cs.rememberJob(js.ID, peer)
		}
	})
}

// handleJob serves GET/DELETE /v1/jobs/{id} and the trace stream: a
// remembered route forwards straight to the owner; an unknown id (the
// router restarted, or the job was submitted directly to a replica) is
// found by scanning the fleet for the first non-404 answer, and the
// discovered owner is remembered for next time.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rt.cs.forwardJob(w, r, id) {
		return
	}
	for _, m := range rt.order() {
		resp, err := rt.cs.c.Forward(r.Context(), m, r.Method, r.URL.Path, nil, proxyHeader())
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			rt.cs.c.Failovers.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		rt.cs.rememberJob(id, m)
		rt.cs.c.Proxied.Add(1)
		cluster.CopyResponse(w, resp)
		return
	}
	writeError(w, http.StatusNotFound, CodeJobNotFound, "unknown job %q", id)
}

// handleJobList merges every replica's job listing into one. Replicas
// that cannot be reached are skipped — a partial listing beats a 502
// for an observability endpoint.
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	all := []JobStatus{}
	for _, m := range rt.order() {
		resp, err := rt.cs.c.Forward(r.Context(), m, http.MethodGet, "/v1/jobs", nil, proxyHeader())
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			rt.cs.c.Failovers.Add(1)
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		var lr listing
		if rerr == nil && json.Unmarshal(data, &lr) == nil {
			all = append(all, lr.Jobs...)
		}
	}
	writeJSON(w, http.StatusOK, listing{Jobs: all})
}

// handleAny relays a request any replica can answer (graph reads,
// estimates, updates) to the first reachable one. Updates forwarded this
// way carry no fanout header, so the receiving replica fans the batch
// out to the rest of the fleet itself.
func (rt *Router) handleAny(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	rt.cs.proxy(w, r, rt.order(), r.URL.Path, body, nil)
}

// RouterStatsResponse is the router's GET /v1/stats body: only the
// cluster_* counter family — a router has no cache, workers or jobs.
type RouterStatsResponse struct {
	Role    string        `json:"role"`
	Cluster cluster.Stats `json:"cluster"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, RouterStatsResponse{Role: "router", Cluster: rt.Stats()})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.writeProm(w)
	writeClusterStats(w, rt.Stats())
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		PeersUp int    `json:"peers_up"`
	}{Status: "ok", Role: "router", PeersUp: rt.cs.c.Monitor().UpCount()})
}
