package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// startFleet starts n replicas that all know each other (each one's
// Peers list is the other n-1), with real listeners bound before any
// server starts so every Config carries final URLs. Returns the servers
// and their base URLs, index-aligned.
func startFleet(t *testing.T, n int, mod func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*Server, n)
	for i := range srvs {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{Registry: testRegistry(t), Peers: peers, SelfURL: urls[i]}
		if mod != nil {
			mod(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = s
		ts := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		t.Cleanup(ts.Close)
	}
	return srvs, urls
}

// postLocal posts body to url+path with the proxied header set, pinning
// the request to the receiving replica regardless of ring ownership —
// the deterministic way to warm or probe a specific replica in tests.
func postLocal(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(proxiedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const clusterSelectBody = `{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50}`

func decodeSolve(t *testing.T, data []byte) SolveResponse {
	t.Helper()
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	return out
}

func TestWireKeyRoundTrip(t *testing.T) {
	keys := []sampleKey{
		{graph: "twostars", version: 3, engine: 1, model: 0, tau: 5, budget: 10, seed: -7, epsBits: 123, deltaBits: 456, sizingK: 4},
		{graph: "a~b/c d%e", version: 1, engine: 0, model: 1, seed: 42, evalOnly: true},
		{graph: "gráph~~name", version: 0, engine: 1},
	}
	for _, k := range keys {
		got, err := parseWireKey(k.wireKey())
		if err != nil {
			t.Fatalf("parse(%q): %v", k.wireKey(), err)
		}
		if got != k {
			t.Fatalf("round trip: got %+v, want %+v", got, k)
		}
	}
	for _, bad := range []string{"", "a~b", "g~x~1~0~0~0~0~0~0~0~0", "g~1~9~0~0~0~0~0~0~0~0", "g~1~1~0~0~0~0~0~0~0~2"} {
		if _, err := parseWireKey(bad); err == nil {
			t.Fatalf("parseWireKey(%q) accepted", bad)
		}
	}
}

// TestSketchStreamParityWithDisk pins the transfer endpoint to the disk
// format: the bytes streamed by GET /v1/sketches/{key} decode under the
// same frame checks as the state file, and the persisted file served
// verbatim is identical to a fresh in-memory framing of the same sample.
func TestSketchStreamParityWithDisk(t *testing.T) {
	s, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	resp, body := postJSON(t, ts.URL+"/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}
	var req SolveRequest
	if err := json.Unmarshal([]byte(clusterSelectBody), &req); err != nil {
		t.Fatal(err)
	}
	spec, err := req.toSpec()
	if err != nil {
		t.Fatal(err)
	}
	g, version, err := s.reg.GetVersioned("twostars")
	if err != nil {
		t.Fatal(err)
	}
	key := sampleKeyFor("twostars", version, g, spec, false)

	fetch := func() []byte {
		res, err := http.Get(ts.URL + "/v1/sketches/" + key.wireKey())
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("sketch fetch: %d %s", res.StatusCode, data)
		}
		return data
	}

	// While the entry is warm the frame is encoded from memory.
	fromMemory := fetch()
	s.WaitFlushes()
	raw, ok := s.cache.disk.rawFrame(key)
	if !ok {
		t.Fatal("no persisted frame after WaitFlushes")
	}
	if !bytes.Equal(fromMemory, raw) {
		t.Fatalf("streamed frame (%d bytes) != persisted frame (%d bytes)", len(fromMemory), len(raw))
	}
	// Dropping the memory entry forces the raw-file path; still identical.
	s.cache.mu.Lock()
	s.cache.entries = map[sampleKey]*cacheEntry{}
	s.cache.lru.Init()
	s.cache.mu.Unlock()
	if fromDisk := fetch(); !bytes.Equal(fromDisk, raw) {
		t.Fatal("raw-file fetch differs from persisted frame")
	}

	if res, err := http.Get(ts.URL + "/v1/sketches/not-a-key"); err != nil {
		t.Fatal(err)
	} else {
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad key: status %d", res.StatusCode)
		}
	}
}

// TestPeerFetchColdReplica is the in-process version of the CI smoke: a
// cold replica with no shared state dir answers its first repeat query by
// fetching the owner's frame, building nothing.
func TestPeerFetchColdReplica(t *testing.T) {
	srvs, urls := startFleet(t, 2, nil)
	resp, warmBody := postLocal(t, urls[0], "/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm select: %d %s", resp.StatusCode, warmBody)
	}
	resp, coldBody := postLocal(t, urls[1], "/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold select: %d %s", resp.StatusCode, coldBody)
	}
	warm, cold := decodeSolve(t, warmBody), decodeSolve(t, coldBody)
	if fmt.Sprint(warm.Seeds) != fmt.Sprint(cold.Seeds) || warm.Total != cold.Total {
		t.Fatalf("peer-fetched answer differs: %v/%v vs %v/%v", warm.Seeds, warm.Total, cold.Seeds, cold.Total)
	}
	if !cold.CacheHit {
		t.Fatal("peer-fetched sample should report cache_hit=true")
	}
	cs := srvs[1].ClusterStats()
	if cs.PeerFetches != 1 || cs.PeerFetchBytes <= 0 {
		t.Fatalf("cold replica: peer_fetches=%d bytes=%d, want 1/>0", cs.PeerFetches, cs.PeerFetchBytes)
	}
	if builds := srvs[1].CacheStats().Builds; builds != 0 {
		t.Fatalf("cold replica built %d samples, want 0", builds)
	}
	// The fetched sample is persisted like a local build would be — but
	// these replicas run memory-only, so just confirm the warm replica
	// didn't double count.
	if b := srvs[0].CacheStats().Builds; b != 1 {
		t.Fatalf("warm replica builds=%d, want 1", b)
	}
}

// TestPeerFetchCorruptFrame: a peer streaming garbage (or truncated
// frames) bumps peer_fetch_errors and degrades to a local cold build —
// the request still succeeds with a correct answer.
func TestPeerFetchCorruptFrame(t *testing.T) {
	for name, frame := range map[string][]byte{
		"garbage":   []byte("definitely not a persist frame"),
		"truncated": []byte("FTCWARM1\x02"),
		"empty":     nil,
	} {
		t.Run(name, func(t *testing.T) {
			fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/healthz" {
					w.WriteHeader(http.StatusOK)
					return
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				_, _ = w.Write(frame)
			}))
			defer fake.Close()
			s, ts := newTestServer(t, Config{Peers: []string{fake.URL}, SelfURL: "http://self.invalid"})
			resp, body := postLocal(t, ts.URL, "/v1/select", clusterSelectBody)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("select: %d %s", resp.StatusCode, body)
			}
			out := decodeSolve(t, body)
			if len(out.Seeds) != 2 {
				t.Fatalf("got %d seeds, want 2", len(out.Seeds))
			}
			cs := s.ClusterStats()
			if cs.PeerFetchErrors < 1 {
				t.Fatalf("peer_fetch_errors=%d, want >=1", cs.PeerFetchErrors)
			}
			if cs.PeerFetches != 0 {
				t.Fatalf("peer_fetches=%d, want 0", cs.PeerFetches)
			}
			if b := s.CacheStats().Builds; b != 1 {
				t.Fatalf("builds=%d, want 1 (cold build fallback)", b)
			}
		})
	}
}

// TestConcurrentPeerFetchSingleflight races many identical queries at a
// cold replica whose peer holds the frame: singleflight must collapse
// them onto one peer fetch (zero builds), every response identical. Run
// under -race this also exercises the fetch/build interleavings.
func TestConcurrentPeerFetchSingleflight(t *testing.T) {
	srvs, urls := startFleet(t, 2, nil)
	if resp, body := postLocal(t, urls[0], "/v1/select", clusterSelectBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm select: %d %s", resp.StatusCode, body)
	}
	const racers = 8
	seeds := make([]string, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, urls[1]+"/v1/select", strings.NewReader(clusterSelectBody))
			if err != nil {
				seeds[i] = err.Error()
				return
			}
			req.Header.Set(proxiedHeader, "1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				seeds[i] = err.Error()
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var out SolveResponse
			if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &out) != nil {
				seeds[i] = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, data)
				return
			}
			seeds[i] = fmt.Sprint(out.Seeds)
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if seeds[i] != seeds[0] {
			t.Fatalf("racer %d answer %q != racer 0 %q", i, seeds[i], seeds[0])
		}
	}
	if b := srvs[1].CacheStats().Builds; b != 0 {
		t.Fatalf("cold replica builds=%d, want 0", b)
	}
	if pf := srvs[1].ClusterStats().PeerFetches; pf != 1 {
		t.Fatalf("peer_fetches=%d, want 1 (singleflight)", pf)
	}
}

// ownerOf returns which fleet index owns the canonical test request.
func ownerOf(t *testing.T, srvs []*Server, urls []string) (owner, other int) {
	t.Helper()
	var req SolveRequest
	if err := json.Unmarshal([]byte(clusterSelectBody), &req); err != nil {
		t.Fatal(err)
	}
	spec, err := req.toSpec()
	if err != nil {
		t.Fatal(err)
	}
	own := srvs[0].cluster.c.Owner(routeKeyFor(req.Graph, spec))
	for i, u := range urls {
		if u == own {
			return i, 1 - i
		}
	}
	t.Fatalf("owner %q not in fleet %v", own, urls)
	return 0, 0
}

// TestProxyToOwner: a request landing on the non-owner is proxied to the
// owner, whose cache hosts the build; the non-owner builds nothing.
func TestProxyToOwner(t *testing.T) {
	srvs, urls := startFleet(t, 2, nil)
	owner, other := ownerOf(t, srvs, urls)
	resp, body := postJSON(t, urls[other]+"/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select at non-owner: %d %s", resp.StatusCode, body)
	}
	if len(decodeSolve(t, body).Seeds) != 2 {
		t.Fatalf("bad answer: %s", body)
	}
	if p := srvs[other].ClusterStats().Proxied; p != 1 {
		t.Fatalf("non-owner proxied=%d, want 1", p)
	}
	if b := srvs[other].CacheStats().Builds; b != 0 {
		t.Fatalf("non-owner builds=%d, want 0", b)
	}
	if b := srvs[owner].CacheStats().Builds; b != 1 {
		t.Fatalf("owner builds=%d, want 1", b)
	}
	// Batch requests with one uniform route key take the same proxy path.
	batch := fmt.Sprintf(`{"requests":[%s,%s]}`, clusterSelectBody, clusterSelectBody)
	resp, body = postJSON(t, urls[other]+"/v1/select/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch at non-owner: %d %s", resp.StatusCode, body)
	}
	if p := srvs[other].ClusterStats().Proxied; p != 2 {
		t.Fatalf("non-owner proxied=%d after batch, want 2", p)
	}
}

// TestFailoverAfterOwnerDeath builds the fleet by hand so the owner's
// listener can be closed mid-test: the surviving replica must fail over
// and answer locally with a cold build.
func TestFailoverAfterOwnerDeath(t *testing.T) {
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*Server, 2)
	tss := make([]*httptest.Server, 2)
	for i := range srvs {
		s, err := New(Config{Registry: testRegistry(t), Peers: []string{urls[1-i]}, SelfURL: urls[i]})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = s
		tss[i] = &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: s.Handler()}}
		tss[i].Start()
		t.Cleanup(tss[i].Close)
	}

	owner, other := ownerOf(t, srvs, urls)
	tss[owner].Close() // the owner is gone

	resp, body := postJSON(t, urls[other]+"/v1/select", clusterSelectBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select after owner death: %d %s", resp.StatusCode, body)
	}
	if len(decodeSolve(t, body).Seeds) != 2 {
		t.Fatalf("bad answer: %s", body)
	}
	cs := srvs[other].ClusterStats()
	if cs.Failovers < 1 {
		t.Fatalf("failovers=%d, want >=1", cs.Failovers)
	}
	if b := srvs[other].CacheStats().Builds; b != 1 {
		t.Fatalf("survivor builds=%d, want 1 (local cold build)", b)
	}
}

// TestUpdateFanout: an update posted to one replica converges the fleet;
// a drifted peer surfaces version_conflict in the origin's response.
func TestUpdateFanout(t *testing.T) {
	srvs, urls := startFleet(t, 2, nil)
	update := `{"edges":[{"from":0,"to":5,"p":0.9}]}`

	resp, body := postJSON(t, urls[0]+"/v1/graphs/twostars/updates", update)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	var out GraphUpdateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Peers) != 1 {
		t.Fatalf("fanout rows: %d, want 1: %s", len(out.Peers), body)
	}
	if out.Peers[0].Code != "" || out.Peers[0].Version != out.Version {
		t.Fatalf("peer did not converge: %+v (origin version %d)", out.Peers[0], out.Version)
	}
	if _, v, err := srvs[1].reg.GetVersioned("twostars"); err != nil || v != out.Version {
		t.Fatalf("peer registry at version %d (err %v), want %d", v, err, out.Version)
	}
	if f := srvs[0].ClusterStats().UpdateFanouts; f != 1 {
		t.Fatalf("update_fanouts=%d, want 1", f)
	}

	// Drift the peer: apply a batch only there (fanout header suppresses
	// its own re-fanout), then update at the origin again — the fanout row
	// must carry version_conflict.
	req, err := http.NewRequest(http.MethodPost, urls[1]+"/v1/graphs/twostars/updates", strings.NewReader(update))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(fanoutHeader, "1")
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drift update: %d", dresp.StatusCode)
	}

	resp, body = postJSON(t, urls[0]+"/v1/graphs/twostars/updates", update)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drift update: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Peers) != 1 || out.Peers[0].Code != CodeVersionConflict {
		t.Fatalf("drifted peer row = %+v, want version_conflict", out.Peers)
	}
}

// TestJobForwarding: a job submitted at the non-owner is proxied to the
// owner and remembered, so status polls and cancels at the entry replica
// forward transparently.
func TestJobForwarding(t *testing.T) {
	srvs, urls := startFleet(t, 2, nil)
	_, other := ownerOf(t, srvs, urls)
	resp, body := postJSON(t, urls[other]+"/v1/jobs", clusterSelectBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if _, ok := srvs[other].cluster.jobRoute(st.ID); !ok {
		t.Fatalf("job %s not remembered at the proxying replica", st.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := http.Get(urls[other] + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", res.StatusCode, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == JobDone {
			if st.Result == nil || len(st.Result.Seeds) != 2 {
				t.Fatalf("done without result: %s", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The job never existed locally at the entry replica.
	if _, ok := srvs[other].jobs.get(st.ID); ok {
		t.Fatal("job ran at the non-owner")
	}
}
