package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

func mustDisk(t *testing.T, dir string) *diskStore {
	t.Helper()
	d, err := newDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sampleUtilities projects a sample onto comparable numbers: the group
// utilities of a fixed two-seed set under its estimator.
func sampleUtilities(t *testing.T, smp *sample, tau int32) []float64 {
	t.Helper()
	est, err := smp.newEstimator(tau)
	if err != nil {
		t.Fatal(err)
	}
	est.Add(0)
	est.Add(11)
	return est.GroupUtilities()
}

// TestCacheDiskRoundTrip: a second cache over the same state dir serves
// the key from disk — no rebuild — and the loaded sample estimates
// identically, for both engines.
func TestCacheDiskRoundTrip(t *testing.T) {
	g := generate.TwoStars()
	dir := t.TempDir()
	keys := []sampleKey{
		{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 500, seed: 1},
		{graph: "twostars", engine: fairim.EngineForwardMC, model: cascade.IC, budget: 60, seed: 1},
		{graph: "twostars", engine: fairim.EngineForwardMC, model: cascade.LT, budget: 40, seed: 2},
	}

	cold := NewCache(8)
	cold.disk = mustDisk(t, dir)
	want := make([][]float64, len(keys))
	for i, key := range keys {
		smp, hit, _, err := cold.SampleFor(context.Background(), key, g, 1, nil)
		if err != nil || hit {
			t.Fatalf("cold build %d: hit=%v err=%v", i, hit, err)
		}
		want[i] = sampleUtilities(t, smp, 3)
	}
	// Persistence is write-behind; drain it before reading the disk tier.
	cold.WaitFlushes()
	st := cold.Stats()
	if st.DiskWrites != int64(len(keys)) || st.DiskHits != 0 || st.DiskErrors != 0 {
		t.Fatalf("cold cache disk counters: %+v", st)
	}
	if st.FlushesInFlight != 0 {
		t.Fatalf("flushes in flight after WaitFlushes: %+v", st)
	}

	warm := NewCache(8)
	warm.disk = mustDisk(t, dir)
	for i, key := range keys {
		smp, hit, _, err := warm.SampleFor(context.Background(), key, g, 1, nil)
		if err != nil {
			t.Fatalf("warm load %d: %v", i, err)
		}
		if !hit {
			t.Fatalf("warm load %d not reported as a hit", i)
		}
		got := sampleUtilities(t, smp, 3)
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("key %d: disk-loaded utilities %v, want byte-identical %v", i, got, want[i])
			}
		}
	}
	st = warm.Stats()
	if st.Builds != 0 || st.DiskHits != int64(len(keys)) || st.DiskErrors != 0 {
		t.Fatalf("warm cache rebuilt: %+v", st)
	}
}

// TestServerWarmRestart is the acceptance criterion end to end: a daemon
// restarted on the same state dir answers its first repeat query from
// disk — cache_hit=true, zero builds — with byte-identical results, and
// its job history survives.
func TestServerWarmRestart(t *testing.T) {
	stateDir := t.TempDir()
	body := `{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","samples":50,"eval":"sample"}`

	s1, ts1 := newTestServer(t, Config{StateDir: stateDir})
	resp, raw := postJSON(t, ts1.URL+"/v1/select", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first select: %s", raw)
	}
	var first SolveResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	// A finished job for the history check.
	job := submitJob(t, ts1.URL, body)
	if final := pollJob(t, ts1.URL, job.ID, 30*time.Second); final.Status != JobDone {
		t.Fatalf("job ended %q", final.Status)
	}
	// Persistence is write-behind; drain it before "restarting".
	s1.WaitFlushes()
	ts1.Close()

	// "Restart": a fresh server over the same state dir.
	s2, ts2 := newTestServer(t, Config{StateDir: stateDir})
	resp, raw = postJSON(t, ts2.URL+"/v1/select", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart select: %s", raw)
	}
	var second SolveResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("first post-restart select did not report cache_hit")
	}
	if fmt.Sprint(second.Seeds) != fmt.Sprint(first.Seeds) ||
		second.Total != first.Total || second.Disparity != first.Disparity {
		t.Errorf("post-restart result differs: %+v vs %+v", second.UtilityReport, first.UtilityReport)
	}
	stats := s2.Stats()
	if stats.Cache.Builds != 0 || stats.Cache.DiskHits < 1 {
		t.Errorf("restart re-sampled: %+v", stats.Cache)
	}
	if stats.StateDir != stateDir {
		t.Errorf("stats state_dir = %q", stats.StateDir)
	}
	if stats.Jobs.Done < 1 {
		t.Errorf("job history lost: %+v", stats.Jobs)
	}

	// The journaled job is listed and still carries its result.
	restored, ok := s2.jobs.get(job.ID)
	if !ok {
		t.Fatal("finished job missing after restart")
	}
	st := restored.status()
	if st.Status != JobDone || st.Result == nil || len(st.Result.Seeds) != 2 || st.Picks != 2 {
		t.Errorf("restored job: %+v", st)
	}
}

// TestCacheDiskRejectsCorrupt: a bit-rotted state file degrades to a cold
// build (counted in disk_errors), never an error or a wrong answer.
func TestCacheDiskRejectsCorrupt(t *testing.T) {
	g := generate.TwoStars()
	dir := t.TempDir()
	key := sampleKey{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 200, seed: 1}

	c1 := NewCache(8)
	c1.disk = mustDisk(t, dir)
	smp, _, _, err := c1.SampleFor(context.Background(), key, g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleUtilities(t, smp, 3)
	c1.WaitFlushes()

	path := c1.disk.fileName(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(8)
	c2.disk = mustDisk(t, dir)
	smp, hit, _, err := c2.SampleFor(context.Background(), key, g, 1, nil)
	if err != nil {
		t.Fatalf("corrupt file surfaced as an error: %v", err)
	}
	if hit {
		t.Error("corrupt file served as a hit")
	}
	got := sampleUtilities(t, smp, 3)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cold rebuild differs: %v vs %v", got, want)
		}
	}
	st := c2.Stats()
	if st.Builds != 1 || st.DiskErrors < 1 || st.DiskHits != 0 {
		t.Fatalf("corrupt-file counters: %+v", st)
	}
	// The rebuild rewrote the file; a third cache loads it cleanly.
	c2.WaitFlushes()
	c3 := NewCache(8)
	c3.disk = mustDisk(t, dir)
	if _, hit, _, err := c3.SampleFor(context.Background(), key, g, 1, nil); err != nil || !hit {
		t.Fatalf("rewritten file not loadable: hit=%v err=%v", hit, err)
	}
}

// TestCacheDiskRejectsWrongGraph: a state file written for one graph is
// rejected by fingerprint when the same registry name now resolves to a
// different graph (regenerated data, changed labels, ...).
func TestCacheDiskRejectsWrongGraph(t *testing.T) {
	dir := t.TempDir()
	key := sampleKey{graph: "g", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 100, seed: 1}

	c1 := NewCache(8)
	c1.disk = mustDisk(t, dir)
	if _, _, _, err := c1.SampleFor(context.Background(), key, generate.TwoStars(), 1, nil); err != nil {
		t.Fatal(err)
	}
	c1.WaitFlushes()

	other, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(8)
	c2.disk = mustDisk(t, dir)
	smp, hit, _, err := c2.SampleFor(context.Background(), key, other, 1, nil)
	if err != nil || smp == nil {
		t.Fatalf("mismatched file broke the request: %v", err)
	}
	if hit {
		t.Error("sketch for a different graph served as a hit")
	}
	if st := c2.Stats(); st.Builds != 1 || st.DiskErrors < 1 {
		t.Fatalf("wrong-graph counters: %+v", st)
	}
}

// TestCacheDiskLoadsV1Frame: a state file written by the previous
// release — a version-1 frame in the offset+target world layout — still
// loads through the disk tier with no rebuild and estimates identically.
// The v1 payload is hand-encoded here exactly as the old codec wrote it.
func TestCacheDiskLoadsV1Frame(t *testing.T) {
	g := generate.TwoStars()
	key := sampleKey{graph: "twostars", engine: fairim.EngineForwardMC, model: cascade.IC, budget: 40, seed: 3}

	worlds := cascade.SampleWorlds(g, cascade.IC, 40, 3, 1)
	var e persist.Enc
	e.I64(int64(len(worlds)))
	for _, w := range worlds {
		offsets := make([]int32, g.N()+1)
		var targets []int32
		for v := 0; v < g.N(); v++ {
			for _, u := range w.Out(graph.NodeID(v)) {
				targets = append(targets, int32(u))
			}
			offsets[v+1] = int32(len(targets))
		}
		e.I32s(offsets)
		e.I32s(targets)
	}

	d := mustDisk(t, t.TempDir())
	meta := persist.Meta{Kind: cascade.WorldCodecKind, Version: 1, Fingerprint: persist.GraphFingerprint(g)}
	if err := persist.Save(d.fileName(key), meta, e.Bytes()); err != nil {
		t.Fatal(err)
	}

	c := NewCache(8)
	c.disk = d
	smp, hit, _, err := c.SampleFor(context.Background(), key, g, 1, nil)
	if err != nil || !hit {
		t.Fatalf("v1 frame load: hit=%v err=%v", hit, err)
	}
	want := sampleUtilities(t, &sample{g: g, worlds: worlds}, 3)
	got := sampleUtilities(t, smp, 3)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("v1-loaded utilities %v, want byte-identical %v", got, want)
		}
	}
	if st := c.Stats(); st.Builds != 0 || st.DiskHits != 1 || st.DiskErrors != 0 {
		t.Fatalf("v1 frame counters: %+v", st)
	}
}

// TestCacheDiskRejectsWrongVersion: a frame from a different codec
// version is rejected and rebuilt cold.
func TestCacheDiskRejectsWrongVersion(t *testing.T) {
	g := generate.TwoStars()
	dir := t.TempDir()
	key := sampleKey{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 100, seed: 1}

	c1 := NewCache(8)
	c1.disk = mustDisk(t, dir)
	if _, _, _, err := c1.SampleFor(context.Background(), key, g, 1, nil); err != nil {
		t.Fatal(err)
	}
	c1.WaitFlushes()
	// Re-frame the valid payload under a future codec version.
	path := c1.disk.fileName(key)
	meta := c1.disk.meta(key, g)
	payload, err := persist.Load(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	meta.Version++
	if err := persist.Save(path, meta, payload); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(8)
	c2.disk = mustDisk(t, dir)
	if _, hit, _, err := c2.SampleFor(context.Background(), key, g, 1, nil); err != nil || hit {
		t.Fatalf("version-skewed file: hit=%v err=%v", hit, err)
	}
	if st := c2.Stats(); st.Builds != 1 || st.DiskErrors < 1 {
		t.Fatalf("version-skew counters: %+v", st)
	}
}

// TestCacheDiskConcurrent exercises concurrent save/load through two
// caches sharing one state dir under -race: per-key singleflight within a
// cache, atomic file replacement across caches.
func TestCacheDiskConcurrent(t *testing.T) {
	g := generate.TwoStars()
	dir := t.TempDir()
	a := NewCache(16)
	a.disk = mustDisk(t, dir)
	b := NewCache(16)
	b.disk = mustDisk(t, dir)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		for _, c := range []*Cache{a, b} {
			wg.Add(1)
			go func(c *Cache, w int) {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					key := sampleKey{
						graph:  "twostars",
						engine: fairim.EngineRIS,
						model:  cascade.IC,
						tau:    3,
						budget: 100 + 50*(i%2),
						seed:   int64(1 + w%2),
					}
					smp, _, _, err := c.SampleFor(context.Background(), key, g, 1, nil)
					if err != nil || smp == nil {
						t.Errorf("concurrent SampleFor: %v", err)
						return
					}
					if est, err := smp.newEstimator(3); err != nil || est == nil {
						t.Errorf("concurrent newEstimator: %v", err)
						return
					}
				}
			}(c, w)
		}
	}
	wg.Wait()
	for _, c := range []*Cache{a, b} {
		c.WaitFlushes()
		if st := c.Stats(); st.DiskErrors != 0 {
			t.Errorf("disk errors under concurrency: %+v", st)
		}
	}
}

// TestDiskFileNames: distinct keys land on distinct files, equal keys on
// the same one, and hostile graph names cannot escape the state dir.
func TestDiskFileNames(t *testing.T) {
	d := mustDisk(t, t.TempDir())
	k1 := sampleKey{graph: "g", engine: fairim.EngineRIS, tau: 3, budget: 10, seed: 1}
	k2 := k1
	k2.seed = 2
	if d.fileName(k1) != d.fileName(k1) {
		t.Error("file name not deterministic")
	}
	if d.fileName(k1) == d.fileName(k2) {
		t.Error("distinct keys share a file")
	}
	evil := sampleKey{graph: "../../etc/passwd", engine: fairim.EngineRIS}
	name := d.fileName(evil)
	if filepath.Dir(name) != d.dir {
		t.Errorf("hostile graph name escaped the state dir: %q", name)
	}
}

// graphFingerprintStability: the memoized fingerprint matches the
// package-level one.
func TestDiskFingerprintMemo(t *testing.T) {
	d := mustDisk(t, t.TempDir())
	g := generate.TwoStars()
	if d.fingerprint(g) != persist.GraphFingerprint(g) {
		t.Error("memoized fingerprint differs")
	}
	if d.fingerprint(g) != d.fingerprint(g) {
		t.Error("fingerprint unstable")
	}
}

// TestDiskFileNamesVersioned: the graph version participates in the file
// name, so a post-update request misses cleanly instead of reading the
// pre-update sketch.
func TestDiskFileNamesVersioned(t *testing.T) {
	d := mustDisk(t, t.TempDir())
	k1 := sampleKey{graph: "g", version: 1, engine: fairim.EngineRIS, tau: 3, budget: 10, seed: 1}
	k2 := k1
	k2.version = 2
	if d.fileName(k1) == d.fileName(k2) {
		t.Error("different graph versions share a sketch file")
	}
}

// TestDiskStoreGC: the sketch dir is bounded by total size (LRU order,
// surviving restarts via mtimes) and by age.
func TestDiskStoreGC(t *testing.T) {
	g := generate.TwoStars()
	dir := t.TempDir()
	keys := []sampleKey{
		{graph: "twostars", version: 1, engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 100, seed: 1},
		{graph: "twostars", version: 1, engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 100, seed: 2},
		{graph: "twostars", version: 1, engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 100, seed: 3},
	}
	c := NewCache(8)
	c.disk = mustDisk(t, dir)
	for _, key := range keys {
		if _, _, _, err := c.SampleFor(context.Background(), key, g, 1, nil); err != nil {
			t.Fatal(err)
		}
		c.WaitFlushes() // deterministic save order = key order
	}
	var total int64
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("%d files on disk, want 3", len(names))
	}
	// Separate the mtimes so the startup scan recovers the save order on
	// filesystems with coarse timestamps.
	now := time.Now()
	for i, key := range keys {
		path := c.disk.fileName(key)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
		mt := now.Add(time.Duration(i-len(keys)) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Reopening under a tighter bound prunes the least recently used
	// (oldest mtime) files at startup.
	d2, err := newDiskStore(dir, total-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.gcRemovals.Load(); got < 1 {
		t.Fatalf("gc removals = %d, want >= 1", got)
	}
	if _, err := os.Stat(d2.fileName(keys[0])); !os.IsNotExist(err) {
		t.Fatalf("oldest file should be pruned first: %v", err)
	}
	if _, err := os.Stat(d2.fileName(keys[2])); err != nil {
		t.Fatalf("newest file must survive the size bound: %v", err)
	}

	// An age bound drops everything older than the window.
	stale := time.Now().Add(-48 * time.Hour)
	for _, key := range keys[1:] {
		if err := os.Chtimes(d2.fileName(key), stale, stale); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	if _, err := newDiskStore(dir, 0, time.Hour); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d files survive a 1h age bound at 48h old", len(left))
	}

	// Save-path GC: with room for roughly one file, writing a second
	// evicts the first but never the file just written.
	c2 := NewCache(8)
	d4, err := newDiskStore(dir, total/3+16, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2.disk = d4
	for _, key := range keys[:2] {
		if _, _, _, err := c2.SampleFor(context.Background(), key, g, 1, nil); err != nil {
			t.Fatal(err)
		}
		c2.WaitFlushes()
	}
	if _, err := os.Stat(d4.fileName(keys[1])); err != nil {
		t.Fatalf("just-written file evicted by its own GC pass: %v", err)
	}
	if _, err := os.Stat(d4.fileName(keys[0])); !os.IsNotExist(err) {
		t.Fatalf("LRU file should be evicted on save: %v", err)
	}
	if c2.Stats().DiskGCRemovals < 1 {
		t.Fatalf("stats = %+v, want disk gc removals", c2.Stats())
	}
}
