// Package server is the persistent serving layer: a long-running
// fairtcimd process answers (Fair)TCIM queries over HTTP/JSON instead of
// rebuilding the graph and resampling estimator pools on every CLI
// invocation — the TIM/IMM-style amortization of sketch construction
// across queries.
//
// Request flow (client → server → estimator cache → engines → CSR graph):
//
//   - a Registry loads named graphs once (file-backed or synthetic via
//     internal/generate) and shares the immutable *graph.Graph across
//     all requests;
//   - requests decode directly into a fairim.ProblemSpec (SolveRequest is
//     its wire form), so the HTTP layer adds no second validation or
//     defaulting scheme on top of the solver's;
//   - a Cache keys warm optimization samples — τ-bounded RR-sketch
//     Collections (internal/ris) or live-edge world sets
//     (internal/cascade) — by (graph, engine, model, τ, sample budget,
//     seed), holds them behind an LRU, and singleflights concurrent
//     builds so an identical sketch is sampled exactly once no matter
//     how many requests ask for it at the same time. Accuracy-targeted
//     requests key by (ε, δ, sizing k) instead of a count: the
//     stopping-rule-sized pool (ris.SampleForAccuracy for RIS,
//     fairim.HoeffdingWorlds for forward MC) is derived once inside the
//     singleflight and shared like any other sample;
//   - each request constructs its own cheap estimator.Estimator over the
//     shared read-only sample and injects it into the fairim solvers via
//     fairim.Config.Estimator, so solves never contend on estimator
//     state;
//   - a worker-pool semaphore bounds concurrent solves; excess
//     synchronous requests queue up to a timeout and are then shed with
//     503, degrading gracefully under load instead of thrashing.
//
// Long solves go through the async job API instead of holding an HTTP
// worker: POST /v1/jobs returns a job id immediately, the solve gates on
// the same worker pool (without the synchronous queue timeout), GET
// /v1/jobs/{id} polls status and result, GET /v1/jobs/{id}/trace streams
// one server-sent "pick" event per greedy iteration — the
// fairim.Config.OnIteration seam — followed by a terminal "done" event,
// and DELETE /v1/jobs/{id} cancels: a queued job aborts before taking a
// worker slot, a running one cooperatively at the next pick boundary via
// fairim.Config.Cancel (the cancellation face of the same seam).
//
// With Config.StateDir set, the most expensive artifacts outlive the
// process: every built sample is written through to disk in a versioned,
// checksummed, graph-fingerprinted format (internal/persist frames around
// the ris/cascade codecs) and reloaded on a memory miss — inside the
// singleflight, so disk too is touched once per key — and finished jobs
// are journaled so /v1/jobs history survives restarts. State files are
// validated before use; stale, truncated or mismatched ones degrade to a
// cold build, never to a wrong answer.
//
// Endpoints: POST /v1/select (synchronous seed selection), POST
// /v1/estimate (spread evaluation of a caller-supplied seed set), POST
// /v1/jobs + GET /v1/jobs[/{id}[/trace]] + DELETE /v1/jobs/{id} (async
// jobs), GET /v1/stats (cache, worker-pool, job and persistence
// counters), GET /v1/graphs (introspection), GET /healthz (liveness +
// cache stats). cmd/fairtcimd is the daemon wrapping this package;
// cmd/fairtcim -server is a thin client for it.
package server
