// Package server is the persistent serving layer: a long-running
// fairtcimd process answers (Fair)TCIM queries over HTTP/JSON instead of
// rebuilding the graph and resampling estimator pools on every CLI
// invocation — the TIM/IMM-style amortization of sketch construction
// across queries.
//
// Request flow (client → server → estimator cache → engines → CSR graph):
//
//   - a Registry loads named graphs once (file-backed or synthetic via
//     internal/generate) and shares the immutable *graph.Graph across
//     all requests;
//   - a Cache keys warm optimization samples — τ-bounded RR-sketch
//     Collections (internal/ris) or live-edge world sets
//     (internal/cascade) — by (graph, engine, model, τ, sample budget,
//     seed), holds them behind an LRU, and singleflights concurrent
//     builds so an identical sketch is sampled exactly once no matter
//     how many requests ask for it at the same time;
//   - each request constructs its own cheap estimator.Estimator over the
//     shared read-only sample and injects it into the fairim solvers via
//     fairim.Config.Estimator, so solves never contend on estimator
//     state;
//   - a worker-pool semaphore bounds concurrent solves; excess requests
//     queue up to a timeout and are then shed with 503, degrading
//     gracefully under load instead of thrashing.
//
// Endpoints: POST /v1/select (seed selection), POST /v1/estimate (spread
// evaluation of a caller-supplied seed set), GET /v1/graphs
// (introspection), GET /healthz (liveness + cache stats). cmd/fairtcimd
// is the daemon wrapping this package; cmd/fairtcim -server is a thin
// client for it.
package server
