package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
)

// Config parametrizes a Server. The zero value is usable with a non-nil
// Registry: 32 cached samples, GOMAXPROCS-bounded worker pool, 10s queue
// timeout.
type Config struct {
	Registry *Registry
	// CacheSize bounds the number of warm samples kept (LRU); <= 0
	// means 32.
	CacheSize int
	// MaxConcurrent bounds solves in flight; excess requests queue.
	// <= 0 means GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout is how long a request waits for a worker slot before
	// being shed with 503; <= 0 means 10s.
	QueueTimeout time.Duration
	// SolverParallelism is the per-request worker count for sampling and
	// first-pass gains; <= 0 means GOMAXPROCS. Lower it when
	// MaxConcurrent > 1 so concurrent solves do not oversubscribe.
	SolverParallelism int
}

// Server is the HTTP serving layer; see the package comment for the
// request flow. Construct with New, mount via Handler.
type Server struct {
	reg          *Registry
	cache        *Cache
	sem          chan struct{}
	queueTimeout time.Duration
	parallelism  int
	mux          *http.ServeMux
}

// New builds a Server over cfg.Registry.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	workers := cfg.MaxConcurrent
	if workers <= 0 {
		workers = defaultWorkers()
	}
	timeout := cfg.QueueTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	s := &Server{
		reg:          cfg.Registry,
		cache:        NewCache(cfg.CacheSize),
		sem:          make(chan struct{}, workers),
		queueTimeout: timeout,
		parallelism:  cfg.SolverParallelism,
		mux:          http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/select", s.handleSelect)
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Handler returns the root handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes sketch-cache counters (tests, /healthz).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// SelectRequest is the body of POST /v1/select. Zero/absent fields take
// the documented defaults, which match the fairtcim CLI.
type SelectRequest struct {
	Graph   string  `json:"graph"`             // registry name (required)
	Problem string  `json:"problem,omitempty"` // p1 | p2 | p4 | p6; default p4
	Budget  int     `json:"budget,omitempty"`  // seed budget B (p1/p4); default 30
	Quota   float64 `json:"quota,omitempty"`   // coverage quota Q (p2/p6); default 0.2
	Tau     *int32  `json:"tau,omitempty"`     // deadline; -1 = none; default 20
	Engine  string  `json:"engine,omitempty"`  // forward-mc | ris; default forward-mc
	Model   string  `json:"model,omitempty"`   // ic | lt; default ic
	Samples int     `json:"samples,omitempty"` // MC worlds; default 200
	// RISPerGroup is the RR-pool size per group for engine "ris";
	// 0 derives 20·samples.
	RISPerGroup int    `json:"ris_per_group,omitempty"`
	H           string `json:"h,omitempty"`    // p4 wrapper: id | log | sqrt | pow<a>; default log
	Seed        int64  `json:"seed,omitempty"` // sampling seed; default 1
	// Eval picks the final-report estimator: "fresh" re-estimates on
	// fresh Monte-Carlo worlds (default, unbiased), "sample" reports from
	// the cached optimization sample (fastest, slightly optimistic).
	Eval        string `json:"eval,omitempty"`
	EvalSamples int    `json:"eval_samples,omitempty"` // fresh worlds for eval "fresh"; default samples
	MaxSeeds    int    `json:"max_seeds,omitempty"`    // cover-problem safety bound; default |V|
}

// EstimateRequest is the body of POST /v1/estimate: evaluate the spread
// of a caller-supplied seed set. Eval defaults to "sample", reusing the
// cached sketch (unbiased here — the seeds were not chosen on it).
type EstimateRequest struct {
	Graph       string         `json:"graph"`
	Seeds       []graph.NodeID `json:"seeds"`
	Tau         *int32         `json:"tau,omitempty"`
	Engine      string         `json:"engine,omitempty"`
	Model       string         `json:"model,omitempty"`
	Samples     int            `json:"samples,omitempty"`
	RISPerGroup int            `json:"ris_per_group,omitempty"`
	Seed        int64          `json:"seed,omitempty"`
	Eval        string         `json:"eval,omitempty"` // "sample" (default) | "fresh"
}

// UtilityReport is the shared result payload of select and estimate.
type UtilityReport struct {
	Seeds        []graph.NodeID `json:"seeds"`
	Total        float64        `json:"total"`
	NormTotal    float64        `json:"norm_total"`
	PerGroup     []float64      `json:"per_group"`
	NormPerGroup []float64      `json:"norm_per_group"`
	Disparity    float64        `json:"disparity"`
}

// SelectResponse is the body of a successful /v1/select.
type SelectResponse struct {
	Problem string `json:"problem"`
	Graph   string `json:"graph"`
	Engine  string `json:"engine"`
	UtilityReport
	Evaluations int     `json:"evaluations"`
	CacheHit    bool    `json:"cache_hit"`
	SampleMS    float64 `json:"sample_ms"` // sketch build cost (paid once per key)
	SolveMS     float64 `json:"solve_ms"`  // greedy/CELF + final report
}

// EstimateResponse is the body of a successful /v1/estimate.
type EstimateResponse struct {
	Graph  string `json:"graph"`
	Engine string `json:"engine"`
	UtilityReport
	CacheHit bool    `json:"cache_hit"`
	SampleMS float64 `json:"sample_ms"`
	SolveMS  float64 `json:"solve_ms"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeCacheError maps EstimatorFor failures: capacity shedding and
// client-gone cancellations are 503, anything else is a bad request.
func writeCacheError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrCapacity) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, "server at capacity; retry later")
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// acquire takes a worker slot, queueing up to the configured timeout.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	timer := time.NewTimer(s.queueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-timer.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (s *Server) release() { <-s.sem }

// solveSpec is the decoded, defaulted common subset of both request
// kinds, ready to key the cache and build a fairim.Config.
type solveSpec struct {
	graphName string
	engine    fairim.Engine
	model     cascade.Model
	tau       int32
	samples   int
	risPool   int
	seed      int64
	onSample  bool
}

func decodeSpec(graphName, engineName, modelName string, tau *int32, samples, risPool int, seed int64, eval, defaultEval string) (solveSpec, error) {
	var spec solveSpec
	if graphName == "" {
		return spec, fmt.Errorf("missing \"graph\"")
	}
	spec.graphName = graphName
	var err error
	if spec.engine, err = fairim.EngineByName(engineName); err != nil {
		return spec, err
	}
	switch strings.ToLower(modelName) {
	case "", "ic":
		spec.model = cascade.IC
	case "lt":
		spec.model = cascade.LT
	default:
		return spec, fmt.Errorf("unknown model %q (want ic or lt)", modelName)
	}
	spec.tau = 20
	if tau != nil {
		switch {
		case *tau < -1:
			return spec, fmt.Errorf("negative deadline %d", *tau)
		case *tau == -1:
			spec.tau = cascade.NoDeadline
		default:
			spec.tau = *tau
		}
	}
	if samples < 0 {
		return spec, fmt.Errorf("negative samples %d", samples)
	}
	spec.samples = samples
	if spec.samples == 0 {
		spec.samples = 200
	}
	if risPool < 0 {
		return spec, fmt.Errorf("negative ris_per_group %d", risPool)
	}
	spec.risPool = risPool
	if spec.risPool == 0 {
		spec.risPool = 20 * spec.samples
	}
	spec.seed = seed
	if spec.seed == 0 {
		spec.seed = 1
	}
	switch strings.ToLower(eval) {
	case "":
		spec.onSample = defaultEval == "sample"
	case "sample":
		spec.onSample = true
	case "fresh":
		spec.onSample = false
	default:
		return spec, fmt.Errorf("unknown eval mode %q (want fresh or sample)", eval)
	}
	// Reject engine/model combinations up front, before any sample is
	// built or worker slot taken (fairim would also catch this, but only
	// after the expensive build).
	if spec.engine == fairim.EngineRIS && spec.model != cascade.IC {
		return spec, fmt.Errorf("the ris engine supports only the ic model")
	}
	return spec, nil
}

// key maps the spec onto the cache key: forward-MC keys by world count
// with τ omitted (worlds are τ-independent, so one set serves every
// deadline), RIS by per-group pool size and the τ that bounded the
// sketch (model pinned to IC, the only one RIS supports).
func (spec solveSpec) key() sampleKey {
	k := sampleKey{
		graph:  spec.graphName,
		engine: spec.engine,
		model:  spec.model,
		budget: spec.samples,
		seed:   spec.seed,
	}
	if spec.engine == fairim.EngineRIS {
		k.model = cascade.IC
		k.budget = spec.risPool
		k.tau = spec.tau
	}
	return k
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := decodeSpec(req.Graph, req.Engine, req.Model, req.Tau, req.Samples, req.RISPerGroup, req.Seed, req.Eval, "fresh")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Validate everything parameter-shaped before touching the cache or
	// worker pool, so bad requests never pay for (or queue behind) a
	// sample build.
	problem := strings.ToLower(req.Problem)
	if problem == "" {
		problem = "p4"
	}
	budget := req.Budget
	if budget == 0 {
		budget = 30
	}
	quota := req.Quota
	if quota == 0 {
		quota = 0.2
	}
	switch problem {
	case "p1", "p4":
		if budget <= 0 {
			writeError(w, http.StatusBadRequest, "budget must be positive, got %d", budget)
			return
		}
	case "p2", "p6":
		if quota <= 0 || quota > 1 {
			writeError(w, http.StatusBadRequest, "quota %v outside (0,1]", quota)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown problem %q (want p1, p2, p4 or p6)", req.Problem)
		return
	}
	if req.EvalSamples < 0 {
		writeError(w, http.StatusBadRequest, "negative eval_samples %d", req.EvalSamples)
		return
	}
	if req.MaxSeeds < 0 {
		writeError(w, http.StatusBadRequest, "negative max_seeds %d", req.MaxSeeds)
		return
	}
	hName := req.H
	if hName == "" {
		hName = "log"
	}
	h, err := concave.ByName(hName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	g, err := s.reg.Get(spec.graphName)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownGraph) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}

	smp, hit, buildMS, err := s.cache.SampleFor(r.Context(), spec.key(), g, s.parallelism, s)
	if err != nil {
		writeCacheError(w, err)
		return
	}

	// The solve occupies a worker slot of its own; the build above held
	// one only while sampling, and joiners waited slot-free. Estimator
	// construction allocates proportional to the sample, so it happens
	// inside the slot too.
	if !s.acquire(r.Context()) {
		writeError(w, http.StatusServiceUnavailable, "server at capacity; retry later")
		return
	}
	defer s.release()
	est, err := smp.newEstimator(spec.tau)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	cfg := fairim.Config{
		Tau:            spec.tau,
		Model:          spec.model,
		Engine:         spec.engine,
		Samples:        spec.samples,
		EvalSamples:    req.EvalSamples,
		RISPerGroup:    req.RISPerGroup,
		Seed:           spec.seed,
		Parallelism:    s.parallelism,
		H:              h,
		MaxSeeds:       req.MaxSeeds,
		Estimator:      est,
		ReportOnSample: spec.onSample,
	}

	start := time.Now()
	var res *fairim.Result
	switch problem {
	case "p1":
		res, err = fairim.SolveTCIMBudget(g, budget, cfg)
	case "p2":
		res, err = fairim.SolveTCIMCover(g, quota, cfg)
	case "p4":
		res, err = fairim.SolveFairTCIMBudget(g, budget, cfg)
	default: // p6; other values were rejected above
		res, err = fairim.SolveFairTCIMCover(g, quota, cfg)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	writeJSON(w, http.StatusOK, SelectResponse{
		Problem:       res.Problem,
		Graph:         spec.graphName,
		Engine:        spec.engine.String(),
		UtilityReport: reportOf(res),
		Evaluations:   res.Evaluations,
		CacheHit:      hit,
		SampleMS:      buildMS,
		SolveMS:       float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := decodeSpec(req.Graph, req.Engine, req.Model, req.Tau, req.Samples, req.RISPerGroup, req.Seed, req.Eval, "sample")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, http.StatusBadRequest, "missing \"seeds\"")
		return
	}

	g, err := s.reg.Get(spec.graphName)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownGraph) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	// Range-check seeds before any sample build or worker slot is paid
	// for (fairim would reject them, but only after the build).
	for _, v := range req.Seeds {
		if v < 0 || int(v) >= g.N() {
			writeError(w, http.StatusBadRequest, "seed %d out of range [0,%d)", v, g.N())
			return
		}
	}

	cfg := fairim.Config{
		Tau:            spec.tau,
		Model:          spec.model,
		Engine:         spec.engine,
		Samples:        spec.samples,
		RISPerGroup:    req.RISPerGroup,
		Seed:           spec.seed,
		Parallelism:    s.parallelism,
		ReportOnSample: spec.onSample,
	}
	var hit bool
	var buildMS float64
	var smp *sample
	if spec.onSample {
		smp, hit, buildMS, err = s.cache.SampleFor(r.Context(), spec.key(), g, s.parallelism, s)
		if err != nil {
			writeCacheError(w, err)
			return
		}
	}

	if !s.acquire(r.Context()) {
		writeError(w, http.StatusServiceUnavailable, "server at capacity; retry later")
		return
	}
	defer s.release()
	if smp != nil {
		est, err := smp.newEstimator(spec.tau)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		cfg.Estimator = est
	}

	start := time.Now()
	res, err := fairim.EvaluateSeeds(g, req.Seeds, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	writeJSON(w, http.StatusOK, EstimateResponse{
		Graph:         spec.graphName,
		Engine:        spec.engine.String(),
		UtilityReport: reportOf(res),
		CacheHit:      hit,
		SampleMS:      buildMS,
		SolveMS:       float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Graphs []GraphInfo `json:"graphs"`
	}{Graphs: s.reg.Info()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string     `json:"status"`
		Graphs []string   `json:"graphs"`
		Cache  CacheStats `json:"cache"`
	}{Status: "ok", Graphs: s.reg.Names(), Cache: s.cache.Stats()})
}

// reportOf projects a fairim.Result onto the wire payload.
func reportOf(res *fairim.Result) UtilityReport {
	seeds := res.Seeds
	if seeds == nil {
		seeds = []graph.NodeID{}
	}
	return UtilityReport{
		Seeds:        seeds,
		Total:        res.Total,
		NormTotal:    res.NormTotal,
		PerGroup:     res.PerGroup,
		NormPerGroup: res.NormPerGroup,
		Disparity:    res.Disparity,
	}
}
