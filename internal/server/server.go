package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/cluster"
	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
)

// Config parametrizes a Server. The zero value is usable with a non-nil
// Registry: 32 cached samples, GOMAXPROCS-bounded worker pool, 10s queue
// timeout, 64 active jobs.
type Config struct {
	Registry *Registry
	// CacheSize bounds the number of warm samples kept (LRU); <= 0
	// means 32.
	CacheSize int
	// MaxConcurrent bounds solves in flight; excess requests queue.
	// <= 0 means GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout is how long a synchronous request waits for a worker
	// slot before being shed with 503; <= 0 means 10s. Async jobs are not
	// subject to it — they wait for a slot as long as they must.
	QueueTimeout time.Duration
	// SolverParallelism is the per-request worker count for sampling and
	// first-pass gains; <= 0 means GOMAXPROCS. Lower it when
	// MaxConcurrent > 1 so concurrent solves do not oversubscribe.
	SolverParallelism int
	// MaxJobs bounds jobs queued or running at once; submissions beyond
	// it are shed with 503. <= 0 means 64.
	MaxJobs int
	// JobRetention bounds how many finished jobs are kept (and, with a
	// state dir, journaled) for GET /v1/jobs history; <= 0 means 256.
	JobRetention int
	// StateDir, when non-empty, enables warm-restart persistence rooted
	// at this directory: built samples are written through to
	// StateDir/sketches and reloaded on memory misses, and finished jobs
	// are journaled to StateDir/jobs.jsonl and restored at startup. Empty
	// keeps everything in-memory (the previous behavior).
	StateDir string
	// StateMaxBytes bounds the total size of StateDir/sketches: once the
	// manifest exceeds it, the least-recently-used sketch files are
	// deleted. <= 0 means unbounded.
	StateMaxBytes int64
	// StateMaxAge drops persisted sketches not loaded or written for this
	// long — version-churned files from updated graphs age out instead of
	// accumulating forever. <= 0 means unbounded.
	StateMaxAge time.Duration
	// RefreshThreshold is the dirty fraction of an RR pool above which a
	// graph update triggers a full sketch rebuild instead of an
	// incremental refresh; <= 0 means ris.DefaultRefreshThreshold.
	RefreshThreshold float64
	// CoalesceWindow, when positive, batches concurrent POST /v1/select
	// traffic: the first request for a graph waits this long for
	// compatible companions, then all of them share one sketch pass and
	// one CELF run (see planner.go). Zero keeps the immediate per-request
	// path. POST /v1/select/batch coalesces regardless of this setting.
	CoalesceWindow time.Duration
	// Peers lists the other replicas' base URLs; non-empty enables
	// peer-aware sharded serving (consistent-hash routing, proxying,
	// cross-replica sketch exchange, update fanout) and requires SelfURL.
	Peers []string
	// SelfURL is this replica's advertised base URL — the exact string
	// the peers carry in their own Peers lists, so every replica's ring
	// has identical members.
	SelfURL string
	// ProbeInterval is the peer health-probe period; <= 0 means 2s.
	// Probes run only while RunClusterProbes is active.
	ProbeInterval time.Duration
	// ClusterClient issues cross-replica requests (probes, proxies,
	// sketch fetches); nil means a client with a 30s timeout.
	ClusterClient *http.Client
	// RequestLog, when non-nil, receives one JSON line per completed
	// request (method, route pattern, status, latency, bytes) — the
	// structured access log behind fairtcimd -request-log.
	RequestLog io.Writer
}

// Server is the HTTP serving layer; see the package comment for the
// request flow. Construct with New, mount via Handler.
type Server struct {
	reg          *Registry
	cache        *Cache
	sem          chan struct{}
	queueTimeout time.Duration
	parallelism  int
	mux          *http.ServeMux
	jobs         *jobStore
	stateDir     string        // empty = in-memory only
	coalesce     *coalescer    // nil unless Config.CoalesceWindow > 0
	cluster      *clusterState // nil unless Config.Peers is set
	fpm          *fpMemo       // graph fingerprints for sketch framing
	metrics      *httpMetrics  // per-route latency/request tallies + access log

	queued atomic.Int64 // requests currently waiting for a worker slot
	shed   atomic.Int64 // requests turned away at capacity

	// Planner counters (see planner.go): cumulative tallies over every
	// batched solve — explicit /v1/select/batch plus coalescing-window
	// batches.
	plannerBatches    atomic.Int64
	plannerGroups     atomic.Int64
	plannerSingletons atomic.Int64
	plannerCoalesced  atomic.Int64
}

// New builds a Server over cfg.Registry.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	workers := cfg.MaxConcurrent
	if workers <= 0 {
		workers = defaultWorkers()
	}
	timeout := cfg.QueueTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	retention := cfg.JobRetention
	if retention <= 0 {
		retention = defaultJobRetention
	}
	// Warm-restart persistence: attach the sketch disk tier and replay
	// the finished-job journal. A missing state dir is created; anything
	// unusable inside it degrades per artifact (rejected files are
	// counted, not fatal), but an unusable dir itself is a config error.
	var disk *diskStore
	var journal *jobJournal
	var restored []jobRecord
	if cfg.StateDir != "" {
		var err error
		if disk, err = newDiskStore(filepath.Join(cfg.StateDir, "sketches"), cfg.StateMaxBytes, cfg.StateMaxAge); err != nil {
			return nil, err
		}
		if journal, restored, err = openJobJournal(filepath.Join(cfg.StateDir, "jobs.jsonl"), retention); err != nil {
			return nil, err
		}
	}
	s := &Server{
		reg:          cfg.Registry,
		cache:        NewCache(cfg.CacheSize),
		sem:          make(chan struct{}, workers),
		queueTimeout: timeout,
		parallelism:  cfg.SolverParallelism,
		mux:          http.NewServeMux(),
		jobs:         newJobStore(cfg.MaxJobs, retention, journal),
		stateDir:     cfg.StateDir,
		fpm:          &fpMemo{},
		metrics:      newHTTPMetrics(cfg.RequestLog),
	}
	s.cache.disk = disk
	s.cache.history = cfg.Registry
	s.cache.refreshThreshold = cfg.RefreshThreshold
	s.jobs.restore(restored)
	if cfg.CoalesceWindow > 0 {
		s.coalesce = newCoalescer(s, cfg.CoalesceWindow)
	}
	if len(cfg.Peers) > 0 {
		if cfg.SelfURL == "" {
			return nil, fmt.Errorf("server: Config.Peers requires SelfURL (this replica's advertised base URL)")
		}
		s.cluster = newClusterState(cluster.New(cluster.Config{
			Self:          cfg.SelfURL,
			Peers:         cfg.Peers,
			ProbeInterval: cfg.ProbeInterval,
			Client:        cfg.ClusterClient,
		}), s.fpm)
		s.cache.peers = s.cluster
	}
	s.mux.HandleFunc("POST /v1/select", s.handleSelect)
	s.mux.HandleFunc("POST /v1/select/batch", s.handleSelectBatch)
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGraphGet)
	s.mux.HandleFunc("POST /v1/graphs/{name}/updates", s.handleGraphUpdate)
	// The sketch transfer endpoint is registered unconditionally: a solo
	// daemon can warm a newly added replica without being reconfigured.
	s.mux.HandleFunc("GET /v1/sketches/{key}", s.handleSketchGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Handler returns the root handler serving all endpoints, instrumented
// with the per-route metrics middleware (and the access log when
// configured).
func (s *Server) Handler() http.Handler { return s.metrics.wrap(s.mux) }

// CacheStats exposes sketch-cache counters (tests, /healthz, /v1/stats).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// WaitFlushes blocks until every background sketch write-through has
// reached disk. The daemon calls it on shutdown so a warm restart finds
// everything it built; tests call it before asserting disk state.
func (s *Server) WaitFlushes() { s.cache.WaitFlushes() }

// AccuracyRequest is the wire form of an (ε,δ) estimation target.
type AccuracyRequest struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// SolveRequest is the body of POST /v1/select and POST /v1/jobs. It is
// the wire form of fairim.ProblemSpec: zero/absent fields take the
// documented defaults, which match the fairtcim CLI. Budgets come either
// from explicit counts (samples, ris_per_group) or from an accuracy
// target; setting both is an error.
type SolveRequest struct {
	Graph   string  `json:"graph"`             // registry name (required)
	Problem string  `json:"problem,omitempty"` // p1 | p2 | p4 | p6; default p4
	Budget  int     `json:"budget,omitempty"`  // seed budget B (p1/p4); default 30
	Quota   float64 `json:"quota,omitempty"`   // coverage quota Q (p2/p6); default 0.2
	Tau     *int32  `json:"tau,omitempty"`     // deadline; -1 = none; default 20
	Engine  string  `json:"engine,omitempty"`  // forward-mc | ris; default forward-mc
	Model   string  `json:"model,omitempty"`   // ic | lt; default ic
	Samples int     `json:"samples,omitempty"` // MC worlds; default 200
	// RISPerGroup is the RR-pool size per group for engine "ris";
	// 0 derives 20·samples.
	RISPerGroup int `json:"ris_per_group,omitempty"`
	// Accuracy, if set, replaces the explicit budgets: the server derives
	// the pool size from the (ε,δ) stopping rule (IMM-style doubling for
	// ris, a Hoeffding world count for forward-mc).
	Accuracy *AccuracyRequest `json:"accuracy,omitempty"`
	H        string           `json:"h,omitempty"`    // p4 wrapper: id | log | sqrt | pow<a>; default log
	Seed     int64            `json:"seed,omitempty"` // sampling seed; default 1
	// Eval picks the final-report estimator: "fresh" re-estimates on
	// fresh Monte-Carlo worlds (default, unbiased), "sample" reports from
	// the cached optimization sample (fastest, slightly optimistic).
	Eval        string `json:"eval,omitempty"`
	EvalSamples int    `json:"eval_samples,omitempty"` // fresh worlds for eval "fresh"; default samples
	MaxSeeds    int    `json:"max_seeds,omitempty"`    // cover-problem safety bound; default |V|
	// Trace includes the per-iteration picks in a synchronous response;
	// jobs always record a trace for GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
}

// SelectRequest is the former name of SolveRequest.
//
// Deprecated: use SolveRequest.
type SelectRequest = SolveRequest

// EstimateRequest is the body of POST /v1/estimate: evaluate the spread
// of a caller-supplied seed set. Eval defaults to "sample", reusing the
// cached sketch (unbiased here — the seeds were not chosen on it).
type EstimateRequest struct {
	Graph       string           `json:"graph"`
	Seeds       []graph.NodeID   `json:"seeds"`
	Tau         *int32           `json:"tau,omitempty"`
	Engine      string           `json:"engine,omitempty"`
	Model       string           `json:"model,omitempty"`
	Samples     int              `json:"samples,omitempty"`
	RISPerGroup int              `json:"ris_per_group,omitempty"`
	Accuracy    *AccuracyRequest `json:"accuracy,omitempty"`
	Seed        int64            `json:"seed,omitempty"`
	Eval        string           `json:"eval,omitempty"` // "sample" (default) | "fresh"
}

// UtilityReport is the shared result payload of select and estimate.
type UtilityReport struct {
	Seeds        []graph.NodeID `json:"seeds"`
	Total        float64        `json:"total"`
	NormTotal    float64        `json:"norm_total"`
	PerGroup     []float64      `json:"per_group"`
	NormPerGroup []float64      `json:"norm_per_group"`
	Disparity    float64        `json:"disparity"`
}

// TraceEvent is one greedy pick, as carried in synchronous trace arrays
// and streamed as an SSE "pick" event on /v1/jobs/{id}/trace.
type TraceEvent struct {
	Iteration int          `json:"iteration"` // 1-based pick index
	Seed      graph.NodeID `json:"seed"`
	Objective float64      `json:"objective"`
	Total     float64      `json:"total"`
	NormGroup []float64    `json:"norm_group"`
}

// SolveResponse is the body of a successful /v1/select and the result
// embedded in a finished job.
type SolveResponse struct {
	Problem string `json:"problem"`
	Graph   string `json:"graph"`
	Engine  string `json:"engine"`
	UtilityReport
	Evaluations int  `json:"evaluations"`
	CacheHit    bool `json:"cache_hit"`
	// GraphVersion is the registry version of the graph snapshot this
	// solve ran on; it moves when POST /v1/graphs/{name}/updates applies a
	// delta batch.
	GraphVersion uint64 `json:"graph_version,omitempty"`
	// RRRefreshed/RRRetained report how this request's RIS sketch was
	// produced after a graph update: RRRefreshed RR sets were resampled
	// against the new snapshot, RRRetained carried over from the previous
	// version's sketch. Both zero for cold builds, cache hits echo the
	// builder's split.
	RRRefreshed int `json:"rr_refreshed,omitempty"`
	RRRetained  int `json:"rr_retained,omitempty"`
	// WarmSeeds counts greedy picks replayed from the memoized seed
	// prefix of an earlier solve instead of re-evaluated — budget-k
	// repeats and extensions of a solved problem skip that much work.
	WarmSeeds int     `json:"warm_seeds,omitempty"`
	SampleMS  float64 `json:"sample_ms"` // sketch build cost (paid once per key)
	SolveMS   float64 `json:"solve_ms"`  // greedy/CELF + final report
	// Resolved sampling budgets the solve actually used — how large the
	// accuracy-derived pool came out when the request carried an (ε,δ)
	// target instead of explicit counts.
	ResolvedSamples     int          `json:"resolved_samples,omitempty"`
	ResolvedRISPerGroup int          `json:"resolved_ris_per_group,omitempty"`
	Trace               []TraceEvent `json:"trace,omitempty"`
	// EffectiveParallelism is the per-solve worker count this request
	// actually got after occupancy-adaptive scaling (see
	// Server.effectiveParallelism). Sampling and solving are
	// deterministic for fixed inputs regardless of worker count, so this
	// affects speed only, never the answer.
	EffectiveParallelism int `json:"effective_parallelism,omitempty"`
}

// SelectResponse is the former name of SolveResponse.
//
// Deprecated: use SolveResponse.
type SelectResponse = SolveResponse

// EstimateResponse is the body of a successful /v1/estimate.
type EstimateResponse struct {
	Graph  string `json:"graph"`
	Engine string `json:"engine"`
	UtilityReport
	CacheHit             bool    `json:"cache_hit"`
	GraphVersion         uint64  `json:"graph_version,omitempty"`
	RRRefreshed          int     `json:"rr_refreshed,omitempty"`
	RRRetained           int     `json:"rr_retained,omitempty"`
	SampleMS             float64 `json:"sample_ms"`
	SolveMS              float64 `json:"solve_ms"`
	ResolvedSamples      int     `json:"resolved_samples,omitempty"`
	ResolvedRISPerGroup  int     `json:"resolved_ris_per_group,omitempty"`
	EffectiveParallelism int     `json:"effective_parallelism,omitempty"`
}

// acquire takes a worker slot, queueing up to the configured timeout.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.queueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-timer.C:
		s.shed.Add(1)
		return false
	case <-ctx.Done():
		// The client gave up while queued — not a capacity refusal, so
		// it does not count toward shed.
		return false
	}
}

func (s *Server) release() { <-s.sem }

// effectiveParallelism adapts the per-solve worker count to worker-pool
// occupancy: a solve alone on the pool gets the full configured
// parallelism P; with A of C slots busy it gets ceil(P·(C-A+1)/C),
// floored at 1 — so concurrent solves share the CPUs roughly evenly
// instead of each spawning P workers and oversubscribing A·P-fold.
// Callers invoke it while already holding their own slot (A counts
// them). Sampling and greedy evaluation are deterministic for fixed
// arguments regardless of worker count (see internal/ris), so the
// scaling changes latency, never answers or cache keys.
func (s *Server) effectiveParallelism() int {
	p := s.parallelism
	if p <= 0 {
		p = defaultWorkers()
	}
	capacity, active := cap(s.sem), len(s.sem)
	if active <= 1 || capacity <= 1 {
		return p
	}
	if active > capacity {
		active = capacity
	}
	eff := (p*(capacity-active+1) + capacity - 1) / capacity
	if eff < 1 {
		return 1
	}
	return eff
}

// blockingGate is the worker gate async jobs use: unlike the synchronous
// path it has no queue timeout — a job occupies no HTTP worker while it
// waits, so it simply queues until a slot frees. ctx is the job's
// cancellation context (DELETE /v1/jobs/{id}): it is checked before
// taking a free slot so a cancelled job never starts a solve phase, and a
// cancelled wait is not a capacity shed.
type blockingGate struct{ s *Server }

func (b blockingGate) acquire(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	select {
	case b.s.sem <- struct{}{}:
		return true
	default:
	}
	b.s.queued.Add(1)
	defer b.s.queued.Add(-1)
	select {
	case b.s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (b blockingGate) release() { b.s.release() }

// decodeCommon resolves the request fields shared by solve and estimate
// into a fairim.ProblemSpec, applying the documented defaults and
// rejecting anything malformed before a sample build or worker slot is
// paid for.
func decodeCommon(graphName, engineName, modelName string, tau *int32, samples, risPool int, acc *AccuracyRequest, seed int64, eval, defaultEval string) (fairim.ProblemSpec, error) {
	var spec fairim.ProblemSpec
	if graphName == "" {
		return spec, fmt.Errorf("missing \"graph\"")
	}
	var err error
	if spec.Engine, err = fairim.EngineByName(engineName); err != nil {
		return spec, err
	}
	switch strings.ToLower(modelName) {
	case "", "ic":
		spec.Model = cascade.IC
	case "lt":
		spec.Model = cascade.LT
	default:
		return spec, fmt.Errorf("unknown model %q (want ic or lt)", modelName)
	}
	spec.Tau = 20
	if tau != nil {
		switch {
		case *tau < -1:
			return spec, fmt.Errorf("negative deadline %d", *tau)
		case *tau == -1:
			spec.Tau = cascade.NoDeadline
		default:
			spec.Tau = *tau
		}
	}
	if samples < 0 {
		return spec, fmt.Errorf("negative samples %d", samples)
	}
	if risPool < 0 {
		return spec, fmt.Errorf("negative ris_per_group %d", risPool)
	}
	if acc != nil {
		if samples > 0 || risPool > 0 {
			return spec, fmt.Errorf("request sets both explicit budgets and an accuracy target; choose one")
		}
		if acc.Epsilon <= 0 || acc.Epsilon >= 1 {
			return spec, fmt.Errorf("accuracy epsilon %v outside (0,1)", acc.Epsilon)
		}
		if acc.Delta <= 0 || acc.Delta >= 1 {
			return spec, fmt.Errorf("accuracy delta %v outside (0,1)", acc.Delta)
		}
		spec.Sampling.Accuracy = &fairim.Accuracy{Epsilon: acc.Epsilon, Delta: acc.Delta}
	} else {
		// Materialize the documented defaults so the cache key and the
		// solver agree on the effective budgets.
		if samples == 0 {
			samples = fairim.DefaultSamples
		}
		if risPool == 0 {
			risPool = 20 * samples
		}
		spec.Sampling.Samples = samples
		spec.Sampling.RISPerGroup = risPool
	}
	spec.Seed = seed
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	switch strings.ToLower(eval) {
	case "":
		spec.ReportOnSample = defaultEval == "sample"
	case "sample":
		spec.ReportOnSample = true
	case "fresh":
		spec.ReportOnSample = false
	default:
		return spec, fmt.Errorf("unknown eval mode %q (want fresh or sample)", eval)
	}
	// Reject engine/model combinations up front, before any sample is
	// built or worker slot taken (fairim would also catch this, but only
	// after the expensive build).
	if spec.Engine == fairim.EngineRIS && spec.Model != cascade.IC {
		return spec, fmt.Errorf("the ris engine supports only the ic model")
	}
	return spec, nil
}

// toSpec decodes the full solve request into a fairim.ProblemSpec.
func (req SolveRequest) toSpec() (fairim.ProblemSpec, error) {
	spec, err := decodeCommon(req.Graph, req.Engine, req.Model, req.Tau, req.Samples, req.RISPerGroup, req.Accuracy, req.Seed, req.Eval, "fresh")
	if err != nil {
		return spec, err
	}
	name := req.Problem
	if name == "" {
		name = "p4"
	}
	if spec.Problem, err = fairim.ProblemByName(name); err != nil {
		return spec, err
	}
	spec.Budget = req.Budget
	if spec.Budget == 0 {
		spec.Budget = 30
	}
	spec.Quota = req.Quota
	if spec.Quota == 0 {
		spec.Quota = 0.2
	}
	if spec.Problem.IsBudget() {
		if spec.Budget <= 0 {
			return spec, fmt.Errorf("budget must be positive, got %d", spec.Budget)
		}
	} else if spec.Quota <= 0 || spec.Quota > 1 {
		return spec, fmt.Errorf("quota %v outside (0,1]", spec.Quota)
	}
	if req.EvalSamples < 0 {
		return spec, fmt.Errorf("negative eval_samples %d", req.EvalSamples)
	}
	spec.EvalSamples = req.EvalSamples
	if req.MaxSeeds < 0 {
		return spec, fmt.Errorf("negative max_seeds %d", req.MaxSeeds)
	}
	spec.MaxSeeds = req.MaxSeeds
	hName := req.H
	if hName == "" {
		hName = "log"
	}
	if spec.H, err = concave.ByName(hName); err != nil {
		return spec, err
	}
	spec.Trace = req.Trace
	return spec, nil
}

// getGraph resolves a registry name to its current snapshot and version,
// mapping unknown names to 404. The (snapshot, version) pair is read
// atomically, so a concurrent update cannot hand a request the new
// version number with the old adjacency or vice versa.
func (s *Server) getGraph(w http.ResponseWriter, name string) (*graph.Graph, uint64, bool) {
	g, version, err := s.reg.GetVersioned(name)
	if err != nil {
		status, code := http.StatusInternalServerError, CodeInternal
		if errors.Is(err, ErrUnknownGraph) {
			status, code = http.StatusNotFound, CodeGraphNotFound
		}
		writeError(w, status, code, "%v", err)
		return nil, 0, false
	}
	return g, version, true
}

// solve runs the full pipeline for a decoded spec: warm sample from the
// cache (built at most once per key), a per-request estimator inside a
// worker slot, then fairim.Solve — warm-started from the memoized seed
// prefix when an earlier solve of the same problem left one behind.
// onIter, if non-nil, observes every greedy pick (the job-trace stream;
// replayed prefix picks fire it too, so traces stay complete). The gate
// decides the queueing policy — timeout-bounded for synchronous
// requests, unbounded for jobs.
func (s *Server) solve(ctx context.Context, gate workerGate, graphName string, version uint64, g *graph.Graph, spec fairim.ProblemSpec, onIter func(fairim.IterationStat)) (*SolveResponse, error) {
	key := sampleKeyFor(graphName, version, g, spec, false)
	smp, hit, buildMS, err := s.cache.SampleFor(ctx, key, g, s.parallelism, gate)
	if err != nil {
		return nil, err
	}

	// The prefix memo is consulted before the estimator exists, so the
	// eligibility check sees the spec as decoded from the wire.
	pk, memo := prefixKeyFor(key, spec)
	warmSeeds := 0
	if memo {
		spec.CaptureWarm = true
		if w := s.cache.warmFor(pk); w != nil {
			spec.Warm = w
			if warmSeeds = len(w.Seeds); warmSeeds > spec.Budget {
				warmSeeds = spec.Budget
			}
		}
	}

	// The solve occupies a worker slot of its own; the build above held
	// one only while sampling, and joiners waited slot-free. Estimator
	// construction allocates proportional to the sample, so it happens
	// inside the slot too. A failed acquire is only a capacity refusal
	// when the request is still alive — a cancelled request reports its
	// own cancellation, never a spurious 503.
	if !gate.acquire(ctx) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, ErrCapacity
	}
	defer gate.release()
	est, err := smp.newEstimator(spec.Tau)
	if err != nil {
		return nil, err
	}
	spec.Estimator = est
	effPar := s.effectiveParallelism()
	spec.Parallelism = effPar
	if onIter != nil {
		spec.OnIteration = onIter
	}

	start := time.Now()
	res, err := fairim.Solve(g, spec)
	if err != nil {
		return nil, err
	}
	if memo {
		s.cache.storeWarm(pk, res.Warm)
	}
	resp := &SolveResponse{
		Problem:              res.Problem,
		Graph:                graphName,
		Engine:               spec.Engine.String(),
		UtilityReport:        reportOf(res),
		Evaluations:          res.Evaluations,
		CacheHit:             hit,
		GraphVersion:         version,
		RRRefreshed:          smp.rrRefreshed,
		RRRetained:           smp.rrRetained,
		WarmSeeds:            warmSeeds,
		SampleMS:             buildMS,
		SolveMS:              float64(time.Since(start).Microseconds()) / 1000,
		ResolvedSamples:      res.Samples,
		ResolvedRISPerGroup:  res.RISPerGroup,
		Trace:                traceEvents(res.Trace),
		EffectiveParallelism: effPar,
	}
	return resp, nil
}

func traceEvents(trace []fairim.IterationStat) []TraceEvent {
	if trace == nil {
		return nil
	}
	out := make([]TraceEvent, len(trace))
	for i, st := range trace {
		out[i] = TraceEvent{
			Iteration: i + 1,
			Seed:      st.Seed,
			Objective: st.Objective,
			Total:     st.Total,
			NormGroup: st.NormGroup,
		}
	}
	return out
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req SolveRequest
	if !decodeStrict(w, body, &req) {
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
		return
	}
	// Route to the key's owner first: the owner's cache is where this
	// key's sketch lives (or should start living). The owner runs its own
	// coalescing window, so proxied traffic still batches there.
	if cands := s.routeCandidates(r, routeKeyFor(req.Graph, spec)); cands != nil {
		if s.proxyWithFailover(w, r, cands, "/v1/select", body, nil) {
			return
		}
	}
	if s.coalesce != nil {
		// The coalescer resolves the graph itself when the window closes,
		// so every request in the window sees one consistent snapshot.
		resp, err := s.coalesce.submit(r.Context(), req.Graph, spec)
		if err != nil {
			writeSolveError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	g, version, ok := s.getGraph(w, req.Graph)
	if !ok {
		return
	}
	resp, err := s.solve(r.Context(), serverGate{s}, req.Graph, version, g, spec, nil)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// serverGate is the synchronous-request worker gate: queue up to the
// configured timeout, then shed. The same timeout bounds how long a
// synchronous request waits for a singleflight build it joined to
// start (joinBound) — without it, joining a build reserved by a queued
// async job would pin the request far past its queueing contract.
type serverGate struct{ s *Server }

func (g serverGate) acquire(ctx context.Context) bool { return g.s.acquire(ctx) }
func (g serverGate) release()                         { g.s.release() }
func (g serverGate) joinBound() time.Duration         { return g.s.queueTimeout }

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := decodeCommon(req.Graph, req.Engine, req.Model, req.Tau, req.Samples, req.RISPerGroup, req.Accuracy, req.Seed, req.Eval, "sample")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "missing \"seeds\"")
		return
	}
	g, version, ok := s.getGraph(w, req.Graph)
	if !ok {
		return
	}
	// Range-check seeds before any sample build or worker slot is paid
	// for (fairim would reject them, but only after the build).
	for _, v := range req.Seeds {
		if v < 0 || int(v) >= g.N() {
			writeError(w, http.StatusBadRequest, CodeBadSpec, "seed %d out of range [0,%d)", v, g.N())
			return
		}
	}
	// Accuracy-sized estimation unions over this one fixed seed set.
	spec.Budget = len(req.Seeds)

	var hit bool
	var buildMS float64
	var smp *sample
	if spec.ReportOnSample {
		smp, hit, buildMS, err = s.cache.SampleFor(r.Context(), sampleKeyFor(req.Graph, version, g, spec, true), g, s.parallelism, serverGate{s})
		if err != nil {
			writeSolveError(w, err)
			return
		}
	}

	if !s.acquire(r.Context()) {
		writeError(w, http.StatusServiceUnavailable, CodeCapacity, "server at capacity; retry later")
		return
	}
	defer s.release()
	if smp != nil {
		est, err := smp.newEstimator(spec.Tau)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
			return
		}
		spec.Estimator = est
	}
	effPar := s.effectiveParallelism()
	spec.Parallelism = effPar

	start := time.Now()
	res, err := fairim.Evaluate(g, req.Seeds, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, "%v", err)
		return
	}

	resp := EstimateResponse{
		Graph:                req.Graph,
		Engine:               spec.Engine.String(),
		UtilityReport:        reportOf(res),
		CacheHit:             hit,
		GraphVersion:         version,
		SampleMS:             buildMS,
		SolveMS:              float64(time.Since(start).Microseconds()) / 1000,
		ResolvedSamples:      res.Samples,
		ResolvedRISPerGroup:  res.RISPerGroup,
		EffectiveParallelism: effPar,
	}
	if smp != nil {
		resp.RRRefreshed = smp.rrRefreshed
		resp.RRRetained = smp.rrRetained
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGraphs is GET /v1/graphs: structured per-graph objects, or the
// pre-versioning bare name list behind ?format=names (deprecated, kept
// for one release).
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "names" {
		writeJSON(w, http.StatusOK, struct {
			Graphs []string `json:"graphs"`
		}{Graphs: s.reg.Names()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Graphs []GraphInfo `json:"graphs"`
	}{Graphs: s.reg.Info()})
}

// handleGraphGet is GET /v1/graphs/{name}: one graph's registry row.
// Introspection never forces a load — an unloaded graph reports
// loaded=false with no size fields.
func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := s.reg.InfoFor(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeGraphNotFound, "server: %v %q", ErrUnknownGraph, name)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string     `json:"status"`
		Graphs []string   `json:"graphs"`
		Cache  CacheStats `json:"cache"`
	}{Status: "ok", Graphs: s.reg.Names(), Cache: s.cache.Stats()})
}

// WorkerStats snapshots the worker pool: slot capacity, slots in use,
// requests waiting for a slot, and requests shed at capacity since start.
type WorkerStats struct {
	Capacity int   `json:"capacity"`
	Active   int   `json:"active"`
	Queued   int64 `json:"queued"`
	Shed     int64 `json:"shed"`
}

// StatsResponse is the body of GET /v1/stats — the observability roll-up
// of cache effectiveness, worker-pool pressure and job lifecycle counts.
// StateDir names the warm-restart persistence root (absent when the
// daemon runs purely in-memory); JournalErrors counts finished jobs whose
// journal append failed — non-zero means history would not survive a
// restart.
type StatsResponse struct {
	Cache   CacheStats   `json:"cache"`
	Workers WorkerStats  `json:"workers"`
	Jobs    JobStats     `json:"jobs"`
	Planner PlannerStats `json:"planner"`
	// Cluster carries the cluster_* counter family (peer fetches,
	// proxied requests, failovers, fleet liveness); absent unless the
	// replica runs with peers.
	Cluster       *cluster.Stats `json:"cluster,omitempty"`
	StateDir      string         `json:"state_dir,omitempty"`
	JournalErrors int64          `json:"journal_errors,omitempty"`
}

// Stats snapshots all server counters (also served at GET /v1/stats).
func (s *Server) Stats() StatsResponse {
	return StatsResponse{
		Cluster: s.ClusterStats(),
		Cache:   s.cache.Stats(),
		Workers: WorkerStats{
			Capacity: cap(s.sem),
			Active:   len(s.sem),
			Queued:   s.queued.Load(),
			Shed:     s.shed.Load(),
		},
		Jobs: s.jobs.stats(),
		Planner: PlannerStats{
			Batches:    s.plannerBatches.Load(),
			Groups:     s.plannerGroups.Load(),
			Singletons: s.plannerSingletons.Load(),
			Coalesced:  s.plannerCoalesced.Load(),
		},
		StateDir:      s.stateDir,
		JournalErrors: s.jobs.journalErrors.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// reportOf projects a fairim.Result onto the wire payload.
func reportOf(res *fairim.Result) UtilityReport {
	seeds := res.Seeds
	if seeds == nil {
		seeds = []graph.NodeID{}
	}
	return UtilityReport{
		Seeds:        seeds,
		Total:        res.Total,
		NormTotal:    res.NormTotal,
		PerGroup:     res.PerGroup,
		NormPerGroup: res.NormPerGroup,
		Disparity:    res.Disparity,
	}
}
