package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"fairtcim/internal/cluster"
)

// Prometheus-format observability and the structured access log. The
// same counters /v1/stats serves as JSON are exported at GET /metrics in
// the text exposition format, joined by per-endpoint request counters
// and latency histograms collected by a middleware around the mux. No
// client library: the format is a few lines of text, and hand-rolling it
// keeps the dependency set untouched.

// latencyBounds are the histogram bucket upper bounds in seconds,
// spanning cache-hit microservice latencies through multi-second cold
// sketch builds. A fixed shared layout keeps /metrics queries aggregable
// across replicas.
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// routeMetrics accumulates one route pattern's request tallies.
type routeMetrics struct {
	byCode  map[int]int64
	buckets []int64 // one per latencyBounds entry; +Inf is count - sum(buckets)
	count   int64
	sum     float64 // seconds
}

// httpMetrics is the middleware state: per-route tallies plus the
// optional access log sink. One instance lives for the process; the
// route-pattern cardinality is bounded by the mux's registrations (plus
// the one synthetic "unmatched" label).
type httpMetrics struct {
	mu     sync.Mutex
	routes map[string]*routeMetrics

	logMu sync.Mutex
	log   io.Writer // nil = no access log
}

func newHTTPMetrics(log io.Writer) *httpMetrics {
	return &httpMetrics{routes: map[string]*routeMetrics{}, log: log}
}

// statusRecorder captures the response status and size for metrics and
// the access log. Flush forwards when the underlying writer supports it,
// so the SSE trace stream keeps flushing through the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	sr.wrote = true
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Flush() {
	if fl, ok := sr.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// accessRecord is one structured access-log line (JSON, one per
// request, written after the response completes).
type accessRecord struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Route    string  `json:"route"`
	Status   int     `json:"status"`
	Bytes    int64   `json:"bytes"`
	MS       float64 `json:"ms"`
	Remote   string  `json:"remote,omitempty"`
	Proxied  bool    `json:"proxied,omitempty"`
	UserAgnt string  `json:"user_agent,omitempty"`
}

// wrap instruments next: every request is timed, tallied under its
// matched route pattern (Go 1.22 mux sets r.Pattern during ServeHTTP),
// and optionally logged.
func (m *httpMetrics) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		dur := time.Since(start)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		m.observe(route, rec.status, dur)
		if m.log != nil {
			line, err := json.Marshal(accessRecord{
				Time:     start.UTC().Format(time.RFC3339Nano),
				Method:   r.Method,
				Path:     r.URL.Path,
				Route:    route,
				Status:   rec.status,
				Bytes:    rec.bytes,
				MS:       float64(dur.Microseconds()) / 1000,
				Remote:   r.RemoteAddr,
				Proxied:  r.Header.Get(proxiedHeader) != "",
				UserAgnt: r.UserAgent(),
			})
			if err == nil {
				m.logMu.Lock()
				_, _ = m.log.Write(append(line, '\n'))
				m.logMu.Unlock()
			}
		}
	})
}

func (m *httpMetrics) observe(route string, code int, dur time.Duration) {
	secs := dur.Seconds()
	m.mu.Lock()
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{byCode: map[int]int64{}, buckets: make([]int64, len(latencyBounds))}
		m.routes[route] = rm
	}
	rm.byCode[code]++
	rm.count++
	rm.sum += secs
	for i, b := range latencyBounds {
		if secs <= b {
			rm.buckets[i]++
		}
	}
	m.mu.Unlock()
}

// writeProm renders the per-route request counters and latency
// histograms in the Prometheus text exposition format. Buckets are
// cumulative per the format; the loop in observe already tallies them
// cumulatively (every bound >= the latency gets the sample).
func (m *httpMetrics) writeProm(w io.Writer) {
	m.mu.Lock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		route   string
		byCode  map[int]int64
		buckets []int64
		count   int64
		sum     float64
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		rm := m.routes[name]
		codes := make(map[int]int64, len(rm.byCode))
		for c, n := range rm.byCode {
			codes[c] = n
		}
		rows = append(rows, row{name, codes, append([]int64(nil), rm.buckets...), rm.count, rm.sum})
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP fairtcim_http_requests_total Requests served, by route pattern and status code.")
	fmt.Fprintln(w, "# TYPE fairtcim_http_requests_total counter")
	for _, r := range rows {
		codes := make([]int, 0, len(r.byCode))
		for c := range r.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "fairtcim_http_requests_total{route=%q,code=\"%d\"} %d\n", r.route, c, r.byCode[c])
		}
	}
	fmt.Fprintln(w, "# HELP fairtcim_http_request_duration_seconds Request latency by route pattern.")
	fmt.Fprintln(w, "# TYPE fairtcim_http_request_duration_seconds histogram")
	for _, r := range rows {
		for i, b := range latencyBounds {
			fmt.Fprintf(w, "fairtcim_http_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				r.route, strconv.FormatFloat(b, 'g', -1, 64), r.buckets[i])
		}
		fmt.Fprintf(w, "fairtcim_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r.route, r.count)
		fmt.Fprintf(w, "fairtcim_http_request_duration_seconds_sum{route=%q} %g\n", r.route, r.sum)
		fmt.Fprintf(w, "fairtcim_http_request_duration_seconds_count{route=%q} %d\n", r.route, r.count)
	}
}

// promGauge/promCounter write one unlabeled sample with its TYPE line.
func promCounter(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}

func promGauge(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
}

// writeClusterStats exports the cluster_* counter family; shared by the
// replica's and the router's /metrics.
func writeClusterStats(w io.Writer, cs cluster.Stats) {
	promGauge(w, "fairtcim_cluster_peers_known", int64(cs.PeersKnown))
	promGauge(w, "fairtcim_cluster_peers_up", int64(cs.PeersUp))
	promCounter(w, "fairtcim_cluster_proxied_total", cs.Proxied)
	promCounter(w, "fairtcim_cluster_failovers_total", cs.Failovers)
	promCounter(w, "fairtcim_cluster_peer_fetches_total", cs.PeerFetches)
	promCounter(w, "fairtcim_cluster_peer_fetch_bytes_total", cs.PeerFetchBytes)
	promCounter(w, "fairtcim_cluster_peer_fetch_errors_total", cs.PeerFetchErrors)
	promCounter(w, "fairtcim_cluster_update_fanouts_total", cs.UpdateFanouts)
	promCounter(w, "fairtcim_cluster_probes_total", cs.Probes)
}

// handleMetrics is GET /metrics: the middleware's per-route series plus
// the /v1/stats counter families flattened into Prometheus samples.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w)
	st := s.Stats()
	promGauge(w, "fairtcim_cache_entries", int64(st.Cache.Entries))
	promCounter(w, "fairtcim_cache_hits_total", st.Cache.Hits)
	promCounter(w, "fairtcim_cache_misses_total", st.Cache.Misses)
	promCounter(w, "fairtcim_cache_builds_total", st.Cache.Builds)
	promCounter(w, "fairtcim_cache_evictions_total", st.Cache.Evictions)
	promCounter(w, "fairtcim_cache_disk_hits_total", st.Cache.DiskHits)
	promCounter(w, "fairtcim_cache_disk_writes_total", st.Cache.DiskWrites)
	promCounter(w, "fairtcim_cache_disk_errors_total", st.Cache.DiskErrors)
	promCounter(w, "fairtcim_cache_refreshes_total", st.Cache.Refreshes)
	promCounter(w, "fairtcim_cache_invalidated_total", st.Cache.Invalidated)
	promCounter(w, "fairtcim_cache_disk_gc_removals_total", st.Cache.DiskGCRemovals)
	promGauge(w, "fairtcim_cache_disk_flushes_inflight", st.Cache.FlushesInFlight)
	promCounter(w, "fairtcim_cache_rr_refreshed_total", st.Cache.RRRefreshed)
	promCounter(w, "fairtcim_cache_rr_retained_total", st.Cache.RRRetained)
	promGauge(w, "fairtcim_cache_prefix_entries", int64(st.Cache.PrefixEntries))
	promCounter(w, "fairtcim_cache_prefix_hits_total", st.Cache.PrefixHits)
	promCounter(w, "fairtcim_cache_prefix_stores_total", st.Cache.PrefixStores)
	promGauge(w, "fairtcim_workers_capacity", int64(st.Workers.Capacity))
	promGauge(w, "fairtcim_workers_active", int64(st.Workers.Active))
	promGauge(w, "fairtcim_requests_queued", st.Workers.Queued)
	promCounter(w, "fairtcim_requests_shed_total", st.Workers.Shed)
	promGauge(w, "fairtcim_jobs_queued", st.Jobs.Queued)
	promGauge(w, "fairtcim_jobs_running", st.Jobs.Running)
	promCounter(w, "fairtcim_jobs_done_total", st.Jobs.Done)
	promCounter(w, "fairtcim_jobs_failed_total", st.Jobs.Failed)
	promCounter(w, "fairtcim_jobs_canceled_total", st.Jobs.Canceled)
	promCounter(w, "fairtcim_jobs_journal_errors_total", st.JournalErrors)
	promCounter(w, "fairtcim_planner_batches_total", st.Planner.Batches)
	promCounter(w, "fairtcim_planner_groups_total", st.Planner.Groups)
	promCounter(w, "fairtcim_planner_singletons_total", st.Planner.Singletons)
	promCounter(w, "fairtcim_planner_coalesced_total", st.Planner.Coalesced)
	if st.Cluster != nil {
		writeClusterStats(w, *st.Cluster)
	}
}
