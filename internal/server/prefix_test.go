package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestPrefixMemoExtension is the end-to-end warm-extension parity check:
// on one server, solving budget 3 then budget 6 must replay the three
// memoized picks and resume CELF — and land on exactly the seeds, values
// and disparity a cold budget-6 solve on a fresh server produces. A
// budget-2 repeat afterwards is pure replay: zero gain evaluations.
func TestPrefixMemoExtension(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// twoblock rather than twostars: the two-star fixture saturates after
	// two picks (every node covered), leaving no budget axis to extend.
	body := func(budget int) string {
		return fmt.Sprintf(`{"graph":"twoblock","problem":"p4","budget":%d,"tau":3,"engine":"ris","samples":50,"eval":"sample"}`, budget)
	}
	solve := func(ts string, b string) SolveResponse {
		t.Helper()
		resp, raw := postJSON(t, ts+"/v1/select", b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select: %s", raw)
		}
		var r SolveResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}

	r3 := solve(ts.URL, body(3))
	if r3.WarmSeeds != 0 {
		t.Fatalf("cold solve reported warm seeds: %+v", r3)
	}
	if len(r3.Seeds) != 3 {
		t.Fatalf("budget-3 solve picked %v — fixture saturated, test needs a denser graph", r3.Seeds)
	}
	r6 := solve(ts.URL, body(6))
	if len(r6.Seeds) != 6 {
		t.Fatalf("budget-6 solve picked %v", r6.Seeds)
	}
	if r6.WarmSeeds != 3 {
		t.Errorf("extension replayed %d seeds, want 3", r6.WarmSeeds)
	}
	if !r6.CacheHit {
		t.Error("extension did not reuse the cached sample")
	}
	if fmt.Sprint(r6.Seeds[:3]) != fmt.Sprint(r3.Seeds) {
		t.Errorf("extension seeds %v do not extend the budget-3 prefix %v", r6.Seeds, r3.Seeds)
	}

	// Parity: a fresh server solving budget 6 cold agrees exactly.
	_, ts2 := newTestServer(t, Config{})
	cold6 := solve(ts2.URL, body(6))
	if fmt.Sprint(cold6.Seeds) != fmt.Sprint(r6.Seeds) ||
		cold6.Total != r6.Total || cold6.Disparity != r6.Disparity {
		t.Errorf("warm-extended solve diverged from cold: %+v vs %+v", r6.UtilityReport, cold6.UtilityReport)
	}
	// The extension did strictly less work than the cold solve.
	if r6.Evaluations >= cold6.Evaluations {
		t.Errorf("extension evaluated %d gains, cold %d — memo saved nothing", r6.Evaluations, cold6.Evaluations)
	}

	// A smaller repeat of a solved problem is answered by replay alone.
	r2 := solve(ts.URL, body(2))
	if r2.WarmSeeds != 2 || r2.Evaluations != 0 {
		t.Errorf("budget-2 replay: warm_seeds=%d evaluations=%d, want 2 and 0", r2.WarmSeeds, r2.Evaluations)
	}
	if fmt.Sprint(r2.Seeds) != fmt.Sprint(r6.Seeds[:2]) {
		t.Errorf("replay seeds %v are not the first 2 of %v", r2.Seeds, r6.Seeds)
	}

	st := s.Stats()
	if st.Cache.PrefixEntries != 1 || st.Cache.PrefixHits < 2 || st.Cache.PrefixStores < 1 {
		t.Errorf("prefix memo counters: %+v", st.Cache)
	}
}

// TestPrefixMemoIneligibleSpecs: specs outside the memo's contract —
// the cover problems, which have no budget axis to extend along —
// neither consume nor produce prefix state.
func TestPrefixMemoIneligibleSpecs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"graph":"twostars","problem":"p2","quota":0.5,"tau":3,"engine":"ris","samples":50,"eval":"sample"}`,
		`{"graph":"twostars","problem":"p6","quota":0.5,"tau":3,"engine":"ris","samples":50,"eval":"sample"}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/select", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select: %s", raw)
		}
		var r SolveResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		if r.WarmSeeds != 0 {
			t.Errorf("ineligible spec replayed warm seeds: %s", body)
		}
	}
	if st := s.Stats(); st.Cache.PrefixEntries != 0 || st.Cache.PrefixStores != 0 {
		t.Errorf("ineligible specs touched the prefix memo: %+v", st.Cache)
	}
}
