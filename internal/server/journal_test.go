package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJobJournalReplayTrimsAndSkipsGarbage: replay keeps the last
// retention parseable records, drops torn/foreign lines (a crash mid-
// append must not take the daemon down), and compacts the file.
func TestJobJournalReplayTrimsAndSkipsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	var lines []string
	for i := 0; i < 5; i++ {
		lines = append(lines, fmt.Sprintf(`{"id":"job%d","graph":"g","problem":"P1","status":"done","picks":2}`, i))
	}
	lines = append(lines,
		`{"id":"jobC","graph":"g","problem":"P4","status":"canceled","error":"canceled"}`,
		`{"id":"jobQ","graph":"g","problem":"P4","status":"queued"}`, // non-terminal: never restored
		`not json at all`,
		`{"truncated":`, // torn final append
	)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	journal, records, err := openJobJournal(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 7 parseable records, trimmed to the last 4: job3, job4, jobC, jobQ.
	if len(records) != 4 || records[0].ID != "job3" || records[3].ID != "jobQ" {
		t.Fatalf("retained records: %+v", records)
	}

	st := newJobStore(4, 4, journal)
	st.restore(records)
	if _, ok := st.get("job0"); ok {
		t.Error("trimmed record restored")
	}
	if _, ok := st.get("jobQ"); ok {
		t.Error("non-terminal record restored")
	}
	j, ok := st.get("jobC")
	if !ok {
		t.Fatal("canceled record not restored")
	}
	if s := j.status(); s.Status != JobCanceled || s.Error != "canceled" {
		t.Errorf("restored canceled job: %+v", s)
	}
	if s := st.stats(); s.Done != 2 || s.Canceled != 1 {
		t.Errorf("restored counters: %+v", s)
	}

	// The file was compacted: garbage is gone, appends still work.
	if err := journal.append(jobRecord{ID: "new", Status: JobDone, Created: time.Now(), Finished: time.Now()}); err != nil {
		t.Fatal(err)
	}
	again, err := journal.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 5 || again[4].ID != "new" {
		t.Fatalf("post-compact replay: %+v", again)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "not json") {
		t.Error("compaction kept garbage lines")
	}
}

// TestJobJournalOpportunisticCompaction: a long-running process must
// bound its own journal, not just trim it at the next restart. With
// retention 3, concurrent job completions push the file past the 4×
// threshold; the in-process compaction then rewrites it from the
// store's retained history — so garbage injected to simulate a crash's
// torn trailing line disappears with the excess — and the file keeps
// oscillating below the threshold instead of growing with every finish.
func TestJobJournalOpportunisticCompaction(t *testing.T) {
	const retention = 3
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	journal, _, err := openJobJournal(path, retention)
	if err != nil {
		t.Fatal(err)
	}
	st := newJobStore(64, retention, journal)

	// A crash mid-append leaves a torn, unterminated trailing line; the
	// next append glues onto it and replay drops the merged garbage.
	// Only a compaction actually removes it from the file.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"torn":`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	const workers, each = 4, 5 // 20 finishes ≫ 4×retention
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j, err := st.add("g", "P1")
				if err != nil {
					t.Error(err)
					return
				}
				j.finish(&SolveResponse{}, nil)
				st.noteFinished(j)
			}
		}()
	}
	wg.Wait()

	if n := st.journalErrors.Load(); n != 0 {
		t.Fatalf("%d journal errors during churn", n)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"torn"`) {
		t.Error("compaction kept the torn trailing line")
	}
	lineCount := 0
	for _, l := range strings.Split(string(raw), "\n") {
		if l != "" {
			lineCount++
		}
	}
	// maybeCompact runs after every append, so the file can never settle
	// above the threshold (20 finishes would leave ≥20 lines without it).
	if lineCount > 4*retention {
		t.Errorf("journal settled at %d lines, want <= %d", lineCount, 4*retention)
	}
	records, err := journal.replay()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range records {
		if !terminal(rec.Status) {
			t.Errorf("record %d non-terminal after compaction: %+v", i, rec)
		}
	}
	// A restart replays the compacted file down to exactly the retained
	// history.
	_, restored, err := openJobJournal(path, retention)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != retention {
		t.Errorf("restart restored %d records, want %d", len(restored), retention)
	}
}

// TestJobJournalEmptyDir: a fresh state dir means no history and an
// immediately usable journal.
func TestJobJournalEmptyDir(t *testing.T) {
	journal, records, err := openJobJournal(filepath.Join(t.TempDir(), "jobs.jsonl"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("records from nowhere: %+v", records)
	}
	if err := journal.append(jobRecord{ID: "a", Status: JobFailed}); err != nil {
		t.Fatal(err)
	}
	again, err := journal.replay()
	if err != nil || len(again) != 1 {
		t.Fatalf("replay after first append: %v, %+v", err, again)
	}
}
