package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJobJournalReplayTrimsAndSkipsGarbage: replay keeps the last
// retention parseable records, drops torn/foreign lines (a crash mid-
// append must not take the daemon down), and compacts the file.
func TestJobJournalReplayTrimsAndSkipsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	var lines []string
	for i := 0; i < 5; i++ {
		lines = append(lines, fmt.Sprintf(`{"id":"job%d","graph":"g","problem":"P1","status":"done","picks":2}`, i))
	}
	lines = append(lines,
		`{"id":"jobC","graph":"g","problem":"P4","status":"canceled","error":"canceled"}`,
		`{"id":"jobQ","graph":"g","problem":"P4","status":"queued"}`, // non-terminal: never restored
		`not json at all`,
		`{"truncated":`, // torn final append
	)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	journal, records, err := openJobJournal(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 7 parseable records, trimmed to the last 4: job3, job4, jobC, jobQ.
	if len(records) != 4 || records[0].ID != "job3" || records[3].ID != "jobQ" {
		t.Fatalf("retained records: %+v", records)
	}

	st := newJobStore(4, 4, journal)
	st.restore(records)
	if _, ok := st.get("job0"); ok {
		t.Error("trimmed record restored")
	}
	if _, ok := st.get("jobQ"); ok {
		t.Error("non-terminal record restored")
	}
	j, ok := st.get("jobC")
	if !ok {
		t.Fatal("canceled record not restored")
	}
	if s := j.status(); s.Status != JobCanceled || s.Error != "canceled" {
		t.Errorf("restored canceled job: %+v", s)
	}
	if s := st.stats(); s.Done != 2 || s.Canceled != 1 {
		t.Errorf("restored counters: %+v", s)
	}

	// The file was compacted: garbage is gone, appends still work.
	if err := journal.append(jobRecord{ID: "new", Status: JobDone, Created: time.Now(), Finished: time.Now()}); err != nil {
		t.Fatal(err)
	}
	again, err := journal.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 5 || again[4].ID != "new" {
		t.Fatalf("post-compact replay: %+v", again)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "not json") {
		t.Error("compaction kept garbage lines")
	}
}

// TestJobJournalEmptyDir: a fresh state dir means no history and an
// immediately usable journal.
func TestJobJournalEmptyDir(t *testing.T) {
	journal, records, err := openJobJournal(filepath.Join(t.TempDir(), "jobs.jsonl"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("records from nowhere: %+v", records)
	}
	if err := journal.append(jobRecord{ID: "a", Status: JobFailed}); err != nil {
		t.Fatal(err)
	}
	again, err := journal.replay()
	if err != nil || len(again) != 1 {
		t.Fatalf("replay after first append: %v, %+v", err, again)
	}
}
