package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"fairtcim/internal/graph"
)

// twoStarsDelta is the canonical test batch: one weak back-edge into the
// group-0 hub. Every RR set rooted in group 0 contains node 0 (the hub
// reaches all its leaves with p=1), so exactly half of a twostars sketch
// goes dirty — a deterministic partial refresh under the default 0.75
// threshold.
const twoStarsDelta = `{"edges":[{"from":1,"to":0,"p":0.05}]}`

func postUpdate(t *testing.T, url, name, body string) (*http.Response, GraphUpdateResponse, []byte) {
	t.Helper()
	resp, raw := postJSON(t, url+"/v1/graphs/"+name+"/updates", body)
	var out GraphUpdateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp, out, raw
}

func TestGraphUpdateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out, raw := postUpdate(t, ts.URL, "twostars", twoStarsDelta)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if out.Version != 2 || out.EdgesAdded != 1 || out.EdgesUpdated != 0 || out.EdgesRemoved != 0 {
		t.Fatalf("update response = %+v", out)
	}
	if out.Edges != 16 || out.Nodes != 17 {
		t.Fatalf("post-update shape %d nodes / %d edges, want 17/16", out.Nodes, out.Edges)
	}
	if len(out.TouchedHeads) != 1 || out.TouchedHeads[0] != 0 {
		t.Fatalf("touched_heads = %v, want [0]", out.TouchedHeads)
	}

	// The registry row reflects the bump.
	resp2, err := http.Get(ts.URL + "/v1/graphs/twostars")
	if err != nil {
		t.Fatal(err)
	}
	var info GraphInfo
	if err := json.NewDecoder(resp2.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if info.Version != 2 || info.Edges != 16 || !info.Loaded {
		t.Fatalf("graph row after update = %+v", info)
	}

	// Conditional update against the superseded version is a 409 with the
	// stable code; against the current version it applies.
	resp, _, raw = postUpdate(t, ts.URL, "twostars", `{"expect_version":1,"edges":[{"from":2,"to":0,"p":0.05}]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale expect_version: status %d: %s", resp.StatusCode, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != CodeVersionConflict {
		t.Fatalf("conflict envelope = %s", raw)
	}
	resp, out, raw = postUpdate(t, ts.URL, "twostars", `{"expect_version":2,"edges":[{"from":2,"to":0,"p":0.05}]}`)
	if resp.StatusCode != http.StatusOK || out.Version != 3 {
		t.Fatalf("conditional update at current version: status %d: %s", resp.StatusCode, raw)
	}

	// Error paths with their envelope codes.
	for _, tc := range []struct {
		name, graph, body string
		status            int
		code              string
	}{
		{"unknown graph", "nope", twoStarsDelta, http.StatusNotFound, CodeGraphNotFound},
		{"empty delta", "twostars", `{}`, http.StatusBadRequest, CodeBadSpec},
		{"bad json", "twostars", `{"edges":`, http.StatusBadRequest, CodeBadRequest},
		{"unknown field", "twostars", `{"bogus":1}`, http.StatusBadRequest, CodeBadRequest},
		{"bad probability", "twostars", `{"edges":[{"from":1,"to":0,"p":1.5}]}`, http.StatusBadRequest, CodeBadSpec},
		{"node out of range", "twostars", `{"edges":[{"from":99,"to":0,"p":0.5}]}`, http.StatusBadRequest, CodeBadSpec},
		{"remove missing edge", "twostars", `{"edges":[{"from":3,"to":4,"remove":true}]}`, http.StatusBadRequest, CodeBadSpec},
	} {
		resp, _, raw := postUpdate(t, ts.URL, tc.graph, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.status, raw)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != tc.code {
			t.Errorf("%s: envelope code in %s, want %q", tc.name, raw, tc.code)
		}
	}
}

// TestUpdateInvalidatesMemoryCache pins the version-keyed cache contract:
// an update moves every subsequent request to a fresh key (no stale
// serving), the new sketch arrives by partial refresh (strictly fewer RR
// sets resampled than a cold build), and repeats at the new version hit
// the refreshed entry.
func TestUpdateInvalidatesMemoryCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","ris_per_group":40,"seed":7}`

	resp, body := postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: %s", body)
	}
	var cold SolveResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.GraphVersion != 1 || cold.RRRefreshed != 0 || cold.RRRetained != 0 {
		t.Fatalf("cold solve metadata: %s", body)
	}

	if resp, _, raw := postUpdate(t, ts.URL, "twostars", twoStarsDelta); resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s", raw)
	}

	resp, body = postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-update solve: %s", body)
	}
	var warm SolveResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.CacheHit {
		t.Fatalf("post-update solve hit the pre-update cache entry: %s", body)
	}
	if warm.GraphVersion != 2 {
		t.Fatalf("graph_version = %d, want 2", warm.GraphVersion)
	}
	// Exactly the group-0 pool (40 sets, all containing the touched hub)
	// resamples; the group-1 pool carries over verbatim.
	if warm.RRRefreshed != 40 || warm.RRRetained != 40 {
		t.Fatalf("rr_refreshed/rr_retained = %d/%d, want 40/40 (%s)", warm.RRRefreshed, warm.RRRetained, body)
	}
	// The weak 0.05 back-edge does not change the optimum.
	if len(warm.Seeds) != 2 || warm.Seeds[0] != 0 || warm.Seeds[1] != 11 {
		t.Fatalf("post-update seeds = %v, want [0 11]", warm.Seeds)
	}

	// A repeat at the new version is an ordinary cache hit echoing the
	// builder's refresh split.
	resp, body = postJSON(t, ts.URL+"/v1/select", req)
	var rep SolveResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit || rep.RRRefreshed != 40 || rep.RRRetained != 40 {
		t.Fatalf("repeat at v2: %s", body)
	}

	st := s.CacheStats()
	if st.Refreshes != 1 || st.RRRefreshed != 40 || st.RRRetained != 40 {
		t.Fatalf("refresh counters = %+v", st)
	}
	if st.Builds != 1 {
		t.Fatalf("builds = %d, want 1 (the refresh must not count as a cold build)", st.Builds)
	}
}

// TestUpdateInvalidatesWorldCache pins the forward-MC side: world sets
// cannot be refreshed, so the update drops them and reports how many
// realized a touched arc; the next request is a cold rebuild on the new
// snapshot.
func TestUpdateInvalidatesWorldCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"graph":"twostars","problem":"p1","budget":1,"tau":3,"samples":30,"seed":5}`
	if resp, body := postJSON(t, ts.URL+"/v1/select", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %s", body)
	}

	resp, out, raw := postUpdate(t, ts.URL, "twostars", twoStarsDelta)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s", raw)
	}
	if out.Invalidation.EntriesDropped != 1 {
		t.Fatalf("invalidation = %+v, want 1 world entry dropped", out.Invalidation)
	}
	// The added arc 1→0 has p=0.05; with 30 worlds some realizing it is
	// not guaranteed, but none may exceed the set size.
	if out.Invalidation.WorldsTouched < 0 || out.Invalidation.WorldsTouched > 30 {
		t.Fatalf("worlds_touched = %d out of 30", out.Invalidation.WorldsTouched)
	}

	resp, body := postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-update solve: %s", body)
	}
	var sel SolveResponse
	if err := json.Unmarshal(body, &sel); err != nil {
		t.Fatal(err)
	}
	if sel.CacheHit || sel.GraphVersion != 2 {
		t.Fatalf("post-update forward-MC solve must rebuild cold at v2: %s", body)
	}
	if st := s.CacheStats(); st.Invalidated != 1 || st.Builds != 2 {
		t.Fatalf("stats after world invalidation = %+v", st)
	}
}

// TestUpdateVersionKeyedPersistence pins the disk tier across versions: a
// post-update request must never read the pre-update file — its
// version-keyed name misses as a clean cold start (zero disk_errors) —
// and a warm restart at the new version finds the refreshed sketch.
func TestUpdateVersionKeyedPersistence(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	s, ts := newTestServer(t, Config{Registry: reg, StateDir: dir})
	req := `{"graph":"twostars","problem":"p4","budget":2,"tau":3,"engine":"ris","ris_per_group":40,"seed":7}`

	if resp, body := postJSON(t, ts.URL+"/v1/select", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: %s", body)
	}
	s.WaitFlushes()
	if resp, _, raw := postUpdate(t, ts.URL, "twostars", twoStarsDelta); resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s", raw)
	}

	resp, body := postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-update solve: %s", body)
	}
	var warm SolveResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.CacheHit || warm.RRRefreshed != 40 {
		t.Fatalf("post-update solve should partial-refresh, not hit disk: %s", body)
	}
	s.WaitFlushes()
	st := s.CacheStats()
	if st.DiskErrors != 0 {
		t.Fatalf("version-keyed miss must be a clean cold start, got %d disk errors (%+v)", st.DiskErrors, st)
	}
	if st.DiskWrites != 2 {
		t.Fatalf("disk writes = %d, want 2 (v1 and refreshed v2)", st.DiskWrites)
	}

	// "Restart": a second server over the same registry (still at v2) and
	// state dir serves the refreshed sketch from disk without building.
	s2, ts2 := newTestServer(t, Config{Registry: reg, StateDir: dir})
	resp, body = postJSON(t, ts2.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart solve: %s", body)
	}
	var restarted SolveResponse
	if err := json.Unmarshal(body, &restarted); err != nil {
		t.Fatal(err)
	}
	if !restarted.CacheHit || restarted.GraphVersion != 2 {
		t.Fatalf("restart at v2 should disk-hit the refreshed sketch: %s", body)
	}
	if st := s2.CacheStats(); st.DiskHits != 1 || st.Builds != 0 || st.DiskErrors != 0 {
		t.Fatalf("restart stats = %+v", st)
	}
	if restarted.Seeds[0] != warm.Seeds[0] || restarted.Seeds[1] != warm.Seeds[1] {
		t.Fatalf("restart picks %v != pre-restart %v", restarted.Seeds, warm.Seeds)
	}
}

// TestConcurrentUpdatesNoTornSnapshots hammers GetVersioned from readers
// while a writer applies two-edge batches and their inverses. Every batch
// lands atomically — a reader may see the base graph or the augmented
// graph, never one edge of two. Run under -race this also exercises the
// registry's locking.
func TestConcurrentUpdatesNoTornSnapshots(t *testing.T) {
	reg := testRegistry(t)
	g0, _, err := reg.GetVersioned("twostars")
	if err != nil {
		t.Fatal(err)
	}
	baseM := g0.M()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, v, err := reg.GetVersioned("twostars")
				if err != nil {
					t.Error(err)
					return
				}
				if m := g.M(); m != baseM && m != baseM+2 {
					t.Errorf("torn snapshot at v%d: %d edges, want %d or %d", v, m, baseM, baseM+2)
					return
				}
			}
		}()
	}

	add := graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, P: 0.05}, {From: 12, To: 11, P: 0.05}}}
	remove := graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, Remove: true}, {From: 12, To: 11, Remove: true}}}
	for i := 0; i < 25; i++ {
		if _, _, _, err := reg.ApplyUpdate("twostars", 0, add); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := reg.ApplyUpdate("twostars", 0, remove); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if _, v, _ := reg.GetVersioned("twostars"); v != 51 {
		t.Fatalf("final version = %d, want 51", v)
	}
}

// TestRefreshSkipsStaleHistory pins the history-gap fallback: a sketch
// more versions behind than the retained delta history rebuilds cold
// instead of refreshing from an uncoverable range.
func TestRefreshSkipsStaleHistory(t *testing.T) {
	reg := testRegistry(t)
	if _, _, err := reg.GetVersioned("twostars"); err != nil {
		t.Fatal(err)
	}
	d := graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, P: 0.05}}}
	inv := graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, Remove: true}}}
	for i := 0; i < deltaHistory; i++ { // push v1's record out of the window
		if _, _, _, err := reg.ApplyUpdate("twostars", 0, d); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := reg.ApplyUpdate("twostars", 0, inv); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := reg.TouchedSince("twostars", 1, 2*uint64(deltaHistory)+1); ok {
		t.Fatal("TouchedSince covered a range older than the retained history")
	}
	// A range inside the window still resolves.
	heads, groupsChanged, ok := reg.TouchedSince("twostars", 2*uint64(deltaHistory)-1, 2*uint64(deltaHistory)+1)
	if !ok || groupsChanged {
		t.Fatalf("in-window TouchedSince: ok=%v groupsChanged=%v", ok, groupsChanged)
	}
	if len(heads) != 1 || heads[0] != 0 {
		t.Fatalf("heads = %v, want [0]", heads)
	}
}

// TestGraphsLegacyFormat pins the deprecated bare-name listing kept
// behind ?format=names.
func TestGraphsLegacyFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/graphs?format=names")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var legacy struct {
		Graphs []string `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", legacy.Graphs) != "[twoblock twostars]" {
		t.Fatalf("legacy listing = %v", legacy.Graphs)
	}
}
