package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// jobRecord is the journaled wire form of one finished job — everything
// GET /v1/jobs and GET /v1/jobs/{id} need to answer for it after a
// restart. Traces are not journaled: they exist for live streaming, and
// replaying a finished job's stream is served from Result instead.
type jobRecord struct {
	ID       string         `json:"id"`
	Graph    string         `json:"graph"`
	Problem  string         `json:"problem"`
	Status   string         `json:"status"`
	Error    string         `json:"error,omitempty"`
	Picks    int            `json:"picks"`
	Result   *SolveResponse `json:"result,omitempty"`
	Created  time.Time      `json:"created"`
	Finished time.Time      `json:"finished"`
}

// jobJournal is the append-only finished-job log at
// <state-dir>/jobs.jsonl: one JSON record per line, appended when a job
// reaches a terminal state. On open, the existing log is replayed (bad
// lines are skipped, never fatal — a torn final line after a crash must
// not take the daemon down), trimmed to the retention bound, and
// compacted back to disk. In-process appends keep counting lines, and
// once the file exceeds ~4× the retention bound maybeCompact rewrites
// it from the live store's retained history, so a long-running daemon's
// journal stays bounded instead of growing until the next restart.
type jobJournal struct {
	path      string
	retention int
	mu        sync.Mutex
	lines     int // records in the file: compacted base + appends since
}

// openJobJournal opens (creating if needed) the journal at path and
// returns the retained records, oldest first.
func openJobJournal(path string, retention int) (*jobJournal, []jobRecord, error) {
	j := &jobJournal{path: path, retention: retention}
	records, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	if len(records) > retention {
		records = records[len(records)-retention:]
	}
	if err := j.compact(records); err != nil {
		return nil, nil, err
	}
	return j, records, nil
}

// replay reads every parseable record in file order.
func (j *jobJournal) replay() ([]jobRecord, error) {
	f, err := os.Open(j.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: job journal: %w", err)
	}
	defer f.Close()
	var records []jobRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 16<<20) // result payloads can carry large seed sets
	for sc.Scan() {
		var rec jobRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.ID == "" {
			continue // torn or foreign line; drop it, keep the rest
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: job journal: %w", err)
	}
	return records, nil
}

// compact rewrites the journal to exactly records (atomically, via temp
// file + rename).
func (j *jobJournal) compact(records []jobRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked(records)
}

func (j *jobJournal) compactLocked(records []jobRecord) error {
	// Write next to the journal so the rename stays on one filesystem.
	tmp, err := os.CreateTemp(filepath.Dir(j.path), "jobs.jsonl.tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return err
	}
	j.lines = len(records)
	return nil
}

// append writes one finished job to the log. Failures are returned for
// the caller to count; the in-memory store is already authoritative.
func (j *jobJournal) append(rec jobRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rec); err != nil {
		return err
	}
	j.lines++
	return nil
}

// maybeCompact opportunistically rewrites an overgrown journal from the
// caller's authoritative retained history. It is a no-op until the file
// holds more than ~4× the retention bound, so steady append traffic pays
// nothing and the rewrite amortizes to O(1) per finished job. collect is
// invoked under the journal lock (lock order: journal.mu then the job
// store's mu); because the rewrite's source is the in-memory store, any
// torn or foreign lines in the file vanish with the excess. Returns
// whether a compaction ran; errors are reported on the same path as
// failed appends.
func (j *jobJournal) maybeCompact(collect func() []jobRecord) (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.retention <= 0 || j.lines <= 4*j.retention {
		return false, nil
	}
	return true, j.compactLocked(collect())
}
