package server

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"fairtcim/internal/graph"
)

// ErrUnknownGraph marks lookups of names never registered; handlers map
// it to 404 while load failures stay 500.
var ErrUnknownGraph = errors.New("unknown graph")

// ErrVersionConflict marks a graph update whose expect_version did not
// match the registry's current version — the caller raced another update
// and must re-read before retrying; handlers map it to 409.
var ErrVersionConflict = errors.New("graph version conflict")

// deltaHistory bounds how many applied delta batches a graph entry
// remembers for incremental sketch refresh. A sketch more than this many
// versions behind the current graph rebuilds cold instead.
const deltaHistory = 64

// Loader produces a graph on first use. Loaders run at most once
// successfully; a failed load is retried on the next request for the
// graph (so a file that appears after startup becomes servable).
type Loader func() (*graph.Graph, error)

// regEntry is one named graph with its lazily-loaded result. The loader
// runs outside mu so introspection never blocks behind a slow load;
// loading marks an in-flight load and is closed when it resolves.
//
// After an update, g points at a NEW immutable snapshot and version is
// bumped; in-flight solves keep reading the snapshot they grabbed, so a
// batch is never half-visible. history remembers which arc heads each
// recent batch touched so sketches a few versions behind can refresh
// incrementally instead of rebuilding.
type regEntry struct {
	source string
	loader Loader

	mu      sync.Mutex
	loading chan struct{} // non-nil while a load is in flight
	g       *graph.Graph  // non-nil once successfully loaded
	version uint64        // 1 after first load, +1 per applied batch
	history []deltaRec    // most recent deltaHistory batches, ascending toVersion
}

// deltaRec records one applied batch for incremental refresh: the version
// it produced, the distinct heads of changed arcs, and whether any group
// label moved (which invalidates sketch root distributions wholesale).
type deltaRec struct {
	toVersion     uint64
	heads         []graph.NodeID
	groupsChanged bool
}

// Registry maps names to lazily-loaded, immutable graphs. Registration
// happens at daemon startup; Get is called per request and shares one
// load among concurrent callers.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*regEntry{}}
}

// Register adds a named graph backed by a loader. source is a
// human-readable origin shown by /v1/graphs (e.g. "file:net.txt" or
// "synthetic:twoblock"). Duplicate names are rejected.
func (r *Registry) Register(name, source string, load Loader) error {
	if name == "" {
		return fmt.Errorf("server: empty graph name")
	}
	if load == nil {
		return fmt.Errorf("server: nil loader for graph %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("server: graph %q already registered", name)
	}
	r.entries[name] = &regEntry{source: source, loader: load}
	return nil
}

// RegisterFile registers a graph read from a fairtcim edge-list file on
// first use.
func (r *Registry) RegisterFile(name, path string) error {
	return r.Register(name, "file:"+path, func() (*graph.Graph, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Read(f)
	})
}

// RegisterGraph registers an already-built graph (tests, embedded
// synthetics).
func (r *Registry) RegisterGraph(name, source string, g *graph.Graph) error {
	return r.Register(name, source, func() (*graph.Graph, error) { return g, nil })
}

// Get returns the named graph, loading it on first use. Concurrent
// callers for the same graph share a single load; a failed load is
// reported to everyone waiting on it and retried by the next request.
func (r *Registry) Get(name string) (*graph.Graph, error) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("server: %w %q", ErrUnknownGraph, name)
	}
	for {
		e.mu.Lock()
		if e.g != nil {
			g := e.g
			e.mu.Unlock()
			return g, nil
		}
		if e.loading == nil {
			// Become the loader; run it without holding mu.
			ch := make(chan struct{})
			e.loading = ch
			e.mu.Unlock()
			g, err := e.loader()
			e.mu.Lock()
			if err == nil {
				e.g = g
				e.version = 1
			}
			e.loading = nil
			e.mu.Unlock()
			close(ch)
			if err != nil {
				return nil, fmt.Errorf("server: loading graph %q: %w", name, err)
			}
			return g, nil
		}
		// Join the in-flight load, then re-check: on success e.g is set;
		// on failure the loop retries the load.
		ch := e.loading
		e.mu.Unlock()
		<-ch
	}
}

// GetVersioned returns the named graph together with its current registry
// version. The pair is read atomically: the returned graph is exactly the
// snapshot at the returned version, even if an update lands immediately
// after.
func (r *Registry) GetVersioned(name string) (*graph.Graph, uint64, error) {
	if _, err := r.Get(name); err != nil {
		return nil, 0, err
	}
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	e.mu.Lock()
	g, v := e.g, e.version
	e.mu.Unlock()
	return g, v, nil
}

// ApplyUpdate applies one delta batch to the named graph, swapping in the
// new immutable snapshot and bumping the version. expect, when non-zero,
// must match the current version or the update is rejected with
// ErrVersionConflict (optimistic concurrency for racing writers). Returns
// the new snapshot, its version, and what the batch changed.
func (r *Registry) ApplyUpdate(name string, expect uint64, d graph.Delta) (*graph.Graph, uint64, *graph.DeltaResult, error) {
	// Force the initial load outside the entry lock; an update to a graph
	// nobody has requested yet applies against its freshly-loaded state.
	if _, err := r.Get(name); err != nil {
		return nil, 0, nil, err
	}
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if expect != 0 && expect != e.version {
		return nil, 0, nil, fmt.Errorf("server: graph %q is at version %d, not %d: %w", name, e.version, expect, ErrVersionConflict)
	}
	ng, res, err := e.g.ApplyDelta(d)
	if err != nil {
		return nil, 0, nil, err
	}
	e.g = ng
	e.version++
	e.history = append(e.history, deltaRec{
		toVersion:     e.version,
		heads:         res.TouchedHeads,
		groupsChanged: res.GroupsChanged > 0,
	})
	if len(e.history) > deltaHistory {
		e.history = e.history[len(e.history)-deltaHistory:]
	}
	return ng, e.version, res, nil
}

// TouchedSince accumulates the delta history of the named graph over the
// version range (from, to]: the union of touched arc heads and whether any
// batch moved group labels. ok is false when the range is not fully
// covered by retained history (or the graph is unknown/unloaded), in which
// case the caller must rebuild cold.
func (r *Registry) TouchedSince(name string, from, to uint64) (heads []graph.NodeID, groupsChanged bool, ok bool) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil || from >= to {
		return nil, false, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.g == nil || to > e.version {
		return nil, false, false
	}
	seen := map[graph.NodeID]struct{}{}
	covered := from
	for _, rec := range e.history {
		if rec.toVersion <= from || rec.toVersion > to {
			continue
		}
		if rec.toVersion != covered+1 {
			return nil, false, false // gap: record evicted from history
		}
		covered = rec.toVersion
		groupsChanged = groupsChanged || rec.groupsChanged
		for _, h := range rec.heads {
			seen[h] = struct{}{}
		}
	}
	if covered != to {
		return nil, false, false
	}
	heads = make([]graph.NodeID, 0, len(seen))
	for h := range seen {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	return heads, groupsChanged, true
}

// Names returns all registered graph names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GraphInfo is one row of /v1/graphs. Size fields are present only once
// the graph has been loaded; introspection never forces a load.
type GraphInfo struct {
	Name       string `json:"name"`
	Source     string `json:"source"`
	Loaded     bool   `json:"loaded"`
	Version    uint64 `json:"version,omitempty"`
	Nodes      int    `json:"nodes,omitempty"`
	Edges      int    `json:"edges,omitempty"`
	Groups     int    `json:"groups,omitempty"`
	GroupSizes []int  `json:"group_sizes,omitempty"`
}

// Info snapshots every registered graph for introspection.
func (r *Registry) Info() []GraphInfo {
	names := r.Names()
	out := make([]GraphInfo, 0, len(names))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range names {
		e := r.entries[name]
		out = append(out, infoOf(name, e))
	}
	return out
}

// InfoFor snapshots a single graph; ok is false for unregistered names.
func (r *Registry) InfoFor(name string) (GraphInfo, bool) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return GraphInfo{}, false
	}
	return infoOf(name, e), true
}

func infoOf(name string, e *regEntry) GraphInfo {
	info := GraphInfo{Name: name, Source: e.source}
	e.mu.Lock()
	if e.g != nil {
		info.Loaded = true
		info.Version = e.version
		info.Nodes = e.g.N()
		info.Edges = e.g.M()
		info.Groups = e.g.NumGroups()
		info.GroupSizes = e.g.GroupSizes()
	}
	e.mu.Unlock()
	return info
}
