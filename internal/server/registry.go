package server

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"fairtcim/internal/graph"
)

// ErrUnknownGraph marks lookups of names never registered; handlers map
// it to 404 while load failures stay 500.
var ErrUnknownGraph = errors.New("unknown graph")

// Loader produces a graph on first use. Loaders run at most once
// successfully; a failed load is retried on the next request for the
// graph (so a file that appears after startup becomes servable).
type Loader func() (*graph.Graph, error)

// regEntry is one named graph with its lazily-loaded result. The loader
// runs outside mu so introspection never blocks behind a slow load;
// loading marks an in-flight load and is closed when it resolves.
type regEntry struct {
	source string
	loader Loader

	mu      sync.Mutex
	loading chan struct{} // non-nil while a load is in flight
	g       *graph.Graph  // non-nil once successfully loaded
}

// Registry maps names to lazily-loaded, immutable graphs. Registration
// happens at daemon startup; Get is called per request and shares one
// load among concurrent callers.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*regEntry{}}
}

// Register adds a named graph backed by a loader. source is a
// human-readable origin shown by /v1/graphs (e.g. "file:net.txt" or
// "synthetic:twoblock"). Duplicate names are rejected.
func (r *Registry) Register(name, source string, load Loader) error {
	if name == "" {
		return fmt.Errorf("server: empty graph name")
	}
	if load == nil {
		return fmt.Errorf("server: nil loader for graph %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("server: graph %q already registered", name)
	}
	r.entries[name] = &regEntry{source: source, loader: load}
	return nil
}

// RegisterFile registers a graph read from a fairtcim edge-list file on
// first use.
func (r *Registry) RegisterFile(name, path string) error {
	return r.Register(name, "file:"+path, func() (*graph.Graph, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Read(f)
	})
}

// RegisterGraph registers an already-built graph (tests, embedded
// synthetics).
func (r *Registry) RegisterGraph(name, source string, g *graph.Graph) error {
	return r.Register(name, source, func() (*graph.Graph, error) { return g, nil })
}

// Get returns the named graph, loading it on first use. Concurrent
// callers for the same graph share a single load; a failed load is
// reported to everyone waiting on it and retried by the next request.
func (r *Registry) Get(name string) (*graph.Graph, error) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("server: %w %q", ErrUnknownGraph, name)
	}
	for {
		e.mu.Lock()
		if e.g != nil {
			g := e.g
			e.mu.Unlock()
			return g, nil
		}
		if e.loading == nil {
			// Become the loader; run it without holding mu.
			ch := make(chan struct{})
			e.loading = ch
			e.mu.Unlock()
			g, err := e.loader()
			e.mu.Lock()
			if err == nil {
				e.g = g
			}
			e.loading = nil
			e.mu.Unlock()
			close(ch)
			if err != nil {
				return nil, fmt.Errorf("server: loading graph %q: %w", name, err)
			}
			return g, nil
		}
		// Join the in-flight load, then re-check: on success e.g is set;
		// on failure the loop retries the load.
		ch := e.loading
		e.mu.Unlock()
		<-ch
	}
}

// Names returns all registered graph names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GraphInfo is one row of /v1/graphs. Size fields are present only once
// the graph has been loaded; introspection never forces a load.
type GraphInfo struct {
	Name       string `json:"name"`
	Source     string `json:"source"`
	Loaded     bool   `json:"loaded"`
	Nodes      int    `json:"nodes,omitempty"`
	Edges      int    `json:"edges,omitempty"`
	Groups     int    `json:"groups,omitempty"`
	GroupSizes []int  `json:"group_sizes,omitempty"`
}

// Info snapshots every registered graph for introspection.
func (r *Registry) Info() []GraphInfo {
	names := r.Names()
	out := make([]GraphInfo, 0, len(names))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range names {
		e := r.entries[name]
		info := GraphInfo{Name: name, Source: e.source}
		e.mu.Lock()
		if e.g != nil {
			info.Loaded = true
			info.Nodes = e.g.N()
			info.Edges = e.g.M()
			info.Groups = e.g.NumGroups()
			info.GroupSizes = e.g.GroupSizes()
		}
		e.mu.Unlock()
		out = append(out, info)
	}
	return out
}
