package server

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairtcim/internal/cascade"
	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

func tinyKey(seed int64) sampleKey {
	return sampleKey{
		graph:  "twostars",
		engine: fairim.EngineForwardMC,
		model:  cascade.IC,
		budget: 5,
		seed:   seed,
	}
}

func TestCacheLRUEviction(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(2)
	for seed := int64(1); seed <= 3; seed++ {
		if _, _, _, err := c.SampleFor(context.Background(), tinyKey(seed), g, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Builds != 3 {
		t.Fatalf("after 3 inserts into capacity 2: %+v", st)
	}
	// Key 1 was least recently used and must have been evicted: asking
	// again rebuilds. Key 3 is still warm.
	if _, hit, _, err := c.SampleFor(context.Background(), tinyKey(1), g, 1, nil); err != nil || hit {
		t.Fatalf("evicted key reported hit=%v err=%v", hit, err)
	}
	if _, hit, _, err := c.SampleFor(context.Background(), tinyKey(3), g, 1, nil); err != nil || !hit {
		t.Fatalf("recent key reported hit=%v err=%v", hit, err)
	}
	st = c.Stats()
	if st.Builds != 4 || st.Hits != 1 {
		t.Fatalf("final stats: %+v", st)
	}
}

func TestCacheConcurrentSingleflight(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	key := sampleKey{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 2000, seed: 1}
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			smp, _, _, err := c.SampleFor(context.Background(), key, g, 1, nil)
			if err != nil || smp == nil {
				t.Errorf("SampleFor: smp=%v err=%v", smp, err)
				return
			}
			if est, err := smp.newEstimator(3); err != nil || est == nil {
				t.Errorf("newEstimator: est=%v err=%v", est, err)
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Builds != 1 || st.Hits+st.Misses != workers {
		t.Fatalf("singleflight violated: %+v", st)
	}
}

// TestCacheInFlightEntriesSurviveEviction overflows a capacity-1 cache
// while a build is still in flight: the in-flight entry must not be
// evicted (that would allow a duplicate build of the same key).
func TestCacheInFlightEntriesSurviveEviction(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(1)
	slow := sampleKey{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 60000, seed: 1}
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.SampleFor(context.Background(), slow, g, 1, nil)
		done <- err
	}()
	// Insert another key while the slow build is (very likely) in flight.
	if _, _, _, err := c.SampleFor(context.Background(), tinyKey(9), g, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The slow key must still be resident: re-requesting it is a hit.
	if _, hit, _, err := c.SampleFor(context.Background(), slow, g, 1, nil); err != nil || !hit {
		t.Fatalf("in-flight entry was evicted: hit=%v err=%v (stats %+v)", hit, err, c.Stats())
	}
	if st := c.Stats(); st.Builds != 2 {
		t.Fatalf("duplicate build after eviction of in-flight entry: %+v", st)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	bad := sampleKey{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: -1, budget: 10, seed: 1}
	if _, _, _, err := c.SampleFor(context.Background(), bad, g, 1, nil); err == nil {
		t.Fatal("negative-τ RIS build should fail")
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("failed build left a cache entry: %+v", st)
	}
	// The same key is retried, not served the stale error.
	if _, _, _, err := c.SampleFor(context.Background(), bad, g, 1, nil); err == nil {
		t.Fatal("retry should re-run the failing build")
	}
	if st := c.Stats(); st.Builds != 2 {
		t.Fatalf("retry did not rebuild: %+v", st)
	}
}

// TestRegistryConcurrentLoadOnce checks that concurrent Gets share one
// load and that introspection is not blocked behind it.
func TestRegistryConcurrentLoadOnce(t *testing.T) {
	reg := NewRegistry()
	var loads atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	if err := reg.Register("slow", "test", func() (*graph.Graph, error) {
		loads.Add(1)
		close(started)
		<-release
		return generate.TwoStars(), nil
	}); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reg.Get("slow"); err != nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	<-started
	// Introspection must return while the load is still in flight.
	if info := reg.Info(); len(info) != 1 || info[0].Loaded {
		t.Fatalf("Info during load: %+v", info)
	}
	close(release)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
}

func TestRegistryUnknownAndDuplicate(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Get("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("err = %v, want ErrUnknownGraph", err)
	}
	if err := reg.RegisterGraph("g", "test", generate.TwoStars()); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterGraph("g", "test", generate.TwoStars()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRegistryFileRoundtripAndRetry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	reg := NewRegistry()
	if err := reg.RegisterFile("late", path); err != nil {
		t.Fatal(err)
	}
	// File does not exist yet: load fails but is not cached as permanent.
	if _, err := reg.Get("late"); err == nil {
		t.Fatal("expected load failure for missing file")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Write(f, generate.TwoStars()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := reg.Get("late")
	if err != nil {
		t.Fatalf("retry after file appeared: %v", err)
	}
	if g.N() != 17 {
		t.Fatalf("roundtrip graph has %d nodes, want 17", g.N())
	}
	// Loaded graphs are shared, not re-read.
	g2, err := reg.Get("late")
	if err != nil || g2 != g {
		t.Fatalf("second Get returned a different graph (err=%v)", err)
	}
}

// ctxGate blocks in acquire until its context is cancelled — the shape of
// a client disconnecting while queued for a worker slot.
type ctxGate struct {
	entered chan struct{} // closed once acquire is reached
}

func (g *ctxGate) acquire(ctx context.Context) bool {
	close(g.entered)
	<-ctx.Done()
	return false
}
func (g *ctxGate) release() {}

// TestSampleForCancelIsNotCapacity: a request cancelled while waiting for
// its build slot reports its own context error — not ErrCapacity — and
// must not poison the entry: the next request for the key builds cleanly.
func TestSampleForCancelIsNotCapacity(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	key := tinyKey(1)

	ctx, cancel := context.WithCancel(context.Background())
	gate := &ctxGate{entered: make(chan struct{})}
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := c.SampleFor(ctx, key, g, 1, gate)
		errc <- err
	}()
	<-gate.entered
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled builder got %v, want context.Canceled", err)
	}

	// The key is not poisoned: a fresh request builds and succeeds.
	smp, hit, _, err := c.SampleFor(context.Background(), key, g, 1, nil)
	if err != nil || smp == nil {
		t.Fatalf("retry after cancellation: smp=%v err=%v", smp, err)
	}
	if hit {
		t.Error("retry after cancellation reported a hit")
	}
	if st := c.Stats(); st.Builds != 1 {
		t.Fatalf("stats after cancel + retry: %+v", st)
	}
}

// TestSampleForJoinerSurvivesBuilderCancel: a singleflight joiner of an
// entry whose builder's client disconnected before the build started must
// not inherit a spurious error — it retries the key and builds itself.
func TestSampleForJoinerSurvivesBuilderCancel(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	key := tinyKey(2)

	ctx, cancel := context.WithCancel(context.Background())
	gate := &ctxGate{entered: make(chan struct{})}
	builderErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.SampleFor(ctx, key, g, 1, gate)
		builderErr <- err
	}()
	// The entry is registered before the gate is entered, so once the
	// gate reports in, a second request is guaranteed to join it.
	<-gate.entered
	joiner := make(chan error, 1)
	go func() {
		smp, _, _, err := c.SampleFor(context.Background(), key, g, 1, nil)
		if err == nil && smp == nil {
			err = errors.New("nil sample without error")
		}
		joiner <- err
	}()
	cancel()
	if err := <-builderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("builder got %v, want context.Canceled", err)
	}
	if err := <-joiner; err != nil {
		t.Fatalf("joiner inherited the builder's cancellation: %v", err)
	}
	if st := c.Stats(); st.Builds != 1 || st.Entries != 1 {
		t.Fatalf("stats after joiner takeover: %+v", st)
	}
}

// TestSampleForCapacityStillSheds: a genuine slot-acquisition failure
// with a live request context is still ErrCapacity.
func TestSampleForCapacityStillSheds(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	if _, _, _, err := c.SampleFor(context.Background(), tinyKey(3), g, 1, deniedGate{}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	// The failed entry is dropped, so a later request can succeed.
	if _, _, _, err := c.SampleFor(context.Background(), tinyKey(3), g, 1, nil); err != nil {
		t.Fatal(err)
	}
}

// deniedGate refuses every acquire with the context still live — pure
// saturation.
type deniedGate struct{}

func (deniedGate) acquire(context.Context) bool { return false }
func (deniedGate) release()                     {}

// TestSampleForJoinerSurvivesBuilderShed: a joiner whose builder was shed
// at capacity retries under its own gate policy instead of inheriting the
// builder's 503 — an async job joining a synchronous request's build must
// not fail with the sync path's queue-timeout error.
func TestSampleForJoinerSurvivesBuilderShed(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	key := tinyKey(4)

	gate := &shedGate{entered: make(chan struct{}), shed: make(chan struct{})}
	builderErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.SampleFor(context.Background(), key, g, 1, gate)
		builderErr <- err
	}()
	<-gate.entered
	joiner := make(chan error, 1)
	go func() {
		smp, _, _, err := c.SampleFor(context.Background(), key, g, 1, nil)
		if err == nil && smp == nil {
			err = errors.New("nil sample without error")
		}
		joiner <- err
	}()
	close(gate.shed) // the builder's gate times out: capacity refusal
	if err := <-builderErr; !errors.Is(err, ErrCapacity) {
		t.Fatalf("shed builder got %v, want ErrCapacity", err)
	}
	if err := <-joiner; err != nil {
		t.Fatalf("joiner inherited the builder's capacity shed: %v", err)
	}
	if st := c.Stats(); st.Builds != 1 || st.Entries != 1 {
		t.Fatalf("stats after joiner takeover: %+v", st)
	}
}

// shedGate blocks in acquire until told to shed, then refuses with the
// context still live — a queue-timeout capacity refusal.
type shedGate struct {
	entered chan struct{}
	shed    chan struct{}
}

func (g *shedGate) acquire(context.Context) bool {
	close(g.entered)
	<-g.shed
	return false
}
func (g *shedGate) release() {}

// boundGate grants every slot immediately but bounds how long its
// requests wait on a not-yet-started build — the shape of the
// synchronous request path (serverGate with a queue timeout).
type boundGate struct{ bound time.Duration }

func (boundGate) acquire(context.Context) bool { return true }
func (boundGate) release()                     {}
func (g boundGate) joinBound() time.Duration   { return g.bound }

// trackGate closes entered once it holds its slot and then grants it —
// used to observe the moment a build actually starts.
type trackGate struct{ entered chan struct{} }

func (g *trackGate) acquire(context.Context) bool { close(g.entered); return true }
func (g *trackGate) release()                     {}

// TestBoundedJoinerShedsUnstartedBuild: a bounded joiner must not wait
// out another caller's build that has not even started (its builder is
// still queued for a slot, possibly far longer than any queue timeout) —
// it sheds with ErrCapacity after its bound, like the rest of its class.
func TestBoundedJoinerShedsUnstartedBuild(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	key := tinyKey(5)

	gate := &shedGate{entered: make(chan struct{}), shed: make(chan struct{})}
	builderErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.SampleFor(context.Background(), key, g, 1, gate)
		builderErr <- err
	}()
	<-gate.entered

	// The entry is a reservation without a slot; the bounded joiner sheds.
	if _, _, _, err := c.SampleFor(context.Background(), key, g, 1, boundGate{bound: 20 * time.Millisecond}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("bounded joiner got %v, want ErrCapacity", err)
	}

	close(gate.shed)
	if err := <-builderErr; !errors.Is(err, ErrCapacity) {
		t.Fatalf("shed builder got %v, want ErrCapacity", err)
	}
	// With the reservation gone the same bounded gate builds cleanly.
	if smp, _, _, err := c.SampleFor(context.Background(), key, g, 1, boundGate{bound: 20 * time.Millisecond}); err != nil || smp == nil {
		t.Fatalf("bounded rebuild: smp=%v err=%v", smp, err)
	}
}

// TestBoundedJoinerCommitsToStartedBuild: once the build holds a worker
// slot a bounded joiner commits to the wait however slow the build is —
// abandoning an in-flight build would only duplicate work.
func TestBoundedJoinerCommitsToStartedBuild(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	slow := sampleKey{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 60000, seed: 6}

	gate := &trackGate{entered: make(chan struct{})}
	builderErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.SampleFor(context.Background(), slow, g, 1, gate)
		builderErr <- err
	}()
	<-gate.entered
	smp, hit, _, err := c.SampleFor(context.Background(), slow, g, 1, boundGate{bound: 250 * time.Millisecond})
	if err != nil || smp == nil {
		t.Fatalf("bounded joiner of a started build: smp=%v err=%v", smp, err)
	}
	if !hit {
		t.Error("joiner did not report a hit")
	}
	if err := <-builderErr; err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Builds != 1 {
		t.Fatalf("joiner duplicated the build: %+v", st)
	}
}

// TestSampleForBuilderCancelMidBuild: a builder whose client disconnects
// while sampling is already running stops early with its own
// context.Canceled — the cancel channel reaches the sampling loops — and
// joiners do not inherit it: the key retries and builds cleanly.
func TestSampleForBuilderCancelMidBuild(t *testing.T) {
	g := generate.TwoStars()
	c := NewCache(8)
	slow := sampleKey{graph: "twostars", engine: fairim.EngineRIS, model: cascade.IC, tau: 3, budget: 200000, seed: 7}

	ctx, cancel := context.WithCancel(context.Background())
	gate := &trackGate{entered: make(chan struct{})}
	builderErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.SampleFor(ctx, slow, g, 1, gate)
		builderErr <- err
	}()
	<-gate.entered
	joiner := make(chan error, 1)
	go func() {
		smp, _, _, err := c.SampleFor(context.Background(), slow, g, 1, nil)
		if err == nil && smp == nil {
			err = errors.New("nil sample without error")
		}
		joiner <- err
	}()
	cancel()
	if err := <-builderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled builder got %v, want context.Canceled", err)
	}
	if err := <-joiner; err != nil {
		t.Fatalf("joiner inherited the mid-build cancellation: %v", err)
	}
	if st := c.Stats(); st.Builds != 2 {
		t.Fatalf("stats after mid-build cancel + retry: %+v", st)
	}
}
