package exp

import (
	"fmt"

	"fairtcim/internal/baselines"
	"fairtcim/internal/datasets"
	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/stats"
)

// Supplementary tables: the dataset-structure descriptions the paper gives
// in prose (§6.1, §7.1, Appendix C), and a baseline-heuristics comparison.

func init() {
	register(Experiment{ID: "tab-datasets", Title: "Table: structure of every dataset (stand-in) used in the evaluation", Run: runTabDatasets})
	register(Experiment{ID: "tab-baselines", Title: "Table: greedy P1/P4 vs classical seeding heuristics (synthetic)", Run: runTabBaselines})
}

func runTabDatasets(o Options) (*stats.Table, error) {
	t := stats.NewTable(
		"Dataset structure (undirected edges; homophily = Coleman index)",
		"dataset", "nodes", "edges", "groups", "minGroup", "maxGroup", "homophily", "clustering")

	add := func(name string, g *graph.Graph) {
		s := g.ComputeStats()
		minG, maxG := s.GroupSizes[0], s.GroupSizes[0]
		for _, gs := range s.GroupSizes {
			if gs < minG {
				minG = gs
			}
			if gs > maxG {
				maxG = gs
			}
		}
		t.AddRow(name,
			float64(s.N), float64(s.M/2), float64(s.NumGroups),
			float64(minG), float64(maxG),
			g.HomophilyIndex(), g.ClusteringCoefficient())
	}

	fig1, _ := generate.Fig1Example()
	add("fig1-example", fig1)

	synth, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	add("synthetic-sbm", synth)

	rice, err := datasets.RiceFacebook(0.01, o.Seed)
	if err != nil {
		return nil, err
	}
	add("rice-facebook", rice)

	instaScale := 0.05
	if o.Quick {
		instaScale = 0.01
	}
	insta, err := datasets.Instagram(instaScale, 0.06, o.Seed)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("instagram(x%g)", instaScale), insta)

	snap, err := datasets.FacebookSnap(0.01, o.Seed)
	if err != nil {
		return nil, err
	}
	add("facebook-snap", snap)
	return t, nil
}

func runTabBaselines(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	cfg := synthConfig(o, o.Seed+1)
	B := synthBudget(o)

	t := stats.NewTable(
		"Seeding strategies on the synthetic SBM (tau=20): reach vs disparity",
		"strategy", "total", "group1", "group2", "disparity")
	addSeeds := func(name string, seeds []graph.NodeID) error {
		res, err := fairim.Evaluate(g, seeds, fairim.ProblemSpec{Config: cfg})
		if err != nil {
			return err
		}
		t.AddRow(name, res.NormTotal, res.NormPerGroup[0], res.NormPerGroup[1], res.Disparity)
		return nil
	}

	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	if err := addSeeds("greedy-P1", p1.Seeds); err != nil {
		return nil, err
	}
	p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	if err := addSeeds("fair-P4-log", p4.Seeds); err != nil {
		return nil, err
	}
	if err := addSeeds("top-degree", baselines.TopDegree(g, B)); err != nil {
		return nil, err
	}
	pr, err := baselines.TopPageRank(g, B, baselines.PageRankConfig{})
	if err != nil {
		return nil, err
	}
	if err := addSeeds("pagerank", pr); err != nil {
		return nil, err
	}
	if err := addSeeds("betweenness", baselines.TopBetweenness(g, B)); err != nil {
		return nil, err
	}
	if err := addSeeds("random", baselines.Random(g, B, o.Seed+5)); err != nil {
		return nil, err
	}
	if err := addSeeds("group-prop-degree", baselines.GroupProportionalDegree(g, B)); err != nil {
		return nil, err
	}
	return t, nil
}
