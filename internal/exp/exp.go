// Package exp is the experiment harness: one registered experiment per
// table/figure in the paper (plus the ablations DESIGN.md calls out), each
// regenerating the corresponding rows or series as a text table. The
// experiment ids ("fig1", "fig4a", …, "abl-celf") match DESIGN.md §5, the
// cmd/experiments CLI and the root bench targets. Beyond the paper,
// "serve-cache" drives the persistent serving layer (internal/server)
// end-to-end, measuring cold-vs-warm sketch reuse and singleflight, and
// "accuracy" sweeps (ε,δ) targets through the unified fairim.Solve entry
// point to show what the stopping rules resolve them into.
//
// In the layering, exp is the top consumer: it builds graphs from
// internal/generate and internal/datasets, runs solvers and baselines
// through the estimator seam, and renders results via internal/stats.
package exp

import (
	"fmt"
	"io"
	"sort"

	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/stats"
)

// Options control an experiment run.
type Options struct {
	Seed  int64 // master seed; every experiment derives sub-seeds from it
	Quick bool  // reduced samples/sizes for tests and benchmarks
	// Engine selects the estimation engine solvers run on (forward Monte
	// Carlo or RIS). Experiments whose diffusion model the RIS engine
	// cannot express (LT, delayed, discounted) fall back to forward MC.
	Engine fairim.Engine
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string // DESIGN.md experiment id, e.g. "fig4a"
	Title string // short human description
	Run   func(o Options) (*stats.Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// RunAndWrite runs the experiment and writes its table to w.
func RunAndWrite(e Experiment, o Options, w io.Writer) error {
	table, err := e.Run(o)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	return table.WriteText(w)
}

// pick returns quick when o.Quick, else full — the per-experiment knob for
// sample counts and sweep sizes.
func pick(o Options, full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// mostDisparatePair returns the two group indices with the largest
// normalized-utility gap in res — how the paper selects which two of the
// 4 (Rice) or 5 (SNAP) groups to plot.
func mostDisparatePair(res *fairim.Result) (int, int) {
	bi, bj, worst := 0, 0, -1.0
	for i := 0; i < len(res.NormPerGroup); i++ {
		for j := i + 1; j < len(res.NormPerGroup); j++ {
			d := res.NormPerGroup[i] - res.NormPerGroup[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst, bi, bj = d, i, j
			}
		}
	}
	return bi, bj
}

// pairDisparity is |norm_i - norm_j| for a fixed group pair.
func pairDisparity(res *fairim.Result, i, j int) float64 {
	d := res.NormPerGroup[i] - res.NormPerGroup[j]
	if d < 0 {
		d = -d
	}
	return d
}

// traceRows renders two iteration traces (e.g. P2 vs P6) side by side,
// padding the shorter run with its final values, reporting the total and
// the two given groups' normalized utilities.
func traceRows(t *stats.Table, a, b *fairim.Result, gi, gj int, nA, nB string) {
	rows := len(a.Trace)
	if len(b.Trace) > rows {
		rows = len(b.Trace)
	}
	at := func(tr []fairim.IterationStat, i int) fairim.IterationStat {
		if i < len(tr) {
			return tr[i]
		}
		return tr[len(tr)-1]
	}
	_ = nA
	_ = nB
	for i := 0; i < rows; i++ {
		sa, sb := at(a.Trace, i), at(b.Trace, i)
		t.AddRow(fmt.Sprintf("iter=%d", i+1),
			sa.Total, sa.NormGroup[gi], sa.NormGroup[gj],
			sb.Total, sb.NormGroup[gi], sb.NormGroup[gj])
	}
}

// sortedCandidates returns a deterministic candidate subset of size k
// (ascending ids) drawn without replacement — used where the paper
// restricts seed candidates (Instagram, §7.1).
func sortedCandidates(g *graph.Graph, k int, pickIdx []int) []graph.NodeID {
	if k >= g.N() {
		return g.Nodes()
	}
	out := make([]graph.NodeID, len(pickIdx))
	for i, v := range pickIdx {
		out[i] = graph.NodeID(v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
