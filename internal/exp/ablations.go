package exp

import (
	"fmt"

	"fairtcim/internal/cascade"
	"fairtcim/internal/community"
	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
	"fairtcim/internal/stats"
)

// Ablation experiments beyond the paper, indexed in DESIGN.md §5: they
// probe the design choices of this implementation (CELF laziness, RIS vs
// forward Monte Carlo, concave-curvature dial, the LT extension, and the
// estimator's sample-count stability claim of §6.1).

func init() {
	register(Experiment{ID: "abl-celf", Title: "Ablation: CELF lazy greedy vs plain greedy (evaluations and agreement)", Run: runAblCELF})
	register(Experiment{ID: "abl-ris", Title: "Ablation: RIS vs forward-MC estimates and solver agreement", Run: runAblRIS})
	register(Experiment{ID: "abl-curvature", Title: "Ablation: curvature sweep H(z)=z^alpha and log (influence/disparity frontier)", Run: runAblCurvature})
	register(Experiment{ID: "abl-lt", Title: "Ablation: Fig 4a under the Linear Threshold model", Run: runAblLT})
	register(Experiment{ID: "abl-samples", Title: "Ablation: estimator variance vs Monte-Carlo sample count", Run: runAblSamples})
	register(Experiment{ID: "abl-icm", Title: "Ablation: IC-M meeting delays (Chen et al. 2012) vs classic IC", Run: runAblICM})
	register(Experiment{ID: "abl-discount", Title: "Ablation: time-discounted utility (paper's future-work model)", Run: runAblDiscount})
	register(Experiment{ID: "abl-robust", Title: "Ablation: seed-dropout robustness of P1 vs P4 (Rahmattalabi setting)", Run: runAblRobust})
	register(Experiment{ID: "abl-saturation", Title: "Ablation: budgeted-parity frontier (per-capita weights + saturated H) on Rice", Run: runAblSaturation})
}

func topologicalGroups(g *graph.Graph, k int, seed int64) (*graph.Graph, error) {
	labels, err := community.SpectralClusters(g, k, seed)
	if err != nil {
		return nil, err
	}
	return g.WithGroups(labels)
}

func runAblCELF(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	t := stats.NewTable(
		"Ablation: CELF vs plain greedy on P4-log (same seeds expected)",
		"variant", "evaluations", "total", "disparity", "seeds-agree")
	cfg := synthConfig(o, o.Seed+1)
	lazy, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	cfg.PlainGreedy = true
	plain, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	agree := 1.0
	for i := range lazy.Seeds {
		if lazy.Seeds[i] != plain.Seeds[i] {
			agree = 0
			break
		}
	}
	t.AddRow("CELF", float64(lazy.Evaluations), lazy.Total, lazy.Disparity, agree)
	t.AddRow("plain", float64(plain.Evaluations), plain.Total, plain.Disparity, agree)
	return t, nil
}

func runAblRIS(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	const tau = 5
	B := pick(o, 10, 5)
	pool := pick(o, 3000, 400)

	col, err := ris.Sample(g, tau, []int{pool, pool}, o.Seed+4, 0)
	if err != nil {
		return nil, err
	}
	risSeeds, risEst, err := ris.SolveBudget(col, B, nil)
	if err != nil {
		return nil, err
	}
	cfg := fairim.DefaultConfig(o.Seed + 1)
	cfg.Tau = tau
	cfg.Samples = pick(o, 300, 60)
	fwd, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	// Evaluate both seed sets with the same fresh forward estimator.
	risEval, err := fairim.Evaluate(g, risSeeds, fairim.ProblemSpec{Config: cfg})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation: RIS vs forward Monte Carlo (budget problem)",
		"solver", "internal-estimate", "fresh-MC-total", "disparity")
	t.AddRow("RIS", risEst, risEval.Total, risEval.Disparity)
	t.AddRow("forward-MC", fwd.Total, fwd.Total, fwd.Disparity)
	return t, nil
}

func runAblCurvature(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	hs := []concave.Function{
		concave.Identity{},
		concave.Power{Alpha: 0.75},
		concave.Sqrt{},
		concave.Power{Alpha: 0.25},
		concave.Log{},
	}
	t := stats.NewTable(
		"Ablation: curvature of H vs total influence and disparity (P4)",
		"H", "total", "group1", "group2", "disparity")
	for _, h := range hs {
		cfg := synthConfig(o, o.Seed+1)
		cfg.H = h
		res, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(h.Name(), res.NormTotal, res.NormPerGroup[0], res.NormPerGroup[1], res.Disparity)
	}
	return t, nil
}

func runAblLT(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	t := stats.NewTable(
		"Ablation: Fig 4a repeated under the Linear Threshold model",
		"algorithm", "total", "group1", "group2", "disparity")
	cfg := synthConfig(o, o.Seed+1)
	cfg.Model = cascade.LT
	cfg.Engine = fairim.EngineForwardMC // RIS cannot express LT
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	t.AddRow("P1", p1.NormTotal, p1.NormPerGroup[0], p1.NormPerGroup[1], p1.Disparity)
	for _, h := range []concave.Function{concave.Log{}, concave.Sqrt{}} {
		c := cfg
		c.H = h
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: c})
		if err != nil {
			return nil, err
		}
		t.AddRow("P4-"+h.Name(), p4.NormTotal, p4.NormPerGroup[0], p4.NormPerGroup[1], p4.Disparity)
	}
	return t, nil
}

func runAblICM(o Options) (*stats.Table, error) {
	// The paper's deadline notion comes from Chen et al.'s IC-M model,
	// where influence is delayed by meeting events. Slower meetings make
	// the same deadline tighter, so disparity under P1 should grow as the
	// meeting probability m falls; P4 should stay low throughout.
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	ms := []float64{1.0, 0.5, 0.3, 0.2}
	if o.Quick {
		ms = []float64{1.0, 0.3}
	}
	t := stats.NewTable(
		"Ablation: IC-M meeting probability m vs influence and disparity (tau=5)",
		"m", "P1-total", "P1-disparity", "P4-total", "P4-disparity")
	for _, m := range ms {
		cfg := synthConfig(o, o.Seed+1)
		cfg.Engine = fairim.EngineForwardMC // RIS cannot express meeting delays
		cfg.Tau = 5                         // tight deadline: mean per-hop delay 1/m now competes with τ
		if m < 1 {
			cfg.Delay = cascade.GeometricDelay{M: m}
		}
		p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("m=%g", m), p1.NormTotal, p1.Disparity, p4.NormTotal, p4.Disparity)
	}
	return t, nil
}

func runAblDiscount(o Options) (*stats.Table, error) {
	// Time-discounted utility (the conclusion's future-work model): a node
	// activated at time t contributes γ^t. Stronger discounting rewards
	// faster spread; we report the discounted totals and disparity for P1
	// vs P4-log across γ.
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	gammas := []float64{0.9, 0.7, 0.5}
	if o.Quick {
		gammas = []float64{0.7}
	}
	t := stats.NewTable(
		"Ablation: discounted utility gamma^t vs influence and disparity (tau=20)",
		"gamma", "P1-total", "P1-disparity", "P4-total", "P4-disparity")
	for _, gamma := range gammas {
		cfg := synthConfig(o, o.Seed+1)
		cfg.Engine = fairim.EngineForwardMC // RIS cannot express discounting
		cfg.Discount = gamma
		p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("gamma=%g", gamma), p1.NormTotal, p1.Disparity, p4.NormTotal, p4.Disparity)
	}
	return t, nil
}

func runAblRobust(o Options) (*stats.Table, error) {
	// The paper assumes seeds never fail (§2, contrast with Rahmattalabi
	// et al.). How brittle are its solutions when they do? Sample dropout
	// patterns and compare expected utility and disparity degradation.
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	cfg := synthConfig(o, o.Seed+1)
	trials := pick(o, 20, 5)
	drops := []float64{0, 0.2, 0.5}
	if o.Quick {
		drops = []float64{0, 0.5}
	}
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation: utility/disparity under independent seed dropout",
		"dropProb", "P1-total", "P1-disparity", "P4-total", "P4-disparity", "P4-worstDisp")
	for _, q := range drops {
		r1, err := fairim.EvaluateSeedsRobust(g, p1.Seeds, cfg, q, trials)
		if err != nil {
			return nil, err
		}
		r4, err := fairim.EvaluateSeedsRobust(g, p4.Seeds, cfg, q, trials)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("q=%g", q), r1.MeanTotal, r1.MeanDisp, r4.MeanTotal, r4.MeanDisp, r4.WorstDisp)
	}
	return t, nil
}

func runAblSaturation(o Options) (*stats.Table, error) {
	// On datasets with several very unequal groups, the raw-count concave
	// objective can overshoot a small well-connected group (see
	// EXPERIMENTS.md fig7 caveat). Per-capita weights plus a saturating H
	// yield a budgeted-parity objective: sweep the per-group target
	// fraction and trace the total-influence / all-pairs-disparity
	// frontier against plain P1 and plain P4-log.
	g, err := riceGraph(o)
	if err != nil {
		return nil, err
	}
	cfg := riceConfig(o)
	cfg.Tau = 5
	B := synthBudget(o)

	t := stats.NewTable(
		"Ablation: budgeted-parity frontier on Rice (tau=5, all-pairs Eq.2 disparity)",
		"objective", "total", "disparity")
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	t.AddRow("P1", p1.NormTotal, p1.Disparity)
	p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	t.AddRow("P4-log", p4.NormTotal, p4.Disparity)

	targets := []float64{0.05, 0.07, 0.09, 0.12}
	if o.Quick {
		targets = []float64{0.05}
	}
	for _, target := range targets {
		wcfg := cfg
		wcfg.GroupWeights = fairim.NormalizedGroupWeights(g)
		wcfg.H = concave.Saturated{
			Cap:   float64(g.N()) / float64(g.NumGroups()) * target,
			Inner: concave.Log{},
		}
		res, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: wcfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("P4-sat@%.2f", target), res.NormTotal, res.Disparity)
	}
	return t, nil
}

func runAblSamples(o Options) (*stats.Table, error) {
	// §6.1 claims 200 samples gave stable utility estimates. Measure the
	// spread of the estimate of fτ(S;V) across independent estimator runs
	// for growing sample counts.
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	const tau = 20
	seeds := []graph.NodeID{0, 10, 100}
	counts := []int{25, 50, 100, 200, 400}
	reps := pick(o, 20, 6)
	if o.Quick {
		counts = []int{25, 100}
	}
	t := stats.NewTable(
		"Ablation: Monte-Carlo estimate stability vs sample count R",
		"R", "mean", "stddev", "ci95")
	for _, r := range counts {
		vals := make([]float64, reps)
		for rep := 0; rep < reps; rep++ {
			util, err := influence.Estimate(g, seeds, tau, cascade.IC, r, o.Seed+int64(1000*r+rep))
			if err != nil {
				return nil, err
			}
			for _, u := range util {
				vals[rep] += u
			}
		}
		s := stats.Summarize(vals)
		t.AddRow(fmt.Sprintf("R=%d", r), s.Mean, s.StdDev, s.CI95)
	}
	return t, nil
}
