package exp

import (
	"fmt"
	"time"

	"fairtcim/internal/fairim"
	"fairtcim/internal/stats"
)

// The accuracy experiment sweeps (ε,δ) targets through the unified
// fairim.Solve entry point on the synthetic P4 instance and reports the
// budgets the stopping rules resolve — the Hoeffding world count for
// forward MC, the geometric-doubling RR-pool size for RIS — against an
// explicit-budget baseline, plus the quality and latency each buys.

func init() {
	register(Experiment{
		ID:    "accuracy",
		Title: "Accuracy-targeted sampling: (eps,delta) -> resolved budgets, quality and cost",
		Run:   runAccuracy,
	})
}

func runAccuracy(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	cfg := fairim.DefaultConfig(o.Seed)
	cfg.Engine = o.Engine
	cfg.Samples = 0 // budgets come from the Sampling block

	t := stats.NewTable(
		fmt.Sprintf("accuracy: stopping-rule sizing vs explicit budgets (engine %s, P4, B=%d)", o.Engine, B),
		"target", "worlds", "ris_pool", "total", "disparity", "ms")

	solve := func(label string, sampling fairim.Sampling) error {
		start := time.Now()
		res, err := fairim.Solve(g, fairim.ProblemSpec{
			Problem: fairim.P4, Budget: B, Sampling: sampling, Config: cfg,
		})
		if err != nil {
			return err
		}
		t.AddRow(label, float64(res.Samples), float64(res.RISPerGroup),
			res.Total, res.Disparity, ms(time.Since(start)))
		return nil
	}

	if err := solve("explicit", fairim.Sampling{Samples: pick(o, 200, 50)}); err != nil {
		return nil, err
	}
	targets := []float64{0.3, 0.2, 0.1}
	if o.Quick {
		targets = []float64{0.3, 0.2}
	}
	for _, eps := range targets {
		label := fmt.Sprintf("eps=%.2f", eps)
		if err := solve(label, fairim.Sampling{Accuracy: &fairim.Accuracy{Epsilon: eps, Delta: 0.05}}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
