package exp

import (
	"fmt"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/datasets"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/stats"
	"fairtcim/internal/xrand"
)

// Real-world dataset experiments (paper §7 and Appendix C), run on the
// calibrated stand-ins of package datasets.

func init() {
	register(Experiment{ID: "fig7a", Title: "Figure 7a: Rice-Facebook, total and group influence (P1, P4-log, P4-sqrt)", Run: runFig7a})
	register(Experiment{ID: "fig7b", Title: "Figure 7b: Rice-Facebook, influence vs budget B", Run: runFig7b})
	register(Experiment{ID: "fig7c", Title: "Figure 7c: Rice-Facebook, disparity vs deadline tau", Run: runFig7c})
	register(Experiment{ID: "fig8a", Title: "Figure 8a: Rice-Facebook, cover iterations at Q=0.2", Run: runFig8a})
	register(Experiment{ID: "fig8b", Title: "Figure 8b: Rice-Facebook, group influence vs quota Q", Run: runFig8b})
	register(Experiment{ID: "fig8c", Title: "Figure 8c: Rice-Facebook, seed-set size vs quota Q", Run: runFig8c})
	register(Experiment{ID: "fig9a", Title: "Figure 9a: Instagram, budget problem influence per gender", Run: runFig9a})
	register(Experiment{ID: "fig9b", Title: "Figure 9b: Instagram, cover influence per gender", Run: runFig9b})
	register(Experiment{ID: "fig9c", Title: "Figure 9c: Instagram, cover seed counts", Run: runFig9c})
	register(Experiment{ID: "fig10a", Title: "Figure 10a: Facebook-SNAP (topological groups), budget influence", Run: runFig10a})
	register(Experiment{ID: "fig10b", Title: "Figure 10b: Facebook-SNAP, cover influence at Q=0.1", Run: runFig10b})
	register(Experiment{ID: "fig10c", Title: "Figure 10c: Facebook-SNAP, cover seed counts at Q=0.1", Run: runFig10c})
}

// --- Rice-Facebook (§7.1: pe = 0.01, 500 MC samples, B = 30) ---

func riceGraph(o Options) (*graph.Graph, error) {
	return datasets.RiceFacebook(0.01, o.Seed)
}

func riceConfig(o Options) fairim.Config {
	cfg := fairim.DefaultConfig(o.Seed + 1)
	cfg.Engine = o.Engine
	cfg.Samples = pick(o, 500, 60)
	cfg.EvalSamples = pick(o, 500, 120)
	return cfg
}

func runFig7a(o Options) (*stats.Table, error) {
	g, err := riceGraph(o)
	if err != nil {
		return nil, err
	}
	cfg := riceConfig(o)
	B := synthBudget(o)
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	gi, gj := mostDisparatePair(p1)
	t := stats.NewTable(
		fmt.Sprintf("Fig 7a: Rice-Facebook fraction influenced (groups %d and %d shown: max disparity)", gi+1, gj+1),
		"algorithm", "total", "group1", "group2", "pair-disparity")
	t.AddRow("P1", p1.NormTotal, p1.NormPerGroup[gi], p1.NormPerGroup[gj], pairDisparity(p1, gi, gj))
	for _, h := range []concave.Function{concave.Log{}, concave.Sqrt{}} {
		c := cfg
		c.H = h
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: c})
		if err != nil {
			return nil, err
		}
		t.AddRow("P4-"+h.Name(), p4.NormTotal, p4.NormPerGroup[gi], p4.NormPerGroup[gj], pairDisparity(p4, gi, gj))
	}
	return t, nil
}

func runFig7b(o Options) (*stats.Table, error) {
	g, err := riceGraph(o)
	if err != nil {
		return nil, err
	}
	cfg := riceConfig(o)
	maxB := synthBudget(o)
	budgets := []int{5, 10, 15, 20, 25, 30}
	if o.Quick {
		budgets = []int{2, 5, 10}
	}
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: maxB, Config: cfg})
	if err != nil {
		return nil, err
	}
	p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: maxB, Config: cfg})
	if err != nil {
		return nil, err
	}
	gi, gj := mostDisparatePair(p1)
	t := stats.NewTable(
		"Fig 7b: Rice-Facebook influence vs budget (P1 vs P4-log; max-disparity pair)",
		"B", "P1-total", "P1-g1", "P1-g2", "P4-total", "P4-g1", "P4-g2")
	for _, b := range budgets {
		if b > len(p1.Seeds) || b > len(p4.Seeds) {
			continue
		}
		r1, err := fairim.Evaluate(g, p1.Seeds[:b], fairim.ProblemSpec{Config: cfg})
		if err != nil {
			return nil, err
		}
		r4, err := fairim.Evaluate(g, p4.Seeds[:b], fairim.ProblemSpec{Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("B=%d", b),
			r1.NormTotal, r1.NormPerGroup[gi], r1.NormPerGroup[gj],
			r4.NormTotal, r4.NormPerGroup[gi], r4.NormPerGroup[gj])
	}
	return t, nil
}

func runFig7c(o Options) (*stats.Table, error) {
	g, err := riceGraph(o)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	taus := []int32{1, 2, 5, 20, 50, cascade.NoDeadline}
	if o.Quick {
		taus = []int32{2, 20, cascade.NoDeadline}
	}
	// As in the paper (§7.1), disparity is reported for the two groups that
	// are most disparate under the fairness-blind P1 solution.
	t := stats.NewTable(
		"Fig 7c: Rice-Facebook disparity vs deadline tau (P1 vs P4-log; P1's max-disparity pair)",
		"tau", "P1", "P4")
	for _, tau := range taus {
		cfg := riceConfig(o)
		cfg.Tau = tau
		p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		gi, gj := mostDisparatePair(p1)
		t.AddRow(tauLabel(tau), pairDisparity(p1, gi, gj), pairDisparity(p4, gi, gj))
	}
	return t, nil
}

func runFig8a(o Options) (*stats.Table, error) {
	g, err := riceGraph(o)
	if err != nil {
		return nil, err
	}
	quota := 0.2
	if o.Quick {
		quota = 0.1
	}
	cfg := riceConfig(o)
	cfg.Trace = true
	p2, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P2, Quota: quota, Config: cfg})
	if err != nil {
		return nil, err
	}
	p6, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P6, Quota: quota, Config: cfg})
	if err != nil {
		return nil, err
	}
	gi, gj := mostDisparatePair(p2)
	t := stats.NewTable(
		fmt.Sprintf("Fig 8a: Rice-Facebook cover iterations at Q=%g (max-disparity pair)", quota),
		"iteration", "P2-total", "P2-g1", "P2-g2", "P6-total", "P6-g1", "P6-g2")
	traceRows(t, p2, p6, gi, gj, "P2", "P6")
	return t, nil
}

func riceCoverSweep(o Options, title string, sizes bool) (*stats.Table, error) {
	g, err := riceGraph(o)
	if err != nil {
		return nil, err
	}
	quotas := []float64{0.1, 0.2, 0.3}
	if o.Quick {
		quotas = []float64{0.05, 0.1}
	}
	cfg := riceConfig(o)
	// Determine the reporting pair from the first-quota P2 solution.
	p2, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P2, Quota: quotas[0], Config: cfg})
	if err != nil {
		return nil, err
	}
	gi, gj := mostDisparatePair(p2)
	return coverSweepOn(g, quotas, cfg, title, sizes, gi, gj)
}

func runFig8b(o Options) (*stats.Table, error) {
	return riceCoverSweep(o, "Fig 8b: Rice-Facebook group influence vs quota Q (P2 vs P6)", false)
}

func runFig8c(o Options) (*stats.Table, error) {
	return riceCoverSweep(o, "Fig 8c: Rice-Facebook seed-set size vs quota Q (P2 vs P6)", true)
}

// --- Instagram-Activities (§7.1: pe = 0.06, tau = 2, B = 30, candidate
// subset of 5000 nodes, quotas {0.0015, 0.002}) ---

func instagramSetup(o Options) (*graph.Graph, fairim.Config, error) {
	scale := 0.1
	candCount := 5000
	if o.Quick {
		scale = 0.01
		candCount = 300
	}
	g, err := datasets.Instagram(scale, 0.06, o.Seed)
	if err != nil {
		return nil, fairim.Config{}, err
	}
	cfg := fairim.DefaultConfig(o.Seed + 1)
	cfg.Engine = o.Engine
	cfg.Tau = 2
	cfg.Samples = pick(o, 300, 40)
	cfg.EvalSamples = pick(o, 300, 80)
	rng := xrand.New(o.Seed + 2)
	cfg.Candidates = sortedCandidates(g, candCount, rng.Sample(g.N(), min(candCount, g.N())))
	return g, cfg, nil
}

func runFig9a(o Options) (*stats.Table, error) {
	g, cfg, err := instagramSetup(o)
	if err != nil {
		return nil, err
	}
	B := pick(o, 30, 5)
	t := stats.NewTable(
		"Fig 9a: Instagram budget problem, fraction influenced per gender",
		"algorithm", "total", "male", "female", "disparity")
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	t.AddRow("P1", p1.NormTotal, p1.NormPerGroup[0], p1.NormPerGroup[1], p1.Disparity)
	for _, h := range []concave.Function{concave.Log{}, concave.Sqrt{}} {
		c := cfg
		c.H = h
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: c})
		if err != nil {
			return nil, err
		}
		t.AddRow("P4-"+h.Name(), p4.NormTotal, p4.NormPerGroup[0], p4.NormPerGroup[1], p4.Disparity)
	}
	return t, nil
}

func instagramQuotas(o Options) []float64 {
	if o.Quick {
		return []float64{0.0015}
	}
	return []float64{0.0015, 0.002}
}

func runFig9b(o Options) (*stats.Table, error) {
	g, cfg, err := instagramSetup(o)
	if err != nil {
		return nil, err
	}
	return coverSweepOn(g, instagramQuotas(o), cfg,
		"Fig 9b: Instagram cover problem, fraction influenced per gender", false, 0, 1)
}

func runFig9c(o Options) (*stats.Table, error) {
	g, cfg, err := instagramSetup(o)
	if err != nil {
		return nil, err
	}
	return coverSweepOn(g, instagramQuotas(o), cfg,
		"Fig 9c: Instagram cover problem, solution set size", true, 0, 1)
}

// --- Facebook-SNAP (Appendix C: pe = 0.01, tau = 20, five topological
// groups via spectral clustering, Q = 0.1) ---

func snapSetup(o Options) (*graph.Graph, fairim.Config, error) {
	g, err := datasets.FacebookSnap(0.01, o.Seed)
	if err != nil {
		return nil, fairim.Config{}, err
	}
	// Re-derive groups from topology, as the paper does.
	gr, err := topologicalGroups(g, 5, o.Seed+3)
	if err != nil {
		return nil, fairim.Config{}, err
	}
	cfg := fairim.DefaultConfig(o.Seed + 1)
	cfg.Engine = o.Engine
	cfg.Samples = pick(o, 200, 40)
	cfg.EvalSamples = pick(o, 300, 80)
	return gr, cfg, nil
}

func runFig10a(o Options) (*stats.Table, error) {
	g, cfg, err := snapSetup(o)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	gi, gj := mostDisparatePair(p1)
	t := stats.NewTable(
		fmt.Sprintf("Fig 10a: Facebook-SNAP budget problem (topological groups %d and %d shown)", gi+1, gj+1),
		"algorithm", "total", "group1", "group2", "pair-disparity")
	t.AddRow("P1", p1.NormTotal, p1.NormPerGroup[gi], p1.NormPerGroup[gj], pairDisparity(p1, gi, gj))
	for _, h := range []concave.Function{concave.Log{}, concave.Sqrt{}} {
		c := cfg
		c.H = h
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: c})
		if err != nil {
			return nil, err
		}
		t.AddRow("P4-"+h.Name(), p4.NormTotal, p4.NormPerGroup[gi], p4.NormPerGroup[gj], pairDisparity(p4, gi, gj))
	}
	return t, nil
}

func snapQuota(o Options) []float64 {
	if o.Quick {
		return []float64{0.05}
	}
	return []float64{0.1}
}

func runFig10b(o Options) (*stats.Table, error) {
	g, cfg, err := snapSetup(o)
	if err != nil {
		return nil, err
	}
	quotas := snapQuota(o)
	p2, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P2, Quota: quotas[0], Config: cfg})
	if err != nil {
		return nil, err
	}
	gi, gj := mostDisparatePair(p2)
	return coverSweepOn(g, quotas, cfg,
		"Fig 10b: Facebook-SNAP cover problem, group influence", false, gi, gj)
}

func runFig10c(o Options) (*stats.Table, error) {
	g, cfg, err := snapSetup(o)
	if err != nil {
		return nil, err
	}
	return coverSweepOn(g, snapQuota(o), cfg,
		"Fig 10c: Facebook-SNAP cover problem, solution set size", true, 0, 1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
