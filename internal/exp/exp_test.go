package exp

import (
	"bytes"
	"strings"
	"testing"

	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
	"fairtcim/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment DESIGN.md §5 indexes must be registered.
	want := []string{
		"fig1", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c",
		"fig6a", "fig6b", "fig6c",
		"fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig9c", "fig10a", "fig10b", "fig10c",
		"abl-celf", "abl-ris", "abl-curvature", "abl-lt", "abl-samples",
		"abl-icm", "abl-discount", "abl-robust", "abl-saturation",
		"tab-datasets", "tab-baselines",
		"serve-cache", // serving-layer workload (beyond DESIGN.md §5)
		"accuracy",    // (eps,delta) stopping-rule sizing (beyond DESIGN.md §5)
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, DESIGN.md indexes %d", len(IDs()), len(want))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig4a"); !ok {
		t.Fatal("fig4a missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

// TestAllExperimentsRunQuick executes every registered experiment in quick
// mode and sanity-checks the output table.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow even in quick mode")
	}
	o := Options{Seed: 7, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			table, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if table.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			var buf bytes.Buffer
			if err := table.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(buf.String(), "## ") {
				t.Fatalf("%s table missing a title:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestRunAndWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e, _ := ByID("fig5b")
	var buf bytes.Buffer
	if err := RunAndWrite(e, Options{Seed: 3, Quick: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"55:45", "80:20", "P1", "P4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5b output missing %q:\n%s", want, out)
		}
	}
}

func TestMostDisparatePair(t *testing.T) {
	res := &fairim.Result{NormPerGroup: []float64{0.5, 0.1, 0.45, 0.4}}
	i, j := mostDisparatePair(res)
	if i != 0 || j != 1 {
		t.Fatalf("pair = (%d,%d)", i, j)
	}
	if d := pairDisparity(res, i, j); d != 0.4 {
		t.Fatalf("pairDisparity = %v", d)
	}
}

func TestTraceRowsPadsShorterRun(t *testing.T) {
	mk := func(n int) *fairim.Result {
		r := &fairim.Result{}
		for i := 0; i < n; i++ {
			r.Trace = append(r.Trace, fairim.IterationStat{
				Total:     float64(i + 1),
				NormGroup: []float64{float64(i) / 10, float64(i) / 20},
			})
		}
		return r
	}
	a, b := mk(3), mk(5)
	tab := stats.NewTable("t", "iteration", "a-total", "a-g1", "a-g2", "b-total", "b-g1", "b-g2")
	traceRows(tab, a, b, 0, 1, "A", "B")
	if tab.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5 (padded)", tab.NumRows())
	}
}

func TestSortedCandidates(t *testing.T) {
	g, _ := generate.Fig1Example()
	cands := sortedCandidates(g, 5, []int{9, 3, 7, 0, 5})
	if len(cands) != 5 {
		t.Fatalf("len = %d", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatalf("not sorted: %v", cands)
		}
	}
	// k >= N returns everything.
	all := sortedCandidates(g, 1000, nil)
	if len(all) != g.N() {
		t.Fatalf("len = %d", len(all))
	}
}

func TestTauLabel(t *testing.T) {
	if tauLabel(5) != "tau=5" {
		t.Fatal("tauLabel(5)")
	}
	if !strings.Contains(tauLabel(1<<30), "tau=") {
		t.Fatal("tauLabel large")
	}
}
