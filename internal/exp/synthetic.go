package exp

import (
	"fmt"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/stats"
)

// Synthetic experiments (paper §6): the default setup is the two-block
// SBM of §6.1 — 500 nodes, 70:30 split, phom=0.025, phet=0.001, pe=0.05,
// τ=20, B=30, 200 Monte-Carlo samples. Quick mode shrinks the graph and
// sample counts so tests and benchmarks stay fast.

func synthGraph(o Options, seed int64) (*graph.Graph, error) {
	cfg := generate.DefaultTwoBlock(seed)
	if o.Quick {
		cfg.N = 200
		cfg.PHom = 0.06 // keep average degree comparable at the smaller size
		cfg.PHet = 0.003
	}
	return generate.TwoBlock(cfg)
}

func synthConfig(o Options, seed int64) fairim.Config {
	cfg := fairim.DefaultConfig(seed)
	cfg.Engine = o.Engine
	cfg.Samples = pick(o, 200, 50)
	cfg.EvalSamples = pick(o, 400, 100)
	return cfg
}

func synthBudget(o Options) int { return pick(o, 30, 10) }

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1 table: optimal P1 vs P4-log on the 38-node example (pe=0.7, B=2)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig4a",
		Title: "Figure 4a: total and group influence for P1, P4-log, P4-sqrt (synthetic)",
		Run:   runFig4a,
	})
	register(Experiment{
		ID:    "fig4b",
		Title: "Figure 4b: influence vs seed budget B, P1 vs P4-log (synthetic)",
		Run:   runFig4b,
	})
	register(Experiment{
		ID:    "fig4c",
		Title: "Figure 4c: disparity vs deadline tau, P1 vs P4-log (synthetic)",
		Run:   runFig4c,
	})
	register(Experiment{
		ID:    "fig5a",
		Title: "Figure 5a: disparity vs activation probability pe at tau in {2, inf} (synthetic)",
		Run:   runFig5a,
	})
	register(Experiment{
		ID:    "fig5b",
		Title: "Figure 5b: disparity vs group size ratio (synthetic)",
		Run:   runFig5b,
	})
	register(Experiment{
		ID:    "fig5c",
		Title: "Figure 5c: disparity vs inter/intra edge probability ratio (synthetic)",
		Run:   runFig5c,
	})
	register(Experiment{
		ID:    "fig6a",
		Title: "Figure 6a: cover-problem iterations at Q=0.2, P2 vs P6 (synthetic)",
		Run:   runFig6a,
	})
	register(Experiment{
		ID:    "fig6b",
		Title: "Figure 6b: group influence vs quota Q, P2 vs P6 (synthetic)",
		Run:   runFig6b,
	})
	register(Experiment{
		ID:    "fig6c",
		Title: "Figure 6c: seed-set size vs quota Q, P2 vs P6 (synthetic)",
		Run:   runFig6c,
	})
}

func runFig1(o Options) (*stats.Table, error) {
	g, names := generate.Fig1Example()
	idToName := map[graph.NodeID]string{}
	for name, id := range names {
		idToName[id] = name
	}
	seedLabel := func(seeds []graph.NodeID) string {
		s := "{"
		for i, v := range seeds {
			if i > 0 {
				s += ","
			}
			if n, ok := idToName[v]; ok {
				s += n
			} else {
				s += fmt.Sprint(v)
			}
		}
		return s + "}"
	}
	t := stats.NewTable(
		"Fig 1: optimal TCIM-Budget (P1) vs FairTCIM-Budget (P4-log), 38-node example",
		"setting", "f/|V|", "f1/|V1|", "f2/|V2|", "disparity")

	taus := []int32{cascade.NoDeadline, 4, 2}
	tauName := map[int32]string{cascade.NoDeadline: "inf", 4: "4", 2: "2"}
	for _, tau := range taus {
		cfg := fairim.Config{
			Tau:         tau,
			Model:       cascade.IC,
			Engine:      o.Engine,
			Samples:     pick(o, 300, 80),
			EvalSamples: pick(o, 1000, 200),
			Seed:        o.Seed,
			H:           concave.Log{},
		}
		p1, err := fairim.SolveTCIMBudgetExact(g, 2, cfg)
		if err != nil {
			return nil, err
		}
		p4, err := fairim.SolveFairTCIMBudgetExact(g, 2, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("tau=%s P1 S=%s", tauName[tau], seedLabel(p1.Seeds)),
			p1.NormTotal, p1.NormPerGroup[0], p1.NormPerGroup[1], p1.Disparity)
		t.AddRow(fmt.Sprintf("tau=%s P4 S=%s", tauName[tau], seedLabel(p4.Seeds)),
			p4.NormTotal, p4.NormPerGroup[0], p4.NormPerGroup[1], p4.Disparity)
	}
	return t, nil
}

func runFig4a(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	cfg := synthConfig(o, o.Seed+1)
	B := synthBudget(o)

	t := stats.NewTable(
		"Fig 4a: fraction influenced, synthetic SBM (tau=20, B=30)",
		"algorithm", "total", "group1", "group2", "disparity")

	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
	if err != nil {
		return nil, err
	}
	t.AddRow("P1", p1.NormTotal, p1.NormPerGroup[0], p1.NormPerGroup[1], p1.Disparity)

	for _, h := range []concave.Function{concave.Log{}, concave.Sqrt{}} {
		c := cfg
		c.H = h
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: c})
		if err != nil {
			return nil, err
		}
		t.AddRow("P4-"+h.Name(), p4.NormTotal, p4.NormPerGroup[0], p4.NormPerGroup[1], p4.Disparity)
	}
	return t, nil
}

func runFig4b(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	cfg := synthConfig(o, o.Seed+1)
	maxB := synthBudget(o)
	budgets := []int{5, 10, 15, 20, 25, 30}
	if o.Quick {
		budgets = []int{2, 5, 10}
	}

	// Greedy solutions nest, so one max-budget run yields every prefix;
	// each prefix is re-evaluated on fresh worlds.
	p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: maxB, Config: cfg})
	if err != nil {
		return nil, err
	}
	p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: maxB, Config: cfg})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Fig 4b: fraction influenced vs seed budget B, P1 vs P4-log",
		"B", "P1-total", "P1-g1", "P1-g2", "P4-total", "P4-g1", "P4-g2")
	for _, b := range budgets {
		if b > len(p1.Seeds) || b > len(p4.Seeds) {
			continue
		}
		r1, err := fairim.Evaluate(g, p1.Seeds[:b], fairim.ProblemSpec{Config: cfg})
		if err != nil {
			return nil, err
		}
		r4, err := fairim.Evaluate(g, p4.Seeds[:b], fairim.ProblemSpec{Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("B=%d", b),
			r1.NormTotal, r1.NormPerGroup[0], r1.NormPerGroup[1],
			r4.NormTotal, r4.NormPerGroup[0], r4.NormPerGroup[1])
	}
	return t, nil
}

func runFig4c(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	B := synthBudget(o)
	taus := []int32{1, 2, 5, 10, 20, cascade.NoDeadline}
	if o.Quick {
		taus = []int32{1, 5, cascade.NoDeadline}
	}
	t := stats.NewTable(
		"Fig 4c: disparity vs deadline tau, P1 vs P4-log",
		"tau", "P1", "P4")
	for _, tau := range taus {
		cfg := synthConfig(o, o.Seed+1)
		cfg.Tau = tau
		p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(tauLabel(tau), p1.Disparity, p4.Disparity)
	}
	return t, nil
}

func runFig5a(o Options) (*stats.Table, error) {
	pes := []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0}
	if o.Quick {
		pes = []float64{0.05, 0.3, 1.0}
	}
	B := synthBudget(o)
	t := stats.NewTable(
		"Fig 5a: disparity vs activation probability pe (P1 vs P4-log, tau in {2, inf})",
		"pe", "P1-tau2", "P4-tau2", "P1-tauInf", "P4-tauInf")
	for _, pe := range pes {
		gcfg := generate.DefaultTwoBlock(o.Seed)
		if o.Quick {
			gcfg.N, gcfg.PHom, gcfg.PHet = 200, 0.06, 0.003
		}
		gcfg.PActivate = pe
		g, err := generate.TwoBlock(gcfg)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 4)
		for _, tau := range []int32{2, cascade.NoDeadline} {
			cfg := synthConfig(o, o.Seed+1)
			cfg.Tau = tau
			p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
			if err != nil {
				return nil, err
			}
			p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
			if err != nil {
				return nil, err
			}
			row = append(row, p1.Disparity, p4.Disparity)
		}
		t.AddRow(fmt.Sprintf("pe=%g", pe), row...)
	}
	return t, nil
}

func runFig5b(o Options) (*stats.Table, error) {
	ratios := []struct {
		label string
		g     float64
	}{
		{"55:45", 0.55}, {"60:40", 0.60}, {"70:30", 0.70}, {"80:20", 0.80},
	}
	B := synthBudget(o)
	t := stats.NewTable(
		"Fig 5b: disparity vs group size ratio |V1|:|V2| (P1 vs P4-log)",
		"ratio", "P1", "P4")
	for _, r := range ratios {
		gcfg := generate.DefaultTwoBlock(o.Seed)
		if o.Quick {
			gcfg.N, gcfg.PHom, gcfg.PHet = 200, 0.06, 0.003
		}
		gcfg.G = r.g
		g, err := generate.TwoBlock(gcfg)
		if err != nil {
			return nil, err
		}
		cfg := synthConfig(o, o.Seed+1)
		p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(r.label, p1.Disparity, p4.Disparity)
	}
	return t, nil
}

func runFig5c(o Options) (*stats.Table, error) {
	settings := []struct {
		label      string
		phet, phom float64
	}{
		{"1:1", 0.025, 0.025}, {"3:5", 0.015, 0.025}, {"2:5", 0.01, 0.025}, {"1:25", 0.001, 0.025},
	}
	B := synthBudget(o)
	t := stats.NewTable(
		"Fig 5c: disparity vs inter/intra group edge ratio (P1 vs P4-log)",
		"phet:phom", "P1", "P4")
	for _, s := range settings {
		gcfg := generate.DefaultTwoBlock(o.Seed)
		gcfg.PHom, gcfg.PHet = s.phom, s.phet
		if o.Quick {
			gcfg.N = 200
			gcfg.PHom, gcfg.PHet = s.phom*2.4, s.phet*2.4 // keep degrees comparable
		}
		g, err := generate.TwoBlock(gcfg)
		if err != nil {
			return nil, err
		}
		cfg := synthConfig(o, o.Seed+1)
		p1, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P1, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		p4, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P4, Budget: B, Config: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(s.label, p1.Disparity, p4.Disparity)
	}
	return t, nil
}

func runFig6a(o Options) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	quota := 0.2
	if o.Quick {
		quota = 0.15
	}
	cfg := synthConfig(o, o.Seed+1)
	cfg.Trace = true
	p2, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P2, Quota: quota, Config: cfg})
	if err != nil {
		return nil, err
	}
	p6, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P6, Quota: quota, Config: cfg})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Fig 6a: greedy cover iterations at Q=%g (trace on optimization worlds)", quota),
		"iteration", "P2-total", "P2-g1", "P2-g2", "P6-total", "P6-g1", "P6-g2")
	traceRows(t, p2, p6, 0, 1, "P2", "P6")
	return t, nil
}

func runFig6b(o Options) (*stats.Table, error) {
	return coverQuotaSweep(o, "Fig 6b: fraction influenced per group vs quota Q (P2 vs P6)", false)
}

func runFig6c(o Options) (*stats.Table, error) {
	return coverQuotaSweep(o, "Fig 6c: solution set size vs quota Q (P2 vs P6)", true)
}

// coverQuotaSweep implements Figures 6b/6c (and is reused for the other
// datasets): group influence or seed counts across quotas.
func coverQuotaSweep(o Options, title string, sizes bool) (*stats.Table, error) {
	g, err := synthGraph(o, o.Seed)
	if err != nil {
		return nil, err
	}
	quotas := []float64{0.1, 0.2, 0.3}
	if o.Quick {
		quotas = []float64{0.1, 0.2}
	}
	cfg := synthConfig(o, o.Seed+1)
	return coverSweepOn(g, quotas, cfg, title, sizes, 0, 1)
}

// coverSweepOn runs P2 and P6 for each quota on g and tabulates either the
// two groups' influence fractions or the seed-set sizes.
func coverSweepOn(g *graph.Graph, quotas []float64, cfg fairim.Config, title string, sizes bool, gi, gj int) (*stats.Table, error) {
	var t *stats.Table
	if sizes {
		t = stats.NewTable(title, "Q", "P2-size", "P6-size")
	} else {
		t = stats.NewTable(title, "Q", "P2-g1", "P2-g2", "P6-g1", "P6-g2")
	}
	for _, q := range quotas {
		p2, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P2, Quota: q, Config: cfg})
		if err != nil {
			return nil, err
		}
		p6, err := fairim.Solve(g, fairim.ProblemSpec{Problem: fairim.P6, Quota: q, Config: cfg})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("Q=%g", q)
		if sizes {
			t.AddRow(label, float64(len(p2.Seeds)), float64(len(p6.Seeds)))
		} else {
			t.AddRow(label,
				p2.NormPerGroup[gi], p2.NormPerGroup[gj],
				p6.NormPerGroup[gi], p6.NormPerGroup[gj])
		}
	}
	return t, nil
}

func tauLabel(tau int32) string {
	if tau == cascade.NoDeadline {
		return "tau=inf"
	}
	return fmt.Sprintf("tau=%d", tau)
}
