package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"fairtcim/internal/graph"
	"fairtcim/internal/server"
	"fairtcim/internal/stats"
)

// The serve-cache experiment drives the persistent serving layer
// end-to-end: it boots an in-process fairtcimd-equivalent HTTP server on
// an ephemeral port, then measures the cold request (which builds the
// estimator sample), warm repeats (cache hits), and a concurrent burst of
// identical requests (singleflight: one build no matter the fan-in).

func init() {
	register(Experiment{
		ID:    "serve-cache",
		Title: "Serving layer: cold vs warm /v1/select latency and singleflight behavior",
		Run:   runServeCache,
	})
}

func runServeCache(o Options) (*stats.Table, error) {
	reg := server.NewRegistry()
	if err := reg.Register("twoblock", "synthetic:twoblock", func() (*graph.Graph, error) {
		return synthGraph(o, o.Seed)
	}); err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{Registry: reg, MaxConcurrent: 8})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	reqBody := func(seed int64) string {
		return fmt.Sprintf(
			`{"graph":"twoblock","problem":"p4","budget":%d,"tau":20,"engine":"%s","samples":%d,"ris_per_group":%d,"seed":%d,"eval":"sample"}`,
			synthBudget(o), o.Engine, pick(o, 200, 50), pick(o, 40000, 8000), seed)
	}
	post := func(body string) (server.SelectResponse, time.Duration, error) {
		var out server.SelectResponse
		start := time.Now()
		resp, err := http.Post(base+"/v1/select", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return out, 0, err
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return out, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return out, 0, fmt.Errorf("serve-cache: HTTP %d", resp.StatusCode)
		}
		return out, time.Since(start), nil
	}

	t := stats.NewTable(
		"serve-cache: persistent serving layer, cold vs warm sketch reuse",
		"phase", "ms", "cache_hit", "builds", "hits")

	cold, coldDur, err := post(reqBody(1))
	if err != nil {
		return nil, err
	}
	st := srv.CacheStats()
	t.AddRow("cold", ms(coldDur), b2f(cold.CacheHit), float64(st.Builds), float64(st.Hits))

	const warmRuns = 3
	warmTotal := time.Duration(0)
	for i := 0; i < warmRuns; i++ {
		warm, warmDur, err := post(reqBody(1))
		if err != nil {
			return nil, err
		}
		if !warm.CacheHit {
			return nil, fmt.Errorf("serve-cache: warm request %d missed the cache", i)
		}
		warmTotal += warmDur
	}
	warmMean := warmTotal / warmRuns
	st = srv.CacheStats()
	t.AddRow("warm-mean", ms(warmMean), 1, float64(st.Builds), float64(st.Hits))

	// Concurrent burst on a fresh key: singleflight must build once.
	const burst = 6
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	start := time.Now()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := post(reqBody(2)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	burstDur := time.Since(start)
	st2 := srv.CacheStats()
	burstBuilds := st2.Builds - st.Builds
	if burstBuilds != 1 {
		return nil, fmt.Errorf("serve-cache: concurrent burst built %d sketches, want 1", burstBuilds)
	}
	t.AddRow(fmt.Sprintf("burst-%d", burst), ms(burstDur), 0, float64(st2.Builds), float64(st2.Hits))

	t.AddRow("speedup", float64(coldDur)/float64(warmMean), 0, 0, 0)
	return t, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
