package influence

import (
	"fmt"
	"math"

	"fairtcim/internal/cascade"
	"fairtcim/internal/graph"
)

// DiscountedEvaluator implements the time-discounted utility the paper's
// conclusion names as future work ("more complex models of
// time-criticality ... such as discounting with time"): a node activated
// at time t within the deadline contributes γ^t instead of 1, so being
// informed *earlier* is worth strictly more. The hard deadline is kept:
// nodes activated after τ contribute nothing (set τ to
// cascade.NoDeadline for pure discounting).
//
// Per live-edge world the group utility is Σ_v γ^{d(S,v)}·[d(S,v) ≤ τ],
// a facility-location-style function of S (each node's term is the max of
// γ^{d(s,v)} over seeds s) — monotone submodular, so all greedy machinery
// and guarantees carry over. Unlike the 0/1 evaluator, improving the
// activation time of an *already reached* node has positive value, which
// the marginal-gain BFS accounts for.
type DiscountedEvaluator struct {
	g      *graph.Graph
	worlds []*cascade.World
	tau    int32
	gamma  float64
	pow    []float64 // pow[d] = γ^d, d ≤ min(τ, powTableMax)

	dist  [][]int32
	sums  []float64 // Σ_w Σ_v γ^dist within deadline, per group
	seeds []graph.NodeID

	scratch *Scratch
}

// powTableMax bounds the precomputed discount table; deeper activation
// times fall back to math.Pow (they are vanishingly rare: γ^4096 ≈ 0).
const powTableMax = 4096

// NewDiscountedEvaluator builds a discounted evaluator with discount
// factor gamma in (0, 1).
func NewDiscountedEvaluator(g *graph.Graph, worlds []*cascade.World, tau int32, gamma float64) (*DiscountedEvaluator, error) {
	if len(worlds) == 0 {
		return nil, fmt.Errorf("influence: need at least one world")
	}
	if tau < 0 {
		return nil, fmt.Errorf("influence: negative deadline %d", tau)
	}
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("influence: discount factor %v outside (0,1)", gamma)
	}
	for i, w := range worlds {
		if w.N() != g.N() {
			return nil, fmt.Errorf("influence: world %d has %d nodes, graph has %d", i, w.N(), g.N())
		}
	}
	e := &DiscountedEvaluator{g: g, worlds: worlds, tau: tau, gamma: gamma}
	size := int64(tau) + 1
	if size > powTableMax {
		size = powTableMax
	}
	e.pow = make([]float64, size)
	e.pow[0] = 1
	for d := 1; d < len(e.pow); d++ {
		e.pow[d] = e.pow[d-1] * gamma
	}
	e.dist = make([][]int32, len(worlds))
	for w := range worlds {
		d := make([]int32, g.N())
		for v := range d {
			d[v] = unreached
		}
		e.dist[w] = d
	}
	e.sums = make([]float64, g.NumGroups())
	e.scratch = &Scratch{
		tent:  make([]int32, g.N()),
		stamp: make([]int64, g.N()),
		delta: make([]float64, g.NumGroups()),
	}
	return e, nil
}

// discount returns γ^d for an activation time d within the deadline, and
// 0 for times beyond it (including unreached).
func (e *DiscountedEvaluator) discount(d int32) float64 {
	if d < 0 || d > e.tau {
		return 0
	}
	if int(d) < len(e.pow) {
		return e.pow[d]
	}
	return math.Pow(e.gamma, float64(d))
}

// Graph returns the underlying graph.
func (e *DiscountedEvaluator) Graph() *graph.Graph { return e.g }

// SampleSize returns the number of Monte-Carlo worlds.
func (e *DiscountedEvaluator) SampleSize() int { return len(e.worlds) }

// Seeds returns the current seed set (shared; do not modify).
func (e *DiscountedEvaluator) Seeds() []graph.NodeID { return e.seeds }

// GroupUtilities returns the expected discounted utility per group.
func (e *DiscountedEvaluator) GroupUtilities() []float64 {
	out := make([]float64, len(e.sums))
	r := float64(len(e.worlds))
	for i, s := range e.sums {
		out[i] = s / r
	}
	return out
}

// NormGroupUtilities returns discounted utility per group divided by
// group size.
func (e *DiscountedEvaluator) NormGroupUtilities() []float64 {
	out := e.GroupUtilities()
	for i := range out {
		out[i] /= float64(e.g.GroupSize(i))
	}
	return out
}

// TotalUtility returns the expected discounted utility over all nodes.
func (e *DiscountedEvaluator) TotalUtility() float64 {
	t := 0.0
	r := float64(len(e.worlds))
	for _, s := range e.sums {
		t += s / r
	}
	return t
}

// GainPerGroup returns the expected per-group discounted-utility increase
// from adding v. The returned slice is reused across calls.
func (e *DiscountedEvaluator) GainPerGroup(v graph.NodeID) []float64 {
	s := e.scratch
	for i := range s.delta {
		s.delta[i] = 0
	}
	for w := range e.worlds {
		e.bfs(s, w, v, false)
	}
	r := float64(len(e.worlds))
	for i := range s.delta {
		s.delta[i] /= r
	}
	return s.delta
}

// Gain returns the expected total discounted-utility increase.
func (e *DiscountedEvaluator) Gain(v graph.NodeID) float64 {
	t := 0.0
	for _, d := range e.GainPerGroup(v) {
		t += d
	}
	return t
}

// Add commits v to the seed set.
func (e *DiscountedEvaluator) Add(v graph.NodeID) {
	s := e.scratch
	for i := range s.delta {
		s.delta[i] = 0
	}
	for w := range e.worlds {
		e.bfs(s, w, v, true)
	}
	e.seeds = append(e.seeds, v)
}

// bfs is the τ-bounded improvement BFS; unlike the 0/1 evaluator it
// credits improvements of already-reached nodes with the discount
// difference γ^new − γ^old.
func (e *DiscountedEvaluator) bfs(s *Scratch, w int, v graph.NodeID, commit bool) {
	dist := e.dist[w]
	if dist[v] == 0 {
		return
	}
	world := e.worlds[w]
	tau := e.tau
	s.epoch++
	s.queue = s.queue[:0]

	visit := func(u graph.NodeID, d int32) {
		s.tent[u] = d
		s.stamp[u] = s.epoch
		s.queue = append(s.queue, u)
		gain := e.discount(d) - e.discount(dist[u])
		s.delta[e.g.Group(u)] += gain
		if commit {
			e.sums[e.g.Group(u)] += gain
			dist[u] = d
		}
	}
	visit(v, 0)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		d := s.tent[u]
		if d >= tau {
			continue
		}
		nd := d + 1
		for _, to := range world.Out(u) {
			if s.stamp[to] == s.epoch {
				continue
			}
			if nd >= dist[to] {
				continue
			}
			visit(to, nd)
		}
	}
}

// Reset clears the seed set and all per-world state.
func (e *DiscountedEvaluator) Reset() {
	for w := range e.worlds {
		d := e.dist[w]
		for v := range d {
			d[v] = unreached
		}
	}
	for i := range e.sums {
		e.sums[i] = 0
	}
	e.seeds = e.seeds[:0]
}

// InitialGains computes GainPerGroup for every candidate. The discounted
// evaluator's scratch is not sharded, so this runs sequentially; the
// discounted path is an extension, not the hot production path.
func (e *DiscountedEvaluator) InitialGains(candidates []graph.NodeID, parallelism int) [][]float64 {
	out := make([][]float64, len(candidates))
	for i, v := range candidates {
		out[i] = append([]float64(nil), e.GainPerGroup(v)...)
	}
	return out
}

// EstimateDiscounted evaluates a fixed seed set's discounted utility on
// fresh worlds, the discounted counterpart of Estimate.
func EstimateDiscounted(g *graph.Graph, seeds []graph.NodeID, tau int32, gamma float64, model cascade.Model, samples int, seed int64) ([]float64, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("influence: need positive sample count")
	}
	worlds := cascade.SampleWorlds(g, model, samples, seed, 0)
	e, err := NewDiscountedEvaluator(g, worlds, tau, gamma)
	if err != nil {
		return nil, err
	}
	for _, v := range seeds {
		e.Add(v)
	}
	return e.GroupUtilities(), nil
}
