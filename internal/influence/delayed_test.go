package influence

import (
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/cascade"
	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

func newDelayedEval(t *testing.T, g *graph.Graph, tau int32, r int, m float64, seed int64) *DelayedEvaluator {
	t.Helper()
	worlds := cascade.SampleDelayedWorlds(g, cascade.GeometricDelay{M: m}, r, seed, 0)
	e, err := NewDelayedEvaluator(g, worlds, tau)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDelayedEvaluatorValidation(t *testing.T) {
	g := randomGrouped(1, 10, 2, 0.2, 0.5)
	if _, err := NewDelayedEvaluator(g, nil, 3); err == nil {
		t.Fatal("no worlds accepted")
	}
	worlds := cascade.SampleDelayedWorlds(g, cascade.UnitDelay{}, 2, 1, 0)
	if _, err := NewDelayedEvaluator(g, worlds, -1); err == nil {
		t.Fatal("negative tau accepted")
	}
	other := randomGrouped(2, 12, 2, 0.2, 0.5)
	otherWorlds := cascade.SampleDelayedWorlds(other, cascade.UnitDelay{}, 2, 1, 0)
	if _, err := NewDelayedEvaluator(g, otherWorlds, 3); err == nil {
		t.Fatal("mismatched world accepted")
	}
}

func TestDelayedUnitMatchesClassic(t *testing.T) {
	// With unit delays, the delayed evaluator must agree exactly with the
	// classic evaluator on the same seed (same world sampling stream: both
	// flip one Bernoulli per edge in the same order).
	g := randomGrouped(3, 25, 2, 0.12, 0.5)
	const tau, r, seed = 4, 30, 7

	classic := newEval(t, g, tau, r, seed)
	worlds := cascade.SampleDelayedWorlds(g, cascade.UnitDelay{}, r, seed, 0)
	delayed, err := NewDelayedEvaluator(g, worlds, tau)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	for step := 0; step < 5; step++ {
		v := graph.NodeID(rng.Intn(g.N()))
		gc := classic.Gain(v)
		gd := delayed.Gain(v)
		if math.Abs(gc-gd) > 1e-9 {
			t.Fatalf("step %d: classic gain %v vs delayed %v", step, gc, gd)
		}
		classic.Add(v)
		delayed.Add(v)
	}
	a, b := classic.GroupUtilities(), delayed.GroupUtilities()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("group %d: classic %v vs delayed %v", i, a[i], b[i])
		}
	}
}

func TestDelayedGainMatchesAddDelta(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGrouped(seed, 20, 2, 0.15, 0.5)
		e := newDelayedEval(t, g, 6, 12, 0.5, seed+1)
		rng := xrand.New(seed + 2)
		for step := 0; step < 4; step++ {
			v := graph.NodeID(rng.Intn(g.N()))
			gain := e.Gain(v)
			before := e.TotalUtility()
			e.Add(v)
			if math.Abs((e.TotalUtility()-before)-gain) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedSubmodularity(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGrouped(seed, 16, 2, 0.18, 0.5)
		worlds := cascade.SampleDelayedWorlds(g, cascade.GeometricDelay{M: 0.4}, 10, seed, 0)
		rng := xrand.New(seed + 3)
		v := graph.NodeID(rng.Intn(g.N()))
		a := graph.NodeID(rng.Intn(g.N()))
		base := graph.NodeID(rng.Intn(g.N()))

		small, _ := NewDelayedEvaluator(g, worlds, 5)
		small.Add(base)
		gainSmall := small.Gain(v)

		big, _ := NewDelayedEvaluator(g, worlds, 5)
		big.Add(base)
		big.Add(a)
		gainBig := big.Gain(v)
		return gainSmall >= gainBig-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedSlowerThanClassicUnderDeadline(t *testing.T) {
	// Meeting delays must reduce within-deadline utility relative to unit
	// delays on the same structure.
	g := randomGrouped(5, 60, 2, 0.05, 0.6)
	const tau = 4
	unit := newEval(t, g, tau, 200, 9)
	delayed := newDelayedEval(t, g, tau, 200, 0.3, 9)
	unit.Add(0)
	delayed.Add(0)
	if delayed.TotalUtility() >= unit.TotalUtility() {
		t.Fatalf("delayed %v not slower than unit %v", delayed.TotalUtility(), unit.TotalUtility())
	}
}

func TestDelayedResetAndInitialGains(t *testing.T) {
	g := randomGrouped(6, 30, 3, 0.1, 0.4)
	e := newDelayedEval(t, g, 5, 15, 0.5, 3)
	e.Add(1)
	gainBefore := e.Gain(5)
	e.Add(5)
	e.Reset()
	if e.TotalUtility() != 0 || len(e.Seeds()) != 0 {
		t.Fatal("reset incomplete")
	}
	e.Add(1)
	if g2 := e.Gain(5); math.Abs(g2-gainBefore) > 1e-9 {
		t.Fatalf("post-reset gain %v != %v", g2, gainBefore)
	}
	cands := []graph.NodeID{0, 2, 9, 20}
	par := e.InitialGains(cands, 2)
	for i, v := range cands {
		seq := e.GainPerGroup(v)
		for grp := range seq {
			if math.Abs(par[i][grp]-seq[grp]) > 1e-12 {
				t.Fatalf("candidate %d group %d mismatch", v, grp)
			}
		}
	}
}

func TestEstimateDelayedAgainstDirectICM(t *testing.T) {
	g := randomGrouped(7, 30, 2, 0.12, 0.4)
	seeds := []graph.NodeID{0, 3}
	const tau, m = 5, 0.5
	const reps = 4000

	est, err := EstimateDelayed(g, seeds, tau, cascade.GeometricDelay{M: m}, reps, 13)
	if err != nil {
		t.Fatal(err)
	}
	total := est[0] + est[1]

	rng := xrand.New(17)
	direct := 0.0
	for r := 0; r < reps; r++ {
		for _, tv := range cascade.RunICM(g, seeds, tau, m, rng) {
			if tv >= 0 && tv <= tau {
				direct++
			}
		}
	}
	direct /= reps
	if math.Abs(total-direct) > 0.35 {
		t.Fatalf("delayed estimate %v vs direct IC-M %v", total, direct)
	}
	if _, err := EstimateDelayed(g, seeds, tau, cascade.UnitDelay{}, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
}
