package influence

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"

	"fairtcim/internal/cascade"
	"fairtcim/internal/graph"
)

// DelayedEvaluator is the Evaluator counterpart for delayed diffusion
// (IC-M and friends): worlds are weighted live-edge graphs and a node's
// activation time is its weighted shortest distance from the seed set.
// Marginal-gain queries run a τ-bounded Dijkstra pruned at nodes whose
// current activation time is already no worse, mirroring Evaluator's BFS.
// The estimated set function remains exactly monotone submodular on a
// fixed world set.
type DelayedEvaluator struct {
	g      *graph.Graph
	worlds []*cascade.WeightedWorld
	tau    int32

	dist   [][]int32
	counts [][]int32
	sums   []float64
	seeds  []graph.NodeID

	scratch *delayedScratch
}

// delayedScratch holds per-query Dijkstra state.
type delayedScratch struct {
	tent  []int32
	stamp []int64
	epoch int64
	h     delayedHeap
	delta []float64
}

type delayedHeapItem struct {
	node graph.NodeID
	d    int32
}

type delayedHeap []delayedHeapItem

func (h delayedHeap) Len() int            { return len(h) }
func (h delayedHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h delayedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *delayedHeap) Push(x interface{}) { *h = append(*h, x.(delayedHeapItem)) }
func (h *delayedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewDelayedEvaluator builds an evaluator for deadline tau over weighted
// worlds.
func NewDelayedEvaluator(g *graph.Graph, worlds []*cascade.WeightedWorld, tau int32) (*DelayedEvaluator, error) {
	if len(worlds) == 0 {
		return nil, fmt.Errorf("influence: need at least one world")
	}
	if tau < 0 {
		return nil, fmt.Errorf("influence: negative deadline %d", tau)
	}
	for i, w := range worlds {
		if w.N() != g.N() {
			return nil, fmt.Errorf("influence: world %d has %d nodes, graph has %d", i, w.N(), g.N())
		}
	}
	e := &DelayedEvaluator{g: g, worlds: worlds, tau: tau}
	e.dist = make([][]int32, len(worlds))
	e.counts = make([][]int32, len(worlds))
	for w := range worlds {
		d := make([]int32, g.N())
		for v := range d {
			d[v] = unreached
		}
		e.dist[w] = d
		e.counts[w] = make([]int32, g.NumGroups())
	}
	e.sums = make([]float64, g.NumGroups())
	e.scratch = e.newScratch()
	return e, nil
}

func (e *DelayedEvaluator) newScratch() *delayedScratch {
	return &delayedScratch{
		tent:  make([]int32, e.g.N()),
		stamp: make([]int64, e.g.N()),
		delta: make([]float64, e.g.NumGroups()),
	}
}

// Tau returns the deadline.
func (e *DelayedEvaluator) Tau() int32 { return e.tau }

// Graph returns the underlying graph.
func (e *DelayedEvaluator) Graph() *graph.Graph { return e.g }

// SampleSize returns the number of weighted Monte-Carlo worlds.
func (e *DelayedEvaluator) SampleSize() int { return len(e.worlds) }

// Seeds returns the current seed set (shared; do not modify).
func (e *DelayedEvaluator) Seeds() []graph.NodeID { return e.seeds }

// GroupUtilities returns the current fτ(S;Vᵢ) estimates.
func (e *DelayedEvaluator) GroupUtilities() []float64 {
	out := make([]float64, len(e.sums))
	r := float64(len(e.worlds))
	for i, s := range e.sums {
		out[i] = s / r
	}
	return out
}

// NormGroupUtilities returns fτ(S;Vᵢ)/|Vᵢ|.
func (e *DelayedEvaluator) NormGroupUtilities() []float64 {
	out := e.GroupUtilities()
	for i := range out {
		out[i] /= float64(e.g.GroupSize(i))
	}
	return out
}

// TotalUtility returns the current fτ(S;V) estimate.
func (e *DelayedEvaluator) TotalUtility() float64 {
	t := 0.0
	r := float64(len(e.worlds))
	for _, s := range e.sums {
		t += s / r
	}
	return t
}

// GainPerGroup returns the expected per-group utility increase from adding
// v. The returned slice is reused across calls.
func (e *DelayedEvaluator) GainPerGroup(v graph.NodeID) []float64 {
	return e.gainPerGroupInto(e.scratch, v)
}

func (e *DelayedEvaluator) gainPerGroupInto(s *delayedScratch, v graph.NodeID) []float64 {
	for i := range s.delta {
		s.delta[i] = 0
	}
	for w := range e.worlds {
		e.dijkstra(s, w, v, false)
	}
	r := float64(len(e.worlds))
	for i := range s.delta {
		s.delta[i] /= r
	}
	return s.delta
}

// Gain returns the expected total-utility increase from adding v.
func (e *DelayedEvaluator) Gain(v graph.NodeID) float64 {
	t := 0.0
	for _, d := range e.GainPerGroup(v) {
		t += d
	}
	return t
}

// Add commits v to the seed set.
func (e *DelayedEvaluator) Add(v graph.NodeID) {
	s := e.scratch
	for i := range s.delta {
		s.delta[i] = 0
	}
	for w := range e.worlds {
		e.dijkstra(s, w, v, true)
	}
	e.seeds = append(e.seeds, v)
}

// dijkstra runs the τ-bounded improvement search from v in world w,
// pruned at nodes whose committed activation time is already no worse.
func (e *DelayedEvaluator) dijkstra(s *delayedScratch, w int, v graph.NodeID, commit bool) {
	dist := e.dist[w]
	if dist[v] == 0 {
		return
	}
	world := e.worlds[w]
	tau := e.tau
	s.epoch++
	s.h = s.h[:0]

	relax := func(u graph.NodeID, d int32) {
		s.tent[u] = d
		s.stamp[u] = s.epoch
		heap.Push(&s.h, delayedHeapItem{node: u, d: d})
	}
	relax(v, 0)
	for s.h.Len() > 0 {
		it := heap.Pop(&s.h).(delayedHeapItem)
		u, d := it.node, it.d
		if s.stamp[u] != s.epoch || s.tent[u] != d {
			continue // stale
		}
		// Settle u: it improves from dist[u] to d.
		if dist[u] > tau { // previously outside the deadline: newly counted
			s.delta[e.g.Group(u)]++
			if commit {
				e.counts[w][e.g.Group(u)]++
				e.sums[e.g.Group(u)]++
			}
		}
		if commit {
			dist[u] = d
		}
		s.stamp[u] = -s.epoch // settled marker: never re-relax this query
		targets, delays := world.Out(u)
		for i, to := range targets {
			nd := d + delays[i]
			if nd > tau {
				continue
			}
			if nd >= dist[to] {
				continue // committed time already at least as good
			}
			if s.stamp[to] == -s.epoch {
				continue // settled this query
			}
			if s.stamp[to] == s.epoch && s.tent[to] <= nd {
				continue // better tentative already queued
			}
			relax(to, nd)
		}
	}
}

// Reset clears the seed set and all per-world state.
func (e *DelayedEvaluator) Reset() {
	for w := range e.worlds {
		d := e.dist[w]
		for v := range d {
			d[v] = unreached
		}
		c := e.counts[w]
		for i := range c {
			c[i] = 0
		}
	}
	for i := range e.sums {
		e.sums[i] = 0
	}
	e.seeds = e.seeds[:0]
}

// InitialGains computes GainPerGroup for every candidate in parallel; safe
// because queries only read evaluator state.
func (e *DelayedEvaluator) InitialGains(candidates []graph.NodeID, parallelism int) [][]float64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(candidates) {
		parallelism = len(candidates)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	out := make([][]float64, len(candidates))
	var wg sync.WaitGroup
	work := make(chan int, len(candidates))
	for i := range candidates {
		work <- i
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.newScratch()
			for i := range work {
				g := e.gainPerGroupInto(s, candidates[i])
				out[i] = append([]float64(nil), g...)
			}
		}()
	}
	wg.Wait()
	return out
}

// EstimateDelayed evaluates a fixed seed set under delayed diffusion on
// fresh weighted worlds, the delayed counterpart of Estimate.
func EstimateDelayed(g *graph.Graph, seeds []graph.NodeID, tau int32, delay cascade.DelayDist, samples int, seed int64) ([]float64, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("influence: need positive sample count")
	}
	worlds := cascade.SampleDelayedWorlds(g, delay, samples, seed, 0)
	e, err := NewDelayedEvaluator(g, worlds, tau)
	if err != nil {
		return nil, err
	}
	for _, v := range seeds {
		e.Add(v)
	}
	return e.GroupUtilities(), nil
}
