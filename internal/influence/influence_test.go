package influence

import (
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/cascade"
	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// randomGrouped builds a random directed graph with n nodes, k groups and
// edge probability density; activation probability pAct.
func randomGrouped(seed int64, n, k int, density, pAct float64) *graph.Graph {
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v % k
	}
	b.SetGroups(labels)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Bernoulli(density) {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), pAct)
			}
		}
	}
	return b.MustBuild()
}

func newEval(t *testing.T, g *graph.Graph, tau int32, r int, seed int64) *Evaluator {
	t.Helper()
	worlds := cascade.SampleWorlds(g, cascade.IC, r, seed, 0)
	e, err := NewEvaluator(g, worlds, tau)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorValidation(t *testing.T) {
	g := randomGrouped(1, 10, 2, 0.2, 0.5)
	if _, err := NewEvaluator(g, nil, 3); err == nil {
		t.Fatal("no worlds accepted")
	}
	worlds := cascade.SampleWorlds(g, cascade.IC, 2, 1, 0)
	if _, err := NewEvaluator(g, worlds, -1); err == nil {
		t.Fatal("negative tau accepted")
	}
	other := randomGrouped(2, 11, 2, 0.2, 0.5)
	otherWorlds := cascade.SampleWorlds(other, cascade.IC, 2, 1, 0)
	if _, err := NewEvaluator(g, otherWorlds, 3); err == nil {
		t.Fatal("mismatched world size accepted")
	}
}

func TestEmptySeedSetIsZero(t *testing.T) {
	g := randomGrouped(1, 20, 2, 0.1, 0.3)
	e := newEval(t, g, 5, 10, 1)
	if e.TotalUtility() != 0 {
		t.Fatalf("empty set utility %v", e.TotalUtility())
	}
	for _, u := range e.GroupUtilities() {
		if u != 0 {
			t.Fatalf("empty set group utility %v", e.GroupUtilities())
		}
	}
}

func TestSeedAlwaysCountsItself(t *testing.T) {
	g := randomGrouped(2, 15, 3, 0.1, 0.2)
	e := newEval(t, g, 0, 20, 2) // tau = 0: only the seeds themselves
	e.Add(3)
	e.Add(7)
	if got := e.TotalUtility(); got != 2 {
		t.Fatalf("tau=0 utility = %v, want 2", got)
	}
	util := e.GroupUtilities()
	if util[g.Group(3)] < 1 || util[g.Group(7)] < 1 {
		t.Fatalf("group utilities %v", util)
	}
}

func TestGainMatchesAddDelta(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGrouped(seed, 25, 3, 0.1, 0.4)
		e := newEval(t, g, 3, 15, seed+1)
		rng := xrand.New(seed + 2)
		for step := 0; step < 4; step++ {
			v := graph.NodeID(rng.Intn(g.N()))
			gain := e.Gain(v)
			before := e.TotalUtility()
			e.Add(v)
			after := e.TotalUtility()
			if math.Abs((after-before)-gain) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGainPerGroupMatchesGroupDelta(t *testing.T) {
	g := randomGrouped(5, 30, 2, 0.08, 0.5)
	e := newEval(t, g, 4, 25, 9)
	e.Add(0)
	per := append([]float64(nil), e.GainPerGroup(17)...)
	before := e.GroupUtilities()
	e.Add(17)
	after := e.GroupUtilities()
	for i := range per {
		if math.Abs((after[i]-before[i])-per[i]) > 1e-9 {
			t.Fatalf("group %d: gain %v, delta %v", i, per[i], after[i]-before[i])
		}
	}
}

func TestMonotonicity(t *testing.T) {
	// Adding any node never decreases any group utility.
	check := func(seed int64) bool {
		g := randomGrouped(seed, 20, 2, 0.12, 0.5)
		e := newEval(t, g, 5, 10, seed)
		rng := xrand.New(seed + 7)
		prev := e.GroupUtilities()
		for step := 0; step < 5; step++ {
			e.Add(graph.NodeID(rng.Intn(g.N())))
			cur := e.GroupUtilities()
			for i := range cur {
				if cur[i] < prev[i]-1e-12 {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmodularity(t *testing.T) {
	// Diminishing returns on the fixed world set: gain of v on A >= gain of
	// v on A ∪ {a}.
	check := func(seed int64) bool {
		g := randomGrouped(seed, 18, 2, 0.15, 0.5)
		rng := xrand.New(seed + 3)
		v := graph.NodeID(rng.Intn(g.N()))
		a := graph.NodeID(rng.Intn(g.N()))
		base := graph.NodeID(rng.Intn(g.N()))

		worlds := cascade.SampleWorlds(g, cascade.IC, 12, seed, 0)
		small, _ := NewEvaluator(g, worlds, 4)
		small.Add(base)
		gainSmall := small.Gain(v)

		big, _ := NewEvaluator(g, worlds, 4)
		big.Add(base)
		big.Add(a)
		gainBig := big.Gain(v)

		return gainSmall >= gainBig-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineMonotoneInTau(t *testing.T) {
	// Larger deadlines can only increase utility for the same seeds/worlds.
	g := randomGrouped(3, 40, 2, 0.06, 0.5)
	worlds := cascade.SampleWorlds(g, cascade.IC, 20, 4, 0)
	var prev float64
	for _, tau := range []int32{0, 1, 2, 4, 8, cascade.NoDeadline} {
		e, err := NewEvaluator(g, worlds, tau)
		if err != nil {
			t.Fatal(err)
		}
		e.Add(0)
		e.Add(1)
		if u := e.TotalUtility(); u < prev-1e-12 {
			t.Fatalf("utility decreased from %v to %v at tau=%d", prev, u, tau)
		} else {
			prev = u
		}
	}
}

func TestAgainstDirectSimulation(t *testing.T) {
	// The evaluator estimate must agree with direct IC simulation within
	// Monte-Carlo error.
	g := randomGrouped(11, 30, 2, 0.1, 0.3)
	seeds := []graph.NodeID{0, 5}
	const tau = 3
	const reps = 8000

	e := newEval(t, g, tau, reps, 21)
	for _, s := range seeds {
		e.Add(s)
	}
	est := e.TotalUtility()

	rng := xrand.New(22)
	direct := 0.0
	for r := 0; r < reps; r++ {
		times := cascade.RunIC(g, seeds, tau, rng)
		for _, tv := range times {
			if tv >= 0 && tv <= tau {
				direct++
			}
		}
	}
	direct /= reps

	if math.Abs(est-direct) > 0.3 {
		t.Fatalf("evaluator %v vs direct %v", est, direct)
	}
}

func TestPathDeadlineExact(t *testing.T) {
	// Deterministic path (p=1): utilities are exact and depend on tau.
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g := b.MustBuild()
	for tau := int32(0); tau <= 5; tau++ {
		e := newEval(t, g, tau, 3, 1)
		e.Add(0)
		if got, want := e.TotalUtility(), float64(tau+1); got != want {
			t.Fatalf("tau=%d utility %v, want %v", tau, got, want)
		}
	}
}

func TestAddExistingSeedNoop(t *testing.T) {
	g := randomGrouped(4, 20, 2, 0.1, 0.5)
	e := newEval(t, g, 3, 10, 4)
	e.Add(2)
	before := e.TotalUtility()
	if gain := e.Gain(2); gain != 0 {
		t.Fatalf("gain of existing seed %v", gain)
	}
	e.Add(2)
	if e.TotalUtility() != before {
		t.Fatal("re-adding seed changed utility")
	}
}

func TestReset(t *testing.T) {
	g := randomGrouped(4, 20, 2, 0.1, 0.5)
	e := newEval(t, g, 3, 10, 4)
	e.Add(2)
	gain := e.Gain(7)
	e.Add(7)
	e.Reset()
	if e.TotalUtility() != 0 || len(e.Seeds()) != 0 {
		t.Fatal("reset did not clear state")
	}
	e.Add(2)
	if g2 := e.Gain(7); math.Abs(g2-gain) > 1e-9 {
		t.Fatalf("post-reset gain %v, want %v", g2, gain)
	}
}

func TestInitialGainsMatchSequential(t *testing.T) {
	g := randomGrouped(8, 40, 3, 0.08, 0.4)
	e := newEval(t, g, 4, 20, 8)
	e.Add(0)
	cands := []graph.NodeID{1, 5, 9, 13, 22, 31}
	par := e.InitialGains(cands, 4)
	for i, v := range cands {
		seq := e.GainPerGroup(v)
		for grp := range seq {
			if math.Abs(par[i][grp]-seq[grp]) > 1e-12 {
				t.Fatalf("candidate %d group %d: parallel %v vs sequential %v", v, grp, par[i][grp], seq[grp])
			}
		}
	}
}

func TestDisparity(t *testing.T) {
	if d := Disparity([]float64{0.4, 0.1, 0.3}); math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("Disparity = %v", d)
	}
	if d := Disparity([]float64{0.5}); d != 0 {
		t.Fatalf("single group disparity = %v", d)
	}
	if d := Disparity(nil); d != 0 {
		t.Fatalf("nil disparity = %v", d)
	}
}

func TestEstimateFreshWorlds(t *testing.T) {
	g := randomGrouped(6, 25, 2, 0.1, 0.4)
	util, err := Estimate(g, []graph.NodeID{0, 3}, 3, cascade.IC, 200, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(util) != 2 {
		t.Fatalf("got %d groups", len(util))
	}
	total := util[0] + util[1]
	if total < 2 { // at least the seeds themselves
		t.Fatalf("total %v < 2", total)
	}
	if _, err := Estimate(g, nil, 3, cascade.IC, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	g := randomGrouped(6, 25, 2, 0.1, 0.4)
	a, _ := Estimate(g, []graph.NodeID{1}, 2, cascade.IC, 50, 7)
	b, _ := Estimate(g, []graph.NodeID{1}, 2, cascade.IC, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Estimate not deterministic for fixed seed")
		}
	}
}
