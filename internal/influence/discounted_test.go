package influence

import (
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/cascade"
	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

func newDiscEval(t *testing.T, g *graph.Graph, tau int32, gamma float64, r int, seed int64) *DiscountedEvaluator {
	t.Helper()
	worlds := cascade.SampleWorlds(g, cascade.IC, r, seed, 0)
	e, err := NewDiscountedEvaluator(g, worlds, tau, gamma)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDiscountedValidation(t *testing.T) {
	g := randomGrouped(1, 10, 2, 0.2, 0.5)
	worlds := cascade.SampleWorlds(g, cascade.IC, 2, 1, 0)
	for _, gamma := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewDiscountedEvaluator(g, worlds, 3, gamma); err == nil {
			t.Fatalf("gamma=%v accepted", gamma)
		}
	}
	if _, err := NewDiscountedEvaluator(g, nil, 3, 0.9); err == nil {
		t.Fatal("no worlds accepted")
	}
	if _, err := NewDiscountedEvaluator(g, worlds, -1, 0.9); err == nil {
		t.Fatal("negative tau accepted")
	}
}

func TestDiscountedPathExact(t *testing.T) {
	// Deterministic path, seed at head: utility = Σ_{d=0..τ} γ^d exactly.
	b := graph.NewBuilder(10)
	for i := 0; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g := b.MustBuild()
	const gamma = 0.5
	for _, tau := range []int32{0, 1, 3, 9} {
		e := newDiscEval(t, g, tau, gamma, 3, 1)
		e.Add(0)
		want := 0.0
		for d := int32(0); d <= tau; d++ {
			want += math.Pow(gamma, float64(d))
		}
		if got := e.TotalUtility(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("tau=%d: %v, want %v", tau, got, want)
		}
	}
}

func TestDiscountedSeedWorthOne(t *testing.T) {
	g := randomGrouped(2, 15, 2, 0.1, 0.3)
	e := newDiscEval(t, g, 0, 0.8, 10, 2)
	e.Add(4)
	if got := e.TotalUtility(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("tau=0 discounted utility %v, want 1 (the seed itself)", got)
	}
}

func TestDiscountedGainMatchesAddDelta(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGrouped(seed, 22, 3, 0.12, 0.5)
		e := newDiscEval(t, g, 5, 0.7, 12, seed+1)
		rng := xrand.New(seed + 2)
		for step := 0; step < 4; step++ {
			v := graph.NodeID(rng.Intn(g.N()))
			gain := e.Gain(v)
			before := e.TotalUtility()
			e.Add(v)
			if math.Abs((e.TotalUtility()-before)-gain) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscountedImprovementOfReachedNodeHasValue(t *testing.T) {
	// Path 0->1->2; seeding 2 when it is already reached at distance 2
	// still gains (γ^0 − γ^2) — the crucial difference from the 0/1 model.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.MustBuild()
	e := newDiscEval(t, g, 10, 0.5, 2, 1)
	e.Add(0)
	gain := e.Gain(2)
	want := 1 - 0.25 // γ^0 − γ^2
	if math.Abs(gain-want) > 1e-9 {
		t.Fatalf("gain = %v, want %v", gain, want)
	}
	// The 0/1 evaluator sees no value in the same move.
	classic := newEval(t, g, 10, 2, 1)
	classic.Add(0)
	if classic.Gain(2) != 0 {
		t.Fatalf("classic gain should be 0, got %v", classic.Gain(2))
	}
}

func TestDiscountedSubmodularity(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGrouped(seed, 16, 2, 0.18, 0.5)
		worlds := cascade.SampleWorlds(g, cascade.IC, 10, seed, 0)
		rng := xrand.New(seed + 3)
		v := graph.NodeID(rng.Intn(g.N()))
		a := graph.NodeID(rng.Intn(g.N()))
		base := graph.NodeID(rng.Intn(g.N()))

		small, _ := NewDiscountedEvaluator(g, worlds, 5, 0.6)
		small.Add(base)
		gainSmall := small.Gain(v)

		big, _ := NewDiscountedEvaluator(g, worlds, 5, 0.6)
		big.Add(base)
		big.Add(a)
		gainBig := big.Gain(v)
		return gainSmall >= gainBig-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscountedMonotonicity(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGrouped(seed, 18, 2, 0.15, 0.5)
		e := newDiscEval(t, g, 6, 0.8, 8, seed)
		rng := xrand.New(seed + 7)
		prev := 0.0
		for step := 0; step < 5; step++ {
			e.Add(graph.NodeID(rng.Intn(g.N())))
			cur := e.TotalUtility()
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscountedBelowUndiscounted(t *testing.T) {
	// γ < 1 means discounted utility < 0/1 utility for the same seeds.
	g := randomGrouped(9, 50, 2, 0.06, 0.4)
	const tau = 6
	worlds := cascade.SampleWorlds(g, cascade.IC, 100, 4, 0)
	plain, _ := NewEvaluator(g, worlds, tau)
	disc, _ := NewDiscountedEvaluator(g, worlds, tau, 0.6)
	for _, v := range []graph.NodeID{0, 10, 25} {
		plain.Add(v)
		disc.Add(v)
	}
	if disc.TotalUtility() >= plain.TotalUtility() {
		t.Fatalf("discounted %v not below plain %v", disc.TotalUtility(), plain.TotalUtility())
	}
	// But at least the seeds' own γ^0 = 1 each.
	if disc.TotalUtility() < 3 {
		t.Fatalf("discounted %v below seed mass", disc.TotalUtility())
	}
}

func TestDiscountedReset(t *testing.T) {
	g := randomGrouped(4, 20, 2, 0.1, 0.5)
	e := newDiscEval(t, g, 4, 0.9, 10, 4)
	e.Add(2)
	gain := e.Gain(7)
	e.Add(7)
	e.Reset()
	if e.TotalUtility() != 0 {
		t.Fatal("reset incomplete")
	}
	e.Add(2)
	if g2 := e.Gain(7); math.Abs(g2-gain) > 1e-9 {
		t.Fatalf("post-reset gain %v != %v", g2, gain)
	}
}

func TestEstimateDiscounted(t *testing.T) {
	g := randomGrouped(6, 25, 2, 0.1, 0.4)
	util, err := EstimateDiscounted(g, []graph.NodeID{0, 3}, 4, 0.7, cascade.IC, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(util) != 2 || util[0]+util[1] < 2 {
		t.Fatalf("discounted estimate %v", util)
	}
	if _, err := EstimateDiscounted(g, nil, 4, 0.7, cascade.IC, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
}
