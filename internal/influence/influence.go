// Package influence implements the time-critical influence utility
// fτ(S;Y,G) of Eq. 1 and its group-aware estimation.
//
// The estimator averages over R live-edge worlds (see package cascade).
// An Evaluator keeps, for every world, the current activation time of
// every node under the growing seed set, plus per-group counts of nodes
// activated within the deadline. A marginal-gain query for candidate v
// runs a τ-bounded BFS from v in each world, pruned at nodes whose current
// activation time is already no worse — so the query costs only the part
// of the world the candidate actually improves. On a fixed world set the
// resulting set function is exactly monotone and submodular.
package influence

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fairtcim/internal/cascade"
	"fairtcim/internal/graph"
)

// unreached is the internal "activation time" of an inactive node. It must
// compare greater than every valid deadline, including cascade.NoDeadline,
// so that inactive nodes never count as within-deadline. BFS times never
// reach it: expansion stops at d == tau <= NoDeadline < unreached.
const unreached int32 = math.MaxInt32

// Evaluator estimates fτ(S;V_i,G) for all groups i simultaneously over a
// fixed set of live-edge worlds, with incremental seed-set growth.
//
// Evaluator methods are not safe for concurrent use except GainPerGroupInto
// with distinct Scratch values, which performs read-only queries.
type Evaluator struct {
	g      *graph.Graph
	worlds []*cascade.World
	tau    int32

	dist   [][]int32 // dist[w][v]: activation time of v in world w, or unreached
	counts [][]int32 // counts[w][i]: group-i nodes with dist <= tau in world w
	sums   []float64 // Σ_w counts[w][i], kept in sync
	seeds  []graph.NodeID

	scratch *Scratch // default scratch for the non-concurrent API
}

// Scratch holds per-query BFS state so concurrent read-only gain queries
// do not contend. Obtain with NewScratch.
type Scratch struct {
	tent  []int32 // tentative BFS time per node
	stamp []int64 // epoch marking which entries of tent are valid
	epoch int64
	queue []graph.NodeID
	delta []float64 // per-group accumulator
}

// NewEvaluator builds an evaluator for deadline tau over the given worlds.
// tau must be >= 0 (use cascade.NoDeadline for τ = ∞); at least one world
// is required.
func NewEvaluator(g *graph.Graph, worlds []*cascade.World, tau int32) (*Evaluator, error) {
	if len(worlds) == 0 {
		return nil, fmt.Errorf("influence: need at least one world")
	}
	if tau < 0 {
		return nil, fmt.Errorf("influence: negative deadline %d", tau)
	}
	for i, w := range worlds {
		if w.N() != g.N() {
			return nil, fmt.Errorf("influence: world %d has %d nodes, graph has %d", i, w.N(), g.N())
		}
	}
	e := &Evaluator{g: g, worlds: worlds, tau: tau}
	e.dist = make([][]int32, len(worlds))
	e.counts = make([][]int32, len(worlds))
	for w := range worlds {
		d := make([]int32, g.N())
		for v := range d {
			d[v] = unreached
		}
		e.dist[w] = d
		e.counts[w] = make([]int32, g.NumGroups())
	}
	e.sums = make([]float64, g.NumGroups())
	e.scratch = e.NewScratch()
	return e, nil
}

// NewScratch allocates BFS scratch sized for this evaluator.
func (e *Evaluator) NewScratch() *Scratch {
	return &Scratch{
		tent:  make([]int32, e.g.N()),
		stamp: make([]int64, e.g.N()),
		delta: make([]float64, e.g.NumGroups()),
	}
}

// Tau returns the evaluator's deadline.
func (e *Evaluator) Tau() int32 { return e.tau }

// NumWorlds returns the number of Monte-Carlo worlds.
func (e *Evaluator) NumWorlds() int { return len(e.worlds) }

// SampleSize returns the number of Monte-Carlo worlds (the
// estimator.Estimator sample-budget accessor).
func (e *Evaluator) SampleSize() int { return len(e.worlds) }

// Graph returns the underlying graph.
func (e *Evaluator) Graph() *graph.Graph { return e.g }

// Seeds returns the current seed set (shared slice; do not modify).
func (e *Evaluator) Seeds() []graph.NodeID { return e.seeds }

// GroupUtilities returns the current estimates of fτ(S;V_i,G) for every
// group i: expected numbers of group members activated within the deadline.
func (e *Evaluator) GroupUtilities() []float64 {
	out := make([]float64, len(e.sums))
	r := float64(len(e.worlds))
	for i, s := range e.sums {
		out[i] = s / r
	}
	return out
}

// NormGroupUtilities returns fτ(S;V_i,G)/|V_i| for every group, the
// normalized per-group utilities all figures report.
func (e *Evaluator) NormGroupUtilities() []float64 {
	out := e.GroupUtilities()
	for i := range out {
		out[i] /= float64(e.g.GroupSize(i))
	}
	return out
}

// TotalUtility returns the current estimate of fτ(S;V,G).
func (e *Evaluator) TotalUtility() float64 {
	total := 0.0
	r := float64(len(e.worlds))
	for _, s := range e.sums {
		total += s / r
	}
	return total
}

// GainPerGroup returns the expected per-group increase of fτ if v were
// added to the seed set, without modifying state. The returned slice is
// reused across calls; copy it if you need to keep it.
func (e *Evaluator) GainPerGroup(v graph.NodeID) []float64 {
	return e.GainPerGroupInto(e.scratch, v)
}

// GainPerGroupInto is GainPerGroup with caller-provided scratch; queries
// with distinct scratch values may run concurrently (the evaluator state is
// only read).
func (e *Evaluator) GainPerGroupInto(s *Scratch, v graph.NodeID) []float64 {
	for i := range s.delta {
		s.delta[i] = 0
	}
	for w := range e.worlds {
		e.bfs(s, w, v, false)
	}
	r := float64(len(e.worlds))
	for i := range s.delta {
		s.delta[i] /= r
	}
	return s.delta
}

// Gain returns the expected total-influence increase of adding v.
func (e *Evaluator) Gain(v graph.NodeID) float64 {
	per := e.GainPerGroup(v)
	total := 0.0
	for _, d := range per {
		total += d
	}
	return total
}

// Add commits v to the seed set, updating all worlds.
func (e *Evaluator) Add(v graph.NodeID) {
	s := e.scratch
	for i := range s.delta {
		s.delta[i] = 0
	}
	for w := range e.worlds {
		e.bfs(s, w, v, true)
	}
	e.seeds = append(e.seeds, v)
}

// bfs runs the τ-bounded improvement BFS from v in world w. When commit is
// false it only accumulates the per-group newly-within-deadline counts into
// s.delta; when true it also writes the improved activation times and
// updates counts and sums.
func (e *Evaluator) bfs(s *Scratch, w int, v graph.NodeID, commit bool) {
	dist := e.dist[w]
	if dist[v] == 0 {
		return // already a seed in this world
	}
	world := e.worlds[w]
	tau := e.tau
	s.epoch++
	s.queue = s.queue[:0]

	visit := func(u graph.NodeID, d int32) {
		s.tent[u] = d
		s.stamp[u] = s.epoch
		s.queue = append(s.queue, u)
		if dist[u] > tau { // not previously counted within the deadline
			s.delta[e.g.Group(u)]++
			if commit {
				e.counts[w][e.g.Group(u)]++
				e.sums[e.g.Group(u)]++
			}
		}
		if commit {
			dist[u] = d
		}
	}

	visit(v, 0)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		d := s.tent[u]
		if d >= tau {
			continue
		}
		nd := d + 1
		for _, to := range world.Out(u) {
			if s.stamp[to] == s.epoch {
				continue // BFS order guarantees first visit is shortest
			}
			if nd >= dist[to] {
				continue // no improvement; existing propagation already covers it
			}
			visit(to, nd)
		}
	}
}

// Reset clears the seed set and all per-world state.
func (e *Evaluator) Reset() {
	for w := range e.worlds {
		d := e.dist[w]
		for v := range d {
			d[v] = unreached
		}
		c := e.counts[w]
		for i := range c {
			c[i] = 0
		}
	}
	for i := range e.sums {
		e.sums[i] = 0
	}
	e.seeds = e.seeds[:0]
}

// InitialGains computes GainPerGroup for every candidate in parallel and
// returns one copied slice per candidate, in candidate order. It only
// reads evaluator state, so it is safe before/between Adds. parallelism
// <= 0 means GOMAXPROCS. This accelerates the expensive first CELF pass.
func (e *Evaluator) InitialGains(candidates []graph.NodeID, parallelism int) [][]float64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(candidates) {
		parallelism = len(candidates)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	out := make([][]float64, len(candidates))
	var wg sync.WaitGroup
	work := make(chan int, len(candidates))
	for i := range candidates {
		work <- i
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewScratch()
			for i := range work {
				g := e.GainPerGroupInto(s, candidates[i])
				out[i] = append([]float64(nil), g...)
			}
		}()
	}
	wg.Wait()
	return out
}

// Disparity returns the paper's unfairness measure (Eq. 2): the maximum
// absolute pairwise difference between normalized group utilities.
func Disparity(normUtilities []float64) float64 {
	worst := 0.0
	for i := 0; i < len(normUtilities); i++ {
		for j := i + 1; j < len(normUtilities); j++ {
			if d := math.Abs(normUtilities[i] - normUtilities[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Estimate evaluates a fixed seed set on freshly sampled worlds — the
// unbiased final-report path (re-using optimization worlds overstates
// utility through the optimizer's curse). It returns per-group utilities.
func Estimate(g *graph.Graph, seeds []graph.NodeID, tau int32, model cascade.Model, samples int, seed int64) ([]float64, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("influence: need positive sample count")
	}
	worlds := cascade.SampleWorlds(g, model, samples, seed, 0)
	e, err := NewEvaluator(g, worlds, tau)
	if err != nil {
		return nil, err
	}
	for _, v := range seeds {
		e.Add(v)
	}
	return e.GroupUtilities(), nil
}
