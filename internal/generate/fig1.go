package generate

import "fairtcim/internal/graph"

// Fig1Example constructs the illustrative 38-node graph of the paper's
// Figure 1. The original topology is only available as a drawing, so this
// is a hand-built graph with the stated characteristics (see DESIGN.md §3):
//
//   - group V1 ("blue dots") has 26 nodes and contains the two most central
//     high-degree hubs a and b;
//   - group V2 ("red triangles") has 12 nodes, is peripheral, and is
//     reachable from the blue hubs only via paths of length ≥ 3, so a tight
//     deadline starves it entirely;
//   - a "broker" node c sits between the two groups: it touches deep blue
//     territory and several points of the red chain, so the pair {a, c}
//     influences both groups even under a tight deadline;
//   - all edges carry activation probability 0.7 and the budget is B = 2,
//     as in the paper.
//
// The returned map names the labelled nodes "a".."e".
func Fig1Example() (*graph.Graph, map[string]graph.NodeID) {
	const (
		nBlue = 26
		nRed  = 12
		n     = nBlue + nRed
		pe    = 0.7
	)
	b := graph.NewBuilder(n)
	labels := make([]int, n)
	for v := nBlue; v < n; v++ {
		labels[v] = 1
	}
	b.SetGroups(labels)

	und := func(u, v int) { b.AddUndirected(graph.NodeID(u), graph.NodeID(v), pe) }

	// Hub a (node 0) with its blue spokes 2..9.
	for v := 2; v <= 9; v++ {
		und(0, v)
	}
	// Hub b (node 1) with its blue spokes 10..17.
	for v := 10; v <= 17; v++ {
		und(1, v)
	}
	// Second blue ring.
	und(9, 18)
	und(9, 19)
	und(17, 20)
	und(17, 21)
	// Third blue ring.
	und(18, 22) // 22 is the broker c
	und(19, 23)
	und(20, 24)
	und(21, 25)
	// Lateral ties knitting the deep blue periphery together.
	und(23, 24)
	und(24, 25)

	// Red chain 26-27-...-37: sparsely knit, so no single red node is
	// individually attractive to the unfair objective.
	for v := 26; v < 37; v++ {
		und(v, v+1)
	}

	// Bridges. The broker c touches three points of the red chain, so it
	// (and only it) can influence a sizable red fraction under a tight
	// deadline; the only other blue–red tie is deep on b's side, three hops
	// from b.
	und(22, 26)
	und(22, 28)
	und(22, 30)
	und(21, 33)

	names := map[string]graph.NodeID{
		"a": 0,
		"b": 1,
		"c": 22,
		"d": 9,  // mid-ring blue node: good under moderate deadlines
		"e": 26, // head of the red chain
	}
	return b.MustBuild(), names
}
