// Package generate builds the synthetic social networks used in the
// paper's evaluation: stochastic block models (§6.1), plus Erdős–Rényi and
// Barabási–Albert graphs for additional experiments, and the illustrative
// 38-node example of Figure 1.
//
// All generators are deterministic given a seed and produce undirected
// social ties (two directed edges) with a uniform activation probability,
// matching the paper's setup.
package generate

import (
	"fmt"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// SBMConfig parametrizes a k-block stochastic block model in the paper's
// vocabulary: within-group edge probability ("homophily") and across-group
// edge probability ("heterophily").
type SBMConfig struct {
	N          int       // number of nodes
	Fractions  []float64 // group size fractions, must sum to ~1
	PHom       float64   // within-group edge probability
	PHet       float64   // across-group edge probability
	PActivate  float64   // IC activation probability on every edge
	Seed       int64     //
	Assignment Assignment
}

// Assignment controls how nodes get group labels.
type Assignment int

// Group assignment strategies.
const (
	// RandomAssignment assigns each node independently with the group
	// fractions as probabilities (the paper's "randomly assigned").
	RandomAssignment Assignment = iota
	// BlockAssignment assigns contiguous blocks with exact sizes, which
	// makes group sizes deterministic; used where the experiment text
	// states exact sizes (e.g. "350 nodes in V1 and 150 in V2").
	BlockAssignment
)

// SBM samples a stochastic block model graph.
func SBM(cfg SBMConfig) (*graph.Graph, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("generate: SBM needs positive N, got %d", cfg.N)
	}
	if len(cfg.Fractions) == 0 {
		return nil, fmt.Errorf("generate: SBM needs group fractions")
	}
	sum := 0.0
	for _, f := range cfg.Fractions {
		if f <= 0 {
			return nil, fmt.Errorf("generate: non-positive group fraction %v", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("generate: group fractions sum to %v, want 1", sum)
	}
	if bad(cfg.PHom) || bad(cfg.PHet) || bad(cfg.PActivate) {
		return nil, fmt.Errorf("generate: probabilities must be in [0,1]")
	}

	rng := xrand.New(cfg.Seed)
	labels := make([]int, cfg.N)
	switch cfg.Assignment {
	case BlockAssignment:
		idx := 0
		for grp, f := range cfg.Fractions {
			count := int(f*float64(cfg.N) + 0.5)
			if grp == len(cfg.Fractions)-1 {
				count = cfg.N - idx
			}
			for c := 0; c < count && idx < cfg.N; c++ {
				labels[idx] = grp
				idx++
			}
		}
	default:
		for v := range labels {
			u := rng.Float64()
			acc := 0.0
			labels[v] = len(cfg.Fractions) - 1
			for grp, f := range cfg.Fractions {
				acc += f
				if u < acc {
					labels[v] = grp
					break
				}
			}
		}
	}
	// Guarantee no empty group (Builder rejects sparse labels): force one
	// representative per group if the random draw missed one.
	counts := make([]int, len(cfg.Fractions))
	for _, l := range labels {
		counts[l]++
	}
	for grp, c := range counts {
		if c == 0 {
			labels[rng.Intn(cfg.N)] = grp
		}
	}

	b := graph.NewBuilder(cfg.N)
	b.SetGroups(labels)
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			p := cfg.PHet
			if labels[u] == labels[v] {
				p = cfg.PHom
			}
			if rng.Bernoulli(p) {
				b.AddUndirected(graph.NodeID(u), graph.NodeID(v), cfg.PActivate)
			}
		}
	}
	return b.Build()
}

// TwoBlockConfig is the paper's default synthetic setup (§6.1): two groups,
// majority fraction g, with given homophily/heterophily.
type TwoBlockConfig struct {
	N         int     // default 500
	G         float64 // majority fraction, default 0.7
	PHom      float64 // default 0.025
	PHet      float64 // default 0.001
	PActivate float64 // default 0.05
	Seed      int64
}

// DefaultTwoBlock returns the paper's §6.1 default parameters.
func DefaultTwoBlock(seed int64) TwoBlockConfig {
	return TwoBlockConfig{N: 500, G: 0.7, PHom: 0.025, PHet: 0.001, PActivate: 0.05, Seed: seed}
}

// TwoBlock samples the two-group SBM of §6.1 with exact block sizes.
func TwoBlock(cfg TwoBlockConfig) (*graph.Graph, error) {
	return SBM(SBMConfig{
		N:          cfg.N,
		Fractions:  []float64{cfg.G, 1 - cfg.G},
		PHom:       cfg.PHom,
		PHet:       cfg.PHet,
		PActivate:  cfg.PActivate,
		Seed:       cfg.Seed,
		Assignment: BlockAssignment,
	})
}

// ErdosRenyi samples G(n, p) with uniform activation probability pActivate
// and all nodes in one group.
func ErdosRenyi(n int, p, pActivate float64, seed int64) (*graph.Graph, error) {
	if n <= 0 || bad(p) || bad(pActivate) {
		return nil, fmt.Errorf("generate: bad ErdosRenyi parameters")
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Bernoulli(p) {
				b.AddUndirected(graph.NodeID(u), graph.NodeID(v), pActivate)
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert samples a preferential-attachment graph: each new node
// attaches m undirected edges to existing nodes with probability
// proportional to degree. Groups are assigned randomly with the given
// fractions, modelling a scale-free network with salient groups.
func BarabasiAlbert(n, m int, fractions []float64, pActivate float64, seed int64) (*graph.Graph, error) {
	if n <= 0 || m <= 0 || m >= n || bad(pActivate) {
		return nil, fmt.Errorf("generate: bad BarabasiAlbert parameters (n=%d, m=%d)", n, m)
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)

	// Repeated-endpoint list implements preferential attachment in O(1)
	// per draw.
	endpoints := make([]graph.NodeID, 0, 2*m*n)
	// Seed clique over the first m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.AddUndirected(graph.NodeID(u), graph.NodeID(v), pActivate)
			endpoints = append(endpoints, graph.NodeID(u), graph.NodeID(v))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[graph.NodeID]bool{}
		for len(chosen) < m {
			u := endpoints[rng.Intn(len(endpoints))]
			if int(u) != v && !chosen[u] {
				chosen[u] = true
			}
		}
		for u := range chosen {
			b.AddUndirected(graph.NodeID(v), u, pActivate)
			endpoints = append(endpoints, graph.NodeID(v), u)
		}
	}

	if len(fractions) > 0 {
		labels := make([]int, n)
		for v := range labels {
			u := rng.Float64()
			acc := 0.0
			labels[v] = len(fractions) - 1
			for grp, f := range fractions {
				acc += f
				if u < acc {
					labels[v] = grp
					break
				}
			}
		}
		counts := make([]int, len(fractions))
		for _, l := range labels {
			counts[l]++
		}
		for grp, c := range counts {
			if c == 0 {
				labels[rng.Intn(n)] = grp
			}
		}
		b.SetGroups(labels)
	}
	return b.Build()
}

func bad(p float64) bool { return p < 0 || p > 1 }

// TwoStars builds two disjoint deterministic stars with certain (p = 1)
// edges: hub 0 feeding 10 group-0 spokes and hub 11 feeding 5 group-1
// spokes. With no randomness left in the diffusion, every estimation
// engine computes exact utilities on it, which makes it the shared
// fixture for cross-engine parity tests: greedy must pick hub 0 first and
// hub 11 second under any engine.
func TwoStars() *graph.Graph {
	b := graph.NewBuilder(17)
	for s := graph.NodeID(1); s <= 10; s++ {
		b.AddEdge(0, s, 1)
	}
	for s := graph.NodeID(12); s <= 16; s++ {
		b.AddEdge(11, s, 1)
		b.SetGroup(s, 1)
	}
	b.SetGroup(11, 1)
	return b.MustBuild()
}
