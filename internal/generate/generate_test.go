package generate

import (
	"math"
	"testing"

	"fairtcim/internal/graph"
)

func TestSBMValidation(t *testing.T) {
	bad := []SBMConfig{
		{N: 0, Fractions: []float64{1}, PHom: 0.1, PHet: 0.1, PActivate: 0.1},
		{N: 10, Fractions: nil, PHom: 0.1, PHet: 0.1, PActivate: 0.1},
		{N: 10, Fractions: []float64{0.5, 0.4}, PHom: 0.1, PHet: 0.1, PActivate: 0.1}, // sums to 0.9
		{N: 10, Fractions: []float64{0.5, 0.5}, PHom: 1.5, PHet: 0.1, PActivate: 0.1},
		{N: 10, Fractions: []float64{0.5, 0.5}, PHom: 0.1, PHet: -0.1, PActivate: 0.1},
		{N: 10, Fractions: []float64{1.0, -0.0}, PHom: 0.1, PHet: 0.1, PActivate: 0.1},
	}
	for i, cfg := range bad {
		if _, err := SBM(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestTwoBlockExactSizes(t *testing.T) {
	g, err := TwoBlock(DefaultTwoBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	sizes := g.GroupSizes()
	if sizes[0] != 350 || sizes[1] != 150 {
		t.Fatalf("group sizes = %v, want [350 150] (paper §6.1)", sizes)
	}
}

func TestTwoBlockEdgeCounts(t *testing.T) {
	// Expected within-V1 undirected edges: C(350,2)*0.025 ≈ 1527;
	// within-V2: C(150,2)*0.025 ≈ 279; across: 350*150*0.001 ≈ 52.
	// Averaged over seeds this should concentrate.
	sumW1, sumW2, sumAcross := 0.0, 0.0, 0.0
	const reps = 5
	for seed := int64(0); seed < reps; seed++ {
		g, err := TwoBlock(DefaultTwoBlock(seed))
		if err != nil {
			t.Fatal(err)
		}
		s := g.ComputeStats()
		sumW1 += float64(s.WithinEdges[0]) / 2 // directed -> undirected
		sumW2 += float64(s.WithinEdges[1]) / 2
		sumAcross += float64(s.AcrossEdges) / 2
	}
	w1, w2, across := sumW1/reps, sumW2/reps, sumAcross/reps
	if math.Abs(w1-1527)/1527 > 0.1 {
		t.Fatalf("within-V1 edges %v, want ≈1527", w1)
	}
	if math.Abs(w2-279)/279 > 0.15 {
		t.Fatalf("within-V2 edges %v, want ≈279", w2)
	}
	if math.Abs(across-52.5)/52.5 > 0.3 {
		t.Fatalf("across edges %v, want ≈52", across)
	}
}

func TestSBMDeterministic(t *testing.T) {
	cfg := DefaultTwoBlock(42)
	g1, _ := TwoBlock(cfg)
	g2, _ := TwoBlock(cfg)
	if g1.M() != g2.M() {
		t.Fatalf("same seed produced %d and %d edges", g1.M(), g2.M())
	}
	g3, _ := TwoBlock(DefaultTwoBlock(43))
	if g1.M() == g3.M() {
		t.Log("different seeds coincide in edge count; unusual but not fatal")
	}
}

func TestSBMRandomAssignmentCoversGroups(t *testing.T) {
	g, err := SBM(SBMConfig{
		N:          50,
		Fractions:  []float64{0.9, 0.05, 0.05},
		PHom:       0.1,
		PHet:       0.01,
		PActivate:  0.1,
		Seed:       7,
		Assignment: RandomAssignment,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	for i, s := range g.GroupSizes() {
		if s == 0 {
			t.Fatalf("group %d empty", i)
		}
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	g, err := ErdosRenyi(200, 0.1, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 * float64(200*199/2)
	got := float64(g.M()) / 2
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("ER edges %v, want ≈%v", got, want)
	}
	if g.NumGroups() != 1 {
		t.Fatalf("ER should have 1 group, got %d", g.NumGroups())
	}
}

func TestErdosRenyiValidation(t *testing.T) {
	if _, err := ErdosRenyi(0, 0.1, 0.5, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ErdosRenyi(10, 1.5, 0.5, 1); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	n, m := 300, 3
	g, err := BarabasiAlbert(n, m, []float64{0.6, 0.4}, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// Undirected edge count: C(m+1,2) clique + m per additional node.
	wantEdges := m*(m+1)/2 + (n-m-1)*m
	if g.M() != 2*wantEdges {
		t.Fatalf("M = %d, want %d", g.M(), 2*wantEdges)
	}
	// Scale-free: max degree should far exceed the minimum degree m.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.OutDegree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 4*m {
		t.Fatalf("max degree %d suspiciously small for preferential attachment", maxDeg)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	if _, err := BarabasiAlbert(10, 10, nil, 0.1, 1); err == nil {
		t.Fatal("m>=n accepted")
	}
	if _, err := BarabasiAlbert(10, 0, nil, 0.1, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestFig1ExampleShape(t *testing.T) {
	g, names := Fig1Example()
	if g.N() != 38 {
		t.Fatalf("N = %d, want 38", g.N())
	}
	sizes := g.GroupSizes()
	if sizes[0] != 26 || sizes[1] != 12 {
		t.Fatalf("group sizes = %v, want [26 12] (paper Fig. 1)", sizes)
	}
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if _, ok := names[name]; !ok {
			t.Fatalf("missing named node %q", name)
		}
	}
	// Hubs are the highest-degree nodes.
	if g.OutDegree(names["a"]) < 8 || g.OutDegree(names["b"]) < 8 {
		t.Fatalf("hubs have degrees %d, %d", g.OutDegree(names["a"]), g.OutDegree(names["b"]))
	}
	// All activation probabilities are 0.7.
	for v := 0; v < g.N(); v++ {
		targets, probs := g.OutEdges(graph.NodeID(v))
		for i, to := range targets {
			if probs[i] != 0.7 {
				t.Fatalf("edge (%d,%d) has p=%v", v, to, probs[i])
			}
		}
	}
	// Connected: information can in principle reach everyone.
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("Fig1 graph has %d components", count)
	}
}

func TestFig1RedGroupIsFarFromHubs(t *testing.T) {
	g, names := Fig1Example()
	// Within 2 hops of {a, b}, no red node is reachable: that is the
	// mechanism behind the τ=2 disparity collapse in the paper's table.
	dist := g.BFSDistances([]graph.NodeID{names["a"], names["b"]})
	for v := 0; v < g.N(); v++ {
		if g.Group(graph.NodeID(v)) == 1 && dist[v] >= 0 && dist[v] <= 2 {
			t.Fatalf("red node %d within 2 hops of the hubs", v)
		}
	}
	// The broker c reaches red nodes within 2 hops.
	distC := g.BFSDistances([]graph.NodeID{names["c"]})
	reached := 0
	for v := 0; v < g.N(); v++ {
		if g.Group(graph.NodeID(v)) == 1 && distC[v] >= 0 && distC[v] <= 2 {
			reached++
		}
	}
	if reached < 5 {
		t.Fatalf("broker reaches only %d red nodes within 2 hops", reached)
	}
}
