// Package submodular is a generic toolbox for maximizing monotone
// submodular set functions, the structure both TCIM problems rely on
// (paper §3.4): greedy with the (1 − 1/e) guarantee under a cardinality
// constraint, the lazy-evaluation (CELF) variant that exploits
// submodularity to skip re-evaluations, greedy submodular cover with the
// ln(1 + |V|) guarantee, and a brute-force oracle for tests and the tiny
// Figure-1 instance.
package submodular

import (
	"container/heap"
	"errors"
	"fmt"

	"fairtcim/internal/graph"
)

// Objective is a monotone submodular set function with incremental state:
// the "current set" grows via Add. Gain must return the exact marginal
// value of adding v to the current set; Value returns the function value of
// the current set.
//
// Implementations are typically expensive to query, which is why the
// optimizers below count evaluations.
type Objective interface {
	Gain(v graph.NodeID) float64
	Add(v graph.NodeID)
	Value() float64
}

// Stopper is an optional Objective extension: after every Add, the
// optimizers poll Stopped and abort with its error when non-nil,
// returning the partial Result alongside it. This is the cooperative
// cancellation seam — an objective that observes an external cancel
// signal (e.g. fairim.Config.Cancel) latches it here, and the greedy
// loop stops between picks instead of running to completion.
type Stopper interface {
	Stopped() error
}

// stopped polls the optional Stopper extension.
func stopped(obj Objective) error {
	if s, ok := obj.(Stopper); ok {
		return s.Stopped()
	}
	return nil
}

// Result reports the outcome of an optimizer run.
type Result struct {
	Seeds       []graph.NodeID
	Values      []float64 // objective value after each pick
	Evaluations int       // number of Gain calls
	// EvalsAt[i] is Evaluations as of the moment Seeds[i] was committed —
	// the cumulative Gain calls a run stopping after pick i+1 would have
	// spent. Because a lazy-greedy run at budget k performs exactly the
	// first k picks (and the evaluations leading to them) of any
	// larger-budget run over the same objective, EvalsAt lets one shared
	// run answer every smaller budget with the Evaluations count the
	// smaller run would itself have reported (see fairim.SolveBatch).
	EvalsAt []int
}

// GreedyMax runs the classical greedy: B rounds, each scanning every
// remaining candidate. It exists mostly as the ablation baseline for CELF;
// both produce identical seed sets on exact objectives.
func GreedyMax(obj Objective, candidates []graph.NodeID, budget int) (Result, error) {
	if budget < 0 {
		return Result{}, fmt.Errorf("submodular: negative budget %d", budget)
	}
	var res Result
	if err := stopped(obj); err != nil {
		return res, err
	}
	remaining := append([]graph.NodeID(nil), candidates...)
	for len(res.Seeds) < budget && len(remaining) > 0 {
		bestIdx, bestGain := -1, 0.0
		for i, v := range remaining {
			g := obj.Gain(v)
			res.Evaluations++
			if bestIdx == -1 || g > bestGain {
				bestIdx, bestGain = i, g
			}
		}
		if bestGain <= 0 {
			break // monotone objective exhausted; extra seeds are useless
		}
		v := remaining[bestIdx]
		obj.Add(v)
		res.Seeds = append(res.Seeds, v)
		res.Values = append(res.Values, obj.Value())
		res.EvalsAt = append(res.EvalsAt, res.Evaluations)
		if err := stopped(obj); err != nil {
			return res, err
		}
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return res, nil
}

// LazyItem is a candidate with a possibly stale upper bound on its gain —
// one entry of a CELF heap. Exported so a finished run's heap can be
// snapshotted and resumed (see LazyGreedyMaxCapture).
type LazyItem struct {
	Node  graph.NodeID
	Gain  float64
	Round int // the pick-round in which Gain was computed
}

// LazySnapshot is the complete CELF state after a run: the heap (in valid
// heap order) and the number of committed picks. Because the heap after k
// picks is a function of the objective and those k picks only — not of the
// eventual budget — a snapshot from a budget-k run is bit-identical to a
// larger run's state at pick k, so resuming it extends the solution
// exactly as the larger cold run would have continued. Snapshots are
// immutable once captured; Resume copies before mutating, so one snapshot
// can serve any number of extensions.
type LazySnapshot struct {
	Items []LazyItem
	Round int
}

type celfHeap []LazyItem

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].Gain > h[j].Gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(LazyItem)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// LazyGreedyMax runs CELF (Leskovec et al. 2007): because marginal gains
// only shrink as the set grows, a stale gain is an upper bound, so the
// top-of-heap candidate whose gain is current can be added without
// re-scanning everyone. Identical output to GreedyMax on exact objectives,
// typically with far fewer Gain calls.
func LazyGreedyMax(obj Objective, candidates []graph.NodeID, budget int) (Result, error) {
	return LazyGreedyMaxInit(obj, candidates, budget, nil)
}

// LazyGreedyMaxInit is LazyGreedyMax with optionally precomputed initial
// gains (initial[i] = obj.Gain(candidates[i]) on the empty set), letting
// callers parallelize the expensive first pass. Pass nil to compute them
// here.
func LazyGreedyMaxInit(obj Objective, candidates []graph.NodeID, budget int, initial []float64) (Result, error) {
	res, _, err := LazyGreedyMaxCapture(obj, candidates, budget, initial)
	return res, err
}

// LazyGreedyMaxCapture is LazyGreedyMaxInit that additionally returns the
// final CELF state, so a later call can extend the run to a larger budget
// without redoing the committed picks (seed-set prefix memoization). The
// snapshot is nil when the run ended early — error, exhausted candidates,
// or zero best gain — because such a run has nothing useful to extend.
func LazyGreedyMaxCapture(obj Objective, candidates []graph.NodeID, budget int, initial []float64) (Result, *LazySnapshot, error) {
	if budget < 0 {
		return Result{}, nil, fmt.Errorf("submodular: negative budget %d", budget)
	}
	if initial != nil && len(initial) != len(candidates) {
		return Result{}, nil, fmt.Errorf("submodular: %d initial gains for %d candidates", len(initial), len(candidates))
	}
	var res Result
	if err := stopped(obj); err != nil {
		return res, nil, err
	}
	h := make(celfHeap, 0, len(candidates))
	for i, v := range candidates {
		var g float64
		if initial != nil {
			g = initial[i]
		} else {
			g = obj.Gain(v)
			res.Evaluations++
		}
		h = append(h, LazyItem{Node: v, Gain: g, Round: 0})
	}
	heap.Init(&h)
	return lazyRun(obj, h, 0, budget, res)
}

// LazyGreedyMaxResume continues a CELF run from a snapshot up to budget
// additional picks. obj must already reflect the snapshot's committed
// picks (the caller replays them via Add); the returned Result covers only
// the extension. The snapshot is not modified, and the run it came from
// plus this extension together equal one cold run at the larger budget.
func LazyGreedyMaxResume(obj Objective, snap *LazySnapshot, budget int) (Result, *LazySnapshot, error) {
	if budget < 0 {
		return Result{}, nil, fmt.Errorf("submodular: negative budget %d", budget)
	}
	if snap == nil {
		return Result{}, nil, fmt.Errorf("submodular: nil snapshot")
	}
	var res Result
	if err := stopped(obj); err != nil {
		return res, nil, err
	}
	h := make(celfHeap, len(snap.Items))
	copy(h, snap.Items)
	return lazyRun(obj, h, snap.Round, budget, res)
}

// lazyRun is the shared CELF pick loop: up to budget picks starting at the
// given round, over an already-initialized heap. It owns h from here on.
func lazyRun(obj Objective, h celfHeap, round, budget int, res Result) (Result, *LazySnapshot, error) {
	for len(res.Seeds) < budget && h.Len() > 0 {
		top := heap.Pop(&h).(LazyItem)
		if top.Round != round {
			top.Gain = obj.Gain(top.Node)
			res.Evaluations++
			top.Round = round
			// Re-insert unless it is still clearly the best.
			if h.Len() > 0 && top.Gain < h[0].Gain {
				heap.Push(&h, top)
				continue
			}
		}
		if top.Gain <= 0 {
			return res, nil, nil
		}
		obj.Add(top.Node)
		res.Seeds = append(res.Seeds, top.Node)
		res.Values = append(res.Values, obj.Value())
		res.EvalsAt = append(res.EvalsAt, res.Evaluations)
		if err := stopped(obj); err != nil {
			return res, nil, err
		}
		round++
	}
	if h.Len() == 0 {
		return res, nil, nil
	}
	return res, &LazySnapshot{Items: h, Round: round}, nil
}

// ErrCoverInfeasible is returned when the target value cannot be reached
// with the available candidates.
var ErrCoverInfeasible = errors.New("submodular: coverage target unreachable")

// GreedyCover adds greedily chosen seeds until obj.Value() >= target,
// giving the ln(1+n)-approximation for submodular cover (paper Theorem 2's
// engine). maxSeeds bounds the seed count (0 means no bound). Uses lazy
// evaluation like CELF.
func GreedyCover(obj Objective, candidates []graph.NodeID, target float64, maxSeeds int) (Result, error) {
	return GreedyCoverInit(obj, candidates, target, maxSeeds, nil)
}

// GreedyCoverInit is GreedyCover with optionally precomputed initial gains;
// see LazyGreedyMaxInit.
func GreedyCoverInit(obj Objective, candidates []graph.NodeID, target float64, maxSeeds int, initial []float64) (Result, error) {
	if initial != nil && len(initial) != len(candidates) {
		return Result{}, fmt.Errorf("submodular: %d initial gains for %d candidates", len(initial), len(candidates))
	}
	var res Result
	if err := stopped(obj); err != nil {
		return res, err
	}
	if obj.Value() >= target {
		return res, nil
	}
	h := make(celfHeap, 0, len(candidates))
	for i, v := range candidates {
		var g float64
		if initial != nil {
			g = initial[i]
		} else {
			g = obj.Gain(v)
			res.Evaluations++
		}
		h = append(h, LazyItem{Node: v, Gain: g, Round: 0})
	}
	heap.Init(&h)
	round := 0
	for h.Len() > 0 {
		if maxSeeds > 0 && len(res.Seeds) >= maxSeeds {
			return res, fmt.Errorf("%w: %d seeds reached value %v < target %v",
				ErrCoverInfeasible, len(res.Seeds), obj.Value(), target)
		}
		top := heap.Pop(&h).(LazyItem)
		if top.Round != round {
			top.Gain = obj.Gain(top.Node)
			res.Evaluations++
			top.Round = round
			if h.Len() > 0 && top.Gain < h[0].Gain {
				heap.Push(&h, top)
				continue
			}
		}
		if top.Gain <= 0 {
			return res, fmt.Errorf("%w: best marginal gain is 0 at value %v < target %v",
				ErrCoverInfeasible, obj.Value(), target)
		}
		obj.Add(top.Node)
		res.Seeds = append(res.Seeds, top.Node)
		res.Values = append(res.Values, obj.Value())
		res.EvalsAt = append(res.EvalsAt, res.Evaluations)
		if err := stopped(obj); err != nil {
			return res, err
		}
		round++
		if obj.Value() >= target {
			return res, nil
		}
	}
	return res, fmt.Errorf("%w: candidates exhausted at value %v < target %v",
		ErrCoverInfeasible, obj.Value(), target)
}

// SetValue evaluates an arbitrary seed set from scratch on a freshly
// resettable objective. factory must return a fresh Objective each call.
func SetValue(factory func() Objective, set []graph.NodeID) float64 {
	obj := factory()
	for _, v := range set {
		obj.Add(v)
	}
	return obj.Value()
}

// BruteForceMax enumerates every candidate subset of size exactly budget
// (monotone objectives never prefer smaller sets) and returns an optimal
// one. Exponential; intended for tests and the 38-node Figure-1 instance.
func BruteForceMax(factory func() Objective, candidates []graph.NodeID, budget int) ([]graph.NodeID, float64, error) {
	if budget < 0 {
		return nil, 0, fmt.Errorf("submodular: negative budget %d", budget)
	}
	if budget > len(candidates) {
		budget = len(candidates)
	}
	var best []graph.NodeID
	bestVal := -1.0
	idx := make([]int, budget)
	set := make([]graph.NodeID, budget)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == budget {
			for i, j := range idx {
				set[i] = candidates[j]
			}
			v := SetValue(factory, set)
			if v > bestVal {
				bestVal = v
				best = append(best[:0], set...)
			}
			return
		}
		for j := start; j <= len(candidates)-(budget-k); j++ {
			idx[k] = j
			rec(j+1, k+1)
		}
	}
	if budget == 0 {
		return nil, SetValue(factory, nil), nil
	}
	rec(0, 0)
	out := append([]graph.NodeID(nil), best...)
	return out, bestVal, nil
}
