package submodular

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// coverage is a weighted set-coverage objective: node v covers sets[v];
// value is the total weight of covered elements. Exactly monotone
// submodular, so it is the canonical test objective.
type coverage struct {
	sets    [][]int
	weights []float64
	covered []bool
	value   float64
}

func newCoverage(sets [][]int, weights []float64) *coverage {
	return &coverage{sets: sets, weights: weights, covered: make([]bool, len(weights))}
}

func (c *coverage) Gain(v graph.NodeID) float64 {
	g := 0.0
	for _, e := range c.sets[v] {
		if !c.covered[e] {
			g += c.weights[e]
		}
	}
	return g
}

func (c *coverage) Add(v graph.NodeID) {
	for _, e := range c.sets[v] {
		if !c.covered[e] {
			c.covered[e] = true
			c.value += c.weights[e]
		}
	}
}

func (c *coverage) Value() float64 { return c.value }

// randomCoverage builds a random instance with n candidate nodes over m
// elements.
func randomCoverage(seed int64, n, m int) (func() Objective, []graph.NodeID) {
	rng := xrand.New(seed)
	sets := make([][]int, n)
	for v := range sets {
		k := rng.Intn(m/2 + 1)
		sets[v] = rng.Sample(m, k)
	}
	weights := make([]float64, m)
	for e := range weights {
		weights[e] = 1 + rng.Float64()
	}
	candidates := make([]graph.NodeID, n)
	for i := range candidates {
		candidates[i] = graph.NodeID(i)
	}
	return func() Objective { return newCoverage(sets, weights) }, candidates
}

func TestGreedyEqualsLazyGreedy(t *testing.T) {
	check := func(seed int64) bool {
		factory, cands := randomCoverage(seed, 25, 40)
		a, err1 := GreedyMax(factory(), cands, 6)
		b, err2 := LazyGreedyMax(factory(), cands, 6)
		if err1 != nil || err2 != nil {
			return false
		}
		// Values must match exactly round by round (seed identity can differ
		// under ties, value cannot).
		if len(a.Values) != len(b.Values) {
			return false
		}
		for i := range a.Values {
			if math.Abs(a.Values[i]-b.Values[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyGreedySavesEvaluations(t *testing.T) {
	factory, cands := randomCoverage(7, 200, 300)
	a, _ := GreedyMax(factory(), cands, 10)
	b, _ := LazyGreedyMax(factory(), cands, 10)
	if b.Evaluations >= a.Evaluations {
		t.Fatalf("CELF used %d evaluations, plain greedy %d", b.Evaluations, a.Evaluations)
	}
}

func TestGreedyGuarantee(t *testing.T) {
	// Greedy value >= (1 - 1/e) * OPT on random instances (Nemhauser et al.).
	check := func(seed int64) bool {
		factory, cands := randomCoverage(seed, 12, 20)
		res, err := LazyGreedyMax(factory(), cands, 3)
		if err != nil {
			return false
		}
		greedyVal := SetValue(factory, res.Seeds)
		_, opt, err := BruteForceMax(factory, cands, 3)
		if err != nil {
			return false
		}
		return greedyVal >= (1-1/math.E)*opt-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyStopsWhenExhausted(t *testing.T) {
	// Only 2 elements to cover; budget 5 should stop early.
	factory, _ := func() (func() Objective, []graph.NodeID) {
		sets := [][]int{{0}, {1}, {}}
		w := []float64{1, 1}
		return func() Objective { return newCoverage(sets, w) }, nil
	}()
	res, err := GreedyMax(factory(), []graph.NodeID{0, 1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("greedy picked %d seeds, want 2", len(res.Seeds))
	}
}

func TestNegativeBudget(t *testing.T) {
	factory, cands := randomCoverage(1, 5, 5)
	if _, err := GreedyMax(factory(), cands, -1); err == nil {
		t.Fatal("negative budget accepted by GreedyMax")
	}
	if _, err := LazyGreedyMax(factory(), cands, -1); err == nil {
		t.Fatal("negative budget accepted by LazyGreedyMax")
	}
	if _, _, err := BruteForceMax(factory, cands, -1); err == nil {
		t.Fatal("negative budget accepted by BruteForceMax")
	}
}

func TestZeroBudget(t *testing.T) {
	factory, cands := randomCoverage(1, 5, 5)
	res, err := LazyGreedyMax(factory(), cands, 0)
	if err != nil || len(res.Seeds) != 0 {
		t.Fatalf("zero budget: %v, %v", res.Seeds, err)
	}
}

func TestGreedyCoverReachesTarget(t *testing.T) {
	check := func(seed int64) bool {
		factory, cands := randomCoverage(seed, 20, 30)
		// Total achievable value:
		all := SetValue(factory, cands)
		target := 0.5 * all
		obj := factory()
		res, err := GreedyCover(obj, cands, target, 0)
		if err != nil {
			return false
		}
		return obj.Value() >= target && len(res.Seeds) > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyCoverAlreadySatisfied(t *testing.T) {
	factory, cands := randomCoverage(3, 10, 10)
	res, err := GreedyCover(factory(), cands, 0, 0)
	if err != nil || len(res.Seeds) != 0 {
		t.Fatalf("zero target: %v %v", res.Seeds, err)
	}
}

func TestGreedyCoverInfeasible(t *testing.T) {
	factory, cands := randomCoverage(5, 10, 20)
	all := SetValue(factory, cands)
	_, err := GreedyCover(factory(), cands, all*2, 0)
	if !errors.Is(err, ErrCoverInfeasible) {
		t.Fatalf("err = %v, want ErrCoverInfeasible", err)
	}
}

func TestGreedyCoverMaxSeeds(t *testing.T) {
	factory, cands := randomCoverage(5, 20, 30)
	all := SetValue(factory, cands)
	_, err := GreedyCover(factory(), cands, all*0.99, 1)
	if err != nil && !errors.Is(err, ErrCoverInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestGreedyCoverLnBound(t *testing.T) {
	// |greedy| <= ln(1+n) * |OPT| where n bounds the value... we check the
	// classical guarantee with OPT found by brute force over sizes.
	factory, cands := randomCoverage(11, 12, 15)
	all := SetValue(factory, cands)
	target := 0.8 * all
	res, err := GreedyCover(factory(), cands, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force smallest feasible set.
	optSize := -1
	for size := 1; size <= len(cands) && optSize < 0; size++ {
		set, val, err := BruteForceMax(factory, cands, size)
		if err != nil {
			t.Fatal(err)
		}
		_ = set
		if val >= target {
			optSize = size
		}
	}
	if optSize < 0 {
		t.Fatal("instance infeasible?")
	}
	bound := math.Log(1+15.0*2) * float64(optSize) // generous n for weighted cover
	if float64(len(res.Seeds)) > bound+1 {
		t.Fatalf("greedy used %d seeds; opt %d, bound %v", len(res.Seeds), optSize, bound)
	}
}

func TestBruteForceMatchesExhaustive(t *testing.T) {
	factory, cands := randomCoverage(13, 8, 12)
	set, val, err := BruteForceMax(factory, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("brute force returned %v", set)
	}
	// Verify optimality directly.
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			v := SetValue(factory, []graph.NodeID{cands[i], cands[j]})
			if v > val+1e-9 {
				t.Fatalf("brute force missed better pair (%d,%d): %v > %v", i, j, v, val)
			}
		}
	}
}

func TestBruteForceBudgetLargerThanCandidates(t *testing.T) {
	factory, cands := randomCoverage(1, 3, 5)
	set, _, err := BruteForceMax(factory, cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("set = %v", set)
	}
}

func TestBruteForceZeroBudget(t *testing.T) {
	factory, cands := randomCoverage(1, 3, 5)
	set, val, err := BruteForceMax(factory, cands, 0)
	if err != nil || len(set) != 0 || val != 0 {
		t.Fatalf("set=%v val=%v err=%v", set, val, err)
	}
}

// TestMonotoneValuesNonDecreasing: greedy trace values never decrease.
func TestMonotoneValuesNonDecreasing(t *testing.T) {
	check := func(seed int64) bool {
		factory, cands := randomCoverage(seed, 20, 25)
		res, err := LazyGreedyMax(factory(), cands, 8)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Values); i++ {
			if res.Values[i] < res.Values[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
