package submodular

import (
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/graph"
)

func TestStochasticGreedyValidation(t *testing.T) {
	factory, cands := randomCoverage(1, 10, 10)
	if _, err := StochasticGreedyMax(factory(), cands, -1, 0.1, 1); err == nil {
		t.Fatal("negative budget accepted")
	}
	for _, eps := range []float64{0, 1, -0.5} {
		if _, err := StochasticGreedyMax(factory(), cands, 3, eps, 1); err == nil {
			t.Fatalf("epsilon %v accepted", eps)
		}
	}
}

func TestStochasticGreedyZeroBudget(t *testing.T) {
	factory, cands := randomCoverage(1, 10, 10)
	res, err := StochasticGreedyMax(factory(), cands, 0, 0.1, 1)
	if err != nil || len(res.Seeds) != 0 {
		t.Fatalf("res=%v err=%v", res.Seeds, err)
	}
}

func TestStochasticGreedyDistinctSeeds(t *testing.T) {
	check := func(seed int64) bool {
		factory, cands := randomCoverage(seed, 30, 40)
		res, err := StochasticGreedyMax(factory(), cands, 8, 0.2, seed)
		if err != nil {
			return false
		}
		seen := map[graph.NodeID]bool{}
		for _, s := range res.Seeds {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStochasticGreedyQuality(t *testing.T) {
	// Averaged over instances, stochastic greedy should get close to full
	// greedy (the (1-1/e-ε) guarantee is in expectation).
	totalGreedy, totalStoch := 0.0, 0.0
	for seed := int64(0); seed < 20; seed++ {
		factory, cands := randomCoverage(seed, 60, 80)
		gr, err := LazyGreedyMax(factory(), cands, 8)
		if err != nil {
			t.Fatal(err)
		}
		st, err := StochasticGreedyMax(factory(), cands, 8, 0.1, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		totalGreedy += SetValue(factory, gr.Seeds)
		totalStoch += SetValue(factory, st.Seeds)
	}
	if totalStoch < 0.85*totalGreedy {
		t.Fatalf("stochastic quality %v far below greedy %v", totalStoch, totalGreedy)
	}
}

func TestStochasticGreedyFewerEvaluationsAtLargeBudget(t *testing.T) {
	factory, cands := randomCoverage(3, 400, 500)
	gr, err := GreedyMax(factory(), cands, 40)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StochasticGreedyMax(factory(), cands, 40, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evaluations >= gr.Evaluations {
		t.Fatalf("stochastic used %d evaluations, plain greedy %d", st.Evaluations, gr.Evaluations)
	}
}

func TestStochasticGreedyDeterministicForSeed(t *testing.T) {
	factory, cands := randomCoverage(9, 50, 60)
	a, _ := StochasticGreedyMax(factory(), cands, 6, 0.2, 42)
	b, _ := StochasticGreedyMax(factory(), cands, 6, 0.2, 42)
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatal("lengths differ")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("same seed produced different runs")
		}
	}
}

func TestStochasticGreedyStopsWhenExhausted(t *testing.T) {
	sets := [][]int{{0}, {1}, {}}
	w := []float64{1, 1}
	factory := func() Objective { return newCoverage(sets, w) }
	res, err := StochasticGreedyMax(factory(), []graph.NodeID{0, 1, 2}, 5, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("picked %d seeds, want 2", len(res.Seeds))
	}
	if v := SetValue(factory, res.Seeds); math.Abs(v-2) > 1e-9 {
		t.Fatalf("value %v", v)
	}
}
