package submodular

import (
	"testing"
	"testing/quick"

	"fairtcim/internal/graph"
)

// TestCaptureResumeMatchesColdRun is the prefix-extension parity pin at
// the optimizer level: running CELF to budget k, snapshotting, replaying
// the picks onto a fresh objective, and resuming to budget K must produce
// exactly the seeds, values, and picks of one cold budget-K run — not
// merely a solution of equal quality.
func TestCaptureResumeMatchesColdRun(t *testing.T) {
	check := func(seed int64) bool {
		factory, cands := randomCoverage(seed, 30, 50)
		const small, big = 4, 9

		cold, err := LazyGreedyMax(factory(), cands, big)
		if err != nil {
			t.Fatal(err)
		}

		warmObj := factory()
		prefix, snap, err := LazyGreedyMaxCapture(warmObj, cands, small, nil)
		if err != nil {
			t.Fatal(err)
		}
		if snap == nil {
			// The instance saturated below the small budget; the cold run
			// stopped at the same point, which is parity too.
			return len(cold.Seeds) == len(prefix.Seeds)
		}
		replayObj := factory()
		for _, v := range prefix.Seeds {
			replayObj.Add(v)
		}
		ext, _, err := LazyGreedyMaxResume(replayObj, snap, big-small)
		if err != nil {
			t.Fatal(err)
		}

		joined := append(append([]graph.NodeID(nil), prefix.Seeds...), ext.Seeds...)
		if len(joined) != len(cold.Seeds) {
			t.Fatalf("seed %d: warm path picked %d seeds, cold %d", seed, len(joined), len(cold.Seeds))
		}
		for i := range joined {
			if joined[i] != cold.Seeds[i] {
				t.Fatalf("seed %d: pick %d is %d warm vs %d cold", seed, i, joined[i], cold.Seeds[i])
			}
		}
		values := append(append([]float64(nil), prefix.Values...), ext.Values...)
		for i := range values {
			if values[i] != cold.Values[i] {
				t.Fatalf("seed %d: value %d is %v warm vs %v cold", seed, i, values[i], cold.Values[i])
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestResumeDoesNotMutateSnapshot: one snapshot must serve several
// extensions — the server's prefix cache hands the same snapshot to every
// later query — so Resume may not write through to it.
func TestResumeDoesNotMutateSnapshot(t *testing.T) {
	factory, cands := randomCoverage(7, 30, 50)
	prefix, snap, err := LazyGreedyMaxCapture(factory(), cands, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}
	before := append([]LazyItem(nil), snap.Items...)

	extend := func() []graph.NodeID {
		obj := factory()
		for _, v := range prefix.Seeds {
			obj.Add(v)
		}
		ext, _, err := LazyGreedyMaxResume(obj, snap, 5)
		if err != nil {
			t.Fatal(err)
		}
		return ext.Seeds
	}
	first := extend()
	for i, it := range snap.Items {
		if it != before[i] {
			t.Fatalf("resume mutated snapshot item %d: %+v -> %+v", i, before[i], it)
		}
	}
	second := extend()
	if len(first) != len(second) {
		t.Fatalf("repeat extension differs: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("repeat extension differs at %d: %v vs %v", i, first, second)
		}
	}
}

// TestResumeValidation covers the error paths.
func TestResumeValidation(t *testing.T) {
	factory, cands := randomCoverage(9, 10, 20)
	if _, _, err := LazyGreedyMaxResume(factory(), nil, 3); err == nil {
		t.Error("nil snapshot accepted")
	}
	_, snap, err := LazyGreedyMaxCapture(factory(), cands, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LazyGreedyMaxResume(factory(), snap, -1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, _, err := LazyGreedyMaxCapture(factory(), cands, -1, nil); err == nil {
		t.Error("negative capture budget accepted")
	}
}
