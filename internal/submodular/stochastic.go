package submodular

import (
	"fmt"
	"math"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// StochasticGreedyMax implements lazier-than-lazy greedy (Mirzasoleiman et
// al., AAAI 2015 — one of the paper's authors): each of the budget rounds
// evaluates only a random subsample of (n/budget)·ln(1/ε) candidates and
// picks the best among them. It guarantees (1 − 1/e − ε) approximation in
// expectation with O(n·ln(1/ε)) total evaluations, independent of the
// budget — the fastest greedy variant in the toolbox for large candidate
// pools.
func StochasticGreedyMax(obj Objective, candidates []graph.NodeID, budget int, epsilon float64, seed int64) (Result, error) {
	if budget < 0 {
		return Result{}, fmt.Errorf("submodular: negative budget %d", budget)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return Result{}, fmt.Errorf("submodular: epsilon %v outside (0,1)", epsilon)
	}
	var res Result
	if budget == 0 || len(candidates) == 0 {
		return res, nil
	}
	n := len(candidates)
	sampleSize := int(math.Ceil(float64(n) / float64(budget) * math.Log(1/epsilon)))
	if sampleSize < 1 {
		sampleSize = 1
	}
	if sampleSize > n {
		sampleSize = n
	}

	rng := xrand.New(seed)
	remaining := append([]graph.NodeID(nil), candidates...)
	for len(res.Seeds) < budget && len(remaining) > 0 {
		k := sampleSize
		if k > len(remaining) {
			k = len(remaining)
		}
		sample := rng.Sample(len(remaining), k)
		bestIdx, bestGain := -1, 0.0
		for _, idx := range sample {
			g := obj.Gain(remaining[idx])
			res.Evaluations++
			if bestIdx == -1 || g > bestGain {
				bestIdx, bestGain = idx, g
			}
		}
		if bestGain <= 0 {
			// The sampled pool is exhausted; under submodularity the whole
			// pool is likely exhausted too, but verify before giving up so
			// the result is never worse than plain greedy's stop rule.
			allZero := true
			for _, v := range remaining {
				g := obj.Gain(v)
				res.Evaluations++
				if g > 0 {
					allZero = false
					bestGain = g
					// Place it at a known index for removal below.
					for i := range remaining {
						if remaining[i] == v {
							bestIdx = i
							break
						}
					}
					break
				}
			}
			if allZero {
				break
			}
		}
		v := remaining[bestIdx]
		obj.Add(v)
		res.Seeds = append(res.Seeds, v)
		res.Values = append(res.Values, obj.Value())
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return res, nil
}
