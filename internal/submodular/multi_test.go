package submodular

import (
	"testing"
)

// TestEvalsAtPrefixParity pins the property fairim.SolveBatch leans on:
// a lazy-greedy run at budget k spends exactly EvalsAt[k-1] evaluations
// of the budget-K run (k ≤ K), and picks the identical seed prefix — so
// one shared run can answer every smaller budget bit-identically.
func TestEvalsAtPrefixParity(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		factory, cands := randomCoverage(seed, 30, 50)
		const maxK = 9
		full, err := LazyGreedyMax(factory(), cands, maxK)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(full.EvalsAt) != len(full.Seeds) {
			t.Fatalf("seed %d: %d EvalsAt entries for %d seeds", seed, len(full.EvalsAt), len(full.Seeds))
		}
		// Evaluations may exceed the last EvalsAt entry: a saturated run
		// spends extra pops discovering no positive gain remains.
		if last := full.EvalsAt[len(full.EvalsAt)-1]; last > full.Evaluations {
			t.Fatalf("seed %d: final EvalsAt %d > Evaluations %d", seed, last, full.Evaluations)
		}
		for k := 1; k <= len(full.Seeds); k++ {
			sub, err := LazyGreedyMax(factory(), cands, k)
			if err != nil {
				t.Fatalf("seed %d k=%d: %v", seed, k, err)
			}
			if len(sub.Seeds) != k {
				t.Fatalf("seed %d k=%d: got %d seeds", seed, k, len(sub.Seeds))
			}
			for i := range sub.Seeds {
				if sub.Seeds[i] != full.Seeds[i] {
					t.Fatalf("seed %d k=%d: seeds %v diverge from shared prefix %v", seed, k, sub.Seeds, full.Seeds[:k])
				}
				if sub.Values[i] != full.Values[i] {
					t.Fatalf("seed %d k=%d: values diverge at pick %d", seed, k, i)
				}
			}
			if sub.Evaluations != full.EvalsAt[k-1] {
				t.Fatalf("seed %d k=%d: budget-k run spent %d evaluations, shared run's EvalsAt says %d",
					seed, k, sub.Evaluations, full.EvalsAt[k-1])
			}
		}
	}
}

// TestEvalsAtResume checks the counts stay aligned across a snapshot
// resume: replaying k picks then resuming to K matches the cold run's
// tail counts relative to the extension.
func TestEvalsAtResume(t *testing.T) {
	factory, cands := randomCoverage(3, 30, 50)
	full, _, err := LazyGreedyMaxCapture(factory(), cands, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	head, snap, err := LazyGreedyMaxCapture(factory(), cands, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured at k=4")
	}
	obj := factory()
	for _, v := range head.Seeds {
		obj.Add(v)
	}
	ext, _, err := LazyGreedyMaxResume(obj, snap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.EvalsAt) != len(ext.Seeds) {
		t.Fatalf("%d EvalsAt entries for %d extension seeds", len(ext.EvalsAt), len(ext.Seeds))
	}
	for i, v := range ext.Seeds {
		if v != full.Seeds[4+i] {
			t.Fatalf("extension pick %d = %d, cold run picked %d", i, v, full.Seeds[4+i])
		}
		// Cumulative evals of the resumed run offset by the head's total
		// must equal the cold run's cumulative count at the same pick.
		if head.Evaluations+ext.EvalsAt[i] != full.EvalsAt[4+i] {
			t.Fatalf("pick %d: head %d + ext %d != cold %d", 4+i, head.Evaluations, ext.EvalsAt[i], full.EvalsAt[4+i])
		}
	}
}
