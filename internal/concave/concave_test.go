package concave

import (
	"math"
	"testing"
	"testing/quick"
)

func builtins() []Function {
	return []Function{Identity{}, Log{}, Sqrt{}, Power{Alpha: 0.25}, Power{Alpha: 0.75},
		Scaled{Weight: 2, Inner: Log{}},
		Saturated{Cap: 100, Inner: Log{}},
		Saturated{Cap: 5, Inner: Identity{}}}
}

// positive maps an arbitrary float to a well-behaved non-negative value.
func positive(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(math.Abs(x), 1e6)
}

func TestNonNegativeAtZero(t *testing.T) {
	for _, h := range builtins() {
		if v := h.Eval(0); v < 0 || math.IsNaN(v) {
			t.Fatalf("%s(0) = %v", h.Name(), v)
		}
	}
}

func TestMonotone(t *testing.T) {
	for _, h := range builtins() {
		h := h
		check := func(xr, yr float64) bool {
			x, y := positive(xr), positive(yr)
			if x > y {
				x, y = y, x
			}
			return h.Eval(x) <= h.Eval(y)+1e-12
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s not monotone: %v", h.Name(), err)
		}
	}
}

func TestConcave(t *testing.T) {
	// Midpoint concavity: H((x+y)/2) >= (H(x)+H(y))/2.
	for _, h := range builtins() {
		h := h
		check := func(xr, yr float64) bool {
			x, y := positive(xr), positive(yr)
			mid := h.Eval((x + y) / 2)
			avg := (h.Eval(x) + h.Eval(y)) / 2
			return mid >= avg-1e-9
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s not concave: %v", h.Name(), err)
		}
	}
}

func TestDiminishingReturns(t *testing.T) {
	// The fairness mechanism (paper Fig. 2): the same absolute gain is worth
	// more to a group with lower current influence.
	for _, h := range []Function{Log{}, Sqrt{}, Power{Alpha: 0.5}} {
		low := h.Eval(10+5) - h.Eval(10)
		high := h.Eval(100+5) - h.Eval(100)
		if low <= high {
			t.Fatalf("%s: gain at 10 (%v) not greater than at 100 (%v)", h.Name(), low, high)
		}
	}
}

func TestIdentityHasNoPreference(t *testing.T) {
	h := Identity{}
	if d := (h.Eval(15) - h.Eval(10)) - (h.Eval(105) - h.Eval(100)); math.Abs(d) > 1e-12 {
		t.Fatal("identity should be curvature-free")
	}
}

func TestCurvatureOrdering(t *testing.T) {
	// log curves harder than sqrt: relative marginal value at large z decays
	// faster. Compare normalized gains.
	logGain := func(z float64) float64 { return Log{}.Eval(z+1) - Log{}.Eval(z) }
	sqrtGain := func(z float64) float64 { return Sqrt{}.Eval(z+1) - Sqrt{}.Eval(z) }
	// Ratio of gain at z=1 vs z=400.
	logRatio := logGain(1) / logGain(400)
	sqrtRatio := sqrtGain(1) / sqrtGain(400)
	if logRatio <= sqrtRatio {
		t.Fatalf("log ratio %v should exceed sqrt ratio %v", logRatio, sqrtRatio)
	}
}

func TestPowerValidate(t *testing.T) {
	if (Power{Alpha: 0.5}).Validate() != nil {
		t.Fatal("valid alpha rejected")
	}
	for _, a := range []float64{0, -1, 1.5} {
		if (Power{Alpha: a}).Validate() == nil {
			t.Fatalf("alpha %v accepted", a)
		}
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"id": "id", "identity": "id", "linear": "id",
		"log": "log", "sqrt": "sqrt", "pow0.25": "pow0.25",
	} {
		h, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if h.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q", name, h.Name())
		}
	}
	for _, name := range []string{"", "cube", "pow0", "pow2"} {
		if _, err := ByName(name); err == nil {
			t.Fatalf("ByName(%q) accepted", name)
		}
	}
}

func TestSaturated(t *testing.T) {
	s := Saturated{Cap: 10, Inner: Identity{}}
	if s.Eval(3) != 3 {
		t.Fatalf("below cap: %v", s.Eval(3))
	}
	if s.Eval(15) != 10 {
		t.Fatalf("above cap: %v", s.Eval(15))
	}
	if s.Eval(10) != 10 {
		t.Fatalf("at cap: %v", s.Eval(10))
	}
	if s.Name() != "sat10(id)" {
		t.Fatalf("name: %q", s.Name())
	}
	// No marginal value beyond the cap: the budgeted-parity mechanism.
	if gain := s.Eval(12) - s.Eval(11); gain != 0 {
		t.Fatalf("gain beyond cap %v", gain)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Weight: 3, Inner: Identity{}}
	if s.Eval(2) != 6 {
		t.Fatalf("Scaled.Eval = %v", s.Eval(2))
	}
	if s.Name() != "3*id" {
		t.Fatalf("Scaled.Name = %q", s.Name())
	}
}
