package concave_test

import (
	"fmt"

	"fairtcim/internal/concave"
)

// The diminishing-returns mechanism behind FairTCIM-Budget (paper Fig. 2):
// the same absolute influence gain is worth more to a group that currently
// has less.
func ExampleLog() {
	h := concave.Log{}
	starved := h.Eval(10+5) - h.Eval(10)
	saturated := h.Eval(100+5) - h.Eval(100)
	fmt.Printf("gain when starved:   %.3f\n", starved)
	fmt.Printf("gain when saturated: %.3f\n", saturated)
	// Output:
	// gain when starved:   0.375
	// gain when saturated: 0.048
}

func ExampleByName() {
	h, err := concave.ByName("pow0.25")
	if err != nil {
		panic(err)
	}
	fmt.Println(h.Name(), h.Eval(16))
	// Output: pow0.25 2
}

// Saturation removes all reward beyond a cap — the budgeted-parity knob.
func ExampleSaturated() {
	h := concave.Saturated{Cap: 10, Inner: concave.Identity{}}
	fmt.Println(h.Eval(7), h.Eval(25))
	// Output: 7 10
}
