// Package concave provides the monotone concave wrapper functions H used
// by the FairTCIM-Budget surrogate (problem P4): the objective
// Σᵢ H(fτ(S;Vᵢ)) rewards influencing under-represented groups because the
// marginal value of influence is larger where influence is currently
// smaller. The curvature of H is the paper's knob trading total influence
// against disparity (§5.1.2, Theorem 1).
package concave

import (
	"fmt"
	"math"
)

// Function is a non-negative, non-decreasing, concave function on [0, ∞).
// Implementations must satisfy Eval(0) >= 0, monotonicity, and concavity;
// the package's property tests check all three for every built-in.
type Function interface {
	// Eval returns H(z) for z >= 0.
	Eval(z float64) float64
	// Name is a short identifier used in reports ("log", "sqrt", ...).
	Name() string
}

// Identity is H(z) = z: zero curvature, reduces P4 to the unfair P1.
type Identity struct{}

// Eval returns z.
func (Identity) Eval(z float64) float64 { return z }

// Name returns "id".
func (Identity) Name() string { return "id" }

// Log is H(z) = log(1 + z). The paper writes log(z); the +1 shift keeps H
// finite and non-negative at z = 0 (an uninfluenced group) without
// affecting monotonicity, concavity, or the diminishing-returns behaviour
// that drives fairness. This is the highest-curvature built-in.
type Log struct{}

// Eval returns log(1 + z).
func (Log) Eval(z float64) float64 { return math.Log1p(z) }

// Name returns "log".
func (Log) Name() string { return "log" }

// Sqrt is H(z) = √z: lower curvature than Log, so less disparity reduction
// at less total-influence cost (Figure 4a).
type Sqrt struct{}

// Eval returns √z.
func (Sqrt) Eval(z float64) float64 { return math.Sqrt(z) }

// Name returns "sqrt".
func (Sqrt) Name() string { return "sqrt" }

// Power is H(z) = z^Alpha for Alpha in (0, 1]: a curvature dial between
// Identity (Alpha = 1) and ever-stronger fairness pressure as Alpha → 0.
// Used by the curvature-ablation experiment.
type Power struct{ Alpha float64 }

// Eval returns z^Alpha.
func (p Power) Eval(z float64) float64 { return math.Pow(z, p.Alpha) }

// Name returns "pow<Alpha>".
func (p Power) Name() string { return fmt.Sprintf("pow%.2f", p.Alpha) }

// Validate reports whether p.Alpha is in (0, 1].
func (p Power) Validate() error {
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("concave: Power alpha %v outside (0,1]", p.Alpha)
	}
	return nil
}

// Scaled multiplies another concave function by a positive weight; the
// paper mentions increasing the weights λ of under-represented groups as an
// alternative fairness lever (§6.2.1).
type Scaled struct {
	Weight float64
	Inner  Function
}

// Eval returns Weight * Inner(z).
func (s Scaled) Eval(z float64) float64 { return s.Weight * s.Inner.Eval(z) }

// Name returns "<weight>*<inner>".
func (s Scaled) Name() string { return fmt.Sprintf("%g*%s", s.Weight, s.Inner.Name()) }

// Saturated truncates another concave function at a cap: H(z) =
// Inner(min(z, Cap)). Truncation preserves monotonicity (non-strict) and
// concavity, so the P4 machinery and its guarantees still apply. Combined
// with per-group weights it yields a "budgeted parity" objective: the
// optimizer stops investing in a group once it reaches the cap, the
// budget-constrained analogue of FairTCIM-Cover's per-group quota.
type Saturated struct {
	Cap   float64
	Inner Function
}

// Eval returns Inner(min(z, Cap)).
func (s Saturated) Eval(z float64) float64 {
	if z > s.Cap {
		z = s.Cap
	}
	return s.Inner.Eval(z)
}

// Name returns "sat<Cap>(<inner>)".
func (s Saturated) Name() string { return fmt.Sprintf("sat%g(%s)", s.Cap, s.Inner.Name()) }

// ByName resolves the report identifiers used on the command line:
// "id", "log", "sqrt", or "pow<alpha>" (e.g. "pow0.25").
func ByName(name string) (Function, error) {
	switch name {
	case "id", "identity", "linear":
		return Identity{}, nil
	case "log":
		return Log{}, nil
	case "sqrt":
		return Sqrt{}, nil
	}
	var alpha float64
	if _, err := fmt.Sscanf(name, "pow%f", &alpha); err == nil {
		p := Power{Alpha: alpha}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	return nil, fmt.Errorf("concave: unknown function %q", name)
}
