package community

import (
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

// planted returns a k-block planted-partition graph with strong community
// structure plus the ground-truth labels.
func planted(t *testing.T, blocks []float64, n int, seed int64) (*graph.Graph, []int) {
	t.Helper()
	g, err := generate.SBM(generate.SBMConfig{
		N:          n,
		Fractions:  blocks,
		PHom:       0.25,
		PHet:       0.005,
		PActivate:  0.1,
		Seed:       seed,
		Assignment: generate.BlockAssignment,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		truth[v] = g.Group(graph.NodeID(v))
	}
	return g, truth
}

// agreement returns the fraction of same-community node pairs on which the
// two labelings agree (pairwise Rand-style score, invariant to label
// permutation).
func agreement(a, b []int) float64 {
	same, total := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(b); j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				same++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(same) / float64(total)
}

func TestLabelPropagationRecoversPlanted(t *testing.T) {
	g, truth := planted(t, []float64{0.5, 0.5}, 120, 1)
	labels := LabelPropagation(g, 2, 0)
	if score := agreement(labels, truth); score < 0.9 {
		t.Fatalf("label propagation agreement %v", score)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g, _ := planted(t, []float64{0.5, 0.5}, 80, 3)
	a := LabelPropagation(g, 7, 0)
	b := LabelPropagation(g, 7, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("label propagation not deterministic")
		}
	}
}

func TestLabelPropagationDenseLabels(t *testing.T) {
	g, _ := planted(t, []float64{0.5, 0.5}, 60, 5)
	labels := LabelPropagation(g, 1, 0)
	maxL := 0
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	seen := make([]bool, maxL+1)
	for _, l := range labels {
		seen[l] = true
	}
	for l, ok := range seen {
		if !ok {
			t.Fatalf("label %d unused (labels not dense)", l)
		}
	}
}

func TestSpectralBisectionRecoversTwoBlocks(t *testing.T) {
	g, truth := planted(t, []float64{0.5, 0.5}, 120, 8)
	labels, err := SpectralClusters(g, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if score := agreement(labels, truth); score < 0.85 {
		t.Fatalf("spectral agreement %v", score)
	}
}

func TestSpectralFiveBlocks(t *testing.T) {
	g, truth := planted(t, []float64{0.2, 0.2, 0.2, 0.2, 0.2}, 200, 10)
	labels, err := SpectralClusters(g, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	if k != 5 {
		t.Fatalf("got %d clusters", k)
	}
	if score := agreement(labels, truth); score < 0.7 {
		t.Fatalf("five-block agreement %v", score)
	}
}

func TestSpectralValidation(t *testing.T) {
	g, _ := planted(t, []float64{0.5, 0.5}, 20, 1)
	if _, err := SpectralClusters(g, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SpectralClusters(g, 100, 1); err == nil {
		t.Fatal("k>n accepted")
	}
	labels, err := SpectralClusters(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("k=1 should put everyone together")
		}
	}
}

func TestModularity(t *testing.T) {
	g, truth := planted(t, []float64{0.5, 0.5}, 100, 12)
	// Ground truth should beat the all-in-one labelling and random halves.
	allOne := make([]int, g.N())
	qTruth := Modularity(g, truth)
	qOne := Modularity(g, allOne)
	if qTruth <= qOne {
		t.Fatalf("modularity truth %v <= trivial %v", qTruth, qOne)
	}
	alternating := make([]int, g.N())
	for i := range alternating {
		alternating[i] = i % 2
	}
	if qAlt := Modularity(g, alternating); qTruth <= qAlt {
		t.Fatalf("modularity truth %v <= alternating %v", qTruth, qAlt)
	}
	if Modularity(graph.NewBuilder(3).MustBuild(), []int{0, 0, 0}) != 0 {
		t.Fatal("edgeless modularity should be 0")
	}
}

func TestSpectralBeatsRandomOnModularity(t *testing.T) {
	g, _ := planted(t, []float64{0.4, 0.3, 0.3}, 150, 13)
	labels, err := SpectralClusters(g, 3, 14)
	if err != nil {
		t.Fatal(err)
	}
	random := make([]int, g.N())
	for i := range random {
		random[i] = i % 3
	}
	if Modularity(g, labels) <= Modularity(g, random) {
		t.Fatal("spectral clustering no better than random on modularity")
	}
}

func TestDensify(t *testing.T) {
	out := densify([]int{7, 7, 3, 9, 3})
	want := []int{0, 0, 1, 2, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("densify = %v", out)
		}
	}
}
