// Package community derives "topological groups" from graph structure —
// the substrate for the Facebook-SNAP appendix experiment, where the paper
// obtains five groups by spectral clustering. Two detectors are provided:
// asynchronous label propagation (Raghavan et al. 2007) and recursive
// spectral bisection via power iteration on the normalized adjacency, plus
// the modularity quality measure.
//
// In the layering, community is a graph-preparation stage: it reads the
// internal/graph substrate and relabels groups (graph.WithGroups) before
// any estimation runs. Solvers, the experiment harness and the serving
// layer treat its output like any other grouped graph.
package community

import (
	"fmt"
	"math"
	"sort"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// LabelPropagation runs asynchronous label propagation: every node
// repeatedly adopts the most frequent label among its (undirected)
// neighbors until no label changes or maxIters sweeps elapse. Returns
// dense labels in [0, k). Deterministic for a fixed seed.
func LabelPropagation(g *graph.Graph, seed int64, maxIters int) []int {
	if maxIters <= 0 {
		maxIters = 50
	}
	n := g.N()
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v
	}
	rng := xrand.New(seed)
	order := rng.Perm(n)
	freq := map[int]int{}
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for _, v := range order {
			for k := range freq {
				delete(freq, k)
			}
			best, bestCount := labels[v], 0
			count := func(u graph.NodeID) {
				l := labels[u]
				freq[l]++
				// Ties break toward the smaller label for determinism.
				if freq[l] > bestCount || (freq[l] == bestCount && l < best) {
					best, bestCount = l, freq[l]
				}
			}
			for _, u := range g.OutNeighbors(graph.NodeID(v)) {
				count(u)
			}
			for _, u := range g.InNeighbors(graph.NodeID(v)) {
				count(u)
			}
			if bestCount > 0 && best != labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return densify(labels)
}

// SpectralClusters partitions the graph into k clusters by recursive
// spectral bisection: repeatedly split the largest remaining cluster along
// the sign of (an approximation of) the subgraph's Fiedler vector,
// computed by deflated power iteration on the normalized adjacency.
// Returns dense labels. Deterministic for a fixed seed.
func SpectralClusters(g *graph.Graph, k int, seed int64) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("community: k must be positive, got %d", k)
	}
	if k > g.N() {
		return nil, fmt.Errorf("community: k=%d exceeds %d nodes", k, g.N())
	}
	clusters := [][]graph.NodeID{g.Nodes()}
	rng := xrand.New(seed)
	for len(clusters) < k {
		// Split the largest splittable cluster.
		sort.SliceStable(clusters, func(a, b int) bool { return len(clusters[a]) > len(clusters[b]) })
		split := -1
		for i, c := range clusters {
			if len(c) >= 2 {
				split = i
				break
			}
		}
		if split < 0 {
			return nil, fmt.Errorf("community: cannot split further (all clusters singleton)")
		}
		a, b := bisect(g, clusters[split], rng)
		clusters[split] = a
		clusters = append(clusters, b)
	}
	labels := make([]int, g.N())
	for ci, c := range clusters {
		for _, v := range c {
			labels[v] = ci
		}
	}
	return densify(labels), nil
}

// bisect splits nodes into two non-empty halves along the second
// eigenvector of the normalized adjacency of the induced subgraph.
func bisect(g *graph.Graph, nodes []graph.NodeID, rng *xrand.RNG) ([]graph.NodeID, []graph.NodeID) {
	n := len(nodes)
	local := make(map[graph.NodeID]int, n)
	for i, v := range nodes {
		local[v] = i
	}
	adj := make([][]int32, n)
	deg := make([]float64, n)
	for i, v := range nodes {
		for _, to := range g.OutNeighbors(v) {
			if j, ok := local[to]; ok {
				adj[i] = append(adj[i], int32(j))
				deg[i]++
			}
		}
	}
	// d = D^{1/2}·1 normalized: the top eigenvector of M = D^{-1/2}AD^{-1/2}
	// on each connected component; deflating it exposes the Fiedler-like
	// second eigenvector whose sign structure separates clusters.
	d := make([]float64, n)
	for i := range d {
		if deg[i] > 0 {
			d[i] = math.Sqrt(deg[i])
		} else {
			d[i] = 1 // isolated node: harmless placeholder direction
		}
	}
	normalize(d)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	orthogonalize(x, d)
	normalize(x)
	y := make([]float64, n)
	const iters = 120
	for it := 0; it < iters; it++ {
		// y = (M + I) x; the +I shift maps eigenvalues into [0,2] so the
		// iteration converges to the largest remaining one.
		for i := range y {
			y[i] = x[i]
		}
		for i := range adj {
			if deg[i] == 0 {
				continue
			}
			for _, j := range adj[i] {
				if deg[j] > 0 {
					y[j] += x[i] / math.Sqrt(deg[i]*deg[int(j)])
				}
			}
		}
		orthogonalize(y, d)
		if normalize(y) == 0 {
			break // x was (numerically) in the deflated space's kernel
		}
		x, y = y, x
	}
	var a, b []graph.NodeID
	for i, v := range nodes {
		if x[i] >= 0 {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	// Degenerate split: fall back to a median cut so both halves exist.
	if len(a) == 0 || len(b) == 0 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(p, q int) bool { return x[idx[p]] < x[idx[q]] })
		a, b = a[:0], b[:0]
		for rank, i := range idx {
			if rank < n/2 {
				a = append(a, nodes[i])
			} else {
				b = append(b, nodes[i])
			}
		}
	}
	return a, b
}

func orthogonalize(x, d []float64) {
	dot := 0.0
	for i := range x {
		dot += x[i] * d[i]
	}
	for i := range x {
		x[i] -= dot * d[i]
	}
}

func normalize(x []float64) float64 {
	norm := 0.0
	for _, v := range x {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		return 0
	}
	for i := range x {
		x[i] /= norm
	}
	return norm
}

// Modularity computes Newman's modularity of a labelling, treating the
// graph's directed edge pairs as undirected edges.
func Modularity(g *graph.Graph, labels []int) float64 {
	m2 := float64(g.M()) // = 2m for undirected graphs stored as edge pairs
	if m2 == 0 {
		return 0
	}
	inside := map[int]float64{}
	degSum := map[int]float64{}
	for v := 0; v < g.N(); v++ {
		c := labels[v]
		degSum[c] += float64(g.OutDegree(graph.NodeID(v)))
		for _, to := range g.OutNeighbors(graph.NodeID(v)) {
			if labels[to] == c {
				inside[c]++
			}
		}
	}
	q := 0.0
	for c, in := range inside {
		q += in/m2 - (degSum[c]/m2)*(degSum[c]/m2)
	}
	// Communities with no internal edges still contribute the degree term.
	for c, ds := range degSum {
		if _, ok := inside[c]; !ok {
			q -= (ds / m2) * (ds / m2)
		}
	}
	return q
}

// densify remaps arbitrary labels to the dense range [0, k) preserving
// first-appearance order.
func densify(labels []int) []int {
	remap := map[int]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := remap[l]
		if !ok {
			id = len(remap)
			remap[l] = id
		}
		out[i] = id
	}
	return out
}
