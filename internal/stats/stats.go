// Package stats provides the small numeric and reporting helpers the
// experiment harness uses: summary statistics with confidence intervals,
// and fixed-width/CSV table rendering of experiment series.
//
// In the layering, stats is a leaf utility: it depends on nothing in the
// module and is consumed only by internal/exp and the CLIs for output
// formatting. It never touches graphs or estimators.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func CI95(xs []float64) float64 { return 1.96 * StdErr(xs) }

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	Median       float64
	CI95         float64 // half-width of the 95% CI for the mean
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), CI95: CI95(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation; xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table renders labelled rows of float columns as a fixed-width text table
// or CSV. Build one with NewTable, add rows, then write.
type Table struct {
	title   string
	columns []string
	rows    []row
}

type row struct {
	label string
	vals  []float64
}

// NewTable creates a table whose first column is a string label followed
// by the named float columns.
func NewTable(title, labelHeader string, columns ...string) *Table {
	return &Table{title: title, columns: append([]string{labelHeader}, columns...)}
}

// AddRow appends a row; len(vals) must match the number of float columns.
func (t *Table) AddRow(label string, vals ...float64) {
	if len(vals) != len(t.columns)-1 {
		panic(fmt.Sprintf("stats: row %q has %d values for %d columns", label, len(vals), len(t.columns)-1))
	}
	t.rows = append(t.rows, row{label: label, vals: vals})
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.rows))
	for ri, r := range t.rows {
		cells[ri] = make([]string, len(t.columns))
		cells[ri][0] = r.label
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
		for ci, v := range r.vals {
			s := formatFloat(v)
			cells[ri][ci+1] = s
			if len(s) > widths[ci+1] {
				widths[ci+1] = len(s)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "## %s\n", t.title)
	}
	for i, c := range t.columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range cells {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.columns, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(csvEscape(r.label))
		for _, v := range r.vals {
			b.WriteByte(',')
			b.WriteString(formatFloat(v))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
