package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
}

func TestVarianceStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 32.0/7.0) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
}

func TestStdErrAndCI(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	if StdErr(xs) != 0 || CI95(xs) != 0 {
		t.Fatal("constant sample should have zero stderr")
	}
	if StdErr(nil) != 0 {
		t.Fatal("StdErr(nil)")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Fatal("extreme quantiles wrong")
	}
	if !almost(Quantile(xs, 0.5), 2) {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile([]float64{1, 2}, 0.5), 1.5) {
		t.Fatal("interpolated median wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil)")
	}
	// Quantile must not mutate its input.
	if xs[0] != 3 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestQuantileMonotone(t *testing.T) {
	check := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := math.Abs(math.Mod(qa, 1))
		b := math.Abs(math.Mod(qb, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Min, 1) || !almost(s.Max, 4) || !almost(s.Median, 2.5) {
		t.Fatalf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("Summarize(nil)")
	}
}

func TestTableText(t *testing.T) {
	tab := NewTable("demo", "algo", "total", "disparity")
	tab.AddRow("P1", 0.3, 0.28)
	tab.AddRow("P4-log", 0.25, 0.04)
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## demo", "algo", "total", "disparity", "P4-log", "0.2800"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text table missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatal("NumRows")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.AddRow("a,b", 1)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x,y\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, `"a,b",1`) {
		t.Fatalf("csv escaping: %q", out)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	NewTable("", "x", "y").AddRow("a", 1, 2, 3)
}

func TestFormatFloatIntegers(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.AddRow("r", 42)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "r,42\n") {
		t.Fatalf("integers should render bare: %q", buf.String())
	}
}
