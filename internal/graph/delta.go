package graph

import (
	"fmt"
	"sort"
)

// Dynamic-graph deltas. A Graph is immutable; evolving a network means
// applying a batch of edge/weight/group changes and getting a *new* Graph
// back while the old snapshot stays fully readable — in-flight traversals
// and samplers holding the old pointer are never perturbed. The returned
// DeltaResult names exactly what changed, in the form downstream sketch
// maintenance needs: the heads of changed edges drive incremental RR-set
// refresh (a reverse BFS only examines an edge u→w after visiting w), and
// the full arcs drive live-edge world invalidation accounting.

// Arc identifies one directed edge by its endpoints.
type Arc struct {
	From, To NodeID
}

// EdgeDelta is one edge change: an upsert of u→v to probability P in
// (0,1], or a removal when Remove is set (P must then be zero).
type EdgeDelta struct {
	From   NodeID  `json:"from"`
	To     NodeID  `json:"to"`
	P      float64 `json:"p,omitempty"`
	Remove bool    `json:"remove,omitempty"`
}

// GroupDelta moves one node to a new group label.
type GroupDelta struct {
	Node  NodeID `json:"node"`
	Group int    `json:"group"`
}

// Delta is one batch of graph changes, applied atomically: either the
// whole batch validates and produces a new snapshot, or the graph is
// unchanged.
type Delta struct {
	Edges  []EdgeDelta  `json:"edges,omitempty"`
	Groups []GroupDelta `json:"groups,omitempty"`
}

// Empty reports whether the delta contains no changes at all.
func (d Delta) Empty() bool { return len(d.Edges) == 0 && len(d.Groups) == 0 }

// DeltaResult reports what ApplyDelta actually changed. An upsert that
// restates an edge's existing probability is a no-op and is counted
// nowhere — it neither dirties RR sets nor invalidates worlds.
type DeltaResult struct {
	EdgesAdded    int
	EdgesUpdated  int
	EdgesRemoved  int
	GroupsChanged int

	// TouchedArcs are the directed edges whose presence or probability
	// changed, deduplicated.
	TouchedArcs []Arc
	// TouchedHeads are the distinct head nodes (To endpoints) of
	// TouchedArcs, sorted ascending — the dirty frontier for reverse-
	// reachable sketch maintenance.
	TouchedHeads []NodeID
}

// ApplyDelta validates and applies a batch of changes, returning the new
// immutable snapshot alongside a DeltaResult. g itself is never modified.
// Rules: endpoints must be existing nodes (deltas do not add nodes),
// upsert probabilities must lie in (0,1], removals must name existing
// edges, group labels must stay dense with every group non-empty, and a
// batch may not name the same edge twice.
func (g *Graph) ApplyDelta(d Delta) (*Graph, *DeltaResult, error) {
	if d.Empty() {
		return nil, nil, fmt.Errorf("graph: empty delta")
	}
	n := g.N()
	changes := make(map[Arc]EdgeDelta, len(d.Edges))
	for _, e := range d.Edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, nil, fmt.Errorf("graph: delta edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		if e.Remove {
			if e.P != 0 {
				return nil, nil, fmt.Errorf("graph: delta removes edge %d->%d but also sets p=%v", e.From, e.To, e.P)
			}
		} else if e.P <= 0 || e.P > 1 {
			return nil, nil, fmt.Errorf("graph: delta edge %d->%d probability %v outside (0,1]", e.From, e.To, e.P)
		}
		a := Arc{From: e.From, To: e.To}
		if _, dup := changes[a]; dup {
			return nil, nil, fmt.Errorf("graph: delta names edge %d->%d twice", e.From, e.To)
		}
		changes[a] = e
	}

	res := &DeltaResult{}

	// Stream the old forward CSR, dropping removals and rewriting updated
	// probabilities in place; additions are appended afterwards. Every
	// consumed change is deleted from the map so leftovers diagnose
	// removals of edges that never existed.
	from := make([]NodeID, 0, g.M()+len(changes))
	to := make([]NodeID, 0, g.M()+len(changes))
	probs := make([]float64, 0, g.M()+len(changes))
	offsets, targets, oldProbs := g.OutCSR()
	for u := 0; u < n; u++ {
		for i := offsets[u]; i < offsets[u+1]; i++ {
			a := Arc{From: NodeID(u), To: targets[i]}
			ch, hit := changes[a]
			if !hit {
				from = append(from, a.From)
				to = append(to, a.To)
				probs = append(probs, oldProbs[i])
				continue
			}
			delete(changes, a)
			if ch.Remove {
				res.EdgesRemoved++
				res.TouchedArcs = append(res.TouchedArcs, a)
				continue
			}
			from = append(from, a.From)
			to = append(to, a.To)
			probs = append(probs, ch.P)
			if ch.P != oldProbs[i] {
				res.EdgesUpdated++
				res.TouchedArcs = append(res.TouchedArcs, a)
			}
		}
	}
	for a, ch := range changes {
		if ch.Remove {
			return nil, nil, fmt.Errorf("graph: delta removes nonexistent edge %d->%d", a.From, a.To)
		}
		from = append(from, a.From)
		to = append(to, a.To)
		probs = append(probs, ch.P)
		res.EdgesAdded++
		res.TouchedArcs = append(res.TouchedArcs, a)
	}

	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = g.Group(NodeID(v))
	}
	for _, gd := range d.Groups {
		if gd.Node < 0 || int(gd.Node) >= n {
			return nil, nil, fmt.Errorf("graph: delta group change for node %d out of range [0,%d)", gd.Node, n)
		}
		if gd.Group < 0 {
			return nil, nil, fmt.Errorf("graph: delta assigns node %d negative group %d", gd.Node, gd.Group)
		}
		if labels[gd.Node] != gd.Group {
			labels[gd.Node] = gd.Group
			res.GroupsChanged++
		}
	}

	b := NewBuilder(n)
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("graph: applying delta: %v", r)
			}
		}()
		b.SetGroups(labels)
		for i := range from {
			b.AddEdge(from[i], to[i], probs[i])
		}
		return nil
	}(); err != nil {
		return nil, nil, err
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, err
	}

	sort.Slice(res.TouchedArcs, func(i, j int) bool {
		if res.TouchedArcs[i].From != res.TouchedArcs[j].From {
			return res.TouchedArcs[i].From < res.TouchedArcs[j].From
		}
		return res.TouchedArcs[i].To < res.TouchedArcs[j].To
	})
	res.TouchedHeads = headsOf(res.TouchedArcs)
	return out, res, nil
}

// headsOf extracts the distinct To endpoints, sorted ascending.
func headsOf(arcs []Arc) []NodeID {
	if len(arcs) == 0 {
		return nil
	}
	heads := make([]NodeID, 0, len(arcs))
	for _, a := range arcs {
		heads = append(heads, a.To)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	out := heads[:1]
	for _, h := range heads[1:] {
		if h != out[len(out)-1] {
			out = append(out, h)
		}
	}
	return out
}
