package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fairtcim/internal/xrand"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddUndirected(0, 1, 0.5)
	b.AddUndirected(1, 2, 0.25)
	b.SetGroup(2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := buildTriangle(t)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 4 {
		t.Fatalf("M = %d", g.M())
	}
	if g.OutDegree(1) != 2 {
		t.Fatalf("OutDegree(1) = %d", g.OutDegree(1))
	}
	if g.InDegree(1) != 2 {
		t.Fatalf("InDegree(1) = %d", g.InDegree(1))
	}
	if g.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	if got := g.GroupSizes(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("GroupSizes = %v", got)
	}
}

func TestOutEdgesSorted(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 3, 0.1)
	b.AddEdge(0, 1, 0.2)
	b.AddEdge(0, 2, 0.3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	targets, probs := g.OutEdges(0)
	if len(targets) != 3 || len(probs) != 3 {
		t.Fatalf("OutEdges(0) = %v, %v", targets, probs)
	}
	for i := 1; i < len(targets); i++ {
		if targets[i] <= targets[i-1] {
			t.Fatalf("out edges not sorted: %v", targets)
		}
	}
	// Probabilities must follow their targets through the sort.
	want := map[NodeID]float64{1: 0.2, 2: 0.3, 3: 0.1}
	for i, to := range targets {
		if probs[i] != want[to] {
			t.Fatalf("prob for edge 0->%d = %v, want %v", to, probs[i], want[to])
		}
	}
}

func TestReverseAdjacencyMirrors(t *testing.T) {
	check := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 20
		b := NewBuilder(n)
		type key struct{ u, v NodeID }
		seen := map[key]bool{}
		for i := 0; i < 50; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v || seen[key{u, v}] {
				continue
			}
			seen[key{u, v}] = true
			b.AddEdge(u, v, rng.Float64())
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		// Every forward edge appears exactly once in the reverse view.
		fwd := 0
		for v := 0; v < n; v++ {
			fwd += g.OutDegree(NodeID(v))
			sources, inProbs := g.InEdges(NodeID(v))
			for i, src := range sources {
				found := false
				targets, outProbs := g.OutEdges(src)
				for j, to := range targets {
					if to == NodeID(v) && outProbs[j] == inProbs[i] {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		rev := 0
		for v := 0; v < n; v++ {
			rev += g.InDegree(NodeID(v))
		}
		return fwd == rev && fwd == g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 1, 0.7)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge not rejected")
	}
}

func TestSparseGroupLabelsRejected(t *testing.T) {
	b := NewBuilder(3)
	b.SetGroup(0, 0)
	b.SetGroup(1, 2) // group 1 empty
	if _, err := b.Build(); err == nil {
		t.Fatal("sparse group labels not rejected")
	}
}

func TestAddNodeGrowsGraph(t *testing.T) {
	b := NewBuilder(1)
	id := b.AddNode()
	if id != 1 {
		t.Fatalf("AddNode id = %d", id)
	}
	b.AddEdge(0, id, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5, 0.5)
}

func TestBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad probability did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 1, 1.5)
}

func TestGroupMembers(t *testing.T) {
	g := buildTriangle(t)
	if got := g.GroupMembers(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("GroupMembers(1) = %v", got)
	}
	if got := g.GroupMembers(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("GroupMembers(0) = %v", got)
	}
}

func TestWithGroups(t *testing.T) {
	g := buildTriangle(t)
	g2, err := g.WithGroups([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", g2.NumGroups())
	}
	// Original untouched.
	if g.NumGroups() != 2 {
		t.Fatalf("original mutated: %d groups", g.NumGroups())
	}
	if _, err := g.WithGroups([]int{0}); err == nil {
		t.Fatal("wrong-length labels accepted")
	}
}

func TestComputeStats(t *testing.T) {
	g := buildTriangle(t)
	s := g.ComputeStats()
	if s.N != 3 || s.M != 4 {
		t.Fatalf("stats %+v", s)
	}
	// within group 0: 0<->1 (2 directed); across: 1<->2 (2 directed).
	if s.WithinEdges[0] != 2 || s.WithinEdges[1] != 0 || s.AcrossEdges != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxOutDegree != 2 {
		t.Fatalf("MaxOutDegree = %d", s.MaxOutDegree)
	}
}

func TestRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.NumGroups() != g.NumGroups() {
		t.Fatalf("round trip mismatch: N=%d M=%d k=%d", g2.N(), g2.M(), g2.NumGroups())
	}
	for v := 0; v < g.N(); v++ {
		if g.Group(NodeID(v)) != g2.Group(NodeID(v)) {
			t.Fatalf("group mismatch at %d", v)
		}
		at, ap := g.OutEdges(NodeID(v))
		bt, bp := g2.OutEdges(NodeID(v))
		if len(at) != len(bt) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range at {
			if at[i] != bt[i] || ap[i] != bp[i] {
				t.Fatalf("edge mismatch at %d: (%d,%v) vs (%d,%v)", v, at[i], ap[i], bt[i], bp[i])
			}
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	check := func(seed int64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(30) + 1
		b := NewBuilder(n)
		type key struct{ u, v NodeID }
		seen := map[key]bool{}
		for i := 0; i < 2*n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if seen[key{u, v}] {
				continue
			}
			seen[key{u, v}] = true
			b.AddEdge(u, v, float64(rng.Intn(100))/100)
		}
		// Dense random groups.
		k := rng.Intn(3) + 1
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % k
		}
		b.SetGroups(labels)
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if Write(&buf, g) != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil {
			return false
		}
		s1, s2 := g.ComputeStats(), g2.ComputeStats()
		if s1.N != s2.N || s1.M != s2.M || s1.AcrossEdges != s2.AcrossEdges {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                                  // no header
		"wrong header\nn 3\n",               // bad header
		"fairtcim-graph v1\n",               // missing node count
		"fairtcim-graph v1\nn -1\n",         // negative nodes
		"fairtcim-graph v1\nn 2\ne 0 5 0.5", // edge out of range
		"fairtcim-graph v1\nn 2\ne 0 1 2.0", // probability out of range
		"fairtcim-graph v1\nn 2\nx 0 1",     // unknown record
		"fairtcim-graph v1\nn 2\ng 0",       // short group line
		"fairtcim-graph v1\nn 2\ng 0 9",     // sparse groups
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Fatalf("Read accepted invalid input %q", src)
		}
	}
}

func TestReadIgnoresComments(t *testing.T) {
	src := "# a comment\nfairtcim-graph v1\n\nn 2\n# another\ne 0 1 0.5\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestBFSDistances(t *testing.T) {
	// Path 0->1->2->3 plus isolated 4.
	b := NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	d := g.BFSDistances([]NodeID{0})
	want := []int32{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v, want %v", d, want)
		}
	}
	// Multi-seed takes the minimum.
	d = g.BFSDistances([]NodeID{0, 2})
	want = []int32{0, 1, 0, 1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v, want %v", d, want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, 1) // directed only: still same weak component
	b.AddUndirected(2, 3, 1)
	// 4 and 5 isolated
	g := b.MustBuild()
	labels, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("count = %d, labels = %v", count, labels)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[0] == labels[2] || labels[4] == labels[5] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	b.AddUndirected(3, 4, 1)
	g := b.MustBuild()
	lc := g.LargestComponent()
	if len(lc) != 3 || lc[0] != 0 || lc[1] != 1 || lc[2] != 2 {
		t.Fatalf("LargestComponent = %v", lc)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph not empty")
	}
	if _, count := g.ConnectedComponents(); count != 0 {
		t.Fatal("empty graph has components")
	}
	if g.LargestComponent() != nil {
		t.Fatal("empty graph has a largest component")
	}
}
