package graph

// Structural metrics used by the experiment harness and by analyses of the
// disparity factors the paper identifies in §4.2: group sizes, homophily
// (within- vs across-group connectivity), and centrality concentration.

// DegreeHistogram returns counts[d] = number of nodes with out-degree d.
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.OutDegree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := 0; v < g.N(); v++ {
		counts[g.OutDegree(NodeID(v))]++
	}
	return counts
}

// ClusteringCoefficient returns the global clustering coefficient
// (transitivity): 3 × triangles / connected triples, treating the graph
// as undirected. Returns 0 for graphs without triples.
func (g *Graph) ClusteringCoefficient() float64 {
	// Count each triangle once via ordered neighbor intersection on the
	// undirected projection (out-neighbors; undirected social graphs store
	// both arcs so Out is the full neighborhood).
	triangles := 0
	triples := 0
	for v := 0; v < g.N(); v++ {
		nbrs := g.OutNeighbors(NodeID(v))
		d := len(nbrs)
		triples += d * (d - 1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	// Each triangle is counted once per corner = 3 times; transitivity is
	// 3·triangles/triples with triangles counted once, so counted-per-corner
	// cancels the factor.
	return float64(triangles) / float64(triples)
}

// HasEdge reports whether the directed edge u→v exists (binary search on
// the sorted adjacency).
func (g *Graph) HasEdge(u, v NodeID) bool {
	targets := g.OutNeighbors(u)
	lo, hi := 0, len(targets)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case targets[mid] < v:
			lo = mid + 1
		case targets[mid] > v:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// MixingMatrix returns m[i][j] = number of directed edges from group i to
// group j — the group-level connectivity structure behind the paper's
// §4.2 disparity factors.
func (g *Graph) MixingMatrix() [][]int {
	k := g.NumGroups()
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for v := 0; v < g.N(); v++ {
		gv := g.Group(NodeID(v))
		for _, to := range g.OutNeighbors(NodeID(v)) {
			m[gv][g.Group(to)]++
		}
	}
	return m
}

// HomophilyIndex returns the Coleman-style homophily of the labelling:
// (observed within-group edge fraction − expected under random mixing) /
// (1 − expected). 1 means perfectly homophilous, 0 random mixing,
// negative heterophilous. Returns 0 on edgeless graphs.
func (g *Graph) HomophilyIndex() float64 {
	if g.M() == 0 {
		return 0
	}
	within := 0
	for v := 0; v < g.N(); v++ {
		gv := g.groups[v]
		for _, to := range g.OutNeighbors(NodeID(v)) {
			if g.groups[to] == gv {
				within++
			}
		}
	}
	observed := float64(within) / float64(g.M())
	expected := 0.0
	n := float64(g.N())
	for _, s := range g.groupSizes {
		frac := float64(s) / n
		expected += frac * frac
	}
	if expected >= 1 {
		return 0
	}
	return (observed - expected) / (1 - expected)
}

// InducedSubgraph returns the subgraph induced by nodes (which must be
// distinct), with nodes renumbered 0..len(nodes)-1 in the given order,
// plus the old→new id mapping. Group labels are re-densified.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, map[NodeID]NodeID, error) {
	mapping := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		if _, dup := mapping[v]; dup {
			return nil, nil, errDuplicateNode(v)
		}
		mapping[v] = NodeID(i)
	}
	b := NewBuilder(len(nodes))
	labels := make([]int, len(nodes))
	for i, v := range nodes {
		labels[i] = g.Group(v)
	}
	// Densify labels (the subset may miss some groups).
	remap := map[int]int{}
	for i, l := range labels {
		id, ok := remap[l]
		if !ok {
			id = len(remap)
			remap[l] = id
		}
		labels[i] = id
	}
	b.SetGroups(labels)
	for _, v := range nodes {
		nv := mapping[v]
		targets, probs := g.OutEdges(v)
		for i, to := range targets {
			if nu, ok := mapping[to]; ok {
				b.AddEdge(nv, nu, probs[i])
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, mapping, nil
}

type errDuplicateNode NodeID

func (e errDuplicateNode) Error() string {
	return "graph: duplicate node in induced subgraph selection"
}
