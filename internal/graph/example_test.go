package graph_test

import (
	"fmt"

	"fairtcim/internal/graph"
)

// Build a tiny two-group friendship network and inspect its structure.
func ExampleBuilder() {
	b := graph.NewBuilder(4)
	b.SetGroups([]int{0, 0, 1, 1})
	b.AddUndirected(0, 1, 0.5) // a within-group friendship
	b.AddUndirected(1, 2, 0.1) // a bridge between the groups
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", g.N())
	fmt.Println("directed edges:", g.M())
	fmt.Println("groups:", g.GroupSizes())
	fmt.Println("degree of the bridge node:", g.OutDegree(1))
	// Output:
	// nodes: 4
	// directed edges: 4
	// groups: [2 2]
	// degree of the bridge node: 2
}

func ExampleGraph_MixingMatrix() {
	b := graph.NewBuilder(4)
	b.SetGroups([]int{0, 0, 1, 1})
	b.AddUndirected(0, 1, 0.5)
	b.AddUndirected(1, 2, 0.1)
	g := b.MustBuild()
	fmt.Println(g.MixingMatrix())
	// Output: [[2 1] [1 0]]
}
