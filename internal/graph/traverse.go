package graph

// BFSDistances returns the unweighted hop distance from the seed set to
// every node (ignoring edge probabilities), or -1 for unreachable nodes.
// Used by structural analysis and tests.
func (g *Graph) BFSDistances(seeds []NodeID) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, to := range g.OutNeighbors(v) {
			if dist[to] == -1 {
				dist[to] = dist[v] + 1
				queue = append(queue, to)
			}
		}
	}
	return dist
}

// ConnectedComponents treats the graph as undirected (union of forward and
// reverse edges) and returns a component label per node plus the number of
// components. Labels are dense in [0, count).
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	for start := 0; start < g.N(); start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], NodeID(start))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, to := range g.OutNeighbors(v) {
				if labels[to] == -1 {
					labels[to] = count
					queue = append(queue, to)
				}
			}
			for _, to := range g.InNeighbors(v) {
				if labels[to] == -1 {
					labels[to] = count
					queue = append(queue, to)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponent returns the nodes of the largest weakly connected
// component, ascending.
func (g *Graph) LargestComponent() []NodeID {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	nodes := make([]NodeID, 0, sizes[best])
	for v, l := range labels {
		if l == best {
			nodes = append(nodes, NodeID(v))
		}
	}
	return nodes
}
