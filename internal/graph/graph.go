// Package graph provides the social-network substrate for fairtcim: a
// directed graph with per-edge activation probabilities and per-node group
// labels (the "socially salient groups" of the paper).
//
// Graphs are immutable after construction; build them with a Builder. An
// undirected social tie is represented as two directed edges, matching the
// paper's convention (§3.1).
//
// # Storage layout
//
// Adjacency is stored in flat compressed-sparse-row (CSR) form: one
// offsets array plus parallel targets/probs arrays per direction, so a
// whole traversal touches three contiguous allocations instead of one
// slice header and one heap block per node. Group membership is indexed
// the same way (group→members CSR), making GroupMembers an O(1) subslice
// instead of an O(N) scan. Accessors return subslices of the shared
// arrays; callers must not modify them.
package graph

import (
	"fmt"
	"math"
	"sort"

	"fairtcim/internal/xrand"
)

// NodeID identifies a node; nodes are always the dense range [0, N).
type NodeID = int32

// Graph is an immutable directed graph with activation probabilities and
// group labels, stored in flat CSR arrays. The zero value is an empty
// graph; construct with a Builder.
type Graph struct {
	// Forward adjacency: out-neighbors of v are
	// outTargets[outOffsets[v]:outOffsets[v+1]], sorted ascending, with
	// matching activation probabilities in outProbs.
	outOffsets []int32
	outTargets []NodeID
	outProbs   []float64

	// Reverse adjacency: inTargets holds the *source* of each incoming
	// edge, same layout as the forward arrays.
	inOffsets []int32
	inTargets []NodeID
	inProbs   []float64

	// Precomputed xrand.Threshold53 of each edge probability, aligned with
	// outProbs/inProbs — lets live-edge samplers run integer-only
	// Bernoulli trials.
	outThresh []uint64
	inThresh  []uint64

	groups     []int32 // group label per node, in [0, numGroups)
	numGroups  int
	groupSizes []int

	// Group→members CSR index: members of group i are
	// groupMembers[groupOffsets[i]:groupOffsets[i+1]], ascending.
	groupOffsets []int32
	groupMembers []NodeID

	sumProbs float64 // Σ edge probabilities = expected surviving IC edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.groups) }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outTargets) }

// OutEdges returns the out-neighbors of v and their activation
// probabilities as parallel subslices of the CSR arrays, sorted by target.
// The slices are shared; callers must not modify them.
func (g *Graph) OutEdges(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.outOffsets[v], g.outOffsets[v+1]
	return g.outTargets[lo:hi], g.outProbs[lo:hi]
}

// InEdges returns the sources of v's incoming edges and their activation
// probabilities as parallel subslices, sorted by source. The slices are
// shared; callers must not modify them.
func (g *Graph) InEdges(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.inOffsets[v], g.inOffsets[v+1]
	return g.inTargets[lo:hi], g.inProbs[lo:hi]
}

// OutNeighbors returns the out-neighbors of v, ascending. The slice is
// shared; callers must not modify it.
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	return g.outTargets[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InNeighbors returns the sources of v's incoming edges, ascending. The
// slice is shared; callers must not modify it.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	return g.inTargets[g.inOffsets[v]:g.inOffsets[v+1]]
}

// OutCSR exposes the raw forward CSR arrays (offsets, targets, probs) for
// hot loops that stream the whole adjacency without per-node calls. All
// three are shared; callers must not modify them.
func (g *Graph) OutCSR() ([]int32, []NodeID, []float64) {
	return g.outOffsets, g.outTargets, g.outProbs
}

// InCSR exposes the raw reverse CSR arrays; see OutCSR.
func (g *Graph) InCSR() ([]int32, []NodeID, []float64) {
	return g.inOffsets, g.inTargets, g.inProbs
}

// OutThresholds returns the per-edge xrand.Threshold53 values aligned with
// OutCSR's targets/probs, for integer-only Bernoulli trials in sampling
// hot loops. Shared; callers must not modify.
func (g *Graph) OutThresholds() []uint64 { return g.outThresh }

// InThresholds returns the reverse-edge thresholds; see OutThresholds.
func (g *Graph) InThresholds() []uint64 { return g.inThresh }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.outOffsets[v+1] - g.outOffsets[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int { return int(g.inOffsets[v+1] - g.inOffsets[v]) }

// ExpectedLiveEdges returns Σ_e p_e, the expected number of edges that
// survive one independent-cascade live-edge sample — the right capacity
// hint for world buffers.
func (g *Graph) ExpectedLiveEdges() float64 { return g.sumProbs }

// Group returns the group label of v.
func (g *Graph) Group(v NodeID) int { return int(g.groups[v]) }

// NumGroups returns the number of groups k. Every graph has at least one
// group; ungrouped graphs put all nodes in group 0.
func (g *Graph) NumGroups() int { return g.numGroups }

// GroupSizes returns |V_i| for every group i. The slice is shared; callers
// must not modify it.
func (g *Graph) GroupSizes() []int { return g.groupSizes }

// GroupSize returns |V_i|.
func (g *Graph) GroupSize(i int) int { return g.groupSizes[i] }

// GroupMembers returns the nodes in group i, ascending — an O(1) subslice
// of the precomputed group index. The slice is shared; callers must not
// modify it.
func (g *Graph) GroupMembers(i int) []NodeID {
	return g.groupMembers[g.groupOffsets[i]:g.groupOffsets[i+1]]
}

// Nodes returns all node ids, ascending.
func (g *Graph) Nodes() []NodeID {
	nodes := make([]NodeID, g.N())
	for v := range nodes {
		nodes[v] = NodeID(v)
	}
	return nodes
}

// WithGroups returns a copy of g with new group labels. labels must have
// length N and use the dense range [0, k). The adjacency is shared with g.
func (g *Graph) WithGroups(labels []int) (*Graph, error) {
	if len(labels) != g.N() {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(labels), g.N())
	}
	groups, sizes, k, err := normalizeGroups(labels)
	if err != nil {
		return nil, err
	}
	out := &Graph{
		outOffsets: g.outOffsets,
		outTargets: g.outTargets,
		outProbs:   g.outProbs,
		inOffsets:  g.inOffsets,
		inTargets:  g.inTargets,
		inProbs:    g.inProbs,
		outThresh:  g.outThresh,
		inThresh:   g.inThresh,
		groups:     groups,
		numGroups:  k,
		groupSizes: sizes,
		sumProbs:   g.sumProbs,
	}
	out.buildGroupIndex()
	return out, nil
}

// Stats summarises the structure of a grouped graph; used by generators'
// tests and by the experiment harness to report dataset shape.
type Stats struct {
	N, M         int     // nodes, directed edges
	NumGroups    int     //
	GroupSizes   []int   // |V_i|
	WithinEdges  []int   // directed edges with both endpoints in group i
	AcrossEdges  int     // directed edges with endpoints in different groups
	MaxOutDegree int     //
	AvgOutDegree float64 //
}

// ComputeStats derives Stats for g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		N:          g.N(),
		M:          g.M(),
		NumGroups:  g.numGroups,
		GroupSizes: append([]int(nil), g.groupSizes...),
	}
	s.WithinEdges = make([]int, g.numGroups)
	for v := 0; v < g.N(); v++ {
		if d := g.OutDegree(NodeID(v)); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		gv := g.groups[v]
		for _, to := range g.OutNeighbors(NodeID(v)) {
			if g.groups[to] == gv {
				s.WithinEdges[gv]++
			} else {
				s.AcrossEdges++
			}
		}
	}
	if g.N() > 0 {
		s.AvgOutDegree = float64(g.M()) / float64(g.N())
	}
	return s
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// It is not safe for concurrent use.
type Builder struct {
	n      int
	groups []int
	from   []NodeID
	to     []NodeID
	p      []float64
}

// NewBuilder returns a builder for a graph with n nodes, all initially in
// group 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, groups: make([]int, n)}
}

// N returns the current number of nodes.
func (b *Builder) N() int { return b.n }

// AddNode appends a new node in group 0 and returns its id.
func (b *Builder) AddNode() NodeID {
	b.groups = append(b.groups, 0)
	b.n++
	return NodeID(b.n - 1)
}

// SetGroup assigns node v to group grp.
func (b *Builder) SetGroup(v NodeID, grp int) {
	if grp < 0 {
		panic("graph: negative group")
	}
	b.groups[v] = grp
}

// SetGroups assigns all labels at once; len(labels) must equal N.
func (b *Builder) SetGroups(labels []int) {
	if len(labels) != b.n {
		panic(fmt.Sprintf("graph: %d labels for %d nodes", len(labels), b.n))
	}
	copy(b.groups, labels)
}

// AddEdge adds the directed edge u->v with activation probability p.
func (b *Builder) AddEdge(u, v NodeID, p float64) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: probability %v out of [0,1]", p))
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
	b.p = append(b.p, p)
}

// AddUndirected adds both directed edges u->v and v->u with probability p.
func (b *Builder) AddUndirected(u, v NodeID, p float64) {
	b.AddEdge(u, v, p)
	b.AddEdge(v, u, p)
}

// Build finalizes the graph into CSR form. Duplicate directed edges are
// rejected; self loops are allowed but pointless under IC.
func (b *Builder) Build() (*Graph, error) {
	groups, sizes, k, err := normalizeGroups(b.groups)
	if err != nil {
		return nil, err
	}
	if len(b.from) > math.MaxInt32 {
		// CSR offsets are int32; shard graphs beyond 2^31-1 directed edges.
		return nil, fmt.Errorf("graph: %d edges exceed the int32 CSR offset range", len(b.from))
	}
	g := &Graph{
		groups:     groups,
		numGroups:  k,
		groupSizes: sizes,
	}
	g.outOffsets, g.outTargets, g.outProbs = buildCSR(b.n, b.from, b.to, b.p)
	g.inOffsets, g.inTargets, g.inProbs = buildCSR(b.n, b.to, b.from, b.p)
	for v := 0; v < b.n; v++ {
		if dup := firstDuplicate(g.OutNeighbors(NodeID(v))); dup >= 0 {
			return nil, fmt.Errorf("graph: duplicate edge %d->%d", v, dup)
		}
	}
	for _, p := range b.p {
		g.sumProbs += p
	}
	g.outThresh = thresholds(g.outProbs)
	g.inThresh = thresholds(g.inProbs)
	g.buildGroupIndex()
	return g, nil
}

func thresholds(probs []float64) []uint64 {
	t := make([]uint64, len(probs))
	for i, p := range probs {
		t[i] = xrand.Threshold53(p)
	}
	return t
}

// MustBuild is Build that panics on error, for hand-constructed graphs in
// generators and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// buildCSR bucket-sorts the edge list by source into flat offsets/targets/
// probs arrays and orders each node's slice by target.
func buildCSR(n int, src, dst []NodeID, p []float64) ([]int32, []NodeID, []float64) {
	offsets := make([]int32, n+1)
	for _, u := range src {
		offsets[u+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]NodeID, len(src))
	probs := make([]float64, len(src))
	fill := make([]int32, n)
	copy(fill, offsets[:n])
	for i, u := range src {
		pos := fill[u]
		targets[pos] = dst[i]
		probs[pos] = p[i]
		fill[u]++
	}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if hi-lo > 1 {
			sort.Sort(pairSorter{t: targets[lo:hi], p: probs[lo:hi]})
		}
	}
	return offsets, targets, probs
}

// pairSorter orders a (targets, probs) slice pair by target id.
type pairSorter struct {
	t []NodeID
	p []float64
}

func (s pairSorter) Len() int           { return len(s.t) }
func (s pairSorter) Less(i, j int) bool { return s.t[i] < s.t[j] }
func (s pairSorter) Swap(i, j int) {
	s.t[i], s.t[j] = s.t[j], s.t[i]
	s.p[i], s.p[j] = s.p[j], s.p[i]
}

// buildGroupIndex derives the group→members CSR from the per-node labels.
func (g *Graph) buildGroupIndex() {
	g.groupOffsets = make([]int32, g.numGroups+1)
	for _, grp := range g.groups {
		g.groupOffsets[grp+1]++
	}
	for i := 0; i < g.numGroups; i++ {
		g.groupOffsets[i+1] += g.groupOffsets[i]
	}
	g.groupMembers = make([]NodeID, len(g.groups))
	fill := make([]int32, g.numGroups)
	copy(fill, g.groupOffsets[:g.numGroups])
	for v, grp := range g.groups {
		g.groupMembers[fill[grp]] = NodeID(v)
		fill[grp]++
	}
}

func firstDuplicate(targets []NodeID) NodeID {
	for i := 1; i < len(targets); i++ {
		if targets[i] == targets[i-1] {
			return targets[i]
		}
	}
	return -1
}

// normalizeGroups validates labels and returns the compact representation.
// Labels must use the dense range [0, k) with every group non-empty, except
// that an empty graph has zero groups... we define an empty graph to have
// one (empty) group for uniformity.
func normalizeGroups(labels []int) (groups []int32, sizes []int, k int, err error) {
	k = 1
	for _, l := range labels {
		if l < 0 {
			return nil, nil, 0, fmt.Errorf("graph: negative group label %d", l)
		}
		if l+1 > k {
			k = l + 1
		}
	}
	sizes = make([]int, k)
	groups = make([]int32, len(labels))
	for v, l := range labels {
		groups[v] = int32(l)
		sizes[l]++
	}
	for i, s := range sizes {
		if s == 0 && len(labels) > 0 {
			return nil, nil, 0, fmt.Errorf("graph: group %d is empty (labels must be dense)", i)
		}
	}
	return groups, sizes, k, nil
}
