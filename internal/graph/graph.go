// Package graph provides the social-network substrate for fairtcim: a
// directed graph with per-edge activation probabilities and per-node group
// labels (the "socially salient groups" of the paper).
//
// Graphs are immutable after construction; build them with a Builder. An
// undirected social tie is represented as two directed edges, matching the
// paper's convention (§3.1).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are always the dense range [0, N).
type NodeID = int32

// Edge is an outgoing (or incoming, in the reverse view) arc together with
// its independent-cascade activation probability.
type Edge struct {
	To NodeID  // the neighbor
	P  float64 // activation probability in [0, 1]
}

// Graph is an immutable directed graph with activation probabilities and
// group labels. The zero value is an empty graph; construct with a Builder.
type Graph struct {
	out        [][]Edge // forward adjacency, out[v] sorted by To
	in         [][]Edge // reverse adjacency, in[v] sorted by To (the source)
	groups     []int32  // group label per node, in [0, numGroups)
	numGroups  int
	groupSizes []int
	numEdges   int // number of directed edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.out) }

// M returns the number of directed edges.
func (g *Graph) M() int { return g.numEdges }

// Out returns the outgoing edges of v. The slice is shared; callers must
// not modify it.
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the incoming edges of v (each Edge.To is the *source* node).
// The slice is shared; callers must not modify it.
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Group returns the group label of v.
func (g *Graph) Group(v NodeID) int { return int(g.groups[v]) }

// NumGroups returns the number of groups k. Every graph has at least one
// group; ungrouped graphs put all nodes in group 0.
func (g *Graph) NumGroups() int { return g.numGroups }

// GroupSizes returns |V_i| for every group i. The slice is shared; callers
// must not modify it.
func (g *Graph) GroupSizes() []int { return g.groupSizes }

// GroupSize returns |V_i|.
func (g *Graph) GroupSize(i int) int { return g.groupSizes[i] }

// GroupMembers returns the nodes in group i, ascending.
func (g *Graph) GroupMembers(i int) []NodeID {
	members := make([]NodeID, 0, g.groupSizes[i])
	for v := range g.groups {
		if int(g.groups[v]) == i {
			members = append(members, NodeID(v))
		}
	}
	return members
}

// Nodes returns all node ids, ascending.
func (g *Graph) Nodes() []NodeID {
	nodes := make([]NodeID, g.N())
	for v := range nodes {
		nodes[v] = NodeID(v)
	}
	return nodes
}

// WithGroups returns a copy of g with new group labels. labels must have
// length N and use the dense range [0, k). The adjacency is shared with g.
func (g *Graph) WithGroups(labels []int) (*Graph, error) {
	if len(labels) != g.N() {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(labels), g.N())
	}
	groups, sizes, k, err := normalizeGroups(labels)
	if err != nil {
		return nil, err
	}
	return &Graph{
		out:        g.out,
		in:         g.in,
		groups:     groups,
		numGroups:  k,
		groupSizes: sizes,
		numEdges:   g.numEdges,
	}, nil
}

// Stats summarises the structure of a grouped graph; used by generators'
// tests and by the experiment harness to report dataset shape.
type Stats struct {
	N, M         int     // nodes, directed edges
	NumGroups    int     //
	GroupSizes   []int   // |V_i|
	WithinEdges  []int   // directed edges with both endpoints in group i
	AcrossEdges  int     // directed edges with endpoints in different groups
	MaxOutDegree int     //
	AvgOutDegree float64 //
}

// ComputeStats derives Stats for g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		N:          g.N(),
		M:          g.M(),
		NumGroups:  g.numGroups,
		GroupSizes: append([]int(nil), g.groupSizes...),
	}
	s.WithinEdges = make([]int, g.numGroups)
	for v := range g.out {
		if d := len(g.out[v]); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		gv := g.groups[v]
		for _, e := range g.out[v] {
			if g.groups[e.To] == gv {
				s.WithinEdges[gv]++
			} else {
				s.AcrossEdges++
			}
		}
	}
	if g.N() > 0 {
		s.AvgOutDegree = float64(g.M()) / float64(g.N())
	}
	return s
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// It is not safe for concurrent use.
type Builder struct {
	n      int
	groups []int
	from   []NodeID
	to     []NodeID
	p      []float64
}

// NewBuilder returns a builder for a graph with n nodes, all initially in
// group 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, groups: make([]int, n)}
}

// N returns the current number of nodes.
func (b *Builder) N() int { return b.n }

// AddNode appends a new node in group 0 and returns its id.
func (b *Builder) AddNode() NodeID {
	b.groups = append(b.groups, 0)
	b.n++
	return NodeID(b.n - 1)
}

// SetGroup assigns node v to group grp.
func (b *Builder) SetGroup(v NodeID, grp int) {
	if grp < 0 {
		panic("graph: negative group")
	}
	b.groups[v] = grp
}

// SetGroups assigns all labels at once; len(labels) must equal N.
func (b *Builder) SetGroups(labels []int) {
	if len(labels) != b.n {
		panic(fmt.Sprintf("graph: %d labels for %d nodes", len(labels), b.n))
	}
	copy(b.groups, labels)
}

// AddEdge adds the directed edge u->v with activation probability p.
func (b *Builder) AddEdge(u, v NodeID, p float64) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: probability %v out of [0,1]", p))
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
	b.p = append(b.p, p)
}

// AddUndirected adds both directed edges u->v and v->u with probability p.
func (b *Builder) AddUndirected(u, v NodeID, p float64) {
	b.AddEdge(u, v, p)
	b.AddEdge(v, u, p)
}

// Build finalizes the graph. Duplicate directed edges are rejected; self
// loops are allowed but pointless under IC.
func (b *Builder) Build() (*Graph, error) {
	groups, sizes, k, err := normalizeGroups(b.groups)
	if err != nil {
		return nil, err
	}
	g := &Graph{
		out:        make([][]Edge, b.n),
		in:         make([][]Edge, b.n),
		groups:     groups,
		numGroups:  k,
		groupSizes: sizes,
		numEdges:   len(b.from),
	}
	outDeg := make([]int, b.n)
	inDeg := make([]int, b.n)
	for i := range b.from {
		outDeg[b.from[i]]++
		inDeg[b.to[i]]++
	}
	for v := 0; v < b.n; v++ {
		if outDeg[v] > 0 {
			g.out[v] = make([]Edge, 0, outDeg[v])
		}
		if inDeg[v] > 0 {
			g.in[v] = make([]Edge, 0, inDeg[v])
		}
	}
	for i := range b.from {
		u, v, p := b.from[i], b.to[i], b.p[i]
		g.out[u] = append(g.out[u], Edge{To: v, P: p})
		g.in[v] = append(g.in[v], Edge{To: u, P: p})
	}
	for v := 0; v < b.n; v++ {
		sortEdges(g.out[v])
		sortEdges(g.in[v])
		if dup := firstDuplicate(g.out[v]); dup >= 0 {
			return nil, fmt.Errorf("graph: duplicate edge %d->%d", v, dup)
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error, for hand-constructed graphs in
// generators and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool { return edges[i].To < edges[j].To })
}

func firstDuplicate(edges []Edge) NodeID {
	for i := 1; i < len(edges); i++ {
		if edges[i].To == edges[i-1].To {
			return edges[i].To
		}
	}
	return -1
}

// normalizeGroups validates labels and returns the compact representation.
// Labels must use the dense range [0, k) with every group non-empty, except
// that an empty graph has zero groups... we define an empty graph to have
// one (empty) group for uniformity.
func normalizeGroups(labels []int) (groups []int32, sizes []int, k int, err error) {
	k = 1
	for _, l := range labels {
		if l < 0 {
			return nil, nil, 0, fmt.Errorf("graph: negative group label %d", l)
		}
		if l+1 > k {
			k = l + 1
		}
	}
	sizes = make([]int, k)
	groups = make([]int32, len(labels))
	for v, l := range labels {
		groups[v] = int32(l)
		sizes[l]++
	}
	for i, s := range sizes {
		if s == 0 && len(labels) > 0 {
			return nil, nil, 0, fmt.Errorf("graph: group %d is empty (labels must be dense)", i)
		}
	}
	return groups, sizes, k, nil
}
