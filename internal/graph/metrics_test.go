package graph

import (
	"math"
	"testing"
)

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 2, 1)
	g := b.MustBuild()
	h := g.DegreeHistogram()
	// degrees: 0:2, 1:1, 2:0, 3:0 -> counts: {0:2, 1:1, 2:1}
	if h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestHasEdge(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 3, 1)
	b.AddEdge(0, 4, 1)
	g := b.MustBuild()
	for _, v := range []NodeID{1, 3, 4} {
		if !g.HasEdge(0, v) {
			t.Fatalf("missing edge 0->%d", v)
		}
	}
	for _, v := range []NodeID{0, 2} {
		if g.HasEdge(0, v) {
			t.Fatalf("phantom edge 0->%d", v)
		}
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed edge should not be symmetric")
	}
}

func TestClusteringCoefficientTriangle(t *testing.T) {
	b := NewBuilder(3)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	b.AddUndirected(0, 2, 1)
	g := b.MustBuild()
	if c := g.ClusteringCoefficient(); math.Abs(c-1) > 1e-9 {
		t.Fatalf("triangle clustering %v, want 1", c)
	}
}

func TestClusteringCoefficientStar(t *testing.T) {
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.AddUndirected(0, NodeID(v), 1)
	}
	g := b.MustBuild()
	if c := g.ClusteringCoefficient(); c != 0 {
		t.Fatalf("star clustering %v, want 0", c)
	}
}

func TestClusteringCoefficientPathPlusTriangle(t *testing.T) {
	// A triangle with a pendant: triples = 3·1 + (deg3 node: C(3,2)=3)... do
	// it numerically: nodes 0,1,2 triangle; 3 attached to 0.
	b := NewBuilder(4)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	b.AddUndirected(0, 2, 1)
	b.AddUndirected(0, 3, 1)
	g := b.MustBuild()
	// corner counts: node0 deg3 -> 3 triples (one closed), node1 deg2 -> 1
	// (closed), node2 deg2 -> 1 (closed), node3 deg1 -> 0. closed corners: 3,
	// triples: 5 -> transitivity 3/5.
	if c := g.ClusteringCoefficient(); math.Abs(c-0.6) > 1e-9 {
		t.Fatalf("clustering %v, want 0.6", c)
	}
}

func TestMixingMatrix(t *testing.T) {
	b := NewBuilder(4)
	b.SetGroups([]int{0, 0, 1, 1})
	b.AddUndirected(0, 1, 1) // within 0
	b.AddUndirected(2, 3, 1) // within 1
	b.AddEdge(0, 2, 1)       // 0 -> 1 only
	g := b.MustBuild()
	m := g.MixingMatrix()
	if m[0][0] != 2 || m[1][1] != 2 || m[0][1] != 1 || m[1][0] != 0 {
		t.Fatalf("mixing = %v", m)
	}
}

func TestHomophilyIndex(t *testing.T) {
	// Perfectly homophilous: two disconnected same-group cliques.
	b := NewBuilder(6)
	b.SetGroups([]int{0, 0, 0, 1, 1, 1})
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			b.AddUndirected(NodeID(i), NodeID(j), 1)
			b.AddUndirected(NodeID(i+3), NodeID(j+3), 1)
		}
	}
	g := b.MustBuild()
	if h := g.HomophilyIndex(); math.Abs(h-1) > 1e-9 {
		t.Fatalf("homophily %v, want 1", h)
	}
	// Perfectly heterophilous: complete bipartite across groups.
	b2 := NewBuilder(4)
	b2.SetGroups([]int{0, 0, 1, 1})
	b2.AddUndirected(0, 2, 1)
	b2.AddUndirected(0, 3, 1)
	b2.AddUndirected(1, 2, 1)
	b2.AddUndirected(1, 3, 1)
	g2 := b2.MustBuild()
	if h := g2.HomophilyIndex(); h >= 0 {
		t.Fatalf("bipartite homophily %v, want negative", h)
	}
	// Edgeless graph.
	if h := NewBuilder(3).MustBuild().HomophilyIndex(); h != 0 {
		t.Fatalf("edgeless homophily %v", h)
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(5)
	b.SetGroups([]int{0, 0, 1, 1, 2})
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.25)
	b.AddEdge(2, 3, 0.75)
	b.AddEdge(3, 4, 0.1)
	g := b.MustBuild()

	sub, mapping, err := g.InducedSubgraph([]NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub N=%d M=%d", sub.N(), sub.M())
	}
	// Edge 1->2 survives as mapping[1]->mapping[2] with probability 0.25.
	found := false
	targets, probs := sub.OutEdges(mapping[1])
	for i, to := range targets {
		if to == mapping[2] && probs[i] == 0.25 {
			found = true
		}
	}
	if !found {
		t.Fatal("edge 1->2 lost in subgraph")
	}
	// Groups re-densified: nodes 1 (group 0), 2, 3 (group 1) -> two groups.
	if sub.NumGroups() != 2 {
		t.Fatalf("sub groups = %d", sub.NumGroups())
	}
	// Duplicates rejected.
	if _, _, err := g.InducedSubgraph([]NodeID{1, 1}); err == nil {
		t.Fatal("duplicate selection accepted")
	}
}
