package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is a line-oriented text format:
//
//	fairtcim-graph v1
//	n <numNodes>
//	g <node> <group>        # omitted for group 0
//	e <from> <to> <prob>    # one directed edge per line
//
// Lines starting with '#' and blank lines are ignored. Node ids must lie in
// [0, numNodes).

const formatHeader = "fairtcim-graph v1"

// Write serialises g in the fairtcim edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, formatHeader); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if grp := g.Group(NodeID(v)); grp != 0 {
			if _, err := fmt.Fprintf(bw, "g %d %d\n", v, grp); err != nil {
				return err
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		targets, probs := g.OutEdges(NodeID(v))
		for i, to := range targets {
			if _, err := fmt.Fprintf(bw, "e %d %d %g\n", v, to, probs[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph in the fairtcim edge-list format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	line, ok := next()
	if !ok || line != formatHeader {
		return nil, fmt.Errorf("graph: line %d: missing %q header", lineNo, formatHeader)
	}
	line, ok = next()
	if !ok {
		return nil, fmt.Errorf("graph: unexpected EOF before node count")
	}
	var n int
	if _, err := fmt.Sscanf(line, "n %d", &n); err != nil {
		return nil, fmt.Errorf("graph: line %d: bad node count %q: %v", lineNo, line, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: line %d: negative node count", lineNo)
	}
	b := NewBuilder(n)
	for {
		line, ok = next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "g":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'g node group'", lineNo)
			}
			v, err1 := strconv.Atoi(fields[1])
			grp, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || v < 0 || v >= n || grp < 0 {
				return nil, fmt.Errorf("graph: line %d: bad group line %q", lineNo, line)
			}
			b.SetGroup(NodeID(v), grp)
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'e from to prob'", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			p, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineNo, line)
			}
			if u < 0 || u >= n || v < 0 || v >= n || p < 0 || p > 1 {
				return nil, fmt.Errorf("graph: line %d: edge out of range %q", lineNo, line)
			}
			b.AddEdge(NodeID(u), NodeID(v), p)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
