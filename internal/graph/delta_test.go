package graph

import (
	"reflect"
	"testing"
)

// deltaFixture: 6 nodes in two groups, a mix of within- and cross-group
// edges.
func deltaFixture(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.SetGroups([]int{0, 0, 0, 1, 1, 1})
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.25)
	b.AddEdge(1, 2, 0.75)
	b.AddEdge(3, 4, 0.5)
	b.AddEdge(4, 5, 0.5)
	b.AddEdge(2, 3, 0.1)
	return b.MustBuild()
}

func edgeProb(g *Graph, u, v NodeID) (float64, bool) {
	ts, ps := g.OutEdges(u)
	for i, w := range ts {
		if w == v {
			return ps[i], true
		}
	}
	return 0, false
}

func TestApplyDeltaAddUpdateRemove(t *testing.T) {
	g := deltaFixture(t)
	g2, res, err := g.ApplyDelta(Delta{Edges: []EdgeDelta{
		{From: 5, To: 0, P: 0.9},       // add
		{From: 0, To: 1, P: 0.6},       // update
		{From: 0, To: 2, P: 0.25},      // no-op restatement
		{From: 4, To: 5, Remove: true}, // remove
	}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if res.EdgesAdded != 1 || res.EdgesUpdated != 1 || res.EdgesRemoved != 1 || res.GroupsChanged != 0 {
		t.Fatalf("result counts = %+v", res)
	}
	wantArcs := []Arc{{0, 1}, {4, 5}, {5, 0}}
	if !reflect.DeepEqual(res.TouchedArcs, wantArcs) {
		t.Fatalf("TouchedArcs = %v, want %v", res.TouchedArcs, wantArcs)
	}
	wantHeads := []NodeID{0, 1, 5}
	if !reflect.DeepEqual(res.TouchedHeads, wantHeads) {
		t.Fatalf("TouchedHeads = %v, want %v", res.TouchedHeads, wantHeads)
	}
	if g2.M() != g.M() { // +1 add, -1 remove
		t.Fatalf("new M = %d, want %d", g2.M(), g.M())
	}
	if p, ok := edgeProb(g2, 0, 1); !ok || p != 0.6 {
		t.Fatalf("edge 0->1 = (%v,%v), want 0.6", p, ok)
	}
	if p, ok := edgeProb(g2, 5, 0); !ok || p != 0.9 {
		t.Fatalf("edge 5->0 = (%v,%v), want 0.9", p, ok)
	}
	if _, ok := edgeProb(g2, 4, 5); ok {
		t.Fatal("edge 4->5 survived removal")
	}
	// Old snapshot untouched.
	if p, ok := edgeProb(g, 0, 1); !ok || p != 0.5 {
		t.Fatalf("old snapshot mutated: edge 0->1 = (%v,%v)", p, ok)
	}
	if _, ok := edgeProb(g, 4, 5); !ok {
		t.Fatal("old snapshot lost edge 4->5")
	}
	// Reverse CSR and thresholds consistent on the new snapshot.
	if got := g2.InDegree(0); got != 1 {
		t.Fatalf("in-degree(0) = %d, want 1", got)
	}
	if len(g2.OutThresholds()) != g2.M() || len(g2.InThresholds()) != g2.M() {
		t.Fatal("threshold arrays not rebuilt to match M")
	}
}

func TestApplyDeltaGroups(t *testing.T) {
	g := deltaFixture(t)
	g2, res, err := g.ApplyDelta(Delta{Groups: []GroupDelta{
		{Node: 2, Group: 1},
		{Node: 5, Group: 1}, // no-op
	}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if res.GroupsChanged != 1 {
		t.Fatalf("GroupsChanged = %d, want 1", res.GroupsChanged)
	}
	if len(res.TouchedArcs) != 0 || len(res.TouchedHeads) != 0 {
		t.Fatalf("group-only delta touched edges: %v", res.TouchedArcs)
	}
	if g2.Group(2) != 1 || g.Group(2) != 0 {
		t.Fatalf("group move wrong: new=%d old=%d", g2.Group(2), g.Group(2))
	}
	if got := g2.GroupSizes(); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("GroupSizes = %v", got)
	}
}

func TestApplyDeltaGroupCountShrinks(t *testing.T) {
	g := deltaFixture(t)
	// Moving every group-1 node into group 0 is legal: the label range
	// stays dense, so the group count contracts to 1.
	g2, res, err := g.ApplyDelta(Delta{Groups: []GroupDelta{
		{Node: 3, Group: 0}, {Node: 4, Group: 0}, {Node: 5, Group: 0},
	}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if res.GroupsChanged != 3 {
		t.Fatalf("GroupsChanged = %d, want 3", res.GroupsChanged)
	}
	if g2.NumGroups() != 1 || g.NumGroups() != 2 {
		t.Fatalf("group counts new=%d old=%d", g2.NumGroups(), g.NumGroups())
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	g := deltaFixture(t)
	cases := []struct {
		name string
		d    Delta
	}{
		{"empty", Delta{}},
		{"node out of range", Delta{Edges: []EdgeDelta{{From: 0, To: 99, P: 0.5}}}},
		{"zero probability upsert", Delta{Edges: []EdgeDelta{{From: 0, To: 3}}}},
		{"probability above one", Delta{Edges: []EdgeDelta{{From: 0, To: 3, P: 1.5}}}},
		{"remove with probability", Delta{Edges: []EdgeDelta{{From: 0, To: 1, P: 0.5, Remove: true}}}},
		{"remove missing edge", Delta{Edges: []EdgeDelta{{From: 0, To: 5, Remove: true}}}},
		{"duplicate edge in batch", Delta{Edges: []EdgeDelta{{From: 0, To: 1, P: 0.5}, {From: 0, To: 1, P: 0.6}}}},
		{"group node out of range", Delta{Groups: []GroupDelta{{Node: 99, Group: 0}}}},
		{"negative group", Delta{Groups: []GroupDelta{{Node: 0, Group: -1}}}},
		{"sparse group labels", Delta{Groups: []GroupDelta{{Node: 0, Group: 7}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := g.ApplyDelta(tc.d); err == nil {
				t.Fatalf("ApplyDelta(%+v) succeeded, want error", tc.d)
			}
		})
	}
	// Failed deltas leave the graph untouched (it is immutable, but check
	// observable state anyway).
	if p, ok := edgeProb(g, 0, 1); !ok || p != 0.5 {
		t.Fatalf("graph mutated after failed deltas: %v %v", p, ok)
	}
}
