package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(7).Split()
	b := New(7).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split children diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams look correlated: %d collisions", same)
	}
}

func TestSplitNStable(t *testing.T) {
	parent := New(9)
	a := parent.SplitN(5)
	// SplitN must not advance the parent: deriving child 5 again yields the
	// same stream.
	b := parent.SplitN(5)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("SplitN not stable at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(10) value %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(2)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	check := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleUniform(t *testing.T) {
	// Each element of [0,20) should appear in a 5-of-20 sample about 1/4 of
	// the time.
	r := New(123)
	counts := make([]int, 20)
	const trials = 40000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(20, 5) {
			counts[v]++
		}
	}
	for v, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-0.25) > 0.02 {
			t.Fatalf("Sample uniformity: element %d rate %v", v, rate)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(77)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / n
	if math.Abs(mean-4.0) > 0.1 {
		t.Fatalf("Geometric(0.25) mean %v, want ~4", mean)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		if g := r.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d", g)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestShuffle(t *testing.T) {
	r := New(4)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make([]bool, 8)
	for _, v := range s {
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("shuffle lost element %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func TestBernoulliTMatchesBernoulli(t *testing.T) {
	// For p strictly inside (0,1) both consume one draw per trial, so the
	// same seed must yield identical accept/reject sequences.
	for _, p := range []float64{1e-9, 0.01, 0.3, 0.5, 0.7, 0.9999999} {
		a, b := New(42), New(42)
		th := Threshold53(p)
		for i := 0; i < 20000; i++ {
			if x, y := a.Bernoulli(p), b.BernoulliT(th); x != y {
				t.Fatalf("p=%v trial %d: Bernoulli=%v BernoulliT=%v", p, i, x, y)
			}
		}
	}
}

func TestThreshold53Extremes(t *testing.T) {
	if Threshold53(0) != 0 || Threshold53(-1) != 0 {
		t.Fatal("p<=0 must map to threshold 0")
	}
	if Threshold53(1) != 1<<53 || Threshold53(2) != 1<<53 {
		t.Fatal("p>=1 must map to threshold 2^53")
	}
	r := New(7)
	for i := 0; i < 1000; i++ {
		if r.BernoulliT(0) {
			t.Fatal("BernoulliT(0) returned true")
		}
		if !r.BernoulliT(1 << 53) {
			t.Fatal("BernoulliT(2^53) returned false")
		}
	}
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Bernoulli(0.3)
	}
}

func BenchmarkBernoulliT(b *testing.B) {
	r := New(1)
	th := Threshold53(0.3)
	for i := 0; i < b.N; i++ {
		_ = r.BernoulliT(th)
	}
}
