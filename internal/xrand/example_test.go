package xrand_test

import (
	"fmt"

	"fairtcim/internal/xrand"
)

// SplitN gives every Monte-Carlo world its own reproducible stream:
// deriving the same child twice yields identical values regardless of
// scheduling order.
func ExampleRNG_SplitN() {
	parent := xrand.New(42)
	a := parent.SplitN(3).Uint64()
	b := parent.SplitN(3).Uint64()
	fmt.Println(a == b)
	// Output: true
}
