// Package xrand provides a small, fast, deterministic, splittable
// pseudo-random number generator used throughout fairtcim. It is the
// bottom of the layering: every sampling stage — graph generation,
// live-edge worlds, RR sketches — draws from it, and cache keys in the
// serving layer stay meaningful precisely because a (seed, parameters)
// pair reproduces the identical sample.
//
// Influence estimation is embarrassingly parallel Monte Carlo: each sampled
// "world" needs its own stream of random numbers, and the result must not
// depend on how worlds are scheduled across goroutines. xrand therefore
// exposes Split, which derives an independent child generator from a parent
// deterministically, so world i always sees the same stream regardless of
// which worker samples it.
//
// The core is splitmix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014) driving a xoshiro-style
// output mix. It is not cryptographically secure; it is intended for
// reproducible simulation only.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not usable; construct with New.
type RNG struct {
	state uint64
	gamma uint64
}

// goldenGamma is the odd constant splitmix64 uses to advance the state.
const goldenGamma = 0x9E3779B97F4A7C15

// New returns a generator seeded with seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed int64) *RNG {
	return &RNG{state: mix64(uint64(seed)), gamma: mixGamma(uint64(seed) + goldenGamma)}
}

// Split derives a child generator whose stream is independent of (and
// deterministic given) the parent's current state. The parent advances by
// two steps, so repeated Split calls produce distinct children.
func (r *RNG) Split() *RNG {
	s := r.next()
	g := r.next()
	return &RNG{state: mix64(s), gamma: mixGamma(g)}
}

// SplitN derives the n'th child without advancing the parent, useful for
// indexing parallel streams: SplitN(i) is stable for a given parent state.
func (r *RNG) SplitN(n int64) *RNG {
	base := r.state + uint64(n)*r.gamma
	return &RNG{state: mix64(base), gamma: mixGamma(base + goldenGamma)}
}

func (r *RNG) next() uint64 {
	r.state += r.gamma
	return r.state
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return mix64(r.next())
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int31n returns a uniformly distributed int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n with non-positive n")
	}
	return int32(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p. Values of p outside [0,1] are
// clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Threshold53 converts a probability to the integer threshold consumed by
// BernoulliT. For every p, BernoulliT(Threshold53(p)) accepts exactly the
// same generator outputs as Bernoulli(p): Float64 compares the 53-bit
// draw u against p via u/2^53 < p, which for integer u is equivalent to
// u < ⌈p·2^53⌉.
func Threshold53(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// BernoulliT reports true with probability t/2^53 for t from Threshold53.
// It replaces Bernoulli's float conversion and division with one shift and
// one integer compare — the fast path for tight sampling loops over
// precomputed per-edge thresholds.
func (r *RNG) BernoulliT(t uint64) bool {
	return r.Uint64()>>11 < t
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample with k out of range")
	}
	// Partial Fisher-Yates over an index map keeps this O(k) memory-light
	// for small k, but a full permutation is simpler and n is modest here.
	if k*4 >= n {
		p := r.Perm(n)
		return p[:k]
	}
	seen := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := seen[j]
		if !ok {
			vj = j
		}
		vi, ok := seen[i]
		if !ok {
			vi = i
		}
		seen[j] = vi
		out[i] = vj
	}
	return out
}

// NormFloat64 returns a standard normal variate (Box-Muller; one value per
// call, the pair's second value is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of Bernoulli(p) trials up to and including the
// first success (support {1, 2, ...}). It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return 1 + int(math.Floor(math.Log(u)/math.Log(1-p)))
	}
}

// mix64 is the splitmix64 finalizer: a bijective 64-bit mixing function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mixGamma derives an odd gamma with enough bit transitions to keep the
// splitmix64 sequence well distributed.
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	z = (z ^ (z >> 33)) | 1
	if popcount(z^(z>>1)) < 24 {
		z ^= 0xAAAAAAAAAAAAAAAA
	}
	return z
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
