package estimator_test

import (
	"fmt"

	"fairtcim/internal/cascade"
	"fairtcim/internal/estimator"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

// ExampleEstimator shows the engine-agnostic contract: the same greedy
// loop runs unchanged on a forward Monte-Carlo evaluator and on a RIS
// estimator, because both implement estimator.Estimator. The two-star
// fixture has certain (p = 1) edges, so both engines are exact and pick
// the two hubs in the same order.
func ExampleEstimator() {
	g := generate.TwoStars()

	worlds := cascade.SampleWorlds(g, cascade.IC, 10, 1, 1)
	forward, err := influence.NewEvaluator(g, worlds, 3)
	if err != nil {
		panic(err)
	}
	col, err := ris.Sample(g, 3, []int{400, 400}, 1, 1)
	if err != nil {
		panic(err)
	}

	for _, e := range []estimator.Estimator{forward, ris.NewEstimator(col)} {
		for len(e.Seeds()) < 2 {
			best, bestGain := graph.NodeID(-1), -1.0
			for v := 0; v < e.Graph().N(); v++ {
				if gain := e.Gain(graph.NodeID(v)); gain > bestGain {
					best, bestGain = graph.NodeID(v), gain
				}
			}
			e.Add(best)
		}
		fmt.Println(e.Seeds(), e.TotalUtility())
	}
	// Output:
	// [0 11] 17
	// [0 11] 17
}
