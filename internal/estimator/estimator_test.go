package estimator_test

import (
	"math"
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/estimator"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

// Every estimation engine must satisfy the shared interface.
var (
	_ estimator.Estimator = (*influence.Evaluator)(nil)
	_ estimator.Estimator = (*influence.DelayedEvaluator)(nil)
	_ estimator.Estimator = (*influence.DiscountedEvaluator)(nil)
	_ estimator.Estimator = (*ris.Estimator)(nil)
)

func forwardEstimator(t *testing.T, g *graph.Graph, tau int32, samples int, seed int64) estimator.Estimator {
	t.Helper()
	worlds := cascade.SampleWorlds(g, cascade.IC, samples, seed, 0)
	e, err := influence.NewEvaluator(g, worlds, tau)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func risEstimator(t *testing.T, g *graph.Graph, tau int32, perGroup int, seed int64) estimator.Estimator {
	t.Helper()
	pools := make([]int, g.NumGroups())
	for i := range pools {
		pools[i] = perGroup
	}
	col, err := ris.Sample(g, tau, pools, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ris.NewEstimator(col)
}

// TestEngineUtilityParity checks that the forward-MC and RIS engines
// estimate the same per-group utilities for a fixed seed set on a fixed
// synthetic graph, within Monte-Carlo tolerance.
func TestEngineUtilityParity(t *testing.T) {
	cfg := generate.DefaultTwoBlock(7)
	cfg.N, cfg.PHom, cfg.PHet = 200, 0.06, 0.003
	g, err := generate.TwoBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const tau = 5
	fwd := forwardEstimator(t, g, tau, 400, 11)
	rev := risEstimator(t, g, tau, 6000, 13)

	seeds := []graph.NodeID{0, 50, 150}
	for _, s := range seeds {
		fwd.Add(s)
		rev.Add(s)
	}
	fu, ru := fwd.GroupUtilities(), rev.GroupUtilities()
	if len(fu) != len(ru) {
		t.Fatalf("group count mismatch: %d vs %d", len(fu), len(ru))
	}
	for i := range fu {
		if relDiff(fu[i], ru[i]) > 0.15 {
			t.Errorf("group %d utility: forward-MC %.3f vs RIS %.3f (rel diff %.3f)",
				i, fu[i], ru[i], relDiff(fu[i], ru[i]))
		}
	}
	if relDiff(fwd.TotalUtility(), rev.TotalUtility()) > 0.15 {
		t.Errorf("total utility: forward-MC %.3f vs RIS %.3f",
			fwd.TotalUtility(), rev.TotalUtility())
	}
}

// TestEngineGainParity checks marginal-gain agreement from the empty set:
// both engines must rank a clearly-best node first.
func TestEngineGainParity(t *testing.T) {
	g := generate.TwoStars()
	const tau = 1
	fwd := forwardEstimator(t, g, tau, 50, 3)
	rev := risEstimator(t, g, tau, 2000, 5)

	for name, e := range map[string]estimator.Estimator{"forward-mc": fwd, "ris": rev} {
		best, bestGain := graph.NodeID(-1), -1.0
		for _, v := range g.Nodes() {
			if gain := e.Gain(v); gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best != 0 {
			t.Errorf("%s: best first pick = %d (gain %.2f), want hub 0", name, best, bestGain)
		}
	}
}

func relDiff(a, b float64) float64 {
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 0
	}
	return math.Abs(a-b) / denom
}
