// Package estimator defines the contract between influence-estimation
// engines and everything that consumes them — solvers (fairim), baselines,
// the experiment harness and the CLIs. Two engines implement it today:
//
//   - forward Monte Carlo over live-edge worlds (influence.Evaluator and
//     its delayed/discounted variants), the paper's estimator; and
//   - reverse influence sampling (ris.Estimator), the scalability
//     extension that turns group utilities into RR-set coverage.
//
// Both expose the same incremental shape: grow a seed set one node at a
// time, query per-group marginal gains without committing, and read the
// current per-group utilities. On a fixed sample (worlds or RR pools) the
// induced set function is exactly monotone submodular for either engine,
// so greedy/CELF machinery is engine-agnostic. New diffusion models,
// sharded or batched estimators plug in behind this interface without
// touching any solver.
//
// Concurrency: an Estimator instance is single-goroutine (except
// InitialGains), but the sample it is built from — a []*cascade.World set
// or a ris.Collection — is immutable once sampled and may be shared. To
// serve concurrent queries against one sample, build one estimator per
// goroutine over the shared sample; that is how the serving layer
// (internal/server) amortizes sampling across requests.
package estimator

import "fairtcim/internal/graph"

// Estimator estimates the per-group time-critical influence fτ(S;Vᵢ) of a
// growing seed set S. Implementations are deterministic for a fixed
// sample; methods are not safe for concurrent use except InitialGains.
type Estimator interface {
	// Graph returns the graph the estimates refer to.
	Graph() *graph.Graph

	// GainPerGroup returns the estimated per-group utility increase from
	// adding v to the current seed set, without committing. The returned
	// slice may be reused across calls; copy to keep.
	GainPerGroup(v graph.NodeID) []float64

	// Gain returns the estimated total-utility increase from adding v.
	Gain(v graph.NodeID) float64

	// Add commits v to the seed set.
	Add(v graph.NodeID)

	// Seeds returns the current seed set (shared; do not modify).
	Seeds() []graph.NodeID

	// GroupUtilities returns the current fτ(S;Vᵢ) estimates.
	GroupUtilities() []float64

	// NormGroupUtilities returns fτ(S;Vᵢ)/|Vᵢ|.
	NormGroupUtilities() []float64

	// TotalUtility returns the current fτ(S;V) estimate.
	TotalUtility() float64

	// InitialGains evaluates GainPerGroup for every candidate against the
	// current seed set, in parallel, returning one copied slice per
	// candidate in candidate order. parallelism <= 0 means GOMAXPROCS.
	InitialGains(candidates []graph.NodeID, parallelism int) [][]float64

	// SampleSize reports the size of the underlying optimization sample:
	// live-edge worlds for forward Monte Carlo, RR sets per group (the
	// minimum across groups) for RIS. Consumers use it to report the
	// resolved sample budget when it was derived from an accuracy target
	// rather than configured explicitly.
	SampleSize() int

	// Reset clears the seed set, returning the estimator to its initial
	// state on the same sample.
	Reset()
}
