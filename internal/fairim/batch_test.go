package fairim

import (
	"testing"

	"fairtcim/internal/graph"
)

// requireSameResult asserts two Results are bit-identical in every
// wire-visible field — the batch planner's contract.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil result (got %v, want %v)", label, got, want)
	}
	if got.Problem != want.Problem {
		t.Fatalf("%s: problem %q != %q", label, got.Problem, want.Problem)
	}
	if len(got.Seeds) != len(want.Seeds) {
		t.Fatalf("%s: %d seeds != %d: %v vs %v", label, len(got.Seeds), len(want.Seeds), got.Seeds, want.Seeds)
	}
	for i := range got.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("%s: seeds diverge at %d: %v vs %v", label, i, got.Seeds, want.Seeds)
		}
	}
	if got.Total != want.Total || got.NormTotal != want.NormTotal || got.Disparity != want.Disparity {
		t.Fatalf("%s: total/normTotal/disparity (%v,%v,%v) != (%v,%v,%v)",
			label, got.Total, got.NormTotal, got.Disparity, want.Total, want.NormTotal, want.Disparity)
	}
	for i := range want.PerGroup {
		if got.PerGroup[i] != want.PerGroup[i] || got.NormPerGroup[i] != want.NormPerGroup[i] {
			t.Fatalf("%s: group %d utilities differ: %v vs %v", label, i, got.PerGroup, want.PerGroup)
		}
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("%s: evaluations %d != %d", label, got.Evaluations, want.Evaluations)
	}
	if got.Samples != want.Samples || got.RISPerGroup != want.RISPerGroup {
		t.Fatalf("%s: samples/ris (%d,%d) != (%d,%d)", label, got.Samples, got.RISPerGroup, want.Samples, want.RISPerGroup)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d != %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		g, w := got.Trace[i], want.Trace[i]
		if g.Seed != w.Seed || g.Objective != w.Objective || g.Total != w.Total {
			t.Fatalf("%s: trace entry %d differs: %+v vs %+v", label, i, g, w)
		}
		for j := range w.NormGroup {
			if g.NormGroup[j] != w.NormGroup[j] {
				t.Fatalf("%s: trace entry %d group %d differs", label, i, j)
			}
		}
	}
}

// TestSolveBatchParityMatrix is the planner's load-bearing guarantee:
// across P1/P2/P4/P6 × {forward-MC, RIS} × mixed budgets/quotas × both
// report modes, every batched outcome is bit-identical to its
// sequential Solve — including the Evaluations count the member's own
// run would have spent.
func TestSolveBatchParityMatrix(t *testing.T) {
	g := smallSBM(t, 7)
	engines := []struct {
		name string
		cfg  func() Config
	}{
		{"forward-mc", func() Config {
			cfg := quickCfg(5)
			return cfg
		}},
		{"ris", func() Config {
			cfg := quickCfg(5)
			cfg.Engine = EngineRIS
			cfg.RISPerGroup = 400
			return cfg
		}},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			base := eng.cfg()
			traced := base
			traced.Trace = true
			onSample := base
			onSample.ReportOnSample = true
			specs := []ProblemSpec{
				{Problem: P1, Budget: 2, Config: base},
				{Problem: P1, Budget: 6, Config: traced},
				{Problem: P1, Budget: 4, Config: onSample},
				{Problem: P4, Budget: 3, Config: base},
				{Problem: P4, Budget: 5, Config: base},
				{Problem: P2, Quota: 0.3, Config: base},
				{Problem: P2, Quota: 0.3, Config: onSample},
				{Problem: P6, Quota: 0.25, Config: base},
				{Problem: P6, Quota: 0.25, Config: traced},
				{Problem: P2, Quota: 0.5, Config: base}, // different quota: own group
			}
			outcomes, report := SolveBatch(g, specs, nil)
			if len(outcomes) != len(specs) {
				t.Fatalf("%d outcomes for %d specs", len(outcomes), len(specs))
			}
			// P1 ×3, P4 ×2, P2@0.3 ×2, P6@0.25 ×2 coalesce; P2@0.5 is alone.
			if report.Groups != 4 || report.Singletons != 1 || report.Coalesced != 9 {
				t.Fatalf("report = %+v, want 4 groups / 1 singleton / 9 coalesced", report)
			}
			for i, spec := range specs {
				if outcomes[i].Err != nil {
					t.Fatalf("spec %d: %v", i, outcomes[i].Err)
				}
				want, err := Solve(g, spec)
				if err != nil {
					t.Fatalf("sequential spec %d: %v", i, err)
				}
				requireSameResult(t, spec.Problem.String(), outcomes[i].Result, want)
			}
		})
	}
}

// TestSolveBatchWarmPrefix checks batches sharing a prefix-memo entry:
// a group primed through BatchOptions.Warm reproduces what each
// sequential solve primed with the same WarmStart returns — covered
// budgets are zero-evaluation replays, larger ones resume the heap.
func TestSolveBatchWarmPrefix(t *testing.T) {
	g := smallSBM(t, 3)
	base := quickCfg(9)
	base.Engine = EngineRIS
	base.RISPerGroup = 400

	capture := base
	capture.CaptureWarm = true
	seedRun, err := Solve(g, ProblemSpec{Problem: P4, Budget: 4, Config: capture})
	if err != nil {
		t.Fatal(err)
	}
	if seedRun.Warm == nil {
		t.Fatal("no warm state captured")
	}

	budgets := []int{2, 4, 7}
	specs := make([]ProblemSpec, len(budgets))
	for i, b := range budgets {
		specs[i] = ProblemSpec{Problem: P4, Budget: b, Config: base}
	}
	warmCalls := 0
	var captured *WarmStart
	outcomes, report := SolveBatch(g, specs, &BatchOptions{
		Warm: func(gid int, rep ProblemSpec) *WarmStart {
			warmCalls++
			if rep.Budget != 7 {
				t.Fatalf("warm hook saw representative budget %d, want the max 7", rep.Budget)
			}
			return seedRun.Warm
		},
		OnWarm: func(gid int, rep ProblemSpec, w *WarmStart) { captured = w },
	})
	if report.Groups != 1 || report.Coalesced != 3 || warmCalls != 1 {
		t.Fatalf("report %+v warmCalls %d, want one group of 3 primed once", report, warmCalls)
	}
	for i, b := range budgets {
		warmSpec := specs[i]
		warmSpec.Config.Warm = seedRun.Warm
		want, err := Solve(g, warmSpec)
		if err != nil {
			t.Fatal(err)
		}
		if outcomes[i].Err != nil {
			t.Fatalf("budget %d: %v", b, outcomes[i].Err)
		}
		requireSameResult(t, "warm", outcomes[i].Result, want)
		if b <= 4 && outcomes[i].Result.Evaluations != 0 {
			t.Fatalf("budget %d inside the warm prefix spent %d evaluations", b, outcomes[i].Result.Evaluations)
		}
	}
	if captured == nil || len(captured.Seeds) != 7 {
		t.Fatalf("OnWarm captured %v, want the full 7-seed state", captured)
	}
}

// TestSolveBatchGrouping pins the planner's compatibility rules: mixed
// engines never share, accuracy targets share only at equal sizing
// budgets, non-shareable specs fall back to sequential Solve with
// identical output, and invalid specs fail alone.
func TestSolveBatchGrouping(t *testing.T) {
	g := smallSBM(t, 4)
	fw := quickCfg(2)
	rs := quickCfg(2)
	rs.Engine = EngineRIS
	rs.RISPerGroup = 300
	plain := fw
	plain.PlainGreedy = true
	restricted := fw
	restricted.Candidates = []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7}

	acc := &Accuracy{Epsilon: 0.4, Delta: 0.2}
	specs := []ProblemSpec{
		{Problem: P1, Budget: 3, Config: fw},                                    // 0: singleton (no partner)
		{Problem: P1, Budget: 3, Config: rs},                                    // 1: other engine, own unit
		{Problem: P1, Budget: 2, Config: plain},                                 // 2: plain greedy → Solve fallback
		{Problem: P1, Budget: 2, Config: restricted},                            // 3: candidate-restricted → fallback
		{Problem: P4, Budget: 3, Sampling: Sampling{Accuracy: acc}, Config: fw}, // 4: accuracy pair...
		{Problem: P4, Budget: 3, Sampling: Sampling{Accuracy: acc}, Config: fw}, // 5: ...same sizing budget, shares
		{Problem: P4, Budget: 5, Sampling: Sampling{Accuracy: acc}, Config: fw}, // 6: other sizing budget, alone
		{Problem: P1, Budget: 0, Config: fw},                                    // 7: invalid budget
		{Problem: 0, Budget: 3, Config: fw},                                     // 8: invalid problem
	}
	outcomes, report := SolveBatch(g, specs, nil)
	if report.Groups != 1 || report.Coalesced != 2 {
		t.Fatalf("report %+v, want exactly the accuracy pair coalesced", report)
	}
	if report.Singletons != 5 {
		t.Fatalf("report %+v, want 5 singletons", report)
	}
	if report.GroupOf[4] != report.GroupOf[5] || report.GroupOf[4] == report.GroupOf[6] {
		t.Fatalf("accuracy grouping wrong: %v", report.GroupOf)
	}
	if report.GroupOf[7] != -1 || report.GroupOf[8] != -1 {
		t.Fatalf("invalid specs not rejected: %v", report.GroupOf)
	}
	if outcomes[7].Err == nil || outcomes[8].Err == nil {
		t.Fatal("invalid specs did not fail")
	}
	for i := 0; i <= 6; i++ {
		if outcomes[i].Err != nil {
			t.Fatalf("spec %d: %v", i, outcomes[i].Err)
		}
		want, err := Solve(g, specs[i])
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "grouping", outcomes[i].Result, want)
	}
}

// TestSolveBatchSeedsNotAliased checks peeled members own their seed
// slices: mutating one member's seeds must not corrupt another's.
func TestSolveBatchSeedsNotAliased(t *testing.T) {
	g := smallSBM(t, 6)
	base := quickCfg(11)
	specs := []ProblemSpec{
		{Problem: P1, Budget: 2, Config: base},
		{Problem: P1, Budget: 4, Config: base},
	}
	outcomes, _ := SolveBatch(g, specs, nil)
	for i := range outcomes {
		if outcomes[i].Err != nil {
			t.Fatal(outcomes[i].Err)
		}
	}
	keep := append([]graph.NodeID(nil), outcomes[1].Result.Seeds...)
	for i := range outcomes[0].Result.Seeds {
		outcomes[0].Result.Seeds[i] = -1
	}
	for i, v := range outcomes[1].Result.Seeds {
		if v != keep[i] {
			t.Fatal("peeled seed slices alias the shared run's backing array")
		}
	}
}
