package fairim

import (
	"errors"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/ris"
)

func warmTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 200, G: 0.6, PHom: 0.05, PHet: 0.01, PActivate: 0.2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWarmExtensionMatchesColdSolve is the end-to-end prefix-extension
// parity pin: solving at a small budget with CaptureWarm, then solving at
// a larger budget warm-started from the capture, must yield exactly the
// seeds and values of a cold large-budget solve — same estimator sample,
// fixed RNG. Both problems (P1 and P4) and both engines are covered.
func TestWarmExtensionMatchesColdSolve(t *testing.T) {
	g := warmTestGraph(t)
	const small, big = 4, 10
	for _, engine := range []Engine{EngineForwardMC, EngineRIS} {
		for _, problem := range []Problem{P1, P4} {
			cfg := DefaultConfig(5)
			cfg.Tau = 5
			cfg.Engine = engine
			cfg.Samples = 150
			cfg.ReportOnSample = true
			cfg.Trace = true

			coldCfg := cfg
			cold, err := Solve(g, ProblemSpec{Problem: problem, Budget: big, Config: coldCfg})
			if err != nil {
				t.Fatal(err)
			}

			smallCfg := cfg
			smallCfg.CaptureWarm = true
			first, err := Solve(g, ProblemSpec{Problem: problem, Budget: small, Config: smallCfg})
			if err != nil {
				t.Fatal(err)
			}
			if first.Warm == nil {
				t.Fatalf("%v/%v: CaptureWarm returned no warm state", engine, problem)
			}
			if len(first.Warm.Seeds) != small {
				t.Fatalf("%v/%v: warm prefix has %d seeds, want %d", engine, problem, len(first.Warm.Seeds), small)
			}

			warmCfg := cfg
			warmCfg.Warm = first.Warm
			warmCfg.CaptureWarm = true
			ext, err := Solve(g, ProblemSpec{Problem: problem, Budget: big, Config: warmCfg})
			if err != nil {
				t.Fatal(err)
			}

			if len(ext.Seeds) != len(cold.Seeds) {
				t.Fatalf("%v/%v: warm solve picked %d seeds, cold %d", engine, problem, len(ext.Seeds), len(cold.Seeds))
			}
			for i := range ext.Seeds {
				if ext.Seeds[i] != cold.Seeds[i] {
					t.Fatalf("%v/%v: seed %d differs, warm %d vs cold %d", engine, problem, i, ext.Seeds[i], cold.Seeds[i])
				}
			}
			if len(ext.Trace) != len(cold.Trace) {
				t.Fatalf("%v/%v: warm trace has %d entries, cold %d", engine, problem, len(ext.Trace), len(cold.Trace))
			}
			for i := range ext.Trace {
				if ext.Trace[i].Objective != cold.Trace[i].Objective || ext.Trace[i].Seed != cold.Trace[i].Seed {
					t.Fatalf("%v/%v: trace %d differs, warm %+v vs cold %+v", engine, problem, i, ext.Trace[i], cold.Trace[i])
				}
			}
			// The extension must actually skip work: replayed picks cost no
			// gain evaluations and no candidate-wide first pass.
			if ext.Evaluations >= cold.Evaluations {
				t.Fatalf("%v/%v: warm solve spent %d evaluations, cold %d", engine, problem, ext.Evaluations, cold.Evaluations)
			}
			// And the new warm state must cover the larger budget.
			if ext.Warm == nil || len(ext.Warm.Seeds) != big {
				t.Fatalf("%v/%v: extended warm state not recaptured", engine, problem)
			}
		}
	}
}

// TestWarmShorterBudgetIsPureReplay: a warm prefix longer than the asked
// budget answers by replay alone — identical seeds, zero evaluations.
func TestWarmShorterBudgetIsPureReplay(t *testing.T) {
	g := warmTestGraph(t)
	cfg := DefaultConfig(5)
	cfg.Tau = 5
	cfg.Samples = 150
	cfg.ReportOnSample = true
	cfg.CaptureWarm = true
	full, err := Solve(g, ProblemSpec{Problem: P1, Budget: 8, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if full.Warm == nil {
		t.Fatal("no warm state captured")
	}
	cfg.Warm = full.Warm
	short, err := Solve(g, ProblemSpec{Problem: P1, Budget: 3, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if short.Evaluations != 0 {
		t.Fatalf("pure replay spent %d evaluations", short.Evaluations)
	}
	for i, v := range short.Seeds {
		if v != full.Seeds[i] {
			t.Fatalf("replayed seed %d is %d, want %d", i, v, full.Seeds[i])
		}
	}
	if short.Warm != nil {
		t.Fatal("shorter-budget replay must not claim a longer warm state")
	}
}

// TestWarmValidation: malformed warm state is rejected before any
// sampling is spent.
func TestWarmValidation(t *testing.T) {
	g := warmTestGraph(t)
	cfg := DefaultConfig(1)
	cfg.Warm = &WarmStart{Seeds: []graph.NodeID{0}}
	if _, err := Solve(g, ProblemSpec{Problem: P1, Budget: 2, Config: cfg}); err == nil {
		t.Error("warm start without snapshot accepted")
	}
}

// TestCancelDuringSampling: a cancel that fires before sampling starts
// aborts inside the sampling loop with ErrCanceled — for both engines and
// for the accuracy-sized RIS path.
func TestCancelDuringSampling(t *testing.T) {
	g := warmTestGraph(t)
	done := make(chan struct{})
	close(done)
	for _, engine := range []Engine{EngineForwardMC, EngineRIS} {
		cfg := DefaultConfig(3)
		cfg.Tau = 5
		cfg.Engine = engine
		cfg.Samples = 2000
		cfg.Cancel = done
		if _, err := Solve(g, ProblemSpec{Problem: P1, Budget: 3, Config: cfg}); !errors.Is(err, ErrCanceled) {
			t.Errorf("%v: got %v, want ErrCanceled", engine, err)
		}
	}
	cfg := DefaultConfig(3)
	cfg.Tau = 5
	cfg.Engine = EngineRIS
	cfg.Cancel = done
	spec := ProblemSpec{Problem: P1, Budget: 3, Config: cfg,
		Sampling: Sampling{Accuracy: &Accuracy{Epsilon: 0.3, Delta: 0.1}}}
	if _, err := Solve(g, spec); !errors.Is(err, ErrCanceled) {
		t.Errorf("accuracy-sized RIS: got %v, want ErrCanceled", err)
	}
	// ris.Estimator injection path still works warm after cancellations.
	col, err := ris.Sample(g, 5, []int{100, 100}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	okCfg := DefaultConfig(3)
	okCfg.Tau = 5
	okCfg.Estimator = ris.NewEstimator(col)
	okCfg.ReportOnSample = true
	if _, err := Solve(g, ProblemSpec{Problem: P1, Budget: 3, Config: okCfg}); err != nil {
		t.Fatal(err)
	}
}
