package fairim

import (
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/graph"
)

func TestDelayedDiffusionSolve(t *testing.T) {
	g := smallSBM(t, 30)
	cfg := quickCfg(31)
	cfg.Tau = 6
	cfg.Delay = cascade.GeometricDelay{M: 0.5}

	res, err := SolveFairTCIMBudget(g, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 || res.Total <= 0 {
		t.Fatalf("delayed solve: %d seeds, total %v", len(res.Seeds), res.Total)
	}

	// Same budget without delays reaches more people within the deadline.
	cfg2 := cfg
	cfg2.Delay = nil
	plain, err := SolveFairTCIMBudget(g, 5, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total >= plain.Total {
		t.Fatalf("meeting delays should reduce reach: delayed %v vs plain %v", res.Total, plain.Total)
	}
}

func TestDelayedCoverNeedsMoreSeeds(t *testing.T) {
	g := smallSBM(t, 32)
	cfg := quickCfg(33)
	cfg.Tau = 6
	const quota = 0.15

	plain, err := SolveTCIMCover(g, quota, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Delay = cascade.GeometricDelay{M: 0.4}
	delayed, err := SolveTCIMCover(g, quota, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(delayed.Seeds) < len(plain.Seeds) {
		t.Fatalf("delayed cover used %d seeds, plain %d", len(delayed.Seeds), len(plain.Seeds))
	}
}

func TestDelayedValidation(t *testing.T) {
	g := smallSBM(t, 34)
	cfg := quickCfg(35)
	cfg.Delay = cascade.GeometricDelay{M: 0.5}
	cfg.Model = cascade.LT
	if _, err := SolveTCIMBudget(g, 3, cfg); err == nil {
		t.Fatal("Delay+LT accepted")
	}
	cfg.Model = cascade.IC
	cfg.Discount = 0.5
	if _, err := SolveTCIMBudget(g, 3, cfg); err == nil {
		t.Fatal("Delay+Discount accepted")
	}
}

func TestDiscountedSolve(t *testing.T) {
	g := smallSBM(t, 36)
	cfg := quickCfg(37)
	cfg.Discount = 0.7

	res, err := SolveFairTCIMBudget(g, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 || res.Total <= 0 {
		t.Fatalf("discounted solve: %d seeds, total %v", len(res.Seeds), res.Total)
	}

	// Discounted utility is bounded by the undiscounted one for the same
	// seeds (report paths differ only in the discount).
	cfg2 := cfg
	cfg2.Discount = 0
	same, err := EvaluateSeeds(g, res.Seeds, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total > same.Total+1e-9 {
		t.Fatalf("discounted %v exceeds undiscounted %v", res.Total, same.Total)
	}
}

func TestDiscountValidation(t *testing.T) {
	g := smallSBM(t, 38)
	cfg := quickCfg(39)
	for _, d := range []float64{-0.2, 1.0, 2.5} {
		cfg.Discount = d
		if _, err := SolveTCIMBudget(g, 3, cfg); err == nil {
			t.Fatalf("discount %v accepted", d)
		}
	}
}

func TestDiscountedEvaluateSeeds(t *testing.T) {
	g := smallSBM(t, 40)
	cfg := quickCfg(41)
	cfg.Discount = 0.8
	res, err := EvaluateSeeds(g, []graph.NodeID{0, 50}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 2 { // the two seeds at γ^0 each
		t.Fatalf("total %v below seed mass", res.Total)
	}
}

func TestDelayedTraceMonotone(t *testing.T) {
	g := smallSBM(t, 42)
	cfg := quickCfg(43)
	cfg.Tau = 8
	cfg.Delay = cascade.UniformDelay{Min: 1, Max: 3}
	cfg.Trace = true
	res, err := SolveFairTCIMCover(g, 0.1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Total < res.Trace[i-1].Total-1e-9 {
			t.Fatal("delayed trace decreased")
		}
	}
}
