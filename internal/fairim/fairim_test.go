package fairim

import (
	"math"
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

// smallSBM returns a quick 120-node imbalanced two-block graph exhibiting
// the paper's disparity mechanism.
func smallSBM(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 120, G: 0.7, PHom: 0.08, PHet: 0.004, PActivate: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func quickCfg(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Tau = 10
	cfg.Samples = 60
	cfg.EvalSamples = 120
	return cfg
}

func TestConfigValidation(t *testing.T) {
	g := smallSBM(t, 1)
	bad := []Config{
		{Tau: -1, Samples: 10},
		{Tau: 5, Samples: -2}, // zero now means DefaultSamples; negative stays invalid
		{Tau: 5, Samples: 10, EvalSamples: -1},
		{Tau: 5, Samples: 10, Candidates: []graph.NodeID{-1}},
		{Tau: 5, Samples: 10, Candidates: []graph.NodeID{9999}},
	}
	for i, cfg := range bad {
		if _, err := SolveTCIMBudget(g, 2, cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := SolveTCIMBudget(g, 0, quickCfg(1)); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := SolveTCIMCover(g, 0, quickCfg(1)); err == nil {
		t.Fatal("zero quota accepted")
	}
	if _, err := SolveTCIMCover(g, 1.5, quickCfg(1)); err == nil {
		t.Fatal("quota > 1 accepted")
	}
}

func TestBudgetSolversBasic(t *testing.T) {
	g := smallSBM(t, 2)
	cfg := quickCfg(3)
	for _, solve := range []func(*graph.Graph, int, Config) (*Result, error){
		SolveTCIMBudget, SolveFairTCIMBudget,
	} {
		res, err := solve(g, 5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != 5 {
			t.Fatalf("%s picked %d seeds", res.Problem, len(res.Seeds))
		}
		if res.Total <= 0 {
			t.Fatalf("%s total %v", res.Problem, res.Total)
		}
		if len(res.PerGroup) != 2 || len(res.NormPerGroup) != 2 {
			t.Fatalf("%s group vectors wrong", res.Problem)
		}
		sum := res.PerGroup[0] + res.PerGroup[1]
		if math.Abs(sum-res.Total) > 1e-9 {
			t.Fatalf("%s total %v != Σ groups %v", res.Problem, res.Total, sum)
		}
		if res.Disparity < 0 || res.Disparity > 1 {
			t.Fatalf("%s disparity %v", res.Problem, res.Disparity)
		}
		// Seeds must be distinct.
		seen := map[graph.NodeID]bool{}
		for _, s := range res.Seeds {
			if seen[s] {
				t.Fatalf("%s repeated seed %d", res.Problem, s)
			}
			seen[s] = true
		}
	}
}

func TestFairnessReducesDisparity(t *testing.T) {
	// The headline claim (Fig. 4a): P4-log has lower disparity than P1 on an
	// imbalanced, homophilous graph, at a modest total-influence cost.
	g := smallSBM(t, 4)
	cfg := quickCfg(5)
	p1, err := SolveTCIMBudget(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := SolveFairTCIMBudget(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p4.Disparity >= p1.Disparity {
		t.Fatalf("P4 disparity %v not lower than P1 %v", p4.Disparity, p1.Disparity)
	}
	if p4.Total > p1.Total*1.2 {
		t.Logf("note: P4 total %v exceeds P1 %v (possible on some graphs; see §7.2)", p4.Total, p1.Total)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := smallSBM(t, 6)
	cfg := quickCfg(7)
	a, err := SolveFairTCIMBudget(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveFairTCIMBudget(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed sets differ: %v vs %v", a.Seeds, b.Seeds)
		}
	}
	if a.Total != b.Total {
		t.Fatal("totals differ across identical runs")
	}
}

func TestPlainGreedyMatchesCELF(t *testing.T) {
	g := smallSBM(t, 8)
	cfg := quickCfg(9)
	lazy, err := SolveFairTCIMBudget(g, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PlainGreedy = true
	plain, err := SolveFairTCIMBudget(g, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lazy.Seeds {
		if lazy.Seeds[i] != plain.Seeds[i] {
			t.Fatalf("CELF %v vs plain %v", lazy.Seeds, plain.Seeds)
		}
	}
	if lazy.Evaluations >= plain.Evaluations {
		t.Fatalf("CELF evaluations %d not fewer than plain %d", lazy.Evaluations, plain.Evaluations)
	}
}

func TestCoverSolversReachQuota(t *testing.T) {
	g := smallSBM(t, 10)
	cfg := quickCfg(11)
	const quota = 0.2

	p2, err := SolveTCIMCover(g, quota, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NormTotal < quota-0.05 {
		t.Fatalf("P2 reached %v < quota %v", p2.NormTotal, quota)
	}

	p6, err := SolveFairTCIMCover(g, quota, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// P6 must cover every group (tolerance for fresh-world noise).
	for i, frac := range p6.NormPerGroup {
		if frac < quota-0.06 {
			t.Fatalf("P6 group %d fraction %v < quota %v", i, frac, quota)
		}
	}
	// P6 needs at least as many seeds as P2 (it solves a harder constraint).
	if len(p6.Seeds) < len(p2.Seeds) {
		t.Fatalf("P6 used %d seeds, P2 used %d", len(p6.Seeds), len(p2.Seeds))
	}
}

func TestCoverInfeasibleQuota(t *testing.T) {
	// Two isolated nodes, quota 1: reachable only by seeding everything;
	// with MaxSeeds 1 it must fail.
	b := graph.NewBuilder(4)
	b.SetGroups([]int{0, 0, 1, 1})
	g := b.MustBuild()
	cfg := quickCfg(12)
	cfg.MaxSeeds = 1
	if _, err := SolveFairTCIMCover(g, 1.0, cfg); err == nil {
		t.Fatal("infeasible cover did not error")
	}
}

func TestCoverIsolatedGraphFullQuota(t *testing.T) {
	// Without MaxSeeds, covering isolated nodes at quota 1 requires seeding
	// every node.
	b := graph.NewBuilder(4)
	b.SetGroups([]int{0, 0, 1, 1})
	g := b.MustBuild()
	cfg := quickCfg(13)
	res, err := SolveFairTCIMCover(g, 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("needed %d seeds, want 4", len(res.Seeds))
	}
	if res.Disparity > 1e-9 {
		t.Fatalf("full coverage should have zero disparity, got %v", res.Disparity)
	}
}

func TestTraceRecorded(t *testing.T) {
	g := smallSBM(t, 14)
	cfg := quickCfg(15)
	cfg.Trace = true
	res, err := SolveFairTCIMCover(g, 0.15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(res.Seeds) {
		t.Fatalf("trace has %d entries for %d seeds", len(res.Trace), len(res.Seeds))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Total < res.Trace[i-1].Total-1e-9 {
			t.Fatal("trace totals decreased")
		}
		if res.Trace[i].Objective < res.Trace[i-1].Objective-1e-9 {
			t.Fatal("trace objective decreased")
		}
	}
	// No trace by default.
	cfg.Trace = false
	res2, err := SolveTCIMBudget(g, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatal("unexpected trace")
	}
}

func TestCandidateRestriction(t *testing.T) {
	g := smallSBM(t, 16)
	cfg := quickCfg(17)
	cfg.Candidates = []graph.NodeID{0, 1, 2, 3, 4}
	res, err := SolveTCIMBudget(g, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Seeds {
		if s > 4 {
			t.Fatalf("seed %d outside candidate set", s)
		}
	}
}

func TestEvaluateSeeds(t *testing.T) {
	g := smallSBM(t, 18)
	cfg := quickCfg(19)
	res, err := EvaluateSeeds(g, []graph.NodeID{0, 60}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 2 {
		t.Fatalf("total %v < seed count", res.Total)
	}
	if _, err := EvaluateSeeds(g, []graph.NodeID{-2}, cfg); err == nil {
		t.Fatal("bad seed accepted")
	}
	// EvaluateSeeds on a solver's output reproduces the solver's report.
	solved, err := SolveTCIMBudget(g, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	re, err := EvaluateSeeds(g, solved.Seeds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.Total-solved.Total) > 1e-9 {
		t.Fatalf("re-evaluation %v != solver report %v", re.Total, solved.Total)
	}
}

func TestExactSolversOnFig1(t *testing.T) {
	g, names := generate.Fig1Example()
	cfg := Config{Tau: 2, Model: cascade.IC, Samples: 120, EvalSamples: 400, Seed: 20, H: concave.Log{}}

	p1, err := SolveTCIMBudgetExact(g, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := SolveFairTCIMBudgetExact(g, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 1 story at τ=2: the unfair optimum starves the red
	// group; the fair optimum does not.
	if p1.NormPerGroup[1] > 0.03 {
		t.Fatalf("P1 red-group utility %v, expected ≈0 at τ=2", p1.NormPerGroup[1])
	}
	if p4.NormPerGroup[1] < 0.1 {
		t.Fatalf("P4 red-group utility %v, expected clearly positive", p4.NormPerGroup[1])
	}
	if p4.Disparity >= p1.Disparity {
		t.Fatalf("fair disparity %v not below unfair %v", p4.Disparity, p1.Disparity)
	}
	_ = names
}

func TestExactBeatsGreedyNever(t *testing.T) {
	// Greedy can never beat the exact optimum on the same objective
	// (evaluated on the same fresh worlds).
	g, _ := generate.Fig1Example()
	cfg := Config{Tau: 4, Model: cascade.IC, Samples: 80, EvalSamples: 300, Seed: 21}
	exact, err := SolveTCIMBudgetExact(g, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := SolveTCIMBudget(g, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Allow slack: optimization and evaluation worlds differ.
	if greedy.Total > exact.Total*1.15+1 {
		t.Fatalf("greedy %v implausibly beats exact %v", greedy.Total, exact.Total)
	}
	// And the (1-1/e) guarantee should hold comfortably.
	if greedy.Total < (1-1/math.E)*exact.Total-1.5 {
		t.Fatalf("greedy %v below guarantee vs exact %v", greedy.Total, exact.Total)
	}
}

func TestTheoremBounds(t *testing.T) {
	if b := TheoremOneBound(concave.Identity{}, 10); math.Abs(b-(1-1/math.E)*10) > 1e-12 {
		t.Fatalf("TheoremOneBound = %v", b)
	}
	if b := TheoremTwoBound(99, []int{2, 3}); math.Abs(b-math.Log(100)*5) > 1e-12 {
		t.Fatalf("TheoremTwoBound = %v", b)
	}
}

func TestTheoremOneHoldsEmpirically(t *testing.T) {
	// fτ(greedy-P4) >= (1-1/e)·H(fτ(P1 optimum)) per Theorem 1, checked on
	// the Fig-1 instance where the optimum is computable.
	g, _ := generate.Fig1Example()
	cfg := Config{Tau: 4, Model: cascade.IC, Samples: 100, EvalSamples: 400, Seed: 22, H: concave.Log{}}
	opt, err := SolveTCIMBudgetExact(g, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := SolveFairTCIMBudget(g, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bound := TheoremOneBound(concave.Log{}, opt.Total)
	if fair.Total < bound-0.5 {
		t.Fatalf("P4 total %v below Theorem 1 bound %v", fair.Total, bound)
	}
}

func TestLTModelSupported(t *testing.T) {
	g := smallSBM(t, 23)
	cfg := quickCfg(24)
	cfg.Model = cascade.LT
	res, err := SolveFairTCIMBudget(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 4 || res.Total <= 0 {
		t.Fatalf("LT solve: %d seeds, total %v", len(res.Seeds), res.Total)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(5)
	if cfg.Tau != 20 || cfg.Samples != 200 || cfg.Seed != 5 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	if cfg.H.Name() != "log" {
		t.Fatalf("default H = %q", cfg.H.Name())
	}
}
