package fairim

import (
	"math"
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/generate"
)

// Engine parity: the solvers must behave the same whether they optimize
// against forward Monte-Carlo or RIS estimates (satellite of the
// Estimator-seam refactor). Deterministic picks are checked on a p=1
// graph; stochastic agreement on the synthetic SBM within tolerance.

func TestEnginesAgreeOnDeterministicGraph(t *testing.T) {
	g := generate.TwoStars()
	for _, engine := range []Engine{EngineForwardMC, EngineRIS} {
		cfg := DefaultConfig(1)
		cfg.Tau = 1
		cfg.Samples = 50
		cfg.Engine = engine
		res, err := Solve(g, ProblemSpec{Problem: P1, Budget: 2, Config: cfg})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if len(res.Seeds) != 2 || res.Seeds[0] != 0 || res.Seeds[1] != 11 {
			t.Errorf("%v: seeds = %v, want [0 11]", engine, res.Seeds)
		}
	}
}

func TestEnginesAgreeOnSynthetic(t *testing.T) {
	gcfg := generate.DefaultTwoBlock(3)
	gcfg.N, gcfg.PHom, gcfg.PHet = 200, 0.06, 0.003
	g, err := generate.TwoBlock(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Parity is checked through the unified Solve entry point: both
	// engines run the same spec, differing only in Engine.
	run := func(engine Engine, problem Problem) *Result {
		cfg := DefaultConfig(5)
		cfg.Tau = 5
		cfg.EvalSamples = 400
		cfg.Engine = engine
		res, err := Solve(g, ProblemSpec{
			Problem:  problem,
			Budget:   5,
			Sampling: Sampling{Samples: 200, RISPerGroup: 6000},
			Config:   cfg,
		})
		if err != nil {
			t.Fatalf("%v %s: %v", engine, problem, err)
		}
		return res
	}
	for _, problem := range []Problem{P1, P4} {
		fwd := run(EngineForwardMC, problem)
		ris := run(EngineRIS, problem)
		// Both results are re-estimated on the same fresh forward worlds
		// (cfg.Seed+1), so utility differences reflect only seed choices.
		for i := range fwd.NormPerGroup {
			if d := math.Abs(fwd.NormPerGroup[i] - ris.NormPerGroup[i]); d > 0.1 {
				t.Errorf("%s group %d: forward-MC %.3f vs RIS %.3f", problem, i,
					fwd.NormPerGroup[i], ris.NormPerGroup[i])
			}
		}
		if d := math.Abs(fwd.NormTotal - ris.NormTotal); d > 0.1 {
			t.Errorf("%s total: forward-MC %.3f vs RIS %.3f", problem, fwd.NormTotal, ris.NormTotal)
		}
	}
}

func TestRISEngineRejectsUnsupportedModels(t *testing.T) {
	g := generate.TwoStars()
	base := DefaultConfig(1)
	base.Engine = EngineRIS

	lt := base
	lt.Model = cascade.LT
	if _, err := SolveTCIMBudget(g, 1, lt); err == nil {
		t.Error("RIS engine accepted the LT model")
	}
	delayed := base
	delayed.Delay = cascade.GeometricDelay{M: 0.5}
	if _, err := SolveTCIMBudget(g, 1, delayed); err == nil {
		t.Error("RIS engine accepted delayed diffusion")
	}
	discounted := base
	discounted.Discount = 0.5
	if _, err := SolveTCIMBudget(g, 1, discounted); err == nil {
		t.Error("RIS engine accepted discounted utility")
	}
}

func TestEngineByName(t *testing.T) {
	cases := map[string]Engine{
		"forward-mc": EngineForwardMC,
		"forward":    EngineForwardMC,
		"mc":         EngineForwardMC,
		"RIS":        EngineRIS,
		"ris":        EngineRIS,
	}
	for name, want := range cases {
		got, err := EngineByName(name)
		if err != nil || got != want {
			t.Errorf("EngineByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := EngineByName("quantum"); err == nil {
		t.Error("EngineByName accepted an unknown engine")
	}
}
