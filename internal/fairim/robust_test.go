package fairim

import (
	"math"
	"testing"

	"fairtcim/internal/graph"
)

func TestRobustValidation(t *testing.T) {
	g := smallSBM(t, 50)
	cfg := quickCfg(51)
	if _, err := EvaluateSeedsRobust(g, []graph.NodeID{0}, cfg, -0.1, 5); err == nil {
		t.Fatal("negative drop accepted")
	}
	if _, err := EvaluateSeedsRobust(g, []graph.NodeID{0}, cfg, 1.0, 5); err == nil {
		t.Fatal("drop=1 accepted")
	}
	if _, err := EvaluateSeedsRobust(g, []graph.NodeID{0}, cfg, 0.2, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := EvaluateSeedsRobust(g, []graph.NodeID{-5}, cfg, 0.2, 3); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestRobustZeroDropMatchesPlain(t *testing.T) {
	g := smallSBM(t, 52)
	cfg := quickCfg(53)
	seeds := []graph.NodeID{0, 30, 90}
	plain, err := EvaluateSeeds(g, seeds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := EvaluateSeedsRobust(g, seeds, cfg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With no dropout every trial evaluates the same set; means should be
	// within Monte-Carlo noise of the plain estimate.
	if math.Abs(robust.MeanTotal-plain.Total) > 0.25*plain.Total+2 {
		t.Fatalf("zero-drop robust %v vs plain %v", robust.MeanTotal, plain.Total)
	}
}

func TestRobustDropReducesUtility(t *testing.T) {
	g := smallSBM(t, 54)
	cfg := quickCfg(55)
	res, err := SolveTCIMBudget(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	light, err := EvaluateSeedsRobust(g, res.Seeds, cfg, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := EvaluateSeedsRobust(g, res.Seeds, cfg, 0.7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanTotal >= light.MeanTotal {
		t.Fatalf("heavy dropout %v not below light %v", heavy.MeanTotal, light.MeanTotal)
	}
	if heavy.WorstDisp < heavy.MeanDisp {
		t.Fatal("worst disparity below mean")
	}
}

func TestRobustDeterministic(t *testing.T) {
	g := smallSBM(t, 56)
	cfg := quickCfg(57)
	seeds := []graph.NodeID{1, 2, 3, 4}
	a, err := EvaluateSeedsRobust(g, seeds, cfg, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateSeedsRobust(g, seeds, cfg, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanTotal != b.MeanTotal || a.MeanDisp != b.MeanDisp {
		t.Fatal("robust evaluation not deterministic")
	}
}
