package fairim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

func TestProblemByName(t *testing.T) {
	for name, want := range map[string]Problem{
		"p1": P1, "P2": P2, "p4": P4, "P6": P6,
	} {
		got, err := ProblemByName(name)
		if err != nil || got != want {
			t.Errorf("ProblemByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ProblemByName("p3"); err == nil {
		t.Error("ProblemByName accepted p3")
	}
	if P1.String() != "P1" || P6.String() != "P6" {
		t.Errorf("String(): %s %s", P1, P6)
	}
	if !P1.IsBudget() || !P4.IsBudget() || P2.IsBudget() || P6.IsBudget() {
		t.Error("IsBudget misclassifies")
	}
}

func TestSolveRejectsBadSpecs(t *testing.T) {
	g := smallSBM(t, 1)
	cases := map[string]ProblemSpec{
		"zero problem":     {Budget: 3, Config: quickCfg(1)},
		"zero budget":      {Problem: P1, Config: quickCfg(1)},
		"zero quota":       {Problem: P6, Config: quickCfg(1)},
		"quota above one":  {Problem: P2, Quota: 1.5, Config: quickCfg(1)},
		"negative samples": {Problem: P1, Budget: 3, Sampling: Sampling{Samples: -5}, Config: quickCfg(1)},
		"explicit and accuracy": {Problem: P1, Budget: 3,
			Sampling: Sampling{Samples: 50, Accuracy: &Accuracy{Epsilon: 0.2, Delta: 0.1}}, Config: quickCfg(1)},
		"bad epsilon": {Problem: P1, Budget: 3,
			Sampling: Sampling{Accuracy: &Accuracy{Epsilon: 0, Delta: 0.1}}, Config: quickCfg(1)},
		"bad delta": {Problem: P1, Budget: 3,
			Sampling: Sampling{Accuracy: &Accuracy{Epsilon: 0.2, Delta: 1}}, Config: quickCfg(1)},
	}
	for name, spec := range cases {
		if _, err := Solve(g, spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSolveMatchesDeprecatedWrappers pins the wrappers as pure sugar: the
// unified entry point must reproduce their results exactly.
func TestSolveMatchesDeprecatedWrappers(t *testing.T) {
	g := smallSBM(t, 2)
	cfg := quickCfg(3)
	p4, err := Solve(g, ProblemSpec{Problem: P4, Budget: 5, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	old, err := SolveFairTCIMBudget(g, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p4.Seeds, old.Seeds) || p4.Total != old.Total {
		t.Errorf("Solve and wrapper disagree: %v/%v vs %v/%v", p4.Seeds, p4.Total, old.Seeds, old.Total)
	}
	p6, err := Solve(g, ProblemSpec{Problem: P6, Quota: 0.15, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	oldCover, err := SolveFairTCIMCover(g, 0.15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p6.Seeds, oldCover.Seeds) {
		t.Errorf("cover seeds differ: %v vs %v", p6.Seeds, oldCover.Seeds)
	}
	if p6.Problem != "P6" {
		t.Errorf("problem name %q", p6.Problem)
	}
}

// TestSolveSamplingBlockPrecedence: explicit Sampling budgets override the
// embedded Config's, and the zero spec falls back to DefaultSamples.
func TestSolveSamplingBlockPrecedence(t *testing.T) {
	g := generate.TwoStars()
	cfg := DefaultConfig(1)
	cfg.Tau = 3
	cfg.Samples = 40
	res, err := Solve(g, ProblemSpec{Problem: P1, Budget: 1, Sampling: Sampling{Samples: 77}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 77 {
		t.Errorf("resolved samples %d, want Sampling override 77", res.Samples)
	}
	cfg.Samples = 0
	res, err = Solve(g, ProblemSpec{Problem: P1, Budget: 1, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != DefaultSamples {
		t.Errorf("resolved samples %d, want default %d", res.Samples, DefaultSamples)
	}
}

// TestSolveAccuracyForwardMC: an accuracy target with no explicit budgets
// resolves to the Hoeffding world count and completes the solve.
func TestSolveAccuracyForwardMC(t *testing.T) {
	g := generate.TwoStars()
	cfg := DefaultConfig(1)
	cfg.Tau = 3
	cfg.Samples = 0
	spec := ProblemSpec{
		Problem: P4, Budget: 2,
		Sampling: Sampling{Accuracy: &Accuracy{Epsilon: 0.2, Delta: 0.05}},
		Config:   cfg,
	}
	res, err := Solve(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := HoeffdingWorlds(0.2, 0.05, 2, g.N(), g.NumGroups())
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != want {
		t.Errorf("resolved samples %d, want Hoeffding %d", res.Samples, want)
	}
	if len(res.Seeds) != 2 {
		t.Errorf("picked %d seeds", len(res.Seeds))
	}
}

// TestSolveAccuracyRIS: under the RIS engine the accuracy target drives
// the geometric-doubling pool sizer, and the resolved pool is reported.
func TestSolveAccuracyRIS(t *testing.T) {
	g := smallSBM(t, 4)
	cfg := DefaultConfig(2)
	cfg.Tau = 5
	cfg.Engine = EngineRIS
	cfg.Samples = 0
	res, err := Solve(g, ProblemSpec{
		Problem: P4, Budget: 3,
		Sampling: Sampling{Accuracy: &Accuracy{Epsilon: 0.3, Delta: 0.1}},
		Config:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RISPerGroup < 256 {
		t.Errorf("accuracy-derived pool %d below the pilot size", res.RISPerGroup)
	}
	if res.Samples != 0 {
		t.Errorf("RIS solve reports %d forward worlds; none were drawn", res.Samples)
	}
	if len(res.Seeds) != 3 {
		t.Errorf("picked %d seeds", len(res.Seeds))
	}
	// The wrapper path with explicit budgets must report its pool too.
	explicit, err := Solve(g, ProblemSpec{Problem: P4, Budget: 3,
		Sampling: Sampling{RISPerGroup: 4000}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.RISPerGroup != 4000 {
		t.Errorf("explicit pool reported as %d, want 4000", explicit.RISPerGroup)
	}
}

func TestHoeffdingWorlds(t *testing.T) {
	base, err := HoeffdingWorlds(0.2, 0.05, 5, 200, 2)
	if err != nil || base <= 0 {
		t.Fatalf("base: %d, %v", base, err)
	}
	tighter, err := HoeffdingWorlds(0.1, 0.05, 5, 200, 2)
	if err != nil || tighter <= base {
		t.Fatalf("halving epsilon should grow worlds: %d vs %d (%v)", tighter, base, err)
	}
	if _, err := HoeffdingWorlds(0.001, 0.0001, 400, 1e6, 5); err == nil {
		t.Error("absurd accuracy target not rejected by the cap")
	}
	if _, err := HoeffdingWorlds(0, 0.05, 5, 200, 2); err == nil {
		t.Error("epsilon 0 accepted")
	}
}

// TestOnIterationStreams pins the streaming seam the job-trace API relies
// on: the callback fires once per greedy pick, in pick order, with the
// same snapshots Trace records.
func TestOnIterationStreams(t *testing.T) {
	g := smallSBM(t, 5)
	cfg := quickCfg(6)
	cfg.Trace = true
	var streamed []IterationStat
	cfg.OnIteration = func(st IterationStat) { streamed = append(streamed, st) }
	res, err := Solve(g, ProblemSpec{Problem: P4, Budget: 4, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Seeds) {
		t.Fatalf("callback fired %d times for %d picks", len(streamed), len(res.Seeds))
	}
	if !reflect.DeepEqual(streamed, res.Trace) {
		t.Errorf("streamed stats differ from recorded trace")
	}
	for i, st := range streamed {
		if st.Seed != res.Seeds[i] {
			t.Errorf("pick %d: streamed seed %d, result seed %d", i, st.Seed, res.Seeds[i])
		}
	}
}

// TestEvaluateWithInjectedEstimator covers the serving fast path directly:
// a warm estimator built from a shared sample is injected and must (a) be
// Reset before use, (b) produce exactly the estimates the sample implies,
// and (c) be reported against the sample's size.
func TestEvaluateWithInjectedEstimator(t *testing.T) {
	g := smallSBM(t, 7)
	seeds := []graph.NodeID{0, 1, 5}

	// RIS: one shared Collection, estimator reused across calls.
	col, err := ris.Sample(g, 5, []int{3000, 3000}, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := ris.NewEstimator(col)
	warm.Add(2) // stale state the solve must Reset away
	cfg := DefaultConfig(9)
	cfg.Tau = 5
	cfg.Engine = EngineRIS
	cfg.Estimator = warm
	cfg.ReportOnSample = true
	res, err := Evaluate(g, seeds, ProblemSpec{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	direct := ris.NewEstimator(col)
	for _, v := range seeds {
		direct.Add(v)
	}
	if want := direct.GroupUtilities(); !reflect.DeepEqual(res.PerGroup, want) {
		t.Errorf("injected-estimator utilities %v, want %v", res.PerGroup, want)
	}
	if res.RISPerGroup != 3000 {
		t.Errorf("reported pool %d, want 3000", res.RISPerGroup)
	}

	// Forward MC: same contract over a shared world set.
	worlds := cascade.SampleWorlds(g, cascade.IC, 80, 9, 0)
	ev, err := influence.NewEvaluator(g, worlds, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev.Add(3)
	fcfg := DefaultConfig(9)
	fcfg.Tau = 5
	fcfg.Estimator = ev
	fcfg.ReportOnSample = true
	fres, err := Evaluate(g, seeds, ProblemSpec{Config: fcfg})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := influence.NewEvaluator(g, worlds, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range seeds {
		ref.Add(v)
	}
	if want := ref.GroupUtilities(); !reflect.DeepEqual(fres.PerGroup, want) {
		t.Errorf("forward injected utilities %v, want %v", fres.PerGroup, want)
	}
	if fres.Samples != 80 {
		t.Errorf("reported worlds %d, want 80", fres.Samples)
	}

	// A mismatched graph is still rejected through the spec path.
	other := generate.TwoStars()
	if _, err := Evaluate(other, []graph.NodeID{0}, ProblemSpec{Config: cfg}); err == nil {
		t.Error("estimator for the wrong graph accepted")
	}
}

// TestEvaluateAccuracySizesForSingleSet: accuracy-targeted evaluation of a
// fixed seed set needs no union over candidates, so it resolves far fewer
// worlds than a same-target solve.
func TestEvaluateAccuracySizesForSingleSet(t *testing.T) {
	g := smallSBM(t, 8)
	cfg := DefaultConfig(3)
	cfg.Tau = 5
	cfg.Samples = 0
	cfg.ReportOnSample = true
	spec := ProblemSpec{Sampling: Sampling{Accuracy: &Accuracy{Epsilon: 0.2, Delta: 0.05}}, Config: cfg}
	res, err := Evaluate(g, []graph.NodeID{0, 4}, spec)
	if err != nil {
		t.Fatal(err)
	}
	solveWorlds, err := HoeffdingWorlds(0.2, 0.05, 10, g.N(), g.NumGroups())
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples >= solveWorlds {
		t.Errorf("eval-only sizing %d not below solve sizing %d", res.Samples, solveWorlds)
	}
	if math.IsNaN(res.Disparity) || res.Total <= 0 {
		t.Errorf("implausible result: %+v", res)
	}

	// Fresh-world evaluation under the RIS engine must not build an
	// accuracy-sized RR pool it never reads: the report comes from (and
	// names) eval worlds only.
	rcfg := DefaultConfig(3)
	rcfg.Tau = 5
	rcfg.Engine = EngineRIS
	rcfg.Samples = 0
	fresh, err := Evaluate(g, []graph.NodeID{0, 4},
		ProblemSpec{Sampling: Sampling{Accuracy: &Accuracy{Epsilon: 0.2, Delta: 0.05}}, Config: rcfg})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.RISPerGroup != 0 {
		t.Errorf("fresh-world eval reports an RR pool of %d", fresh.RISPerGroup)
	}
	evalSized, err := EvalWorlds(Accuracy{Epsilon: 0.2, Delta: 0.05}, g.NumGroups())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Samples != evalSized {
		t.Errorf("fresh-world eval reports %d worlds, want the eval-sized count", fresh.Samples)
	}

	// A target beyond the auto-sizing cap errors like HoeffdingWorlds
	// instead of silently clamping the guarantee.
	if _, err := EvalWorlds(Accuracy{Epsilon: 0.0005, Delta: 0.05}, g.NumGroups()); err == nil {
		t.Error("absurd eval accuracy target not rejected by the cap")
	}
}

// TestSolveCancelBetweenPicks pins the cooperative cancellation seam the
// job API relies on: closing Config.Cancel from an OnIteration callback
// (i.e. exactly between greedy picks) aborts the solve with ErrCanceled
// after the current pick, deterministically.
func TestSolveCancelBetweenPicks(t *testing.T) {
	g := smallSBM(t, 5)
	cancel := make(chan struct{})
	cfg := quickCfg(6)
	picks := 0
	cfg.Cancel = cancel
	cfg.OnIteration = func(IterationStat) {
		picks++
		if picks == 2 {
			close(cancel)
		}
	}
	_, err := Solve(g, ProblemSpec{Problem: P4, Budget: 10, Config: cfg})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if picks != 2 {
		t.Fatalf("solve ran %d picks after the cancel, want exactly 2", picks)
	}

	// Cover problems abort through the same seam.
	picks = 0
	cancel = make(chan struct{})
	ccfg := quickCfg(6)
	ccfg.Cancel = cancel
	ccfg.OnIteration = func(IterationStat) {
		picks++
		if picks == 1 {
			close(cancel)
		}
	}
	_, err = Solve(g, ProblemSpec{Problem: P6, Quota: 0.9, Config: ccfg})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cover: err = %v, want ErrCanceled", err)
	}
	if picks != 1 {
		t.Fatalf("cover ran %d picks after the cancel, want exactly 1", picks)
	}

	// A cancel that fired before the solve starts costs zero picks.
	pre := make(chan struct{})
	close(pre)
	pcfg := quickCfg(6)
	pcfg.Cancel = pre
	pcfg.OnIteration = func(IterationStat) { t.Fatal("pick happened after pre-cancel") }
	if _, err := Solve(g, ProblemSpec{Problem: P1, Budget: 3, Config: pcfg}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: err = %v, want ErrCanceled", err)
	}

	// A nil Cancel changes nothing.
	ncfg := quickCfg(6)
	if _, err := Solve(g, ProblemSpec{Problem: P1, Budget: 3, Config: ncfg}); err != nil {
		t.Fatalf("nil cancel: %v", err)
	}
}
