package fairim

import (
	"fmt"

	"fairtcim/internal/estimator"
	"fairtcim/internal/graph"
	"fairtcim/internal/submodular"
)

// The exact solvers enumerate every candidate subset of the given budget
// and are exponential in the budget. They exist for the 38-node Figure-1
// illustration (which reports *optimal* solutions, not greedy ones) and as
// test oracles for the greedy guarantees.

// SolveTCIMBudgetExact solves P1 by exhaustive enumeration.
func SolveTCIMBudgetExact(g *graph.Graph, budget int, cfg Config) (*Result, error) {
	return solveExact("P1", g, budget, cfg, func(e estimator.Estimator) *objective {
		return newObjective(e, totalValue{}, Config{})
	})
}

// SolveFairTCIMBudgetExact solves P4 by exhaustive enumeration.
func SolveFairTCIMBudgetExact(g *graph.Graph, budget int, cfg Config) (*Result, error) {
	return solveExact("P4", g, budget, cfg, func(e estimator.Estimator) *objective {
		return newObjective(e, concaveValue{h: cfg.h(), weights: cfg.GroupWeights}, Config{})
	})
}

func solveExact(problem string, g *graph.Graph, budget int, cfg Config, mk func(estimator.Estimator) *objective) (*Result, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, fmt.Errorf("fairim: budget must be positive, got %d", budget)
	}
	eval, err := cfg.newEstimator(g)
	if err != nil {
		return nil, err
	}
	factory := func() submodular.Objective {
		eval.Reset()
		return mk(eval)
	}
	seeds, _, err := submodular.BruteForceMax(factory, cfg.candidates(g), budget)
	if err != nil {
		return nil, err
	}
	perGroup, err := cfg.estimate(g, seeds)
	if err != nil {
		return nil, err
	}
	out := &Result{Problem: problem, Seeds: seeds, PerGroup: perGroup}
	fillDerived(out, g)
	return out, nil
}
