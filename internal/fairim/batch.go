package fairim

import (
	"fmt"
	"math"

	"fairtcim/internal/cascade"
	"fairtcim/internal/estimator"
	"fairtcim/internal/graph"
	"fairtcim/internal/ris"
	"fairtcim/internal/submodular"
)

// BatchOptions carries the serving layer's hooks into a batched solve.
// All fields are optional; the zero value batches with cold sampling.
type BatchOptions struct {
	// Estimator, if non-nil, is asked once per coalesced group for a warm
	// optimization estimator (built from a cached sample). rep is the
	// group's representative spec — the member with the largest budget —
	// which carries everything needed to key a sample cache. Returning a
	// nil estimator (with nil error) means "no cached sample, sample
	// cold"; an error fails every member of the group.
	Estimator func(gid int, rep ProblemSpec) (estimator.Estimator, error)
	// Warm, if non-nil, is asked once per budget-problem group for a
	// memoized greedy prefix to replay (see Config.Warm). The same
	// equivalence contract applies: the warm state must have been captured
	// on the same graph, sample, and objective the key guarantees.
	Warm func(gid int, rep ProblemSpec) *WarmStart
	// OnWarm, if non-nil, receives the group's final CELF state after a
	// budget-problem group run, for memoization. The WarmStart is
	// immutable and covers the group's longest member.
	OnWarm func(gid int, rep ProblemSpec, w *WarmStart)
}

// BatchOutcome is one spec's result inside a batch: exactly what the
// sequential Solve for that spec would have returned, including its
// error.
type BatchOutcome struct {
	Result *Result
	Err    error
}

// BatchReport summarizes how SolveBatch planned a batch.
type BatchReport struct {
	// Groups is the number of coalesced groups — execution units that
	// served two or more specs from one shared estimator and greedy run.
	Groups int
	// Singletons is the number of specs that ran alone (incompatible with
	// every other spec in the batch, or not shareable at all).
	Singletons int
	// Coalesced is the number of specs served by a shared run — the sum
	// of member counts over Groups.
	Coalesced int
	// GroupOf maps each spec index to its execution-unit id (units are
	// numbered in first-occurrence order); -1 for specs rejected before
	// planning (invalid problem/constraint).
	GroupOf []int
}

// shareKey identifies the class of specs that may share one estimator
// and one lazy-greedy run with bit-identical per-member answers. Two
// specs with equal keys resolve to the same optimization sample and the
// same objective landscape, so the CELF prefix property (see
// submodular.Result.EvalsAt) lets one run at the largest budget answer
// every member. Quotas are part of the objective for P2/P6, so cover
// specs only coalesce with exact-constraint duplicates.
type shareKey struct {
	problem     Problem
	engine      Engine
	model       cascade.Model
	tau         int32
	samples     int
	risPerGroup int
	evalSamples int
	seed        int64
	cancel      <-chan struct{}
	hasAcc      bool
	epsBits     uint64
	deltaBits   uint64
	sizingK     int // accuracy-sized samples depend on the sizing budget
	quotaBits   uint64
	maxSeeds    int
	hID         string // P4 concave function identity
}

// shareable reports whether the spec may join a coalesced group, and its
// key when it may. Specs carrying per-request machinery the shared run
// cannot reproduce member-by-member (candidate restrictions, group
// weights, delayed/discounted diffusion, plain-greedy ablation,
// streaming callbacks, injected estimators or warm state, or sampling
// fields a solo resolve would reject) run as singletons via Solve.
func (s ProblemSpec) shareable(g *graph.Graph) (shareKey, bool) {
	c := &s.Config
	if c.PlainGreedy || c.Candidates != nil || c.GroupWeights != nil ||
		c.Delay != nil || c.Discount != 0 || c.OnIteration != nil ||
		c.Estimator != nil || c.Warm != nil {
		return shareKey{}, false
	}
	if s.Sampling.Samples < 0 || s.Sampling.RISPerGroup < 0 || c.Samples < 0 || c.EvalSamples < 0 || c.RISPerGroup < 0 {
		return shareKey{}, false
	}
	acc := s.Sampling.Accuracy
	if acc != nil {
		if s.Sampling.Samples > 0 || s.Sampling.RISPerGroup > 0 || acc.validate() != nil {
			return shareKey{}, false
		}
	}
	samples := s.Sampling.Samples
	if samples == 0 {
		samples = c.Samples
	}
	if samples == 0 {
		samples = DefaultSamples
	}
	rpg := s.Sampling.RISPerGroup
	if rpg == 0 {
		rpg = c.RISPerGroup
	}
	if rpg == 0 {
		rpg = 20 * samples
	}
	k := shareKey{
		problem:     s.Problem,
		engine:      c.Engine,
		model:       c.Model,
		tau:         c.Tau,
		samples:     samples,
		risPerGroup: rpg,
		evalSamples: c.EvalSamples,
		seed:        c.Seed,
		cancel:      c.Cancel,
	}
	if acc != nil {
		k.hasAcc = true
		k.epsBits = math.Float64bits(acc.Epsilon)
		k.deltaBits = math.Float64bits(acc.Delta)
		// Accuracy-sized samples grow with the sizing budget, so specs
		// with different sizing budgets resolve to different samples and
		// must not share.
		k.sizingK = s.SizingSeeds(g)
	}
	switch s.Problem {
	case P2, P6:
		k.quotaBits = math.Float64bits(s.Quota)
		k.maxSeeds = c.MaxSeeds
	case P4:
		k.hID = fmt.Sprintf("%#v", c.h())
	}
	return k, true
}

// validateConstraint mirrors Solve's up-front problem/constraint check.
func (s ProblemSpec) validateConstraint() error {
	switch s.Problem {
	case P1, P4:
		if s.Budget <= 0 {
			return fmt.Errorf("fairim: budget must be positive, got %d", s.Budget)
		}
	case P2, P6:
		if s.Quota <= 0 || s.Quota > 1 {
			return fmt.Errorf("fairim: quota %v outside (0,1]", s.Quota)
		}
	default:
		return fmt.Errorf("fairim: ProblemSpec.Problem must be P1, P2, P4 or P6, got %v", s.Problem)
	}
	return nil
}

// batchUnit is one execution unit of a batch: either a coalesced group
// (shared estimator + single lazy-greedy run, answers peeled per
// member) or a singleton delegated to Solve.
type batchUnit struct {
	members []int // spec indices, in arrival order
	key     shareKey
	shared  bool // keyed group; false = plain Solve singleton
}

// SolveBatch solves a batch of specs against one graph, coalescing
// compatible specs onto shared work: one optimization sample and one
// CELF lazy-greedy run per group of specs that provably walk the same
// pick sequence, with each member's answer peeled off at its own budget
// (cover members are exact-constraint duplicates and share the whole
// run). Every outcome is bit-identical to what the sequential
// Solve(g, spec) would return — seeds, utilities, disparity, trace, and
// the Evaluations count that spec's own run would have spent (via
// submodular.Result.EvalsAt). Specs the planner cannot share run as
// singletons through Solve; invalid specs fail individually without
// touching the rest of the batch.
func SolveBatch(g *graph.Graph, specs []ProblemSpec, opts *BatchOptions) ([]BatchOutcome, BatchReport) {
	if opts == nil {
		opts = &BatchOptions{}
	}
	outcomes := make([]BatchOutcome, len(specs))
	report := BatchReport{GroupOf: make([]int, len(specs))}

	// Plan: group shareable specs by key in first-occurrence order;
	// everything else becomes a singleton unit.
	var units []*batchUnit
	byKey := make(map[shareKey]*batchUnit)
	for i, spec := range specs {
		if err := spec.validateConstraint(); err != nil {
			outcomes[i] = BatchOutcome{Err: err}
			report.GroupOf[i] = -1
			continue
		}
		if key, ok := spec.shareable(g); ok {
			u := byKey[key]
			if u == nil {
				u = &batchUnit{key: key, shared: true}
				byKey[key] = u
				units = append(units, u)
			}
			u.members = append(u.members, i)
			continue
		}
		units = append(units, &batchUnit{members: []int{i}})
	}
	// Unit ids are final only after planning (a group's id is fixed by
	// its first member, later members just join).
	for gid, u := range units {
		for _, i := range u.members {
			report.GroupOf[i] = gid
		}
		if len(u.members) >= 2 {
			report.Groups++
			report.Coalesced += len(u.members)
		} else {
			report.Singletons++
		}
	}

	for gid, u := range units {
		if !u.shared {
			i := u.members[0]
			res, err := Solve(g, specs[i])
			outcomes[i] = BatchOutcome{Result: res, Err: err}
			continue
		}
		runGroup(g, gid, u, specs, opts, outcomes)
	}
	return outcomes, report
}

// representative returns the group member every shared resource is
// built for: the largest budget for budget problems (its run covers
// every smaller member as a prefix), the first member otherwise (cover
// members are exact duplicates of the solver-relevant fields).
func representative(u *batchUnit, specs []ProblemSpec) int {
	rep := u.members[0]
	if specs[rep].Problem.IsBudget() {
		for _, i := range u.members[1:] {
			if specs[i].Budget > specs[rep].Budget {
				rep = i
			}
		}
	}
	return rep
}

// failGroup records err for every member of the unit.
func failGroup(u *batchUnit, outcomes []BatchOutcome, err error) {
	for _, i := range u.members {
		outcomes[i] = BatchOutcome{Err: err}
	}
}

// runGroup executes one coalesced group: resolve the representative
// spec, build the one estimator and objective, run a single greedy pass
// at the largest constraint, and peel each member's Result out of it.
func runGroup(g *graph.Graph, gid int, u *batchUnit, specs []ProblemSpec, opts *BatchOptions, outcomes []BatchOutcome) {
	repIdx := representative(u, specs)
	rep := specs[repIdx]
	// Hooks always see the representative as planned — before the
	// estimator/warm injections below, which would otherwise trip
	// eligibility checks keyed on the wire-decoded spec.
	orig := rep
	if opts.Estimator != nil {
		est, err := opts.Estimator(gid, orig)
		if err != nil {
			failGroup(u, outcomes, err)
			return
		}
		// Injecting before resolve keeps accuracy specs from sizing (and
		// building) a second sample the estimator already embodies.
		rep.Config.Estimator = est
	}
	if opts.Warm != nil && rep.Problem.IsBudget() {
		rep.Config.Warm = opts.Warm(gid, orig)
	}
	cfg, err := rep.resolve(g, rep.SizingSeeds(g), resolveSolve)
	if err != nil {
		failGroup(u, outcomes, err)
		return
	}
	// Per-member reporting knobs are widened to the union: the shared run
	// records whatever any member wants, peeling narrows it back.
	cfg.Trace = false
	reportOnSample := false
	for _, i := range u.members {
		cfg.Trace = cfg.Trace || specs[i].Config.Trace
		reportOnSample = reportOnSample || specs[i].Config.ReportOnSample
	}

	eval, err := cfg.newEstimator(g)
	if err != nil {
		failGroup(u, outcomes, err)
		return
	}
	var obj *objective
	var target float64
	switch rep.Problem {
	case P1:
		obj = newObjective(eval, totalValue{}, cfg)
	case P4:
		obj = newObjective(eval, concaveValue{h: cfg.h()}, cfg)
	case P2:
		obj = newObjective(eval, totalQuotaValue{quota: rep.Quota}, cfg)
		target = rep.Quota - coverSlack
	default: // P6
		obj = newObjective(eval, groupQuotaValue{quota: rep.Quota}, cfg)
		target = rep.Quota*float64(g.NumGroups()) - coverSlack
	}
	obj.recordUtil = reportOnSample
	baseUtil := append([]float64(nil), obj.cur...)

	cands := cfg.candidates(g)
	var res submodular.Result
	var snap *submodular.LazySnapshot
	initialCount, warmLen := 0, 0
	if rep.Problem.IsBudget() {
		maxBudget := rep.Budget
		if w := cfg.Warm; w != nil && w.Snapshot != nil && len(w.Seeds) > 0 {
			// Replay the memoized prefix through the objective so traces
			// and on-sample snapshots come out as in a cold run; replayed
			// picks cost zero evaluations (EvalsAt entry 0), exactly what
			// a sequential warm run at any covered budget reports.
			replay := w.Seeds
			if len(replay) > maxBudget {
				replay = replay[:maxBudget]
			}
			for _, v := range replay {
				obj.Add(v)
				res.Seeds = append(res.Seeds, v)
				res.Values = append(res.Values, obj.Value())
				res.EvalsAt = append(res.EvalsAt, 0)
				if err := obj.Stopped(); err != nil {
					failGroup(u, outcomes, err)
					return
				}
			}
			warmLen = len(res.Seeds)
			if warmLen < maxBudget {
				ext, s2, err := submodular.LazyGreedyMaxResume(obj, w.Snapshot, maxBudget-warmLen)
				res.Seeds = append(res.Seeds, ext.Seeds...)
				res.Values = append(res.Values, ext.Values...)
				res.EvalsAt = append(res.EvalsAt, ext.EvalsAt...)
				res.Evaluations = ext.Evaluations
				if err != nil {
					failGroup(u, outcomes, err)
					return
				}
				snap = s2
			}
		} else {
			initial := obj.initialGains(cands, cfg.Parallelism)
			res, snap, err = submodular.LazyGreedyMaxCapture(obj, cands, maxBudget, initial)
			initialCount = len(cands)
			if err != nil {
				failGroup(u, outcomes, err)
				return
			}
		}
		if opts.OnWarm != nil && snap != nil && len(res.Seeds) > 0 {
			opts.OnWarm(gid, orig, &WarmStart{
				Seeds:    append([]graph.NodeID(nil), res.Seeds...),
				Snapshot: snap,
			})
		}
	} else {
		initial := obj.initialGains(cands, cfg.Parallelism)
		res, err = submodular.GreedyCoverInit(obj, cands, target, cfg.maxSeeds(g), initial)
		initialCount = len(cands)
		if err != nil {
			failGroup(u, outcomes, err)
			return
		}
	}

	for _, i := range u.members {
		outcomes[i] = peelMember(g, specs[i], cfg, obj, res, snap, baseUtil, initialCount, warmLen)
	}
}

// peelMember extracts one member's Result from the group run,
// reproducing exactly what Solve(g, member) would have returned.
func peelMember(g *graph.Graph, member ProblemSpec, cfg Config, obj *objective,
	res submodular.Result, snap *submodular.LazySnapshot, baseUtil []float64,
	initialCount, warmLen int) BatchOutcome {

	// The member's share of the pick sequence: its budget prefix for
	// P1/P4 (CELF at budget k picks exactly the first k seeds of the
	// shared run), the whole run for covers (exact duplicates).
	k := len(res.Seeds)
	if member.Problem.IsBudget() && member.Budget < k {
		k = member.Budget
	}
	out := &Result{
		Problem: member.Problem.String(),
		Seeds:   append([]graph.NodeID(nil), res.Seeds[:k]...),
	}
	// Evaluations the member's own run would have spent. A run that
	// stops inside the shared sequence spends the cumulative count at
	// its last pick (EvalsAt); a run the shared sequence saturates
	// (k ≥ picks) also pays the trailing no-gain pops; a run fully
	// covered by the warm prefix is a pure replay and spends nothing.
	switch {
	case member.Problem.IsBudget() && member.Budget <= warmLen:
		out.Evaluations = 0
	case !member.Problem.IsBudget() || member.Budget >= len(res.Seeds):
		out.Evaluations = initialCount + res.Evaluations
	default:
		out.Evaluations = initialCount + res.EvalsAt[k-1]
	}
	if member.Config.Trace {
		out.Trace = append([]IterationStat(nil), obj.trace[:k]...)
	}

	var perGroup []float64
	if member.Config.ReportOnSample {
		if k == 0 {
			perGroup = append([]float64(nil), baseUtil...)
		} else {
			perGroup = append([]float64(nil), obj.utilAt[k-1]...)
		}
	} else {
		var err error
		perGroup, err = cfg.estimate(g, out.Seeds)
		if err != nil {
			return BatchOutcome{Err: err}
		}
	}
	out.PerGroup = perGroup
	if rs, ok := obj.eval.(*ris.Estimator); ok {
		out.RISPerGroup = rs.SampleSize()
	} else {
		out.Samples = obj.eval.SampleSize()
	}
	fillDerived(out, g)

	if member.Config.CaptureWarm && member.Problem.IsBudget() &&
		snap != nil && k > 0 && k >= len(res.Seeds) {
		// Only the member the shared run terminated at owns the final
		// heap snapshot; shorter members' intermediate heaps were not
		// captured (their sequential runs would have one, but Warm is an
		// in-process extension seam, not part of the wire result).
		out.Warm = &WarmStart{Seeds: append([]graph.NodeID(nil), res.Seeds...), Snapshot: snap}
	}
	return BatchOutcome{Result: out, Err: nil}
}
