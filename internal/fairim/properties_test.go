package fairim

// Property-style tests of solver-level invariants: how solutions respond
// to budget, quota, and deadline changes.

import (
	"testing"

	"fairtcim/internal/cascade"
)

func TestBudgetMonotonicity(t *testing.T) {
	// More budget never hurts total influence (greedy prefixes nest, and
	// the shared eval stream makes comparisons exact).
	g := smallSBM(t, 60)
	cfg := quickCfg(61)
	prev := 0.0
	for _, b := range []int{1, 3, 6, 10} {
		res, err := SolveTCIMBudget(g, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total < prev-1e-9 {
			t.Fatalf("B=%d total %v below smaller-budget total %v", b, res.Total, prev)
		}
		prev = res.Total
	}
}

func TestQuotaMonotonicity(t *testing.T) {
	// Higher quotas never need fewer seeds.
	g := smallSBM(t, 62)
	cfg := quickCfg(63)
	prev := 0
	for _, q := range []float64{0.05, 0.1, 0.2, 0.3} {
		res, err := SolveFairTCIMCover(g, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) < prev {
			t.Fatalf("Q=%v used %d seeds, smaller quota used %d", q, len(res.Seeds), prev)
		}
		prev = len(res.Seeds)
	}
}

func TestDeadlineMonotonicity(t *testing.T) {
	// For a fixed seed set, longer deadlines never reduce utility.
	g := smallSBM(t, 64)
	seeds := []int32{0, 40, 80, 110}
	prev := 0.0
	for _, tau := range []int32{1, 3, 8, 20, cascade.NoDeadline} {
		cfg := quickCfg(65)
		cfg.Tau = tau
		res, err := EvaluateSeeds(g, seeds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total < prev-1e-9 {
			t.Fatalf("tau=%d total %v below shorter-deadline total %v", tau, res.Total, prev)
		}
		prev = res.Total
	}
}

func TestGreedyPrefixNesting(t *testing.T) {
	// The B=4 greedy solution is a prefix of the B=8 one (same eval stream).
	g := smallSBM(t, 66)
	cfg := quickCfg(67)
	small, err := SolveFairTCIMBudget(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SolveFairTCIMBudget(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Seeds {
		if small.Seeds[i] != big.Seeds[i] {
			t.Fatalf("greedy not nested: %v vs %v", small.Seeds, big.Seeds)
		}
	}
}

func TestMoreSamplesLowerSpread(t *testing.T) {
	// Reported totals across different eval streams should concentrate as
	// EvalSamples grows.
	g := smallSBM(t, 68)
	seeds := []int32{0, 30, 60, 90}
	spread := func(samples int) float64 {
		min, max := 1e18, -1e18
		for s := int64(0); s < 5; s++ {
			cfg := quickCfg(100 + s)
			cfg.EvalSamples = samples
			res, err := EvaluateSeeds(g, seeds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Total < min {
				min = res.Total
			}
			if res.Total > max {
				max = res.Total
			}
		}
		return max - min
	}
	if s40, s640 := spread(40), spread(640); s640 > s40 {
		t.Fatalf("spread grew with samples: %v -> %v", s40, s640)
	}
}
