package fairim

import (
	"fmt"
	"math"
	"strings"

	"fairtcim/internal/graph"
	"fairtcim/internal/ris"
	"fairtcim/internal/submodular"
)

// Problem identifies one of the paper's four optimization problems. The
// zero value is invalid so an unset ProblemSpec fails loudly instead of
// silently solving P1.
type Problem int

// The paper's problem kinds.
const (
	// P1 is TCIM-Budget: max fτ(S;V) s.t. |S| ≤ B.
	P1 Problem = iota + 1
	// P2 is TCIM-Cover: min |S| s.t. fτ(S;V)/|V| ≥ Q.
	P2
	// P4 is FairTCIM-Budget: max Σᵢ H(fτ(S;Vᵢ)) s.t. |S| ≤ B.
	P4
	// P6 is FairTCIM-Cover: min |S| s.t. fτ(S;Vᵢ)/|Vᵢ| ≥ Q for every group.
	P6
)

// String returns the paper's name for the problem ("P1", "P2", "P4", "P6").
func (p Problem) String() string {
	switch p {
	case P1:
		return "P1"
	case P2:
		return "P2"
	case P4:
		return "P4"
	case P6:
		return "P6"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// IsBudget reports whether the problem is constrained by a seed budget
// (P1/P4) rather than a coverage quota (P2/P6).
func (p Problem) IsBudget() bool { return p == P1 || p == P4 }

// ProblemByName parses a problem name: "p1", "p2", "p4" or "p6" (any
// case).
func ProblemByName(name string) (Problem, error) {
	switch strings.ToLower(name) {
	case "p1":
		return P1, nil
	case "p2":
		return P2, nil
	case "p4":
		return P4, nil
	case "p6":
		return P6, nil
	default:
		return 0, fmt.Errorf("fairim: unknown problem %q (want p1, p2, p4 or p6)", name)
	}
}

// Accuracy is an (ε,δ) estimation target: with probability at least 1−δ,
// every normalized group utility the solver compares is within (relative,
// for RIS; additive, for forward MC) error ε.
type Accuracy struct {
	Epsilon float64 // estimation error, in (0,1)
	Delta   float64 // failure probability, in (0,1)
}

func (a Accuracy) validate() error {
	if a.Epsilon <= 0 || a.Epsilon >= 1 {
		return fmt.Errorf("fairim: accuracy epsilon %v outside (0,1)", a.Epsilon)
	}
	if a.Delta <= 0 || a.Delta >= 1 {
		return fmt.Errorf("fairim: accuracy delta %v outside (0,1)", a.Delta)
	}
	return nil
}

// Sampling selects the optimization sample budget: either explicit counts
// (Samples for forward Monte Carlo, RISPerGroup for the RIS engine) or an
// Accuracy target the solver resolves into counts itself — an IMM-style
// geometric-doubling pool sizer for RIS (ris.SampleForAccuracy), a
// Hoeffding-based world count for forward MC (HoeffdingWorlds). Setting
// both explicit counts and an Accuracy target is an error. The zero value
// falls back to the embedded Config's Samples/RISPerGroup fields, then to
// DefaultSamples.
type Sampling struct {
	Samples     int       // explicit forward-MC world count
	RISPerGroup int       // explicit RR sets per group (RIS engine)
	Accuracy    *Accuracy // accuracy target; nil = explicit budgets
}

// DefaultSamples is the optimization sample size used when neither an
// explicit budget nor an accuracy target is given (the paper's §6.1
// synthetic-experiment default).
const DefaultSamples = 200

// maxAutoSamples caps budgets derived from accuracy targets; demanding
// more is reported as an error rather than sampled unboundedly.
const maxAutoSamples = 1 << 20

// ProblemSpec is the one request type every solve goes through: the
// problem kind with its constraint value, the sampling budget (explicit or
// accuracy-targeted), and the shared solver options embedded as Config.
// The serving layer (internal/server) decodes HTTP requests directly into
// a ProblemSpec; the CLIs and experiment harness construct one from flags.
type ProblemSpec struct {
	Problem Problem // which problem to solve (required)
	Budget  int     // seed budget B (P1/P4)
	Quota   float64 // coverage quota Q in (0,1] (P2/P6)

	// Sampling sizes the optimization sample. Its explicit counts take
	// precedence over the embedded Config's Samples/RISPerGroup.
	Sampling Sampling

	// Config carries the remaining solver options: deadline, diffusion
	// model, engine, seeds, objective options, parallelism, eval policy.
	Config
}

// SizingSeeds returns the seed-set size the accuracy machinery unions
// over: the budget for P1/P4; for the cover problems, whose solution size
// is unknown up front, MaxSeeds when set, else ⌈√n⌉ as a prior.
func (s ProblemSpec) SizingSeeds(g *graph.Graph) int {
	if s.Problem.IsBudget() || s.Problem == 0 {
		if s.Budget > 0 {
			return s.Budget
		}
		return 1
	}
	if s.MaxSeeds > 0 {
		return s.MaxSeeds
	}
	return int(math.Ceil(math.Sqrt(float64(g.N()))))
}

// HoeffdingWorlds returns the forward-MC world count m such that, with
// probability ≥ 1−δ, every normalized group utility of every seed set a
// size-≤k greedy run can compare is within additive error ε of its mean:
// Hoeffding plus a union bound over the ≤ n^k candidate sets and the
// groups gives
//
//	m ≥ (k·ln n + ln(2·groups/δ)) / (2ε²).
//
// An error is returned when the demand exceeds the auto-sizing cap.
func HoeffdingWorlds(eps, delta float64, k, n, groups int) (int, error) {
	if err := (Accuracy{Epsilon: eps, Delta: delta}).validate(); err != nil {
		return 0, err
	}
	if k <= 0 || n <= 0 || groups <= 0 {
		return 0, fmt.Errorf("fairim: HoeffdingWorlds needs positive k, n and groups")
	}
	need := (float64(k)*math.Log(float64(n)) + math.Log(2*float64(groups)/delta)) / (2 * eps * eps)
	if need > maxAutoSamples {
		return 0, fmt.Errorf("fairim: accuracy target (ε=%v, δ=%v) demands %.0f worlds (cap %d); relax the target or set explicit budgets", eps, delta, need, maxAutoSamples)
	}
	if need < 1 {
		return 1, nil
	}
	return int(math.Ceil(need)), nil
}

// EvalWorlds returns the world count for estimating one fixed seed set
// within additive ε with probability 1−δ — Hoeffding with a union bound
// over the groups only, no union over candidate sets, so far smaller than
// a solve's HoeffdingWorlds. The serving layer uses it to size cached
// estimation samples. Like HoeffdingWorlds, a target beyond the
// auto-sizing cap is an error — never a silently degraded guarantee.
func EvalWorlds(a Accuracy, groups int) (int, error) {
	need := math.Log(2*float64(groups)/a.Delta) / (2 * a.Epsilon * a.Epsilon)
	if need > maxAutoSamples {
		return 0, fmt.Errorf("fairim: accuracy target (ε=%v, δ=%v) demands %.0f eval worlds (cap %d); relax the target or set explicit budgets", a.Epsilon, a.Delta, need, maxAutoSamples)
	}
	if need < 1 {
		return 1, nil
	}
	return int(math.Ceil(need)), nil
}

// resolveMode tells resolve what the resulting Config will drive, which
// decides how an accuracy target is turned into sample budgets.
type resolveMode int

const (
	// resolveSolve sizes the optimization sample for a greedy run: the
	// stopping rule unions over every candidate set the run can compare.
	resolveSolve resolveMode = iota
	// resolveEvalSample sizes an on-sample estimate of one fixed seed
	// set: forward MC needs only EvalWorlds (no candidate union); RIS
	// keeps the solve-sized pool so it stays shareable through the
	// serving cache.
	resolveEvalSample
	// resolveEvalFresh skips optimization-sample sizing entirely — the
	// estimate comes from fresh eval worlds, so building a pool here
	// would be thrown away unused.
	resolveEvalFresh
)

// resolve turns the spec into a ready-to-run Config: explicit sampling
// budgets are merged over the embedded Config's, accuracy targets are
// resolved into concrete budgets (sampling RR pools via the stopping rule
// for RIS, which injects the sized sample as the estimator), and defaults
// fill anything still unset. k is the seed-set size the accuracy union
// bound covers. An injected Estimator always wins for optimization;
// accuracy then only sizes the fresh-world report.
func (s ProblemSpec) resolve(g *graph.Graph, k int, mode resolveMode) (Config, error) {
	cfg := s.Config
	if s.Sampling.Samples < 0 {
		return cfg, fmt.Errorf("fairim: negative Sampling.Samples %d", s.Sampling.Samples)
	}
	if s.Sampling.RISPerGroup < 0 {
		return cfg, fmt.Errorf("fairim: negative Sampling.RISPerGroup %d", s.Sampling.RISPerGroup)
	}
	acc := s.Sampling.Accuracy
	if acc != nil {
		if s.Sampling.Samples > 0 || s.Sampling.RISPerGroup > 0 {
			return cfg, fmt.Errorf("fairim: Sampling sets both explicit budgets and an accuracy target; choose one")
		}
		if err := acc.validate(); err != nil {
			return cfg, err
		}
	}
	if s.Sampling.Samples > 0 {
		cfg.Samples = s.Sampling.Samples
	}
	if s.Sampling.RISPerGroup > 0 {
		cfg.RISPerGroup = s.Sampling.RISPerGroup
	}
	if cfg.Samples == 0 {
		cfg.Samples = DefaultSamples
	}
	if err := cfg.validate(g); err != nil {
		return cfg, err
	}
	if acc == nil {
		return cfg, nil
	}

	if cfg.EvalSamples == 0 {
		var err error
		if cfg.EvalSamples, err = EvalWorlds(*acc, g.NumGroups()); err != nil {
			return cfg, err
		}
	}
	if cfg.Estimator != nil || mode == resolveEvalFresh {
		// A warm estimator carries its own sample, and a fresh-world
		// evaluation never touches the optimization sample — either way
		// there is nothing to size (and for RIS, a sized pool would be
		// an expensive build thrown away unused).
		return cfg, nil
	}
	if k < 1 {
		k = 1
	}
	if mode == resolveEvalSample && cfg.Engine != EngineRIS {
		// One fixed seed set: no candidate union, the plain per-set
		// Hoeffding count suffices.
		var err error
		if cfg.Samples, err = EvalWorlds(*acc, g.NumGroups()); err != nil {
			return cfg, err
		}
		return cfg, nil
	}
	if cfg.Engine == EngineRIS {
		col, err := ris.SampleForAccuracyCancel(g, cfg.Tau, k, acc.Epsilon, acc.Delta, cfg.Seed, cfg.Parallelism, cfg.Cancel)
		if err != nil {
			return cfg, mapCanceled(err)
		}
		cfg.Estimator = ris.NewEstimator(col)
		cfg.RISPerGroup = cfg.Estimator.SampleSize()
		return cfg, nil
	}
	m, err := HoeffdingWorlds(acc.Epsilon, acc.Delta, k, g.N(), g.NumGroups())
	if err != nil {
		return cfg, err
	}
	cfg.Samples = m
	return cfg, nil
}

// Solve runs the spec's problem on g: it resolves the sampling budget
// (deriving it from the accuracy target when one is set), builds or reuses
// the estimator, and dispatches to the greedy machinery the problem kind
// demands. It subsumes the four deprecated Solve* entry points.
func Solve(g *graph.Graph, spec ProblemSpec) (*Result, error) {
	switch spec.Problem {
	case P1, P4:
		if spec.Budget <= 0 {
			return nil, fmt.Errorf("fairim: budget must be positive, got %d", spec.Budget)
		}
	case P2, P6:
		if spec.Quota <= 0 || spec.Quota > 1 {
			return nil, fmt.Errorf("fairim: quota %v outside (0,1]", spec.Quota)
		}
	default:
		return nil, fmt.Errorf("fairim: ProblemSpec.Problem must be P1, P2, P4 or P6, got %v", spec.Problem)
	}
	cfg, err := spec.resolve(g, spec.SizingSeeds(g), resolveSolve)
	if err != nil {
		return nil, err
	}
	eval, err := cfg.newEstimator(g)
	if err != nil {
		return nil, err
	}

	var obj *objective
	var res submodular.Result
	var warm *WarmStart
	switch spec.Problem {
	case P1:
		obj = newObjective(eval, totalValue{}, cfg)
		res, warm, err = maximize(obj, cfg, g, spec.Budget)
	case P4:
		obj = newObjective(eval, concaveValue{h: cfg.h(), weights: cfg.GroupWeights}, cfg)
		res, warm, err = maximize(obj, cfg, g, spec.Budget)
	case P2:
		obj = newObjective(eval, totalQuotaValue{quota: spec.Quota}, cfg)
		res, err = cover(obj, cfg, g, spec.Quota-coverSlack)
	default: // P6
		obj = newObjective(eval, groupQuotaValue{quota: spec.Quota}, cfg)
		res, err = cover(obj, cfg, g, spec.Quota*float64(g.NumGroups())-coverSlack)
	}
	if err != nil {
		return nil, err
	}
	out, err := finishResult(spec.Problem.String(), g, res, obj, cfg)
	if err != nil {
		return nil, err
	}
	out.Warm = warm
	return out, nil
}

// Evaluate estimates utilities and disparity of an arbitrary seed set
// under the spec's sampling policy; spec.Problem and the constraint fields
// are ignored. With ReportOnSample the estimate comes from the
// optimization sample (the injected Estimator if set); otherwise from
// fresh worlds drawn with Seed+1, the same stream solver reports use, so
// solver results and external seed sets are comparable. An accuracy
// target sizes the sample for this one fixed seed set — for forward MC
// that is EvalWorlds (no union over candidates, so far fewer worlds than
// a solve needs); an on-sample RIS pool stays solve-sized so it can be
// shared with solves through the serving cache.
func Evaluate(g *graph.Graph, seeds []graph.NodeID, spec ProblemSpec) (*Result, error) {
	// Reject bad seeds before any (possibly accuracy-sized, so expensive)
	// sample is built.
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("fairim: seed %d out of range", v)
		}
	}
	k := len(seeds)
	if k < 1 {
		k = 1
	}
	mode := resolveEvalFresh
	if spec.ReportOnSample {
		mode = resolveEvalSample
	}
	cfg, err := spec.resolve(g, k, mode)
	if err != nil {
		return nil, err
	}
	var perGroup []float64
	r := &Result{Problem: "eval", Seeds: append([]graph.NodeID(nil), seeds...)}
	if cfg.ReportOnSample {
		eval, err := cfg.newEstimator(g)
		if err != nil {
			return nil, err
		}
		for _, v := range seeds {
			eval.Add(v)
		}
		perGroup = eval.GroupUtilities()
		if _, isRIS := eval.(*ris.Estimator); isRIS {
			r.RISPerGroup = eval.SampleSize()
		} else {
			r.Samples = eval.SampleSize()
		}
	} else {
		perGroup, err = cfg.estimate(g, seeds)
		if err != nil {
			return nil, err
		}
		r.Samples = cfg.evalSamples()
	}
	r.PerGroup = perGroup
	fillDerived(r, g)
	return r, nil
}
