package fairim

import (
	"fmt"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// Robust evaluation: the related-work setting of Rahmattalabi et al.
// (NeurIPS 2019), where chosen seeds can fail to activate (a peer leader
// drops out of the program). Our solvers assume deterministic seed
// activation, as the paper does (§2, difference ii); this evaluator
// measures how a solution degrades when that assumption breaks, which is
// the natural robustness audit for deployments.

// RobustResult reports the dropout audit.
type RobustResult struct {
	DropProb     float64   // independent per-seed failure probability
	Trials       int       // dropout patterns sampled
	MeanTotal    float64   // mean fτ(S';V) over surviving subsets S'
	MeanPerGroup []float64 // mean fτ(S';Vᵢ)
	MeanDisp     float64   // mean Eq. 2 disparity across trials
	WorstDisp    float64   // worst-case disparity seen
}

// EvaluateSeedsRobust estimates the expected utility and disparity of a
// seed set when each seed independently fails with probability dropProb.
// Each trial samples a surviving subset and evaluates it on fresh worlds
// (sub-seeded deterministically from cfg.Seed).
func EvaluateSeedsRobust(g *graph.Graph, seeds []graph.NodeID, cfg Config, dropProb float64, trials int) (*RobustResult, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	if dropProb < 0 || dropProb >= 1 {
		return nil, fmt.Errorf("fairim: drop probability %v outside [0,1)", dropProb)
	}
	if trials <= 0 {
		return nil, fmt.Errorf("fairim: need positive trials")
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("fairim: seed %d out of range", v)
		}
	}
	rng := xrand.New(cfg.Seed + 7919)
	out := &RobustResult{
		DropProb:     dropProb,
		Trials:       trials,
		MeanPerGroup: make([]float64, g.NumGroups()),
	}
	surviving := make([]graph.NodeID, 0, len(seeds))
	for trial := 0; trial < trials; trial++ {
		surviving = surviving[:0]
		for _, s := range seeds {
			if !rng.Bernoulli(dropProb) {
				surviving = append(surviving, s)
			}
		}
		tcfg := cfg
		tcfg.Seed = cfg.Seed + int64(trial)*104729
		perGroup, err := tcfg.estimate(g, surviving)
		if err != nil {
			return nil, err
		}
		norm := make([]float64, len(perGroup))
		for i, u := range perGroup {
			out.MeanTotal += u
			out.MeanPerGroup[i] += u
			norm[i] = u / float64(g.GroupSize(i))
		}
		d := disparityOf(norm)
		out.MeanDisp += d
		if d > out.WorstDisp {
			out.WorstDisp = d
		}
	}
	out.MeanTotal /= float64(trials)
	out.MeanDisp /= float64(trials)
	for i := range out.MeanPerGroup {
		out.MeanPerGroup[i] /= float64(trials)
	}
	return out, nil
}

func disparityOf(norm []float64) float64 {
	worst := 0.0
	for i := 0; i < len(norm); i++ {
		for j := i + 1; j < len(norm); j++ {
			d := norm[i] - norm[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
