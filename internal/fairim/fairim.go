// Package fairim implements the paper's four optimization problems on top
// of the influence evaluator and the submodular toolbox:
//
//	P1  TCIM-Budget      max fτ(S;V)           s.t. |S| ≤ B
//	P2  TCIM-Cover       min |S|               s.t. fτ(S;V)/|V| ≥ Q
//	P4  FairTCIM-Budget  max Σᵢ H(fτ(S;Vᵢ))    s.t. |S| ≤ B
//	P6  FairTCIM-Cover   min |S|               s.t. fτ(S;Vᵢ)/|Vᵢ| ≥ Q ∀i
//
// All four are solved with the greedy heuristic (§3.4): CELF lazy greedy
// for the budget problems (Theorem 1 guarantee) and lazy greedy submodular
// cover on the truncated constraint Σᵢ min(fτ(S;Vᵢ)/|Vᵢ|, Q) ≥ kQ for the
// cover problems (Theorem 2 guarantee).
//
// Reported utilities are re-estimated on fresh Monte-Carlo worlds, not the
// worlds the optimizer saw, to avoid optimizer's-curse bias — unless
// Config.ReportOnSample opts into the low-latency serving path, which
// reports from the optimization sample.
package fairim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/estimator"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
	"fairtcim/internal/submodular"
)

// Engine selects the influence-estimation engine the solvers optimize
// against. Both engines implement estimator.Estimator, so every solver
// runs unchanged under either.
type Engine int

// Supported estimation engines.
const (
	// EngineForwardMC is the paper's estimator: forward Monte Carlo over
	// live-edge worlds. Supports IC, LT, delayed and discounted diffusion.
	EngineForwardMC Engine = iota
	// EngineRIS estimates via τ-bounded reverse-reachable set coverage
	// (TIM/IMM-style), which scales to much larger graphs. IC only; no
	// Delay/Discount.
	EngineRIS
)

// String returns the flag-friendly engine name.
func (e Engine) String() string {
	switch e {
	case EngineRIS:
		return "ris"
	default:
		return "forward-mc"
	}
}

// EngineByName parses an engine name: "forward-mc" (aliases "forward",
// "mc") or "ris".
func EngineByName(name string) (Engine, error) {
	switch strings.ToLower(name) {
	case "forward-mc", "forward", "mc", "":
		return EngineForwardMC, nil
	case "ris":
		return EngineRIS, nil
	default:
		return 0, fmt.Errorf("fairim: unknown engine %q (want forward-mc or ris)", name)
	}
}

// Config carries the parameters shared by all solvers. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	Tau         int32         // deadline τ; cascade.NoDeadline means τ = ∞
	Model       cascade.Model // diffusion model (IC default, LT extension)
	Engine      Engine        // estimation engine (forward Monte Carlo default)
	Samples     int           // Monte-Carlo worlds used during optimization
	EvalSamples int           // fresh worlds for the final report; 0 = Samples
	// RISPerGroup is the number of RR sets sampled per group when Engine
	// is EngineRIS; 0 derives a pool from Samples (20·Samples per group).
	RISPerGroup int
	Seed        int64            // seeds both world sets deterministically
	Parallelism int              // worker count for sampling and first-pass gains; 0 = GOMAXPROCS
	Candidates  []graph.NodeID   // permissible seeds; nil = every node
	H           concave.Function // concave wrapper for P4; nil = Log
	// GroupWeights, if non-nil, turns P4's objective into Σᵢ H(λᵢ·fτ(S;Vᵢ))
	// — the per-group weights the paper suggests for boosting
	// under-represented groups (§6.2.1). Must have one positive entry per
	// group. NormalizedGroupWeights gives the common per-capita choice.
	GroupWeights []float64
	// Delay, if non-nil, switches to delayed diffusion (e.g.
	// cascade.GeometricDelay{M} for the IC-M meeting model the paper's
	// deadline notion originates from). Requires Model == cascade.IC.
	Delay cascade.DelayDist
	// Discount, if in (0, 1), uses the time-discounted utility (the
	// paper's future-work model): a node activated at time t ≤ τ
	// contributes Discount^t instead of 1. Mutually exclusive with Delay.
	Discount    float64
	MaxSeeds    int  // safety bound for cover problems; 0 = |V|
	PlainGreedy bool // disable CELF (ablation); output is identical
	Trace       bool // record per-iteration group utilities
	// OnIteration, if non-nil, is called synchronously from the solver
	// goroutine after every greedy pick with that iteration's snapshot —
	// the streaming counterpart of Trace (the serving layer forwards these
	// as server-sent events). The snapshot's slices are not reused; the
	// callback may retain them.
	OnIteration func(IterationStat)
	// Cancel, if non-nil, is polled at the same between-picks seam as
	// OnIteration — once the channel is closed, the solve aborts after the
	// current pick and returns ErrCanceled — and inside the sampling loops:
	// IC/LT world sampling, RR-pool sampling, and the accuracy sizer's
	// doubling rounds all stop between samples, so a multi-second sampling
	// phase is interruptible too. Only delayed-world sampling and the
	// parallel first gain pass run to completion. The serving layer wires a
	// job's cancellation context here.
	Cancel <-chan struct{}
	// Warm, if non-nil, primes a budget solve (P1/P4 under CELF) with a
	// memoized greedy prefix: the prefix seeds are replayed (zero gain
	// evaluations, full trace/OnIteration parity) and the CELF heap resumes
	// from the snapshot for the remaining picks. The caller must guarantee
	// the warm state was captured on an equivalent instance — same graph,
	// estimator sample, objective, and candidate set — or the extension is
	// garbage; the serving layer keys its prefix cache on exactly that.
	// Ignored for cover problems and under PlainGreedy.
	Warm *WarmStart
	// CaptureWarm asks a budget solve to return its final CELF state in
	// Result.Warm so a later solve with a larger budget can extend it.
	CaptureWarm bool
	// Estimator, if non-nil, is used as the optimization estimator instead
	// of sampling a fresh one — the serving fast path: a warm estimator
	// built from a cached sample (e.g. a shared ris.Collection or world
	// set) is Reset and reused, skipping sampling entirely. Its graph must
	// match the solve's graph, and the instance must not be shared by
	// concurrent solves — build one estimator per request from the shared
	// (read-only) sample. Engine, Samples and RISPerGroup are ignored for
	// optimization when set; final-report estimation still uses Model,
	// EvalSamples and Seed.
	Estimator estimator.Estimator
	// ReportOnSample, if true, reports final utilities from the
	// optimization sample instead of fresh Monte-Carlo worlds — the
	// low-latency serving path. Solver results read slightly optimistic
	// (optimizer's curse); EvaluateSeeds results are unbiased since the
	// seed set was not chosen on the sample.
	ReportOnSample bool
}

// ErrCanceled reports a solve aborted because Config.Cancel fired —
// between greedy picks or inside a sampling loop. The Result is discarded;
// callers that want the partial seed set should consume OnIteration
// snapshots instead.
var ErrCanceled = errors.New("fairim: solve canceled")

// mapCanceled translates the context.Canceled that cancellable sampling
// loops return into the package's ErrCanceled, so callers see one
// cancellation error regardless of which phase the cancel landed in.
func mapCanceled(err error) error {
	if errors.Is(err, context.Canceled) {
		return ErrCanceled
	}
	return err
}

// WarmStart is a memoized greedy prefix: the seeds a budget solve picked,
// plus the CELF heap snapshot left after picking them. Because the heap
// after k picks does not depend on the eventual budget, replay + resume
// reproduces a larger cold solve bit-for-bit (see
// submodular.LazySnapshot). Treat as immutable once captured — one
// WarmStart may serve any number of extensions concurrently.
type WarmStart struct {
	Seeds    []graph.NodeID
	Snapshot *submodular.LazySnapshot
}

// DefaultConfig returns the paper's synthetic-experiment defaults (§6.1):
// τ = 20 and 200 Monte-Carlo samples.
func DefaultConfig(seed int64) Config {
	return Config{Tau: 20, Model: cascade.IC, Samples: 200, Seed: seed, H: concave.Log{}}
}

// IterationStat snapshots the state after one greedy pick, estimated on
// the optimization worlds (this is what Figures 6a/8a plot).
type IterationStat struct {
	Seed      graph.NodeID // the node picked in this iteration
	Objective float64      // optimizer's objective value after the pick
	Total     float64      // fτ(S;V) estimate
	NormGroup []float64    // fτ(S;Vᵢ)/|Vᵢ| estimates
}

// Result reports a solved instance. Utility fields come from fresh worlds.
type Result struct {
	Problem      string          // "P1", "P2", "P4", "P6"
	Seeds        []graph.NodeID  //
	Total        float64         // fτ(S;V)
	PerGroup     []float64       // fτ(S;Vᵢ)
	NormPerGroup []float64       // fτ(S;Vᵢ)/|Vᵢ|
	NormTotal    float64         // fτ(S;V)/|V|
	Disparity    float64         // Eq. 2
	Evaluations  int             // marginal-gain queries spent
	Trace        []IterationStat // non-nil iff cfg.Trace
	// Resolved sampling budgets the solve actually used — interesting when
	// they were derived from a ProblemSpec accuracy target rather than
	// configured explicitly.
	Samples     int // forward-MC worlds
	RISPerGroup int // RR sets per group (0 unless the RIS engine ran)
	// Warm is the solve's final CELF state, captured only when
	// Config.CaptureWarm was set on a budget problem solved via CELF; nil
	// otherwise (including runs that exhausted their candidates). It is not
	// part of the wire format — the serving layer keeps it in its prefix
	// cache.
	Warm *WarmStart `json:"-"`
}

func (c *Config) validate(g *graph.Graph) error {
	if g.N() == 0 {
		return fmt.Errorf("fairim: empty graph")
	}
	if c.Tau < 0 {
		return fmt.Errorf("fairim: negative deadline %d", c.Tau)
	}
	if c.Samples <= 0 {
		return fmt.Errorf("fairim: need positive Samples, got %d", c.Samples)
	}
	if c.EvalSamples < 0 {
		return fmt.Errorf("fairim: negative EvalSamples")
	}
	for _, v := range c.Candidates {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("fairim: candidate %d out of range", v)
		}
	}
	if c.GroupWeights != nil {
		if len(c.GroupWeights) != g.NumGroups() {
			return fmt.Errorf("fairim: %d group weights for %d groups", len(c.GroupWeights), g.NumGroups())
		}
		for i, w := range c.GroupWeights {
			if w <= 0 {
				return fmt.Errorf("fairim: group weight %d is %v, must be positive", i, w)
			}
		}
	}
	if c.Discount < 0 || c.Discount >= 1 {
		if c.Discount != 0 {
			return fmt.Errorf("fairim: discount %v outside (0,1)", c.Discount)
		}
	}
	if c.Delay != nil {
		if c.Model != cascade.IC {
			return fmt.Errorf("fairim: delayed diffusion requires the IC model")
		}
		if c.Discount > 0 {
			return fmt.Errorf("fairim: Delay and Discount cannot be combined")
		}
	}
	if c.RISPerGroup < 0 {
		return fmt.Errorf("fairim: negative RISPerGroup")
	}
	if c.Estimator != nil && c.Estimator.Graph() != g {
		return fmt.Errorf("fairim: injected estimator built for a different graph")
	}
	if c.Warm != nil {
		if c.Warm.Snapshot == nil {
			return fmt.Errorf("fairim: warm start without a heap snapshot")
		}
		for _, v := range c.Warm.Seeds {
			if v < 0 || int(v) >= g.N() {
				return fmt.Errorf("fairim: warm-start seed %d out of range", v)
			}
		}
	}
	if c.Engine == EngineRIS {
		if c.Model != cascade.IC {
			return fmt.Errorf("fairim: the RIS engine supports only the IC model")
		}
		if c.Delay != nil || c.Discount > 0 {
			return fmt.Errorf("fairim: the RIS engine does not support Delay or Discount")
		}
	}
	return nil
}

// NormalizedGroupWeights returns λᵢ = |V| / (k·|Vᵢ|): weights that make the
// P4 objective compare groups by per-capita influence instead of raw
// counts — λᵢ·fᵢ equals |V|/k times the group's influenced fraction, the
// same scale for every group. Useful when group sizes are very uneven and
// the smallest group would otherwise dominate the concave objective.
func NormalizedGroupWeights(g *graph.Graph) []float64 {
	k := g.NumGroups()
	w := make([]float64, k)
	for i := range w {
		w[i] = float64(g.N()) / (float64(k) * float64(g.GroupSize(i)))
	}
	return w
}

func (c *Config) candidates(g *graph.Graph) []graph.NodeID {
	if c.Candidates != nil {
		return c.Candidates
	}
	return g.Nodes()
}

func (c *Config) h() concave.Function {
	if c.H == nil {
		return concave.Log{}
	}
	return c.H
}

func (c *Config) evalSamples() int {
	if c.EvalSamples > 0 {
		return c.EvalSamples
	}
	return c.Samples
}

func (c *Config) maxSeeds(g *graph.Graph) int {
	if c.MaxSeeds > 0 {
		return c.MaxSeeds
	}
	return g.N()
}

// risPerGroup resolves the per-group RR pool size.
func (c *Config) risPerGroup() int {
	if c.RISPerGroup > 0 {
		return c.RISPerGroup
	}
	return 20 * c.Samples
}

// newEstimator returns the injected warm estimator if one is configured,
// else samples the optimization sample (live-edge worlds or RR pools, per
// c.Engine) and wraps it in the matching estimator.
func (c *Config) newEstimator(g *graph.Graph) (estimator.Estimator, error) {
	if c.Estimator != nil {
		c.Estimator.Reset()
		return c.Estimator, nil
	}
	if c.Engine == EngineRIS {
		perGroup := make([]int, g.NumGroups())
		for i := range perGroup {
			perGroup[i] = c.risPerGroup()
		}
		col, err := ris.SampleCancel(g, c.Tau, perGroup, c.Seed, c.Parallelism, c.Cancel)
		if err != nil {
			return nil, mapCanceled(err)
		}
		return ris.NewEstimator(col), nil
	}
	if c.Delay != nil {
		worlds := cascade.SampleDelayedWorlds(g, c.Delay, c.Samples, c.Seed, c.Parallelism)
		return influence.NewDelayedEvaluator(g, worlds, c.Tau)
	}
	worlds, err := cascade.SampleWorldsCancel(g, c.Model, c.Samples, c.Seed, c.Parallelism, c.Cancel)
	if err != nil {
		return nil, mapCanceled(err)
	}
	if c.Discount > 0 {
		return influence.NewDiscountedEvaluator(g, worlds, c.Tau, c.Discount)
	}
	return influence.NewEvaluator(g, worlds, c.Tau)
}

// estimate evaluates seeds on fresh worlds under the configured model.
func (c *Config) estimate(g *graph.Graph, seeds []graph.NodeID) ([]float64, error) {
	switch {
	case c.Delay != nil:
		return influence.EstimateDelayed(g, seeds, c.Tau, c.Delay, c.evalSamples(), c.Seed+1)
	case c.Discount > 0:
		return influence.EstimateDiscounted(g, seeds, c.Tau, c.Discount, c.Model, c.evalSamples(), c.Seed+1)
	default:
		return influence.Estimate(g, seeds, c.Tau, c.Model, c.evalSamples(), c.Seed+1)
	}
}

// SolveTCIMBudget solves problem P1 with greedy/CELF.
//
// Deprecated: use Solve with ProblemSpec{Problem: P1, Budget: budget}.
func SolveTCIMBudget(g *graph.Graph, budget int, cfg Config) (*Result, error) {
	return Solve(g, ProblemSpec{Problem: P1, Budget: budget, Config: cfg})
}

// SolveFairTCIMBudget solves the surrogate problem P4 with greedy/CELF:
// maximize Σᵢ H(fτ(S;Vᵢ)) under the budget, carrying Theorem 1's bound on
// total influence.
//
// Deprecated: use Solve with ProblemSpec{Problem: P4, Budget: budget}.
func SolveFairTCIMBudget(g *graph.Graph, budget int, cfg Config) (*Result, error) {
	return Solve(g, ProblemSpec{Problem: P4, Budget: budget, Config: cfg})
}

// SolveTCIMCover solves problem P2: the smallest greedy seed set whose
// total normalized influence reaches quota.
//
// Deprecated: use Solve with ProblemSpec{Problem: P2, Quota: quota}.
func SolveTCIMCover(g *graph.Graph, quota float64, cfg Config) (*Result, error) {
	return Solve(g, ProblemSpec{Problem: P2, Quota: quota, Config: cfg})
}

// SolveFairTCIMCover solves the surrogate problem P6: the smallest greedy
// seed set influencing *every* group up to quota, via the truncated
// objective Σᵢ min(fτ(S;Vᵢ)/|Vᵢ|, Q) ≥ kQ (Theorem 2). Any feasible
// solution has disparity at most 1 − Q.
//
// Deprecated: use Solve with ProblemSpec{Problem: P6, Quota: quota}.
func SolveFairTCIMCover(g *graph.Graph, quota float64, cfg Config) (*Result, error) {
	return Solve(g, ProblemSpec{Problem: P6, Quota: quota, Config: cfg})
}

// coverSlack absorbs floating-point noise in Monte-Carlo-estimated cover
// targets.
const coverSlack = 1e-9

// maximize dispatches to plain or lazy greedy with a parallel first pass.
// Under CELF it honors Config.Warm (replay the memoized prefix, resume the
// heap) and Config.CaptureWarm (return the final CELF state); both
// produce/extend exactly what a cold run at the same budget would pick.
func maximize(obj *objective, cfg Config, g *graph.Graph, budget int) (submodular.Result, *WarmStart, error) {
	cands := cfg.candidates(g)
	if cfg.PlainGreedy {
		res, err := submodular.GreedyMax(obj, cands, budget)
		return res, nil, err
	}
	if w := cfg.Warm; w != nil && w.Snapshot != nil && len(w.Seeds) > 0 {
		// Replay through obj.Add rather than splicing results: the trace,
		// OnIteration stream, Values, and cancellation seam all behave as
		// in a cold run — only the Gain evaluations are saved.
		var res submodular.Result
		replay := w.Seeds
		if len(replay) > budget {
			replay = replay[:budget]
		}
		for _, v := range replay {
			obj.Add(v)
			res.Seeds = append(res.Seeds, v)
			res.Values = append(res.Values, obj.Value())
			if err := obj.Stopped(); err != nil {
				return res, nil, err
			}
		}
		if len(res.Seeds) >= budget {
			// The memoized prefix already covers this budget; nothing to
			// extend, and the shorter run leaves no capturable heap state.
			return res, nil, nil
		}
		ext, snap, err := submodular.LazyGreedyMaxResume(obj, w.Snapshot, budget-len(res.Seeds))
		res.Seeds = append(res.Seeds, ext.Seeds...)
		res.Values = append(res.Values, ext.Values...)
		res.Evaluations += ext.Evaluations
		if err != nil {
			return res, nil, err
		}
		return res, captureWarm(cfg, res, snap), nil
	}
	initial := obj.initialGains(cands, cfg.Parallelism)
	res, snap, err := submodular.LazyGreedyMaxCapture(obj, cands, budget, initial)
	res.Evaluations += len(cands) // the parallel first pass
	if err != nil {
		return res, nil, err
	}
	return res, captureWarm(cfg, res, snap), nil
}

// captureWarm packages the final CELF state when the caller asked for it.
func captureWarm(cfg Config, res submodular.Result, snap *submodular.LazySnapshot) *WarmStart {
	if !cfg.CaptureWarm || snap == nil || len(res.Seeds) == 0 {
		return nil
	}
	return &WarmStart{Seeds: append([]graph.NodeID(nil), res.Seeds...), Snapshot: snap}
}

func cover(obj *objective, cfg Config, g *graph.Graph, target float64) (submodular.Result, error) {
	cands := cfg.candidates(g)
	if cfg.PlainGreedy {
		// Plain cover: no laziness, used only in ablations/tests.
		return submodular.GreedyCover(obj, cands, target, cfg.maxSeeds(g))
	}
	initial := obj.initialGains(cands, cfg.Parallelism)
	res, err := submodular.GreedyCoverInit(obj, cands, target, cfg.maxSeeds(g), initial)
	res.Evaluations += len(cands)
	return res, err
}

// EvaluateSeeds estimates utilities and disparity of an arbitrary seed set
// on fresh worlds drawn with cfg.Seed+1 (the same stream final reports
// use), so solver results and external seed sets are comparable. With
// cfg.ReportOnSample the estimate instead comes from the optimization
// sample (cfg.Estimator if injected, else drawn with cfg.Seed) — still
// unbiased here, since the seed set was not chosen on that sample, but on
// a different random stream than the fresh-world path.
//
// Deprecated: use Evaluate with a ProblemSpec.
func EvaluateSeeds(g *graph.Graph, seeds []graph.NodeID, cfg Config) (*Result, error) {
	return Evaluate(g, seeds, ProblemSpec{Config: cfg})
}

func finishResult(problem string, g *graph.Graph, res submodular.Result, obj *objective, cfg Config) (*Result, error) {
	var perGroup []float64
	if cfg.ReportOnSample {
		// The solver's estimator already holds the final seed set.
		perGroup = obj.eval.GroupUtilities()
	} else {
		var err error
		perGroup, err = cfg.estimate(g, res.Seeds)
		if err != nil {
			return nil, err
		}
	}
	out := &Result{
		Problem:     problem,
		Seeds:       res.Seeds,
		PerGroup:    perGroup,
		Evaluations: res.Evaluations,
		Trace:       obj.trace,
	}
	// Report the sample the optimizer actually ran on; a RIS solve draws
	// no forward-MC worlds, so its Samples stays zero.
	if rs, ok := obj.eval.(*ris.Estimator); ok {
		out.RISPerGroup = rs.SampleSize()
	} else {
		out.Samples = obj.eval.SampleSize()
	}
	fillDerived(out, g)
	return out, nil
}

func fillDerived(r *Result, g *graph.Graph) {
	r.NormPerGroup = make([]float64, len(r.PerGroup))
	for i, u := range r.PerGroup {
		r.Total += u
		r.NormPerGroup[i] = u / float64(g.GroupSize(i))
	}
	r.NormTotal = r.Total / float64(g.N())
	r.Disparity = influence.Disparity(r.NormPerGroup)
}

// TheoremOneBound returns the Theorem 1 lower bound (1 − 1/e)·H(optTotal)
// on the total influence of greedy FairTCIM-Budget, given the (estimated)
// optimal P1 total influence.
func TheoremOneBound(h concave.Function, optTotal float64) float64 {
	return (1 - 1/math.E) * h.Eval(optTotal)
}

// TheoremTwoBound returns the Theorem 2 upper bound ln(1+n)·Σᵢ|Sᵢ*| on the
// FairTCIM-Cover greedy seed-set size, given per-group optimal cover sizes.
func TheoremTwoBound(n int, perGroupOptSizes []int) float64 {
	sum := 0
	for _, s := range perGroupOptSizes {
		sum += s
	}
	return math.Log(1+float64(n)) * float64(sum)
}
