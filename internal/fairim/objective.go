package fairim

import (
	"fairtcim/internal/concave"
	"fairtcim/internal/estimator"
	"fairtcim/internal/graph"
)

// valueFn maps per-group utilities fτ(S;Vᵢ) to the scalar each problem
// optimizes. Every implementation must be monotone in each coordinate and
// concave along coordinate-increasing directions, which keeps the composed
// set function monotone submodular (Lin & Bilmes composition, plus
// closure of submodularity under truncation and addition).
type valueFn interface {
	value(util []float64, g *graph.Graph) float64
}

// totalValue is P1's objective: fτ(S;V) = Σᵢ fτ(S;Vᵢ).
type totalValue struct{}

func (totalValue) value(util []float64, _ *graph.Graph) float64 {
	t := 0.0
	for _, u := range util {
		t += u
	}
	return t
}

// concaveValue is P4's objective: Σᵢ H(λᵢ·fτ(S;Vᵢ)), with λ = 1 when
// weights is nil (the paper's base formulation).
type concaveValue struct {
	h       concave.Function
	weights []float64
}

func (c concaveValue) value(util []float64, _ *graph.Graph) float64 {
	t := 0.0
	for i, u := range util {
		if c.weights != nil {
			u *= c.weights[i]
		}
		t += c.h.Eval(u)
	}
	return t
}

// totalQuotaValue is P2's covering objective: min(fτ(S;V)/|V|, Q); the
// cover target is Q.
type totalQuotaValue struct{ quota float64 }

func (q totalQuotaValue) value(util []float64, g *graph.Graph) float64 {
	t := 0.0
	for _, u := range util {
		t += u
	}
	frac := t / float64(g.N())
	if frac > q.quota {
		return q.quota
	}
	return frac
}

// groupQuotaValue is P6's covering objective: Σᵢ min(fτ(S;Vᵢ)/|Vᵢ|, Q);
// the cover target is kQ (Appendix B's rewriting of the per-group
// constraints).
type groupQuotaValue struct{ quota float64 }

func (q groupQuotaValue) value(util []float64, g *graph.Graph) float64 {
	t := 0.0
	for i, u := range util {
		frac := u / float64(g.GroupSize(i))
		if frac > q.quota {
			frac = q.quota
		}
		t += frac
	}
	return t
}

// objective adapts an estimator.Estimator plus a valueFn to
// submodular.Objective, optionally recording a per-iteration trace. The
// estimator may be any engine — forward Monte Carlo or RIS.
type objective struct {
	eval    estimator.Estimator
	vf      valueFn
	g       *graph.Graph
	traceOn bool
	trace   []IterationStat
	onIter  func(IterationStat) // streaming observer; nil = none
	cancel  <-chan struct{}     // cooperative cancellation; nil = none
	stopErr error               // latched once cancel fires

	cur  []float64 // cached GroupUtilities of the current set
	next []float64 // scratch for candidate utilities

	// recordUtil asks Add to snapshot GroupUtilities after every commit;
	// SolveBatch uses the snapshots to peel per-member on-sample reports
	// out of one shared run.
	recordUtil bool
	utilAt     [][]float64 // utilAt[i] = GroupUtilities after pick i+1
}

func newObjective(eval estimator.Estimator, vf valueFn, cfg Config) *objective {
	o := &objective{
		eval:    eval,
		vf:      vf,
		g:       eval.Graph(),
		traceOn: cfg.Trace,
		onIter:  cfg.OnIteration,
		cancel:  cfg.Cancel,
		cur:     eval.GroupUtilities(),
		next:    make([]float64, eval.Graph().NumGroups()),
	}
	// A cancel that fired before the first pick stops the optimizer
	// before it spends anything.
	o.pollCancel()
	return o
}

// pollCancel latches ErrCanceled once the cancel channel is closed; the
// submodular optimizers read it through Stopped after every pick.
func (o *objective) pollCancel() {
	if o.cancel == nil || o.stopErr != nil {
		return
	}
	select {
	case <-o.cancel:
		o.stopErr = ErrCanceled
	default:
	}
}

// Stopped implements submodular.Stopper.
func (o *objective) Stopped() error { return o.stopErr }

// Gain returns the objective's exact marginal for adding v to the current
// set (exact w.r.t. the fixed Monte-Carlo worlds).
func (o *objective) Gain(v graph.NodeID) float64 {
	delta := o.eval.GainPerGroup(v)
	for i := range o.next {
		o.next[i] = o.cur[i] + delta[i]
	}
	return o.vf.value(o.next, o.g) - o.vf.value(o.cur, o.g)
}

// Add commits v and refreshes the cached utilities.
func (o *objective) Add(v graph.NodeID) {
	o.eval.Add(v)
	o.cur = o.eval.GroupUtilities()
	if o.recordUtil {
		o.utilAt = append(o.utilAt, append([]float64(nil), o.cur...))
	}
	if o.traceOn || o.onIter != nil {
		norm := o.eval.NormGroupUtilities()
		total := 0.0
		for _, u := range o.cur {
			total += u
		}
		st := IterationStat{
			Seed:      v,
			Objective: o.vf.value(o.cur, o.g),
			Total:     total,
			NormGroup: norm,
		}
		if o.traceOn {
			o.trace = append(o.trace, st)
		}
		if o.onIter != nil {
			o.onIter(st)
		}
	}
	o.pollCancel()
}

// Value returns the objective at the current set.
func (o *objective) Value() float64 { return o.vf.value(o.cur, o.g) }

// initialGains evaluates Gain for every candidate on the empty (current)
// set in parallel, exploiting the evaluator's read-only concurrent query
// path.
func (o *objective) initialGains(candidates []graph.NodeID, parallelism int) []float64 {
	perGroup := o.eval.InitialGains(candidates, parallelism)
	out := make([]float64, len(candidates))
	base := o.vf.value(o.cur, o.g)
	next := make([]float64, len(o.cur))
	for i, delta := range perGroup {
		for j := range next {
			next[j] = o.cur[j] + delta[j]
		}
		out[i] = o.vf.value(next, o.g) - base
	}
	return out
}
