package ris

import (
	"fmt"
	"math"

	"fairtcim/internal/graph"
)

// Accuracy-driven pool sizing (IMM/OPIM-style, adapted to per-group
// deadline-bounded pools).
//
// The quantity each pool estimates is a coverage probability: the
// normalized group utility fτ(S;Vᵢ)/|Vᵢ| equals the fraction of group i's
// RR sets that S intersects. A multiplicative Chernoff bound says θ RR
// sets estimate a coverage probability p within relative error ε with
// failure probability at most δ' once
//
//	θ ≥ (2 + 2ε/3) · ln(2/δ') / (ε² · p).
//
// Union-bounding δ' over the ≤ n^k seed sets a size-k greedy run can
// compare, the k groups, and the doubling rounds gives the stopping rule
// below. Because the achievable coverage p is unknown up front, the sizer
// follows IMM's geometric-doubling scheme: sample a pool, lower-bound p by
// the coverage a greedy size-k solution reaches on that pool, compute the
// θ the rule demands for that bound, and double (at least) until the
// current pool already satisfies its own requirement.

const (
	// sizingStartPool is the pilot pool size the doubling starts from.
	sizingStartPool = 256
	// sizingMaxPool caps the per-group pool; a target whose rule demands
	// more is rejected with an error (matching the forward-MC
	// HoeffdingWorlds cap) rather than silently served with a pool that
	// does not satisfy the advertised (ε,δ) guarantee.
	sizingMaxPool = 1 << 20
	// sizingMaxRounds bounds the doubling loop; the δ budget is split
	// uniformly across rounds.
	sizingMaxRounds = 16
)

// RequiredPoolSize returns the per-group RR-pool size the (ε,δ) stopping
// rule demands, given a lower bound lb on the normalized coverage a size-k
// solution achieves in the group (lb in (0,1]). n is the number of nodes,
// groups the number of groups. The result is clamped to sizingMaxPool.
func RequiredPoolSize(eps, delta float64, k, n, groups int, lb float64) int {
	if lb <= 0 {
		return sizingMaxPool
	}
	logUnion := float64(k)*math.Log(float64(n)) +
		math.Log(2*float64(groups)*float64(sizingMaxRounds)/delta)
	req := (2 + 2*eps/3) * logUnion / (eps * eps * lb)
	if req > float64(sizingMaxPool) {
		return sizingMaxPool
	}
	if req < 1 {
		return 1
	}
	return int(math.Ceil(req))
}

// SampleForAccuracy draws per-group RR pools sized by the geometric-
// doubling stopping rule so that, with probability ≥ 1−δ, every normalized
// group utility a size-≤k greedy run compares is within relative error ε.
// k is the target seed-set size (the budget for P1/P4; callers solving
// cover problems pass their best prior on the cover size). A target whose
// demanded pool exceeds the sizing cap is an error. The result is
// deterministic for fixed arguments; parallelism <= 0 means GOMAXPROCS.
func SampleForAccuracy(g *graph.Graph, tau int32, k int, eps, delta float64, seed int64, parallelism int) (*Collection, error) {
	return SampleForAccuracyCancel(g, tau, k, eps, delta, seed, parallelism, nil)
}

// SampleForAccuracyCancel is SampleForAccuracy with cooperative
// cancellation threaded into every doubling round's sampling pass: once
// cancel is closed the in-flight round stops between RR sets and the call
// returns context.Canceled. A nil cancel never fires.
func SampleForAccuracyCancel(g *graph.Graph, tau int32, k int, eps, delta float64, seed int64, parallelism int, cancel <-chan struct{}) (*Collection, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("ris: epsilon %v outside (0,1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("ris: delta %v outside (0,1)", delta)
	}
	if k <= 0 {
		return nil, fmt.Errorf("ris: sizing seed count k must be positive, got %d", k)
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("ris: empty graph")
	}
	n := g.N()
	groups := g.NumGroups()
	if k > n {
		k = n
	}

	theta := sizingStartPool
	for round := 0; ; round++ {
		perGroup := make([]int, groups)
		for i := range perGroup {
			perGroup[i] = theta
		}
		// Each round resamples with a shifted seed so pools across rounds
		// are independent, as the per-round δ budget assumes.
		col, err := SampleCancel(g, tau, perGroup, seed+int64(round), parallelism, cancel)
		if err != nil {
			return nil, err
		}

		required, err := requiredForPool(col, k, eps, delta)
		if err != nil {
			return nil, err
		}
		if theta >= required {
			return col, nil
		}
		if required >= sizingMaxPool {
			return nil, fmt.Errorf("ris: accuracy target (ε=%v, δ=%v) demands %d RR sets per group (cap %d); relax the target or set explicit budgets", eps, delta, required, sizingMaxPool)
		}
		if round >= sizingMaxRounds-1 {
			return nil, fmt.Errorf("ris: accuracy sizing did not converge in %d rounds (pool %d, required %d); relax the target or set explicit budgets", sizingMaxRounds, theta, required)
		}
		theta = 2 * theta
		if required > theta {
			theta = required
		}
		if theta > sizingMaxPool {
			theta = sizingMaxPool
		}
	}
}

// requiredForPool runs a size-k greedy on col to lower-bound the coverage
// a size-k solution achieves per group, then evaluates the stopping rule
// for every group and returns the largest demanded pool size.
func requiredForPool(col *Collection, k int, eps, delta float64) (int, error) {
	seeds, _, err := SolveBudget(col, k, nil)
	if err != nil {
		return 0, err
	}
	est := NewEstimator(col)
	for _, v := range seeds {
		est.Add(v)
	}
	g := col.Graph()
	required := 0
	for i, frac := range est.NormGroupUtilities() {
		// Floor the lower bound at one node's worth of coverage: any
		// group member seeded directly covers ≥ 1/|Vᵢ| of its group.
		lb := frac
		if floor := 1 / float64(g.GroupSize(i)); lb < floor {
			lb = floor
		}
		if req := RequiredPoolSize(eps, delta, k, g.N(), g.NumGroups(), lb); req > required {
			required = req
		}
	}
	return required, nil
}
