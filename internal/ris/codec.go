package ris

import (
	"fmt"

	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

// CodecKind and CodecVersion identify the Collection payload inside a
// persist frame. Bump CodecVersion whenever the payload layout below
// changes; old files are then rejected with persist.ErrMismatch and the
// caller re-samples.
const (
	CodecKind    = "risc"
	CodecVersion = 1
)

// EncodePayload flattens the Collection into the version-1 payload: τ,
// the per-group pool sizes, then the inverted node→sets index verbatim.
// The graph itself is not serialized — persistence binds the payload to
// it through the frame's graph fingerprint — so a decoded Collection is
// byte-for-byte the index that was saved, over the caller-supplied graph.
func (c *Collection) EncodePayload() []byte {
	var e persist.Enc
	e.I32(c.tau)
	e.Ints(c.poolSize)
	e.U64(uint64(len(c.contains)))
	for _, refs := range c.contains {
		e.U64(uint64(len(refs)))
		for _, r := range refs {
			e.I32(r.group)
			e.I32(r.index)
		}
	}
	return e.Bytes()
}

// DecodePayload reconstructs a Collection over g from a version-1
// payload. Every structural invariant is re-validated — group count,
// positive pool sizes, node count, and each set reference's bounds — so a
// forged or stale payload that slipped past the frame checks still cannot
// produce out-of-range indexing or silently wrong estimates.
func DecodePayload(payload []byte, g *graph.Graph) (*Collection, error) {
	d := persist.NewDec(payload)
	tau := d.I32()
	poolSize := d.Ints()
	n := int(d.U64())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if tau < 0 {
		return nil, fmt.Errorf("ris: decoded negative deadline %d", tau)
	}
	if len(poolSize) != g.NumGroups() {
		return nil, fmt.Errorf("ris: decoded %d pool sizes for %d groups", len(poolSize), g.NumGroups())
	}
	for i, s := range poolSize {
		if s <= 0 {
			return nil, fmt.Errorf("ris: decoded pool size %d for group %d", s, i)
		}
	}
	if n != g.N() {
		return nil, fmt.Errorf("ris: decoded index over %d nodes, graph has %d", n, g.N())
	}
	c := &Collection{
		g:        g,
		tau:      tau,
		poolSize: poolSize,
		contains: make([][]setRef, n),
	}
	for v := 0; v < n; v++ {
		m := d.Len(8)
		if err := d.Err(); err != nil {
			return nil, err
		}
		if m == 0 {
			continue
		}
		refs := make([]setRef, m)
		for i := range refs {
			refs[i] = setRef{group: d.I32(), index: d.I32()}
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		for _, r := range refs {
			if r.group < 0 || int(r.group) >= len(poolSize) || r.index < 0 || int(r.index) >= poolSize[r.group] {
				return nil, fmt.Errorf("ris: decoded set ref (%d,%d) out of range", r.group, r.index)
			}
		}
		c.contains[v] = refs
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return c, nil
}
