package ris

import (
	"fmt"
	"sort"

	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

// CodecKind and CodecVersion identify the Collection payload inside a
// persist frame. CodecVersion is what EncodePayload writes; decode accepts
// everything down to CodecMinVersion, so bumping the version does not
// strand state files from earlier releases — they load through their own
// layout until the floor is raised.
const (
	CodecKind       = "risc"
	CodecVersion    = 2
	CodecMinVersion = 1
)

// EncodePayload flattens the Collection into the version-2 payload: τ,
// the per-group pool sizes, the node count, then each node's inverted
// index entry as a delta+varint stream of flat RR-set ids. Flat ids are
// dense and strictly increasing per node, so gaps are small and most
// encode in one byte — several times smaller than the version-1
// (group,index) pair layout. The graph itself is not serialized —
// persistence binds the payload to it through the frame's graph
// fingerprint — so a decoded Collection is the exact index that was
// saved, over the caller-supplied graph.
func (c *Collection) EncodePayload() []byte {
	var e persist.Enc
	e.I32(c.tau)
	e.Ints(c.poolSize)
	n := len(c.off) - 1
	e.Uvarint(uint64(n))
	for v := 0; v < n; v++ {
		e.DeltaU32s(c.refs[c.off[v]:c.off[v+1]])
	}
	return e.Bytes()
}

// DecodePayload reconstructs a Collection over g from a payload written by
// the current codec version. For frames that may carry an older version,
// use DecodePayloadVersion with the version reported by
// persist.DecodeRange.
func DecodePayload(payload []byte, g *graph.Graph) (*Collection, error) {
	return DecodePayloadVersion(CodecVersion, payload, g)
}

// DecodePayloadVersion reconstructs a Collection over g from a payload of
// the given codec version (CodecMinVersion..CodecVersion). Every
// structural invariant is re-validated — group count, positive pool
// sizes, node count, and each set reference's bounds — so a forged or
// stale payload that slipped past the frame checks still cannot produce
// out-of-range indexing or silently wrong estimates.
func DecodePayloadVersion(version uint32, payload []byte, g *graph.Graph) (*Collection, error) {
	switch version {
	case 1:
		return decodePayloadV1(payload, g)
	case 2:
		return decodePayloadV2(payload, g)
	default:
		return nil, fmt.Errorf("%w: ris codec version %d, support %d..%d",
			persist.ErrMismatch, version, CodecMinVersion, CodecVersion)
	}
}

// decodeHeader reads and validates the fields shared by both payload
// versions: τ, pool sizes, and the derived group flat-id bases.
func decodeHeader(d *persist.Dec, g *graph.Graph) (tau int32, poolSize []int, base []int32, err error) {
	tau = d.I32()
	poolSize = d.Ints()
	if err = d.Err(); err != nil {
		return
	}
	if tau < 0 {
		err = fmt.Errorf("ris: decoded negative deadline %d", tau)
		return
	}
	if len(poolSize) != g.NumGroups() {
		err = fmt.Errorf("ris: decoded %d pool sizes for %d groups", len(poolSize), g.NumGroups())
		return
	}
	for i, s := range poolSize {
		if s <= 0 {
			err = fmt.Errorf("ris: decoded pool size %d for group %d", s, i)
			return
		}
	}
	base = groupBases(poolSize)
	return
}

// decodePayloadV2 reads the delta+varint layout. persist.Dec.DeltaU32s
// already enforces that each node's refs are strictly increasing and
// bounded by the total set count, which is exactly the Collection
// invariant.
func decodePayloadV2(payload []byte, g *graph.Graph) (*Collection, error) {
	d := persist.NewDec(payload)
	tau, poolSize, base, err := decodeHeader(d, g)
	if err != nil {
		return nil, err
	}
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.N() {
		return nil, fmt.Errorf("ris: decoded index over %d nodes, graph has %d", n, g.N())
	}
	total := base[len(base)-1]
	off := make([]int32, n+1)
	var refs, scratch []int32
	for v := 0; v < n; v++ {
		scratch = d.DeltaU32s(scratch[:0], total)
		if err := d.Err(); err != nil {
			return nil, err
		}
		refs = append(refs, scratch...)
		off[v+1] = int32(len(refs))
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return &Collection{g: g, tau: tau, poolSize: poolSize, base: base, off: off, refs: refs}, nil
}

// decodePayloadV1 reads the original (group,index) pair layout, converting
// each reference to its flat id. Version-1 writers emitted refs in
// ascending flat order, but decode sorts defensively rather than reject —
// an unsorted-but-valid file is old, not corrupt.
func decodePayloadV1(payload []byte, g *graph.Graph) (*Collection, error) {
	d := persist.NewDec(payload)
	tau, poolSize, base, err := decodeHeader(d, g)
	if err != nil {
		return nil, err
	}
	n := int(d.U64())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.N() {
		return nil, fmt.Errorf("ris: decoded index over %d nodes, graph has %d", n, g.N())
	}
	off := make([]int32, n+1)
	var refs []int32
	for v := 0; v < n; v++ {
		m := d.Len(8)
		if err := d.Err(); err != nil {
			return nil, err
		}
		start := len(refs)
		for i := 0; i < m; i++ {
			grp, idx := d.I32(), d.I32()
			if d.Err() != nil {
				return nil, d.Err()
			}
			if grp < 0 || int(grp) >= len(poolSize) || idx < 0 || int(idx) >= poolSize[grp] {
				return nil, fmt.Errorf("ris: decoded set ref (%d,%d) out of range", grp, idx)
			}
			refs = append(refs, base[grp]+idx)
		}
		node := refs[start:]
		if !sort.SliceIsSorted(node, func(i, j int) bool { return node[i] < node[j] }) {
			sort.Slice(node, func(i, j int) bool { return node[i] < node[j] })
		}
		for i := 1; i < len(node); i++ {
			if node[i] == node[i-1] {
				return nil, fmt.Errorf("%w: duplicate set ref %d for node %d", persist.ErrCorrupt, node[i], v)
			}
		}
		off[v+1] = int32(len(refs))
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return &Collection{g: g, tau: tau, poolSize: poolSize, base: base, off: off, refs: refs}, nil
}
