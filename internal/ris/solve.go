package ris

import (
	"fmt"

	"fairtcim/internal/concave"
	"fairtcim/internal/graph"
	"fairtcim/internal/submodular"
)

// estimatorObjective adapts an Estimator to submodular.Objective under a
// concave wrapper H (use concave.Identity for the plain P1 objective).
type estimatorObjective struct {
	e    *Estimator
	h    concave.Function
	cur  []float64
	next []float64
}

func newObjective(e *Estimator, h concave.Function) *estimatorObjective {
	return &estimatorObjective{
		e:    e,
		h:    h,
		cur:  e.GroupUtilities(),
		next: make([]float64, len(e.count)),
	}
}

func (o *estimatorObjective) eval(util []float64) float64 {
	t := 0.0
	for _, u := range util {
		t += o.h.Eval(u)
	}
	return t
}

// Gain returns the exact marginal of Σᵢ H(estimated fᵢ) for adding v.
func (o *estimatorObjective) Gain(v graph.NodeID) float64 {
	delta := o.e.GainPerGroup(v)
	for i := range o.next {
		o.next[i] = o.cur[i] + delta[i]
	}
	return o.eval(o.next) - o.eval(o.cur)
}

// Add commits v.
func (o *estimatorObjective) Add(v graph.NodeID) {
	o.e.Add(v)
	o.cur = o.e.GroupUtilities()
}

// Value returns the objective at the current set.
func (o *estimatorObjective) Value() float64 { return o.eval(o.cur) }

// SolveBudget greedily maximizes the RIS-estimated total influence under a
// cardinality budget (the RIS counterpart of fairim.SolveTCIMBudget).
// candidates nil means every node. Returns the seeds and the RIS estimate
// of total influence.
func SolveBudget(c *Collection, budget int, candidates []graph.NodeID) ([]graph.NodeID, float64, error) {
	return solve(c, budget, candidates, concave.Identity{})
}

// SolveFairBudget greedily maximizes Σᵢ H(fᵢ) on RIS estimates (the RIS
// counterpart of fairim.SolveFairTCIMBudget). h nil means concave.Log.
func SolveFairBudget(c *Collection, budget int, candidates []graph.NodeID, h concave.Function) ([]graph.NodeID, float64, error) {
	if h == nil {
		h = concave.Log{}
	}
	return solve(c, budget, candidates, h)
}

func solve(c *Collection, budget int, candidates []graph.NodeID, h concave.Function) ([]graph.NodeID, float64, error) {
	if budget <= 0 {
		return nil, 0, fmt.Errorf("ris: budget must be positive, got %d", budget)
	}
	if candidates == nil {
		candidates = c.g.Nodes()
	}
	est := NewEstimator(c)
	obj := newObjective(est, h)
	res, err := submodular.LazyGreedyMax(obj, candidates, budget)
	if err != nil {
		return nil, 0, err
	}
	return res.Seeds, est.TotalUtility(), nil
}

// quotaObjective is the RIS counterpart of the cover constraints: plain
// covers min(f/|V|, Q) toward Q, fair covers Σᵢ min(fᵢ/|Vᵢ|, Q) toward kQ.
type quotaObjective struct {
	e     *Estimator
	quota float64
	fair  bool
	cur   []float64
	next  []float64
}

func (o *quotaObjective) eval(util []float64) float64 {
	g := o.e.c.g
	if !o.fair {
		t := 0.0
		for _, u := range util {
			t += u
		}
		frac := t / float64(g.N())
		if frac > o.quota {
			return o.quota
		}
		return frac
	}
	t := 0.0
	for i, u := range util {
		frac := u / float64(g.GroupSize(i))
		if frac > o.quota {
			frac = o.quota
		}
		t += frac
	}
	return t
}

// Gain returns the truncated-coverage marginal of adding v.
func (o *quotaObjective) Gain(v graph.NodeID) float64 {
	delta := o.e.GainPerGroup(v)
	for i := range o.next {
		o.next[i] = o.cur[i] + delta[i]
	}
	return o.eval(o.next) - o.eval(o.cur)
}

// Add commits v.
func (o *quotaObjective) Add(v graph.NodeID) {
	o.e.Add(v)
	o.cur = o.e.GroupUtilities()
}

// Value returns the covering objective at the current set.
func (o *quotaObjective) Value() float64 { return o.eval(o.cur) }

// SolveCover greedily finds a small seed set whose RIS-estimated total
// influence fraction reaches quota (TCIM-Cover on RIS estimates).
func SolveCover(c *Collection, quota float64, candidates []graph.NodeID) ([]graph.NodeID, error) {
	return solveCover(c, quota, candidates, false)
}

// SolveFairCover greedily finds a small seed set whose RIS-estimated
// influence fraction reaches quota in every group (FairTCIM-Cover on RIS
// estimates).
func SolveFairCover(c *Collection, quota float64, candidates []graph.NodeID) ([]graph.NodeID, error) {
	return solveCover(c, quota, candidates, true)
}

func solveCover(c *Collection, quota float64, candidates []graph.NodeID, fair bool) ([]graph.NodeID, error) {
	if quota <= 0 || quota > 1 {
		return nil, fmt.Errorf("ris: quota %v outside (0,1]", quota)
	}
	if candidates == nil {
		candidates = c.g.Nodes()
	}
	est := NewEstimator(c)
	obj := &quotaObjective{
		e:     est,
		quota: quota,
		fair:  fair,
		cur:   est.GroupUtilities(),
		next:  make([]float64, c.g.NumGroups()),
	}
	target := quota - 1e-9
	if fair {
		target = quota*float64(c.g.NumGroups()) - 1e-9
	}
	res, err := submodular.GreedyCover(obj, candidates, target, c.g.N())
	if err != nil {
		return nil, err
	}
	return res.Seeds, nil
}
