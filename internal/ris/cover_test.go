package ris

import (
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/influence"
)

func TestSolveCoverReachesQuota(t *testing.T) {
	g := testGraph(t, 20)
	c, err := Sample(g, 5, []int{1500, 1500}, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	const quota = 0.15
	seeds, err := SolveCover(c, quota, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	// Audit with the forward estimator.
	util, err := influence.Estimate(g, seeds, 5, cascade.IC, 800, 23)
	if err != nil {
		t.Fatal(err)
	}
	frac := (util[0] + util[1]) / float64(g.N())
	if frac < quota-0.05 {
		t.Fatalf("cover reached %v < quota %v", frac, quota)
	}
}

func TestSolveFairCoverCoversEveryGroup(t *testing.T) {
	g := testGraph(t, 24)
	c, err := Sample(g, 5, []int{1500, 1500}, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	const quota = 0.12
	plain, err := SolveCover(c, quota, nil)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := SolveFairCover(c, quota, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fair) < len(plain) {
		t.Fatalf("fair cover used %d seeds, plain %d", len(fair), len(plain))
	}
	util, err := influence.Estimate(g, fair, 5, cascade.IC, 800, 27)
	if err != nil {
		t.Fatal(err)
	}
	for i := range util {
		if util[i]/float64(g.GroupSize(i)) < quota-0.06 {
			t.Fatalf("group %d fraction %v below quota", i, util[i]/float64(g.GroupSize(i)))
		}
	}
}

func TestSolveCoverValidation(t *testing.T) {
	g := testGraph(t, 28)
	c, err := Sample(g, 3, []int{50, 50}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveCover(c, 0, nil); err == nil {
		t.Fatal("quota 0 accepted")
	}
	if _, err := SolveFairCover(c, 1.5, nil); err == nil {
		t.Fatal("quota > 1 accepted")
	}
}
