package ris

import (
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/xrand"
)

func testGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 150, G: 0.7, PHom: 0.06, PHet: 0.01, PActivate: 0.15, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSampleValidation(t *testing.T) {
	g := testGraph(t, 1)
	if _, err := Sample(g, -1, []int{10, 10}, 1, 0); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := Sample(g, 3, []int{10}, 1, 0); err == nil {
		t.Fatal("wrong pool count accepted")
	}
	if _, err := Sample(g, 3, []int{10, 0}, 1, 0); err == nil {
		t.Fatal("zero pool accepted")
	}
	empty := graph.NewBuilder(0).MustBuild()
	if _, err := Sample(empty, 3, nil, 1, 0); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestSampleDeterministicAcrossParallelism(t *testing.T) {
	g := testGraph(t, 2)
	a, err := Sample(g, 4, []int{50, 50}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(g, 4, []int{50, 50}, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		av, bv := a.refs[a.off[v]:a.off[v+1]], b.refs[b.off[v]:b.off[v+1]]
		if len(av) != len(bv) {
			t.Fatalf("node %d inverted index differs across parallelism", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d ref %d differs across parallelism: %d vs %d", v, i, av[i], bv[i])
			}
		}
	}
}

func TestRRSetContainsRoot(t *testing.T) {
	g := testGraph(t, 3)
	c, err := Sample(g, 0, []int{30, 30}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// tau = 0: every RR set is exactly its root, so total membership count
	// equals total set count.
	total := c.NumRefs()
	if total != c.NumSets() {
		t.Fatalf("tau=0 membership %d, want %d", total, c.NumSets())
	}
}

func TestEstimatorSeedCoversOwnGroup(t *testing.T) {
	// On a complete-coverage instance: star where center reaches all.
	b := graph.NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.AddEdge(0, graph.NodeID(v), 1.0)
	}
	g := b.MustBuild()
	c, err := Sample(g, 1, []int{200}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEstimator(c)
	e.Add(0)
	// Center at p=1 within tau=1 influences everyone: estimate = 5.
	if got := e.TotalUtility(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("estimate %v, want 5", got)
	}
}

func TestEstimatorMatchesForwardMC(t *testing.T) {
	// RIS estimates of fτ agree with the forward evaluator within MC error.
	g := testGraph(t, 4)
	seeds := []graph.NodeID{0, 50, 120}
	const tau = 3

	c, err := Sample(g, tau, []int{4000, 4000}, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEstimator(c)
	for _, s := range seeds {
		e.Add(s)
	}
	risUtil := e.GroupUtilities()

	fwd, err := influence.Estimate(g, seeds, tau, cascade.IC, 4000, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fwd {
		if math.Abs(risUtil[i]-fwd[i]) > 0.12*float64(g.GroupSize(i))*0.2+1.0 {
			t.Fatalf("group %d: RIS %v vs forward %v", i, risUtil[i], fwd[i])
		}
	}
}

func TestGainMatchesAddDelta(t *testing.T) {
	check := func(seed int64) bool {
		g := testGraph(t, seed)
		c, err := Sample(g, 3, []int{100, 100}, seed, 0)
		if err != nil {
			return false
		}
		e := NewEstimator(c)
		rng := xrand.New(seed + 1)
		for step := 0; step < 5; step++ {
			v := graph.NodeID(rng.Intn(g.N()))
			gain := e.Gain(v)
			before := e.TotalUtility()
			e.Add(v)
			if math.Abs((e.TotalUtility()-before)-gain) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorReset(t *testing.T) {
	g := testGraph(t, 5)
	c, err := Sample(g, 3, []int{50, 50}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEstimator(c)
	e.Add(0)
	g1 := e.Gain(10)
	e.Add(10)
	e.Reset()
	if e.TotalUtility() != 0 || len(e.Seeds()) != 0 {
		t.Fatal("reset incomplete")
	}
	e.Add(0)
	if g2 := e.Gain(10); math.Abs(g1-g2) > 1e-9 {
		t.Fatalf("post-reset gain %v != %v", g2, g1)
	}
}

func TestSolveBudget(t *testing.T) {
	g := testGraph(t, 6)
	c, err := Sample(g, 5, []int{500, 500}, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	seeds, total, err := SolveBudget(c, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 || total <= 0 {
		t.Fatalf("seeds %v total %v", seeds, total)
	}
	if _, _, err := SolveBudget(c, 0, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestSolveFairBudgetReducesDisparity(t *testing.T) {
	g := testGraph(t, 7)
	c, err := Sample(g, 5, []int{800, 800}, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := SolveBudget(c, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	fair, _, err := SolveFairBudget(c, 8, nil, concave.Log{})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both with the forward estimator on fresh worlds.
	eval := func(seeds []graph.NodeID) float64 {
		util, err := influence.Estimate(g, seeds, 5, cascade.IC, 600, 77)
		if err != nil {
			t.Fatal(err)
		}
		norm := make([]float64, len(util))
		for i := range util {
			norm[i] = util[i] / float64(g.GroupSize(i))
		}
		return influence.Disparity(norm)
	}
	dPlain, dFair := eval(plain), eval(fair)
	if dFair > dPlain+0.02 {
		t.Fatalf("fair RIS disparity %v vs plain %v", dFair, dPlain)
	}
}

func TestSolveAgreesWithForwardGreedy(t *testing.T) {
	// With ample samples, RIS greedy and forward greedy should pick seed
	// sets of similar quality (not necessarily identical).
	g := testGraph(t, 8)
	const tau = 4
	c, err := Sample(g, tau, []int{1500, 1500}, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	risSeeds, _, err := SolveBudget(c, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	fwdUtil, err := influence.Estimate(g, risSeeds, tau, cascade.IC, 800, 16)
	if err != nil {
		t.Fatal(err)
	}
	risTotal := fwdUtil[0] + fwdUtil[1]

	// Forward greedy reference.
	worlds := cascade.SampleWorlds(g, cascade.IC, 300, 17, 0)
	ev, err := influence.NewEvaluator(g, worlds, tau)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		best, bestGain := graph.NodeID(-1), -1.0
		for v := 0; v < g.N(); v++ {
			if gn := ev.Gain(graph.NodeID(v)); gn > bestGain {
				best, bestGain = graph.NodeID(v), gn
			}
		}
		ev.Add(best)
	}
	fwd2, err := influence.Estimate(g, ev.Seeds(), tau, cascade.IC, 800, 16)
	if err != nil {
		t.Fatal(err)
	}
	fwdTotal := fwd2[0] + fwd2[1]
	if risTotal < 0.7*fwdTotal {
		t.Fatalf("RIS greedy total %v far below forward greedy %v", risTotal, fwdTotal)
	}
}

func TestCollectionAccessors(t *testing.T) {
	g := testGraph(t, 9)
	c, err := Sample(g, 2, []int{10, 20}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph() != g || c.Tau() != 2 || c.NumSets() != 30 {
		t.Fatal("accessors broken")
	}
	ps := c.PoolSizes()
	if ps[0] != 10 || ps[1] != 20 {
		t.Fatalf("PoolSizes = %v", ps)
	}
}
