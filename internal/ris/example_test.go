package ris_test

import (
	"fmt"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/ris"
)

// Example_sketchReuse demonstrates the serving-layer access pattern that
// makes RIS cheap across queries: sample one τ-bounded RR-sketch
// Collection, then answer many independent queries by layering cheap
// per-query Estimators over the shared, read-only sketch — no
// re-sampling. internal/server keys exactly these Collections in its
// cache.
func Example_sketchReuse() {
	g := generate.TwoStars()
	col, err := ris.Sample(g, 3, []int{400, 400}, 1, 1)
	if err != nil {
		panic(err)
	}

	// Query 1: best single seed by total marginal gain.
	e1 := ris.NewEstimator(col)
	best, bestGain := graph.NodeID(-1), -1.0
	for v := 0; v < g.N(); v++ {
		if gain := e1.Gain(graph.NodeID(v)); gain > bestGain {
			best, bestGain = graph.NodeID(v), gain
		}
	}
	fmt.Println("best seed:", best)

	// Query 2: evaluate a caller-supplied seed set on the same sketch.
	e2 := ris.NewEstimator(col)
	e2.Add(0)
	e2.Add(11)
	fmt.Println("f(S;V) =", e2.TotalUtility())
	// Output:
	// best seed: 0
	// f(S;V) = 17
}
