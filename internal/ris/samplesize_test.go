package ris

import (
	"math"
	"testing"
)

func TestLogChoose(t *testing.T) {
	// ln C(5,2) = ln 10.
	if got := logChoose(5, 2); math.Abs(got-math.Log(10)) > 1e-9 {
		t.Fatalf("logChoose(5,2) = %v", got)
	}
	if logChoose(5, 0) != 0 {
		t.Fatal("logChoose(n,0)")
	}
	if logChoose(3, 9) != 0 {
		t.Fatal("logChoose out of range")
	}
	// Symmetry.
	if math.Abs(logChoose(20, 6)-logChoose(20, 14)) > 1e-9 {
		t.Fatal("logChoose not symmetric")
	}
}

func TestPlanSamplesValidation(t *testing.T) {
	g := testGraph(t, 31)
	if _, err := PlanSamples(g, 3, 5, 0, 0.1, 50, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := PlanSamples(g, 3, 5, 0.2, 0, 50, 1); err == nil {
		t.Fatal("delta=0 accepted")
	}
	if _, err := PlanSamples(g, 3, 0, 0.2, 0.1, 50, 1); err == nil {
		t.Fatal("budget=0 accepted")
	}
	if _, err := PlanSamples(g, 3, 5, 0.2, 0.1, 0, 1); err == nil {
		t.Fatal("pilot=0 accepted")
	}
}

func TestPlanSamplesShape(t *testing.T) {
	g := testGraph(t, 32)
	plan, err := PlanSamples(g, 5, 5, 0.3, 0.1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PerGroup) != g.NumGroups() {
		t.Fatalf("per-group count %d", len(plan.PerGroup))
	}
	sum := 0
	for i, c := range plan.PerGroup {
		if c < 100 {
			t.Fatalf("group %d pool %d below pilot floor", i, c)
		}
		sum += c
	}
	if sum != plan.Total {
		t.Fatalf("total %d != sum %d", plan.Total, sum)
	}
	if plan.OptLB < 1 {
		t.Fatalf("OptLB %v", plan.OptLB)
	}
	// Allocation roughly proportional to group sizes (70:30).
	ratio := float64(plan.PerGroup[0]) / float64(plan.PerGroup[1])
	wantRatio := float64(g.GroupSize(0)) / float64(g.GroupSize(1))
	if math.Abs(ratio-wantRatio)/wantRatio > 0.05 {
		t.Fatalf("allocation ratio %v, want ≈%v", ratio, wantRatio)
	}
}

func TestPlanSamplesTighterEpsNeedsMore(t *testing.T) {
	g := testGraph(t, 33)
	loose, err := PlanSamples(g, 5, 5, 0.5, 0.1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := PlanSamples(g, 5, 5, 0.1, 0.1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Total <= loose.Total {
		t.Fatalf("tight eps total %d not above loose %d", tight.Total, loose.Total)
	}
}

func TestPlanSamplesEndToEnd(t *testing.T) {
	// Use the plan to sample and solve; the result should at least match a
	// small fixed pool's quality.
	g := testGraph(t, 34)
	plan, err := PlanSamples(g, 4, 4, 0.5, 0.2, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Cap the pool to keep the test fast; the plan can be large on sparse
	// graphs where OPT is small.
	pools := make([]int, len(plan.PerGroup))
	for i, c := range plan.PerGroup {
		if c > 4000 {
			c = 4000
		}
		pools[i] = c
	}
	col, err := Sample(g, 4, pools, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	seeds, total, err := SolveBudget(col, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 4 || total < plan.OptLB*0.5 {
		t.Fatalf("planned solve: %d seeds, total %v vs OptLB %v", len(seeds), total, plan.OptLB)
	}
}
