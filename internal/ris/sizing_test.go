package ris

import (
	"testing"

	"fairtcim/internal/generate"
)

func TestRequiredPoolSizeMonotone(t *testing.T) {
	// Tighter ε or δ, larger k, or lower coverage must never shrink the
	// demanded pool.
	base := RequiredPoolSize(0.2, 0.05, 5, 200, 2, 0.5)
	if base <= 0 {
		t.Fatalf("base requirement %d not positive", base)
	}
	if r := RequiredPoolSize(0.1, 0.05, 5, 200, 2, 0.5); r <= base {
		t.Errorf("halving epsilon did not grow the pool: %d vs %d", r, base)
	}
	if r := RequiredPoolSize(0.2, 0.005, 5, 200, 2, 0.5); r <= base {
		t.Errorf("tightening delta did not grow the pool: %d vs %d", r, base)
	}
	if r := RequiredPoolSize(0.2, 0.05, 10, 200, 2, 0.5); r <= base {
		t.Errorf("doubling k did not grow the pool: %d vs %d", r, base)
	}
	if r := RequiredPoolSize(0.2, 0.05, 5, 200, 2, 0.1); r <= base {
		t.Errorf("lower coverage did not grow the pool: %d vs %d", r, base)
	}
	if r := RequiredPoolSize(0.2, 0.05, 5, 200, 2, 0); r != sizingMaxPool {
		t.Errorf("zero coverage bound should clamp to the max pool, got %d", r)
	}
}

func TestSampleForAccuracySatisfiesOwnRule(t *testing.T) {
	cfg := generate.DefaultTwoBlock(7)
	cfg.N, cfg.PHom, cfg.PHet = 200, 0.06, 0.003
	g, err := generate.TwoBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	col, err := SampleForAccuracy(g, 5, k, 0.3, 0.1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pools := col.PoolSizes()
	if len(pools) != g.NumGroups() {
		t.Fatalf("got %d pools for %d groups", len(pools), g.NumGroups())
	}
	for i, s := range pools {
		if s < sizingStartPool {
			t.Errorf("group %d pool %d below the pilot size", i, s)
		}
	}
	// The returned collection must satisfy the stopping rule it was sized
	// by (unreachable targets error instead of clamping).
	required, err := requiredForPool(col, k, 0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pools[0] < required {
		t.Errorf("pool %d does not satisfy its own requirement %d", pools[0], required)
	}
}

func TestSampleForAccuracyTighterTargetGrowsPool(t *testing.T) {
	cfg := generate.DefaultTwoBlock(7)
	cfg.N, cfg.PHom, cfg.PHet = 200, 0.06, 0.003
	g, err := generate.TwoBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SampleForAccuracy(g, 5, 5, 0.4, 0.2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SampleForAccuracy(g, 5, 5, 0.15, 0.05, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tight.PoolSizes()[0] <= loose.PoolSizes()[0] {
		t.Errorf("tighter target pool %d not larger than loose pool %d",
			tight.PoolSizes()[0], loose.PoolSizes()[0])
	}
}

func TestSampleForAccuracyDeterministic(t *testing.T) {
	g := generate.TwoStars()
	a, err := SampleForAccuracy(g, 3, 2, 0.3, 0.1, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleForAccuracy(g, 3, 2, 0.3, 0.1, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.PoolSizes()[0] != b.PoolSizes()[0] {
		t.Errorf("pool size depends on parallelism: %d vs %d", a.PoolSizes()[0], b.PoolSizes()[0])
	}
}

// TestSampleForAccuracyRejectsUnreachableTarget: a target whose demanded
// pool exceeds the cap errors (as the forward-MC path does) instead of
// silently returning an under-accurate pool.
func TestSampleForAccuracyRejectsUnreachableTarget(t *testing.T) {
	g := generate.TwoStars()
	if _, err := SampleForAccuracy(g, 3, 2, 0.002, 0.001, 1, 0); err == nil {
		t.Error("unreachable accuracy target accepted")
	}
}

func TestSampleForAccuracyRejectsBadTargets(t *testing.T) {
	g := generate.TwoStars()
	for _, tc := range []struct {
		name       string
		k          int
		eps, delta float64
	}{
		{"zero eps", 2, 0, 0.1},
		{"eps one", 2, 1, 0.1},
		{"zero delta", 2, 0.2, 0},
		{"delta one", 2, 0.2, 1},
		{"zero k", 0, 0.2, 0.1},
	} {
		if _, err := SampleForAccuracy(g, 3, tc.k, tc.eps, tc.delta, 1, 0); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
