package ris

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// DefaultRefreshThreshold is the dirty fraction above which Refresh gives
// up on incremental maintenance and rebuilds the whole pool: past this
// point the reassembly bookkeeping costs more than it saves.
const DefaultRefreshThreshold = 0.75

// RefreshStats reports how much of the pool an incremental refresh
// actually resampled.
type RefreshStats struct {
	// Refreshed is the number of RR sets resampled under the new graph.
	Refreshed int
	// Retained is the number of RR sets carried over unchanged.
	Retained int
	// DirtyFraction is Refreshed over the total pool size, before the
	// full-rebuild threshold was applied.
	DirtyFraction float64
	// FullRebuild reports that the whole pool was resampled from scratch —
	// either the dirty fraction crossed the threshold, or the delta changed
	// the graph's shape (node count or group labels), which invalidates
	// every root draw.
	FullRebuild bool
}

// Refresh incrementally migrates the collection to newG, a successor
// snapshot of the sampled graph in which only the edges with heads in
// touchedHeads changed (added, removed, or re-weighted). The receiver is
// not modified.
//
// Correctness rests on the reverse-BFS structure: sampling an RR set only
// examines the in-edges of nodes it visits, so a set that contains no
// changed edge's head never observed a changed coin and remains a valid
// draw under newG. Exactly the sets containing a touched head — found in
// O(Σ index lists) via the inverted node→sets index — are resampled with
// fresh roots and fresh coins from seed. Callers should derive seed from
// the original sampling seed mixed with the new graph version so refresh
// streams never replay the coins that selected the dirty sets.
//
// Retention conditions each surviving slot on avoiding the touched heads,
// so the refreshed pool slightly underweights sets through the changed
// region (second order in the dirty fraction). The threshold bounds that
// drift: when the dirty fraction exceeds it (<=0 means
// DefaultRefreshThreshold), or when the delta changed node count or group
// labels, Refresh falls back to a full resample under seed.
func (c *Collection) Refresh(newG *graph.Graph, touchedHeads []graph.NodeID, seed int64, parallelism int, threshold float64, cancel <-chan struct{}) (*Collection, RefreshStats, error) {
	if threshold <= 0 {
		threshold = DefaultRefreshThreshold
	}
	total := c.NumSets()
	full := func(fraction float64) (*Collection, RefreshStats, error) {
		nc, err := SampleCancel(newG, c.tau, c.poolSize, seed, parallelism, cancel)
		if err != nil {
			return nil, RefreshStats{}, err
		}
		return nc, RefreshStats{Refreshed: total, DirtyFraction: fraction, FullRebuild: true}, nil
	}
	if newG.N() != c.g.N() || newG.NumGroups() != len(c.poolSize) {
		return full(1)
	}
	for v := 0; v < c.g.N(); v++ {
		if c.g.Group(graph.NodeID(v)) != newG.Group(graph.NodeID(v)) {
			return full(1)
		}
	}

	// A set is dirty iff it contains a touched head.
	dirty := make([]uint64, (total+63)/64)
	dirtyCount := 0
	for _, w := range touchedHeads {
		if w < 0 || int(w) >= c.g.N() {
			continue
		}
		for _, id := range c.refs[c.off[w]:c.off[w+1]] {
			word, bit := uint32(id)>>6, uint64(1)<<(uint32(id)&63)
			if dirty[word]&bit == 0 {
				dirty[word] |= bit
				dirtyCount++
			}
		}
	}
	fraction := float64(dirtyCount) / float64(total)
	if fraction > threshold {
		return full(fraction)
	}
	stats := RefreshStats{Refreshed: dirtyCount, Retained: total - dirtyCount, DirtyFraction: fraction}
	if dirtyCount == 0 {
		// Nothing to resample; rebind the index to the new snapshot.
		nc := *c
		nc.g = newG
		return &nc, stats, nil
	}

	// Reconstruct retained set contents from the inverted index: refs is a
	// flat multiset of (node, set) pairs, so one pass counts lengths and a
	// second scatters nodes into a shared arena.
	counts := make([]int32, total)
	for _, id := range c.refs {
		if dirty[uint32(id)>>6]&(1<<(uint32(id)&63)) == 0 {
			counts[id]++
		}
	}
	starts := make([]int32, total+1)
	for i, cnt := range counts {
		starts[i+1] = starts[i] + cnt
	}
	arena := make([]graph.NodeID, starts[total])
	fill := make([]int32, total)
	copy(fill, starts[:total])
	for v := 0; v < c.g.N(); v++ {
		for _, id := range c.refs[c.off[v]:c.off[v+1]] {
			if dirty[uint32(id)>>6]&(1<<(uint32(id)&63)) == 0 {
				arena[fill[id]] = graph.NodeID(v)
				fill[id]++
			}
		}
	}
	sets := make([][]graph.NodeID, total)
	for i := 0; i < total; i++ {
		if dirty[uint32(i)>>6]&(1<<(uint32(i)&63)) == 0 {
			sets[i] = arena[starts[i]:starts[i+1]]
		}
	}

	// Resample the dirty sets under newG with fresh roots and coins.
	dirtyIDs := make([]int32, 0, dirtyCount)
	for i := int32(0); int(i) < total; i++ {
		if dirty[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 {
			dirtyIDs = append(dirtyIDs, i)
		}
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(dirtyIDs) {
		parallelism = len(dirtyIDs)
	}
	members := make([][]graph.NodeID, newG.NumGroups())
	for i := range members {
		members[i] = newG.GroupMembers(i)
	}
	root := xrand.New(seed)
	scratches := make([]*samplerScratch, parallelism)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	work := make(chan int32, len(dirtyIDs))
	for _, id := range dirtyIDs {
		work <- id
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		sc := grabScratch(newG.N())
		scratches[p] = sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for flat := range work {
				if cancel != nil {
					select {
					case <-cancel:
						canceled.Store(true)
						return
					default:
					}
				}
				rng := root.SplitN(int64(flat))
				pool := members[groupOfFlat(c.base, flat)]
				rootNode := pool[rng.Intn(len(pool))]
				start := int32(len(sc.arena))
				reverseBFS(newG, rootNode, c.tau, rng, sc)
				sc.spans = append(sc.spans, setSpan{flat: flat, start: start, end: int32(len(sc.arena))})
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		for _, sc := range scratches {
			samplerPool.Put(sc)
		}
		return nil, RefreshStats{}, context.Canceled
	}
	for _, sc := range scratches {
		for _, sp := range sc.spans {
			sets[sp.flat] = sc.arena[sp.start:sp.end]
		}
	}

	// Reassemble the inverted index exactly as SampleCancel does: per-node
	// counts, prefix sums, then a scatter in ascending flat order so every
	// node's ref list stays sorted.
	n := newG.N()
	off := make([]int32, n+1)
	for _, set := range sets {
		for _, v := range set {
			off[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	refs := make([]int32, off[n])
	next := make([]int32, n)
	copy(next, off[:n])
	for flat, set := range sets {
		for _, v := range set {
			refs[next[v]] = int32(flat)
			next[v]++
		}
	}
	for _, sc := range scratches {
		samplerPool.Put(sc)
	}

	return &Collection{
		g:        newG,
		tau:      c.tau,
		poolSize: append([]int(nil), c.poolSize...),
		base:     c.base,
		off:      off,
		refs:     refs,
	}, stats, nil
}
