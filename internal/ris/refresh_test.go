package ris

import (
	"reflect"
	"sort"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

// greedyPick runs plain greedy over total coverage gain for k picks.
func greedyPick(c *Collection, k int) []graph.NodeID {
	e := NewEstimator(c)
	for len(e.Seeds()) < k {
		best, bestGain := graph.NodeID(-1), -1.0
		for v := 0; v < c.Graph().N(); v++ {
			if g := e.Gain(graph.NodeID(v)); g > bestGain {
				best, bestGain = graph.NodeID(v), g
			}
		}
		e.Add(best)
	}
	return append([]graph.NodeID(nil), e.Seeds()...)
}

// setsOf reconstructs per-set sorted contents from the inverted index.
func setsOf(c *Collection) [][]graph.NodeID {
	out := make([][]graph.NodeID, c.NumSets())
	for v := 0; v < c.Graph().N(); v++ {
		for _, id := range c.refs[c.off[v]:c.off[v+1]] {
			out[id] = append(out[id], graph.NodeID(v))
		}
	}
	return out
}

func TestRefreshPartialParity(t *testing.T) {
	g := generate.TwoStars()
	col, err := Sample(g, 3, []int{40, 40}, 7, 2)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	// Adding 1->0 makes hub 0 a head: every group-0 RR set contains 0 (the
	// p=1 edges 0->leaf run in reverse), no group-1 set does — so exactly
	// half the pool is dirty, deterministically.
	g2, res, err := g.ApplyDelta(graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, P: 0.05}}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	ref, stats, err := col.Refresh(g2, res.TouchedHeads, 7^0x9E37, 2, 0, nil)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if stats.FullRebuild {
		t.Fatal("expected partial refresh, got full rebuild")
	}
	if stats.Refreshed != 40 || stats.Retained != 40 {
		t.Fatalf("stats = %+v, want 40 refreshed / 40 retained", stats)
	}
	if stats.DirtyFraction != 0.5 {
		t.Fatalf("DirtyFraction = %v, want 0.5", stats.DirtyFraction)
	}
	if ref.Graph() != g2 {
		t.Fatal("refreshed collection not bound to new snapshot")
	}

	// Retained group-1 sets carry over bit-identically.
	oldSets, newSets := setsOf(col), setsOf(ref)
	for id := 40; id < 80; id++ {
		if !reflect.DeepEqual(oldSets[id], newSets[id]) {
			t.Fatalf("retained set %d changed: %v -> %v", id, oldSets[id], newSets[id])
		}
	}
	// Refs stay strictly increasing per node.
	for v := 0; v <= g2.N(); v++ {
		if v < g2.N() && !sort.SliceIsSorted(ref.refs[ref.off[v]:ref.off[v+1]], func(i, j int) bool {
			return ref.refs[ref.off[v]:ref.off[v+1]][i] < ref.refs[ref.off[v]:ref.off[v+1]][j]
		}) {
			t.Fatalf("refs of node %d not sorted", v)
		}
	}

	// Parity: greedy picks on the refreshed collection match a from-scratch
	// rebuild at the new version (hubs 0 and 11 dominate either way).
	fresh, err := Sample(g2, 3, []int{40, 40}, 7^0x9E37, 2)
	if err != nil {
		t.Fatalf("fresh Sample: %v", err)
	}
	got, want := greedyPick(ref, 2), greedyPick(fresh, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("greedy picks diverge: refreshed %v, fresh %v", got, want)
	}
	if !reflect.DeepEqual(got, []graph.NodeID{0, 11}) {
		t.Fatalf("greedy picks = %v, want [0 11]", got)
	}
}

func TestRefreshNoDirtySets(t *testing.T) {
	g := generate.TwoStars()
	col, err := Sample(g, 3, []int{20, 20}, 3, 1)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	g2, _, err := g.ApplyDelta(graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 2, P: 0.5}}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	// Pass no touched heads: the index is rebound to the new snapshot
	// without resampling anything.
	ref, stats, err := col.Refresh(g2, nil, 99, 1, 0, nil)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if stats.Refreshed != 0 || stats.Retained != 40 || stats.FullRebuild {
		t.Fatalf("stats = %+v", stats)
	}
	if ref.Graph() != g2 {
		t.Fatal("collection not rebound to new graph")
	}
	if !reflect.DeepEqual(setsOf(col), setsOf(ref)) {
		t.Fatal("zero-dirty refresh changed set contents")
	}
}

func TestRefreshThresholdFullRebuild(t *testing.T) {
	g := generate.TwoStars()
	col, err := Sample(g, 3, []int{40, 40}, 7, 2)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	g2, res, err := g.ApplyDelta(graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, P: 0.05}}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	// Dirty fraction is 0.5; a 0.25 threshold forces the full rebuild path.
	ref, stats, err := col.Refresh(g2, res.TouchedHeads, 11, 2, 0.25, nil)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !stats.FullRebuild || stats.Refreshed != 80 || stats.Retained != 0 {
		t.Fatalf("stats = %+v, want full rebuild of 80", stats)
	}
	fresh, err := Sample(g2, 3, []int{40, 40}, 11, 2)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if !reflect.DeepEqual(setsOf(ref), setsOf(fresh)) {
		t.Fatal("threshold full rebuild differs from direct Sample at same seed")
	}
}

func TestRefreshGroupChangeFullRebuild(t *testing.T) {
	g := generate.TwoStars()
	col, err := Sample(g, 3, []int{40, 40}, 7, 2)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	// Moving a node across groups invalidates the root distributions, so
	// even an edge-free delta must trigger a full rebuild.
	g2, res, err := g.ApplyDelta(graph.Delta{Groups: []graph.GroupDelta{{Node: 10, Group: 1}}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	_, stats, err := col.Refresh(g2, res.TouchedHeads, 5, 2, 0, nil)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !stats.FullRebuild {
		t.Fatalf("stats = %+v, want full rebuild on group change", stats)
	}
}

func TestRefreshEstimateCloseness(t *testing.T) {
	// On a denser random graph, a small-delta refresh must track a fresh
	// rebuild's utility estimates closely.
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(42))
	if err != nil {
		t.Fatalf("TwoBlock: %v", err)
	}
	col, err := Sample(g, 4, []int{400, 400}, 13, 0)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	g2, res, err := g.ApplyDelta(graph.Delta{Edges: []graph.EdgeDelta{
		{From: 0, To: 1, P: 0.9},
		{From: 2, To: 3, P: 0.9},
	}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	ref, stats, err := col.Refresh(g2, res.TouchedHeads, 13^1, 0, 0, nil)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if stats.FullRebuild {
		t.Skipf("delta dirtied %.2f of the pool; closeness check needs a partial refresh", stats.DirtyFraction)
	}
	if stats.Refreshed == 0 {
		t.Fatal("expected some dirty sets on a dense graph")
	}
	fresh, err := Sample(g2, 4, []int{400, 400}, 13^1, 0)
	if err != nil {
		t.Fatalf("fresh Sample: %v", err)
	}
	seeds := greedyPick(fresh, 4)
	er, ef := NewEstimator(ref), NewEstimator(fresh)
	for _, s := range seeds {
		er.Add(s)
		ef.Add(s)
	}
	ur, uf := er.NormGroupUtilities(), ef.NormGroupUtilities()
	for i := range ur {
		if d := ur[i] - uf[i]; d > 0.1 || d < -0.1 {
			t.Fatalf("group %d utilities diverge: refreshed %.3f vs fresh %.3f", i, ur[i], uf[i])
		}
	}
}
