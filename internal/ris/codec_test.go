package ris

import (
	"errors"
	"math"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

// encodePayloadV1 re-emits the original version-1 payload layout —
// (group,index) pairs, no compression — so tests can verify that frames
// written before the codec bump still decode. It is the writer the v1
// decoder is tested against now that EncodePayload writes version 2.
func encodePayloadV1(c *Collection) []byte {
	var e persist.Enc
	e.I32(c.tau)
	e.Ints(c.poolSize)
	n := len(c.off) - 1
	e.U64(uint64(n))
	for v := 0; v < n; v++ {
		refs := c.refs[c.off[v]:c.off[v+1]]
		e.U64(uint64(len(refs)))
		for _, id := range refs {
			grp := groupOfFlat(c.base, id)
			e.I32(int32(grp))
			e.I32(id - c.base[grp])
		}
	}
	return e.Bytes()
}

// estimatesEqual walks a fixed greedy-ish path on both collections and
// fails the test on the first differing estimate.
func estimatesEqual(t *testing.T, col, back *Collection, probe []graph.NodeID) {
	t.Helper()
	if back.Tau() != col.Tau() || back.NumSets() != col.NumSets() || back.NumRefs() != col.NumRefs() {
		t.Fatalf("shape changed: tau %d->%d, sets %d->%d, refs %d->%d",
			col.Tau(), back.Tau(), col.NumSets(), back.NumSets(), col.NumRefs(), back.NumRefs())
	}
	a, b := NewEstimator(col), NewEstimator(back)
	for _, v := range probe {
		ga, gb := a.GainPerGroup(v), b.GainPerGroup(v)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("gain of %d differs in group %d: %v vs %v", v, i, ga[i], gb[i])
			}
		}
		a.Add(v)
		b.Add(v)
		ua, ub := a.GroupUtilities(), b.GroupUtilities()
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("utilities differ after adding %d: %v vs %v", v, ua, ub)
			}
		}
	}
}

// TestCodecRoundTrip pins the warm-restart guarantee at the sketch level:
// a decoded Collection is indistinguishable from the one that was saved —
// same shape, and bit-identical estimates for every node along a greedy
// path — so a solve over it returns byte-identical results.
func TestCodecRoundTrip(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(3))
	if err != nil {
		t.Fatal(err)
	}
	col, err := Sample(g, 5, []int{300, 300}, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePayload(col.EncodePayload(), g)
	if err != nil {
		t.Fatal(err)
	}
	estimatesEqual(t, col, back, []graph.NodeID{0, 7, 42, 199})
}

// TestCodecCrossVersion is the compatibility matrix: a version-1 payload
// (the pre-bump pair layout) must decode under the current codec — both at
// the payload level and through a full persist frame stamped Version 1 —
// and yield bit-identical estimates. A warm-state dir written by an older
// build keeps working after upgrade.
func TestCodecCrossVersion(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(4))
	if err != nil {
		t.Fatal(err)
	}
	col, err := Sample(g, 4, []int{250, 350}, 19, 3)
	if err != nil {
		t.Fatal(err)
	}
	v1 := encodePayloadV1(col)
	v2 := col.EncodePayload()

	back1, err := DecodePayloadVersion(1, v1, g)
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	estimatesEqual(t, col, back1, []graph.NodeID{3, 17, 101, 222})

	// The compression claim, pinned: the v2 stream must be well under half
	// the v1 pair layout on a realistic sketch.
	if len(v2)*2 > len(v1) {
		t.Fatalf("v2 payload %d bytes, not ≥2x smaller than v1's %d", len(v2), len(v1))
	}

	// Frame level: a file stamped Version 1 passes DecodeRange with the
	// codec's floor and dispatches to the v1 layout.
	meta := persist.Meta{Kind: CodecKind, Version: 1, Fingerprint: persist.GraphFingerprint(g)}
	framed, err := persist.Encode(meta, v1)
	if err != nil {
		t.Fatal(err)
	}
	want := persist.Meta{Kind: CodecKind, Version: CodecVersion, Fingerprint: persist.GraphFingerprint(g)}
	payload, version, err := persist.DecodeRange(framed, want, CodecMinVersion)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if version != 1 {
		t.Fatalf("frame version = %d, want 1", version)
	}
	back, err := DecodePayloadVersion(version, payload, g)
	if err != nil {
		t.Fatal(err)
	}
	estimatesEqual(t, col, back, []graph.NodeID{3, 17, 101, 222})

	// Versions outside the supported window stay rejected.
	if _, err := DecodePayloadVersion(CodecVersion+1, v2, g); err == nil {
		t.Error("future codec version accepted")
	}
	if _, _, err := persist.DecodeRange(framed, want, 2); !errors.Is(err, persist.ErrMismatch) {
		t.Errorf("v1 frame below the floor: got %v, want ErrMismatch", err)
	}
}

// TestCodecRejectsMalformedPayloads: a payload that passed the frame
// checks but violates the Collection's structural invariants must be
// rejected, never loaded into an index that could answer wrongly. Both
// decoder generations are exercised against their own layouts.
func TestCodecRejectsMalformedPayloads(t *testing.T) {
	g := generate.TwoStars()
	col, err := Sample(g, 3, []int{50, 50}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := col.EncodePayload()

	if _, err := DecodePayload(good[:len(good)-2], g); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("truncated payload: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodePayload(append(append([]byte(nil), good...), 0), g); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("payload with trailing bytes: got %v, want ErrCorrupt", err)
	}

	// Wrong graph shape: decode against a graph with a different node
	// count and group structure.
	bigger, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(good, bigger); err == nil {
		t.Error("payload decoded against a different graph")
	}

	// v2 header with hand-corrupted delta streams.
	header := func() *persist.Enc {
		var e persist.Enc
		e.I32(3)
		e.Ints([]int{2, 2})
		e.Uvarint(uint64(g.N()))
		return &e
	}

	// A zero gap (duplicate flat id) in a delta stream is corruption.
	dup := header()
	dup.Uvarint(2) // node 0: two refs...
	dup.Uvarint(1) // ...first id 1
	dup.Uvarint(0) // ...then gap 0: id 1 again
	for v := 1; v < g.N(); v++ {
		dup.Uvarint(0)
	}
	if _, err := DecodePayload(dup.Bytes(), g); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("zero-gap delta stream: got %v, want ErrCorrupt", err)
	}

	// A ref at/past the total set count (4 here) is corruption.
	oob := header()
	oob.Uvarint(1)
	oob.Uvarint(4)
	for v := 1; v < g.N(); v++ {
		oob.Uvarint(0)
	}
	if _, err := DecodePayload(oob.Bytes(), g); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("out-of-range flat ref: got %v, want ErrCorrupt", err)
	}

	// A huge per-node ref count must fail on bounds, not allocate.
	hugeV2 := header()
	hugeV2.Uvarint(math.MaxUint32)
	if _, err := DecodePayload(hugeV2.Bytes(), g); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("oversized v2 ref count: got %v, want ErrCorrupt", err)
	}

	// Negative deadline and non-positive pool sizes (header validation,
	// shared by both versions).
	var neg persist.Enc
	neg.I32(-1)
	neg.Ints([]int{2, 2})
	neg.Uvarint(uint64(g.N()))
	for v := 0; v < g.N(); v++ {
		neg.Uvarint(0)
	}
	if _, err := DecodePayload(neg.Bytes(), g); err == nil {
		t.Error("negative deadline accepted")
	}
	var zero persist.Enc
	zero.I32(3)
	zero.Ints([]int{0, 2})
	zero.Uvarint(uint64(g.N()))
	for v := 0; v < g.N(); v++ {
		zero.Uvarint(0)
	}
	if _, err := DecodePayload(zero.Bytes(), g); err == nil {
		t.Error("zero pool size accepted")
	}

	// v1 layout violations still caught by the v1 decoder.
	var v1oob persist.Enc
	v1oob.I32(3)
	v1oob.Ints([]int{2, 2})
	v1oob.U64(uint64(g.N()))
	v1oob.U64(1) // node 0 appears in one set...
	v1oob.I32(0)
	v1oob.I32(5) // ...whose index 5 is outside pool size 2
	for v := 1; v < g.N(); v++ {
		v1oob.U64(0)
	}
	if _, err := DecodePayloadVersion(1, v1oob.Bytes(), g); err == nil {
		t.Error("out-of-range v1 set ref accepted")
	}

	var v1huge persist.Enc
	v1huge.I32(3)
	v1huge.Ints([]int{2, 2})
	v1huge.U64(uint64(g.N()))
	v1huge.U64(math.MaxUint32)
	if _, err := DecodePayloadVersion(1, v1huge.Bytes(), g); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("oversized v1 ref count: got %v, want ErrCorrupt", err)
	}

	var v1dup persist.Enc
	v1dup.I32(3)
	v1dup.Ints([]int{2, 2})
	v1dup.U64(uint64(g.N()))
	v1dup.U64(2) // node 0 lists the same set twice
	v1dup.I32(0)
	v1dup.I32(1)
	v1dup.I32(0)
	v1dup.I32(1)
	for v := 1; v < g.N(); v++ {
		v1dup.U64(0)
	}
	if _, err := DecodePayloadVersion(1, v1dup.Bytes(), g); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("duplicate v1 set ref: got %v, want ErrCorrupt", err)
	}
}

// FuzzDecodePayload throws arbitrary bytes at both decoder generations:
// whatever comes back must be a clean error or a structurally valid
// Collection — never a panic, never out-of-range state. The corpus seeds
// it with genuine payloads of both versions plus their corrupted variants.
func FuzzDecodePayload(f *testing.F) {
	g := generate.TwoStars()
	col, err := Sample(g, 3, []int{20, 20}, 7, 1)
	if err != nil {
		f.Fatal(err)
	}
	v2 := col.EncodePayload()
	v1 := encodePayloadV1(col)
	f.Add(uint32(2), v2)
	f.Add(uint32(1), v1)
	f.Add(uint32(2), v2[:len(v2)/2])
	f.Add(uint32(1), v1[:len(v1)/2])
	flipped := append([]byte(nil), v2...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(uint32(2), flipped)
	f.Add(uint32(2), []byte{})
	f.Fuzz(func(t *testing.T, version uint32, payload []byte) {
		back, err := DecodePayloadVersion(version%3, payload, g)
		if err != nil {
			return
		}
		// Accepted payloads must decode to an index a solve can trust.
		total := int32(back.NumSets())
		for v := 0; v <= g.N()-1; v++ {
			prev := int32(-1)
			for _, id := range back.refs[back.off[v]:back.off[v+1]] {
				if id <= prev || id >= total {
					t.Fatalf("node %d: accepted ref %d after %d (total %d)", v, id, prev, total)
				}
				prev = id
			}
		}
	})
}
