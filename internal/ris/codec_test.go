package ris

import (
	"math"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

// TestCodecRoundTrip pins the warm-restart guarantee at the sketch level:
// a decoded Collection is indistinguishable from the one that was saved —
// same shape, and bit-identical estimates for every node along a greedy
// path — so a solve over it returns byte-identical results.
func TestCodecRoundTrip(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(3))
	if err != nil {
		t.Fatal(err)
	}
	col, err := Sample(g, 5, []int{300, 300}, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePayload(col.EncodePayload(), g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tau() != col.Tau() || back.NumSets() != col.NumSets() {
		t.Fatalf("shape changed: tau %d->%d, sets %d->%d", col.Tau(), back.Tau(), col.NumSets(), back.NumSets())
	}
	a, b := NewEstimator(col), NewEstimator(back)
	for _, v := range []graph.NodeID{0, 7, 42, 199} {
		ga, gb := a.GainPerGroup(v), b.GainPerGroup(v)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("gain of %d differs in group %d: %v vs %v", v, i, ga[i], gb[i])
			}
		}
		a.Add(v)
		b.Add(v)
		ua, ub := a.GroupUtilities(), b.GroupUtilities()
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("utilities differ after adding %d: %v vs %v", v, ua, ub)
			}
		}
	}
}

// TestCodecRejectsMalformedPayloads: a payload that passed the frame
// checks but violates the Collection's structural invariants must be
// rejected, never loaded into an index that could answer wrongly.
func TestCodecRejectsMalformedPayloads(t *testing.T) {
	g := generate.TwoStars()
	col, err := Sample(g, 3, []int{50, 50}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := col.EncodePayload()

	if _, err := DecodePayload(good[:len(good)-2], g); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodePayload(append(append([]byte(nil), good...), 0), g); err == nil {
		t.Error("payload with trailing bytes accepted")
	}

	// Wrong graph shape: decode against a graph with a different node
	// count and group structure.
	bigger, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(good, bigger); err == nil {
		t.Error("payload decoded against a different graph")
	}

	// Out-of-range set refs: hand-craft a payload whose single ref points
	// beyond its group's pool.
	var e persist.Enc
	e.I32(3)             // tau
	e.Ints([]int{2, 2})  // pool sizes
	e.U64(uint64(g.N())) // node count
	e.U64(1)             // node 0 appears in one set...
	e.I32(0)
	e.I32(5) // ...whose index 5 is outside pool size 2
	for v := 1; v < g.N(); v++ {
		e.U64(0)
	}
	if _, err := DecodePayload(e.Bytes(), g); err == nil {
		t.Error("out-of-range set ref accepted")
	}

	// Negative deadline and non-positive pool sizes.
	var neg persist.Enc
	neg.I32(-1)
	neg.Ints([]int{2, 2})
	neg.U64(uint64(g.N()))
	for v := 0; v < g.N(); v++ {
		neg.U64(0)
	}
	if _, err := DecodePayload(neg.Bytes(), g); err == nil {
		t.Error("negative deadline accepted")
	}
	var zero persist.Enc
	zero.I32(3)
	zero.Ints([]int{0, 2})
	zero.U64(uint64(g.N()))
	for v := 0; v < g.N(); v++ {
		zero.U64(0)
	}
	if _, err := DecodePayload(zero.Bytes(), g); err == nil {
		t.Error("zero pool size accepted")
	}

	// A huge per-node ref count must fail on bounds, not allocate.
	var huge persist.Enc
	huge.I32(3)
	huge.Ints([]int{2, 2})
	huge.U64(uint64(g.N()))
	huge.U64(math.MaxUint32)
	if _, err := DecodePayload(huge.Bytes(), g); err == nil {
		t.Error("oversized ref count accepted")
	}
}
