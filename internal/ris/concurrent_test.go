package ris

import (
	"sync"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

// TestCollectionConcurrentEstimators shares one Collection across many
// goroutines, each running its own greedy loop on a private Estimator —
// the serving-layer access pattern. Every goroutine must see identical
// results, and the run must be race-clean under -race.
func TestCollectionConcurrentEstimators(t *testing.T) {
	g := generate.TwoStars()
	perGroup := make([]int, g.NumGroups())
	for i := range perGroup {
		perGroup[i] = 500
	}
	col, err := Sample(g, 3, perGroup, 7, 0)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	seeds := make([][]graph.NodeID, workers)
	utils := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := NewEstimator(col)
			for pick := 0; pick < 2; pick++ {
				best, bestGain := graph.NodeID(-1), -1.0
				for v := 0; v < g.N(); v++ {
					if gain := e.Gain(graph.NodeID(v)); gain > bestGain {
						best, bestGain = graph.NodeID(v), gain
					}
				}
				e.Add(best)
			}
			seeds[w] = append([]graph.NodeID(nil), e.Seeds()...)
			utils[w] = e.TotalUtility()
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		if utils[w] != utils[0] {
			t.Fatalf("worker %d utility %v != worker 0 utility %v", w, utils[w], utils[0])
		}
		for i := range seeds[0] {
			if seeds[w][i] != seeds[0][i] {
				t.Fatalf("worker %d seeds %v != worker 0 seeds %v", w, seeds[w], seeds[0])
			}
		}
	}
	// On the deterministic two-star fixture greedy must take the hubs.
	if seeds[0][0] != 0 || seeds[0][1] != 11 {
		t.Fatalf("greedy over shared collection picked %v, want [0 11]", seeds[0])
	}
}
