package ris

import (
	"context"
	"errors"
	"sync"
	"testing"

	"fairtcim/internal/generate"
)

// TestPooledScratchReuseAcrossConcurrentSamples hammers Sample from many
// goroutines so pooled sampler scratches are handed between concurrent
// runs (and across distinct graphs mid-flight). Determinism must survive:
// a pooled visited array carries stale epochs from an unrelated run, and
// the global epoch counter is what keeps them from ever matching. Run
// under -race this also proves the pool hand-off itself is clean.
func TestPooledScratchReuseAcrossConcurrentSamples(t *testing.T) {
	g1, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	g2 := generate.TwoStars()

	ref1, err := Sample(g1, 4, []int{60, 60}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := Sample(g2, 3, []int{40, 40}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				var got, want *Collection
				var err error
				if (i+rep)%2 == 0 {
					got, err = Sample(g1, 4, []int{60, 60}, 9, 3)
					want = ref1
				} else {
					got, err = Sample(g2, 3, []int{40, 40}, 5, 3)
					want = ref2
				}
				if err != nil {
					errs <- err
					return
				}
				if got.NumRefs() != want.NumRefs() {
					errs <- errors.New("pooled sampling lost determinism: ref count drifted")
					return
				}
				for j := range got.refs {
					if got.refs[j] != want.refs[j] {
						errs <- errors.New("pooled sampling lost determinism: inverted index drifted")
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSampleCancel: a closed cancel channel stops sampling between RR sets
// with context.Canceled, and a nil channel never interferes.
func TestSampleCancel(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(2))
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	close(cancel)
	if _, err := SampleCancel(g, 4, []int{500, 500}, 3, 2, cancel); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled sample: got %v, want context.Canceled", err)
	}
	if _, err := SampleForAccuracyCancel(g, 4, 5, 0.3, 0.1, 3, 2, cancel); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled accuracy sample: got %v, want context.Canceled", err)
	}
	if _, err := SampleCancel(g, 4, []int{50, 50}, 3, 2, nil); err != nil {
		t.Fatalf("nil cancel: %v", err)
	}
}
