// Package ris implements reverse influence sampling (RIS) specialized to
// the time-critical setting — a scalability extension beyond the paper's
// forward Monte-Carlo estimator.
//
// A τ-bounded reverse-reachable (RR) set for root v is drawn by a reverse
// BFS of depth ≤ τ from v, flipping each incoming edge alive with its
// activation probability. The standard RIS identity, restricted to the
// deadline, gives
//
//	fτ(S;Vᵢ) = |Vᵢ| · Pr[ S ∩ RR(v) ≠ ∅ ],  v uniform in Vᵢ,
//
// so sampling a pool of RR sets per group turns every group utility into a
// set-coverage function of S — exactly monotone submodular, and cheap to
// evaluate incrementally through an inverted index. Greedy/CELF over this
// coverage objective is the classical RIS maximizer (Borgs et al.; TIM/IMM)
// adapted to per-group deadline-bounded pools.
package ris

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// Collection is a sampled family of τ-bounded RR sets, pooled per group,
// with an inverted node→sets index stored as one flat CSR-style arena:
// refs[off[v]:off[v+1]] are the flat ids of the RR sets containing node v,
// strictly increasing. Flat ids enumerate sets group-major — group i owns
// ids [base[i], base[i+1]) — so the group of a ref is recovered by walking
// base alongside the sorted refs, and the whole index is two cache-friendly
// slices instead of one small heap block per node.
//
// A built Collection is immutable: Sample is the only writer, and every
// method only reads. It is therefore safe to share one Collection across
// any number of goroutines, each wrapping it in its own Estimator — the
// serving layer (internal/server) relies on this to answer concurrent
// queries from a single cached sketch without re-sampling.
type Collection struct {
	g        *graph.Graph
	tau      int32
	poolSize []int   // RR sets sampled per group
	base     []int32 // base[i] = first flat id of group i; base[len] = total
	off      []int32 // off[v]..off[v+1] bounds node v's refs
	refs     []int32 // flat RR-set ids, strictly increasing per node
}

// groupBases converts per-group pool sizes to flat-id group boundaries.
func groupBases(poolSize []int) []int32 {
	base := make([]int32, len(poolSize)+1)
	for i, s := range poolSize {
		base[i+1] = base[i] + int32(s)
	}
	return base
}

// groupOfFlat returns the group owning flat set id.
func groupOfFlat(base []int32, flat int32) int {
	return sort.Search(len(base)-1, func(i int) bool { return base[i+1] > flat })
}

// samplerScratch is the pooled per-worker state of a sampling run: the
// epoch-marked visited array, BFS queue/depth buffers, and the arena the
// worker's RR sets are appended into. Pooling it removes the dominant
// allocation churn from repeated sampling — in particular the geometric
// doubling rounds of SampleForAccuracy, which resample the whole pool
// several times per call.
type samplerScratch struct {
	visited []int64        // visited[v] == epoch marks v reached in the current BFS
	queue   []graph.NodeID // BFS frontier
	depth   []int32        // parallel hop depths
	arena   []graph.NodeID // concatenated RR sets of this worker
	spans   []setSpan      // where each sampled set lives in arena
}

// setSpan locates one RR set inside a worker arena.
type setSpan struct {
	flat       int32
	start, end int32
}

var samplerPool = sync.Pool{New: func() any { return &samplerScratch{} }}

// sampleEpoch issues globally unique BFS epochs, so pooled visited arrays
// never need clearing between jobs, rounds, or graphs: a stale epoch from
// any previous use can never collide with a fresh one.
var sampleEpoch atomic.Int64

// grab readies a pooled scratch for an n-node graph. Grown (or fresh)
// visited memory is zero — epochs start at 1, so zero never matches.
func grabScratch(n int) *samplerScratch {
	sc := samplerPool.Get().(*samplerScratch)
	if cap(sc.visited) < n {
		sc.visited = make([]int64, n)
	}
	sc.visited = sc.visited[:n]
	sc.arena = sc.arena[:0]
	sc.spans = sc.spans[:0]
	return sc
}

// Sample draws perGroup[i] RR sets rooted uniformly in group i. The result
// is deterministic for fixed arguments; parallelism <= 0 means GOMAXPROCS.
func Sample(g *graph.Graph, tau int32, perGroup []int, seed int64, parallelism int) (*Collection, error) {
	return SampleCancel(g, tau, perGroup, seed, parallelism, nil)
}

// SampleCancel is Sample with cooperative cancellation: once cancel is
// closed, workers stop between RR sets and the call returns
// context.Canceled. A nil cancel never fires. Sampling a multi-second pool
// is therefore interruptible, not just the greedy loop that follows it.
func SampleCancel(g *graph.Graph, tau int32, perGroup []int, seed int64, parallelism int, cancel <-chan struct{}) (*Collection, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("ris: empty graph")
	}
	if tau < 0 {
		return nil, fmt.Errorf("ris: negative deadline %d", tau)
	}
	if len(perGroup) != g.NumGroups() {
		return nil, fmt.Errorf("ris: %d pool sizes for %d groups", len(perGroup), g.NumGroups())
	}
	total := 0
	for i, c := range perGroup {
		if c <= 0 {
			return nil, fmt.Errorf("ris: pool size for group %d must be positive", i)
		}
		total += c
	}
	base := groupBases(perGroup)

	members := make([][]graph.NodeID, g.NumGroups())
	for i := range members {
		members[i] = g.GroupMembers(i)
	}

	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > total {
		parallelism = total
	}
	root := xrand.New(seed)
	// Each worker samples into its own pooled arena and records spans; the
	// per-set RNG is derived from the flat id, so the result is independent
	// of which worker draws which set.
	scratches := make([]*samplerScratch, parallelism)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	work := make(chan int32, total)
	for i := int32(0); i < int32(total); i++ {
		work <- i
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		sc := grabScratch(g.N())
		scratches[p] = sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			grp := 0
			for flat := range work {
				if cancel != nil {
					select {
					case <-cancel:
						canceled.Store(true)
						return
					default:
					}
				}
				// work drains in ascending flat order per receiver only
				// loosely; recompute the owning group each time.
				grp = groupOfFlat(base, flat)
				rng := root.SplitN(int64(flat))
				pool := members[grp]
				rootNode := pool[rng.Intn(len(pool))]
				start := int32(len(sc.arena))
				reverseBFS(g, rootNode, tau, rng, sc)
				sc.spans = append(sc.spans, setSpan{flat: flat, start: start, end: int32(len(sc.arena))})
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		for _, sc := range scratches {
			samplerPool.Put(sc)
		}
		return nil, context.Canceled
	}

	// Assemble the inverted index in two passes over the worker arenas:
	// count refs per node, prefix-sum into off, then scatter flat ids in
	// ascending flat order so each node's ref list comes out sorted.
	n := g.N()
	sets := make([][]graph.NodeID, total)
	for _, sc := range scratches {
		for _, sp := range sc.spans {
			sets[sp.flat] = sc.arena[sp.start:sp.end]
		}
	}
	off := make([]int32, n+1)
	for _, set := range sets {
		for _, v := range set {
			off[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	refs := make([]int32, off[n])
	next := make([]int32, n)
	copy(next, off[:n])
	for flat, set := range sets {
		for _, v := range set {
			refs[next[v]] = int32(flat)
			next[v]++
		}
	}
	for _, sc := range scratches {
		samplerPool.Put(sc)
	}

	return &Collection{
		g:        g,
		tau:      tau,
		poolSize: append([]int(nil), perGroup...),
		base:     base,
		off:      off,
		refs:     refs,
	}, nil
}

// reverseBFS collects the τ-bounded reverse-reachable set of root into the
// scratch arena, flipping each incoming edge alive with its probability.
// A fresh global epoch marks visited nodes, so the pooled visited array is
// never cleared.
func reverseBFS(g *graph.Graph, root graph.NodeID, tau int32, rng *xrand.RNG, sc *samplerScratch) {
	inOffsets, inTargets, _ := g.InCSR()
	thresh := g.InThresholds()
	epoch := sampleEpoch.Add(1)
	q := sc.queue[:0]
	depth := sc.depth[:0]
	sc.visited[root] = epoch
	q = append(q, root)
	depth = append(depth, 0)
	sc.arena = append(sc.arena, root)
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := depth[head]
		if d >= tau {
			continue
		}
		for i := inOffsets[v]; i < inOffsets[v+1]; i++ {
			src := inTargets[i]
			if sc.visited[src] == epoch {
				continue
			}
			if !rng.BernoulliT(thresh[i]) {
				continue
			}
			sc.visited[src] = epoch
			q = append(q, src)
			depth = append(depth, d+1)
			sc.arena = append(sc.arena, src)
		}
	}
	sc.queue = q
	sc.depth = depth
}

// Graph returns the underlying graph.
func (c *Collection) Graph() *graph.Graph { return c.g }

// Tau returns the deadline RR sets were bounded by.
func (c *Collection) Tau() int32 { return c.tau }

// PoolSizes returns the number of RR sets per group.
func (c *Collection) PoolSizes() []int { return c.poolSize }

// NumSets returns the total number of RR sets.
func (c *Collection) NumSets() int { return int(c.base[len(c.base)-1]) }

// NumRefs returns the total size of the inverted index — the sum of all
// RR-set sizes. It is the byte-budget driver of the persisted frame.
func (c *Collection) NumRefs() int { return len(c.refs) }

// Estimator evaluates group utilities of a growing seed set against a
// Collection by incremental RR-set coverage. It satisfies the
// estimator.Estimator interface, so every fairim solver and experiment
// can run on RIS estimates instead of forward Monte Carlo.
//
// Estimator methods are not safe for concurrent use except InitialGains,
// which shards its scratch per worker and only reads coverage state. The
// per-estimator coverage state is cheap relative to the Collection, so
// concurrent solves should each construct their own Estimator over the
// shared, read-only Collection.
type Estimator struct {
	c       *Collection
	covered []uint64 // bitset over flat set ids
	count   []int    // covered sets per group
	seeds   []graph.NodeID
	delta   []float64 // scratch returned by GainPerGroup
}

// NewEstimator starts from the empty seed set.
func NewEstimator(c *Collection) *Estimator {
	return &Estimator{
		c:       c,
		covered: make([]uint64, (c.NumSets()+63)/64),
		count:   make([]int, len(c.poolSize)),
		delta:   make([]float64, len(c.poolSize)),
	}
}

// Collection returns the RR-set family this estimator evaluates against.
func (e *Estimator) Collection() *Collection { return e.c }

// Graph returns the underlying graph.
func (e *Estimator) Graph() *graph.Graph { return e.c.g }

// SampleSize returns the smallest per-group RR-pool size — the budget that
// bounds every group's estimation error.
func (e *Estimator) SampleSize() int {
	m := 0
	for i, s := range e.c.poolSize {
		if i == 0 || s < m {
			m = s
		}
	}
	return m
}

// GainPerGroup returns the estimated per-group utility increase from
// adding v. The returned slice is reused; copy to keep.
func (e *Estimator) GainPerGroup(v graph.NodeID) []float64 {
	return e.gainPerGroupInto(e.delta, v)
}

// gainPerGroupInto computes the per-group coverage gain of v into delta.
// It only reads estimator state, so calls with distinct delta slices may
// run concurrently. Refs are sorted by flat id, so the owning group is
// tracked by walking base forward — no per-ref group field or search.
func (e *Estimator) gainPerGroupInto(delta []float64, v graph.NodeID) []float64 {
	for i := range delta {
		delta[i] = 0
	}
	c := e.c
	grp := 0
	for _, id := range c.refs[c.off[v]:c.off[v+1]] {
		for id >= c.base[grp+1] {
			grp++
		}
		if e.covered[uint32(id)>>6]&(1<<(uint32(id)&63)) == 0 {
			delta[grp]++
		}
	}
	for i := range delta {
		delta[i] *= float64(c.g.GroupSize(i)) / float64(c.poolSize[i])
	}
	return delta
}

// InitialGains computes GainPerGroup for every candidate in parallel and
// returns one copied slice per candidate, in candidate order. It only
// reads estimator state, so it is safe before/between Adds. parallelism
// <= 0 means GOMAXPROCS.
func (e *Estimator) InitialGains(candidates []graph.NodeID, parallelism int) [][]float64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(candidates) {
		parallelism = len(candidates)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	out := make([][]float64, len(candidates))
	var wg sync.WaitGroup
	work := make(chan int, len(candidates))
	for i := range candidates {
		work <- i
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			delta := make([]float64, len(e.c.poolSize))
			for i := range work {
				g := e.gainPerGroupInto(delta, candidates[i])
				out[i] = append([]float64(nil), g...)
			}
		}()
	}
	wg.Wait()
	return out
}

// Gain returns the estimated total-utility increase from adding v.
func (e *Estimator) Gain(v graph.NodeID) float64 {
	t := 0.0
	for _, d := range e.GainPerGroup(v) {
		t += d
	}
	return t
}

// Add commits v to the seed set.
func (e *Estimator) Add(v graph.NodeID) {
	c := e.c
	grp := 0
	for _, id := range c.refs[c.off[v]:c.off[v+1]] {
		for id >= c.base[grp+1] {
			grp++
		}
		w, bit := uint32(id)>>6, uint64(1)<<(uint32(id)&63)
		if e.covered[w]&bit == 0 {
			e.covered[w] |= bit
			e.count[grp]++
		}
	}
	e.seeds = append(e.seeds, v)
}

// Seeds returns the current seed set (shared; do not modify).
func (e *Estimator) Seeds() []graph.NodeID { return e.seeds }

// GroupUtilities returns the estimated fτ(S;Vᵢ) for every group.
func (e *Estimator) GroupUtilities() []float64 {
	out := make([]float64, len(e.count))
	for i, cnt := range e.count {
		out[i] = float64(cnt) / float64(e.c.poolSize[i]) * float64(e.c.g.GroupSize(i))
	}
	return out
}

// NormGroupUtilities returns fτ(S;Vᵢ)/|Vᵢ|: the covered fraction of each
// group's RR pool.
func (e *Estimator) NormGroupUtilities() []float64 {
	out := make([]float64, len(e.count))
	for i, cnt := range e.count {
		out[i] = float64(cnt) / float64(e.c.poolSize[i])
	}
	return out
}

// TotalUtility returns the estimated fτ(S;V).
func (e *Estimator) TotalUtility() float64 {
	t := 0.0
	for _, u := range e.GroupUtilities() {
		t += u
	}
	return t
}

// Reset clears the seed set.
func (e *Estimator) Reset() {
	for i := range e.covered {
		e.covered[i] = 0
	}
	for i := range e.count {
		e.count[i] = 0
	}
	e.seeds = e.seeds[:0]
}
