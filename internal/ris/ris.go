// Package ris implements reverse influence sampling (RIS) specialized to
// the time-critical setting — a scalability extension beyond the paper's
// forward Monte-Carlo estimator.
//
// A τ-bounded reverse-reachable (RR) set for root v is drawn by a reverse
// BFS of depth ≤ τ from v, flipping each incoming edge alive with its
// activation probability. The standard RIS identity, restricted to the
// deadline, gives
//
//	fτ(S;Vᵢ) = |Vᵢ| · Pr[ S ∩ RR(v) ≠ ∅ ],  v uniform in Vᵢ,
//
// so sampling a pool of RR sets per group turns every group utility into a
// set-coverage function of S — exactly monotone submodular, and cheap to
// evaluate incrementally through an inverted index. Greedy/CELF over this
// coverage objective is the classical RIS maximizer (Borgs et al.; TIM/IMM)
// adapted to per-group deadline-bounded pools.
package ris

import (
	"fmt"
	"runtime"
	"sync"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// setRef locates one RR set: the group pool it belongs to and its index.
type setRef struct {
	group int32
	index int32
}

// Collection is a sampled family of τ-bounded RR sets, pooled per group,
// with an inverted node→sets index.
//
// A built Collection is immutable: Sample is the only writer, and every
// method only reads. It is therefore safe to share one Collection across
// any number of goroutines, each wrapping it in its own Estimator — the
// serving layer (internal/server) relies on this to answer concurrent
// queries from a single cached sketch without re-sampling.
type Collection struct {
	g        *graph.Graph
	tau      int32
	poolSize []int      // RR sets sampled per group
	contains [][]setRef // contains[v] = RR sets that include node v
}

// Sample draws perGroup[i] RR sets rooted uniformly in group i. The result
// is deterministic for fixed arguments; parallelism <= 0 means GOMAXPROCS.
func Sample(g *graph.Graph, tau int32, perGroup []int, seed int64, parallelism int) (*Collection, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("ris: empty graph")
	}
	if tau < 0 {
		return nil, fmt.Errorf("ris: negative deadline %d", tau)
	}
	if len(perGroup) != g.NumGroups() {
		return nil, fmt.Errorf("ris: %d pool sizes for %d groups", len(perGroup), g.NumGroups())
	}
	total := 0
	for i, c := range perGroup {
		if c <= 0 {
			return nil, fmt.Errorf("ris: pool size for group %d must be positive", i)
		}
		total += c
	}

	// Flatten (group, index) jobs so workers can pull from one queue while
	// keeping per-set RNG streams deterministic.
	type job struct {
		ref  setRef
		flat int64
	}
	jobs := make([]job, 0, total)
	flat := int64(0)
	for grp, c := range perGroup {
		for i := 0; i < c; i++ {
			jobs = append(jobs, job{ref: setRef{group: int32(grp), index: int32(i)}, flat: flat})
			flat++
		}
	}

	members := make([][]graph.NodeID, g.NumGroups())
	for i := range members {
		members[i] = g.GroupMembers(i)
	}

	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	root := xrand.New(seed)
	sets := make([][]graph.NodeID, total)
	var wg sync.WaitGroup
	work := make(chan int, len(jobs))
	for i := range jobs {
		work <- i
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			visited := make([]int64, g.N())
			for i := range visited {
				visited[i] = -1
			}
			var queue []graph.NodeID
			for j := range work {
				rng := root.SplitN(jobs[j].flat)
				pool := members[jobs[j].ref.group]
				rootNode := pool[rng.Intn(len(pool))]
				sets[jobs[j].flat] = reverseBFS(g, rootNode, tau, rng, visited, int64(jobs[j].flat), &queue)
			}
		}()
	}
	wg.Wait()

	c := &Collection{
		g:        g,
		tau:      tau,
		poolSize: append([]int(nil), perGroup...),
		contains: make([][]setRef, g.N()),
	}
	for j := range jobs {
		for _, v := range sets[jobs[j].flat] {
			c.contains[v] = append(c.contains[v], jobs[j].ref)
		}
	}
	return c, nil
}

// reverseBFS collects the τ-bounded reverse-reachable set of root, flipping
// each incoming edge alive with its probability. visited holds the job id
// as an epoch marker to avoid reallocation across jobs.
func reverseBFS(g *graph.Graph, root graph.NodeID, tau int32, rng *xrand.RNG, visited []int64, epoch int64, queue *[]graph.NodeID) []graph.NodeID {
	inOffsets, inTargets, _ := g.InCSR()
	thresh := g.InThresholds()
	q := (*queue)[:0]
	depth := make([]int32, 0, 16)
	visited[root] = epoch
	q = append(q, root)
	depth = append(depth, 0)
	out := []graph.NodeID{root}
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := depth[head]
		if d >= tau {
			continue
		}
		for i := inOffsets[v]; i < inOffsets[v+1]; i++ {
			src := inTargets[i]
			if visited[src] == epoch {
				continue
			}
			if !rng.BernoulliT(thresh[i]) {
				continue
			}
			visited[src] = epoch
			q = append(q, src)
			depth = append(depth, d+1)
			out = append(out, src)
		}
	}
	*queue = q
	return out
}

// Graph returns the underlying graph.
func (c *Collection) Graph() *graph.Graph { return c.g }

// Tau returns the deadline RR sets were bounded by.
func (c *Collection) Tau() int32 { return c.tau }

// PoolSizes returns the number of RR sets per group.
func (c *Collection) PoolSizes() []int { return c.poolSize }

// NumSets returns the total number of RR sets.
func (c *Collection) NumSets() int {
	t := 0
	for _, s := range c.poolSize {
		t += s
	}
	return t
}

// Estimator evaluates group utilities of a growing seed set against a
// Collection by incremental RR-set coverage. It satisfies the
// estimator.Estimator interface, so every fairim solver and experiment
// can run on RIS estimates instead of forward Monte Carlo.
//
// Estimator methods are not safe for concurrent use except InitialGains,
// which shards its scratch per worker and only reads coverage state. The
// per-estimator coverage state is cheap relative to the Collection, so
// concurrent solves should each construct their own Estimator over the
// shared, read-only Collection.
type Estimator struct {
	c       *Collection
	covered [][]bool // covered[group][index]
	count   []int    // covered sets per group
	seeds   []graph.NodeID
	delta   []float64 // scratch returned by GainPerGroup
}

// NewEstimator starts from the empty seed set.
func NewEstimator(c *Collection) *Estimator {
	e := &Estimator{
		c:       c,
		covered: make([][]bool, len(c.poolSize)),
		count:   make([]int, len(c.poolSize)),
		delta:   make([]float64, len(c.poolSize)),
	}
	for i, s := range c.poolSize {
		e.covered[i] = make([]bool, s)
	}
	return e
}

// Collection returns the RR-set family this estimator evaluates against.
func (e *Estimator) Collection() *Collection { return e.c }

// Graph returns the underlying graph.
func (e *Estimator) Graph() *graph.Graph { return e.c.g }

// SampleSize returns the smallest per-group RR-pool size — the budget that
// bounds every group's estimation error.
func (e *Estimator) SampleSize() int {
	m := 0
	for i, s := range e.c.poolSize {
		if i == 0 || s < m {
			m = s
		}
	}
	return m
}

// GainPerGroup returns the estimated per-group utility increase from
// adding v. The returned slice is reused; copy to keep.
func (e *Estimator) GainPerGroup(v graph.NodeID) []float64 {
	return e.gainPerGroupInto(e.delta, v)
}

// gainPerGroupInto computes the per-group coverage gain of v into delta.
// It only reads estimator state, so calls with distinct delta slices may
// run concurrently.
func (e *Estimator) gainPerGroupInto(delta []float64, v graph.NodeID) []float64 {
	for i := range delta {
		delta[i] = 0
	}
	for _, ref := range e.c.contains[v] {
		if !e.covered[ref.group][ref.index] {
			delta[ref.group]++
		}
	}
	for i := range delta {
		delta[i] *= float64(e.c.g.GroupSize(i)) / float64(e.c.poolSize[i])
	}
	return delta
}

// InitialGains computes GainPerGroup for every candidate in parallel and
// returns one copied slice per candidate, in candidate order. It only
// reads estimator state, so it is safe before/between Adds. parallelism
// <= 0 means GOMAXPROCS.
func (e *Estimator) InitialGains(candidates []graph.NodeID, parallelism int) [][]float64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(candidates) {
		parallelism = len(candidates)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	out := make([][]float64, len(candidates))
	var wg sync.WaitGroup
	work := make(chan int, len(candidates))
	for i := range candidates {
		work <- i
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			delta := make([]float64, len(e.c.poolSize))
			for i := range work {
				g := e.gainPerGroupInto(delta, candidates[i])
				out[i] = append([]float64(nil), g...)
			}
		}()
	}
	wg.Wait()
	return out
}

// Gain returns the estimated total-utility increase from adding v.
func (e *Estimator) Gain(v graph.NodeID) float64 {
	t := 0.0
	for _, d := range e.GainPerGroup(v) {
		t += d
	}
	return t
}

// Add commits v to the seed set.
func (e *Estimator) Add(v graph.NodeID) {
	for _, ref := range e.c.contains[v] {
		if !e.covered[ref.group][ref.index] {
			e.covered[ref.group][ref.index] = true
			e.count[ref.group]++
		}
	}
	e.seeds = append(e.seeds, v)
}

// Seeds returns the current seed set (shared; do not modify).
func (e *Estimator) Seeds() []graph.NodeID { return e.seeds }

// GroupUtilities returns the estimated fτ(S;Vᵢ) for every group.
func (e *Estimator) GroupUtilities() []float64 {
	out := make([]float64, len(e.count))
	for i, cnt := range e.count {
		out[i] = float64(cnt) / float64(e.c.poolSize[i]) * float64(e.c.g.GroupSize(i))
	}
	return out
}

// NormGroupUtilities returns fτ(S;Vᵢ)/|Vᵢ|: the covered fraction of each
// group's RR pool.
func (e *Estimator) NormGroupUtilities() []float64 {
	out := make([]float64, len(e.count))
	for i, cnt := range e.count {
		out[i] = float64(cnt) / float64(e.c.poolSize[i])
	}
	return out
}

// TotalUtility returns the estimated fτ(S;V).
func (e *Estimator) TotalUtility() float64 {
	t := 0.0
	for _, u := range e.GroupUtilities() {
		t += u
	}
	return t
}

// Reset clears the seed set.
func (e *Estimator) Reset() {
	for i := range e.covered {
		for j := range e.covered[i] {
			e.covered[i][j] = false
		}
		e.count[i] = 0
	}
	e.seeds = e.seeds[:0]
}
