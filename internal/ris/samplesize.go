package ris

import (
	"fmt"
	"math"

	"fairtcim/internal/graph"
)

// Sample-size selection for RIS in the style of TIM/TIM+ (Tang, Xiao &
// Shi, SIGMOD 2014), adapted to per-group pools: with
//
//	θ ≥ (8 + 2ε)·n · (ln n + ln C(n,B) + ln(2/δ)) / (ε²·OPT)
//
// RR sets, the greedy max-coverage solution's influence estimate is within
// a (1−1/e−ε) factor of OPT with probability 1−δ. OPT is unknown, so
// PlanSamples lower-bounds it with a cheap pilot: the coverage achieved by
// greedy on a small pilot pool (a valid lower bound in expectation because
// any feasible set's estimate lower-bounds OPT).

// SamplePlan describes a chosen RR pool size.
type SamplePlan struct {
	PerGroup []int   // RR sets allocated per group (proportional to |Vᵢ|)
	Total    int     //
	OptLB    float64 // the pilot's lower bound on OPT used in the formula
	Epsilon  float64
	Delta    float64
}

// PlanSamples computes a TIM-style RR pool size for a budget-B, deadline-τ
// instance, using pilotPerGroup RR sets per group for the OPT lower bound.
// The returned per-group allocation is proportional to group sizes with a
// floor of pilotPerGroup.
func PlanSamples(g *graph.Graph, tau int32, budget int, eps, delta float64, pilotPerGroup int, seed int64) (*SamplePlan, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("ris: epsilon %v outside (0,1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("ris: delta %v outside (0,1)", delta)
	}
	if budget <= 0 || budget > g.N() {
		return nil, fmt.Errorf("ris: budget %d outside [1,%d]", budget, g.N())
	}
	if pilotPerGroup <= 0 {
		return nil, fmt.Errorf("ris: need positive pilot size")
	}

	// Pilot: greedy on a small pool lower-bounds OPT.
	pilotPools := make([]int, g.NumGroups())
	for i := range pilotPools {
		pilotPools[i] = pilotPerGroup
	}
	pilot, err := Sample(g, tau, pilotPools, seed, 0)
	if err != nil {
		return nil, err
	}
	_, optLB, err := SolveBudget(pilot, budget, nil)
	if err != nil {
		return nil, err
	}
	if optLB < 1 {
		optLB = 1 // a single seed always influences itself
	}

	n := float64(g.N())
	lnChoose := logChoose(g.N(), budget)
	theta := (8 + 2*eps) * n * (math.Log(n) + lnChoose + math.Log(2/delta)) / (eps * eps * optLB)
	total := int(math.Ceil(theta))

	plan := &SamplePlan{
		PerGroup: make([]int, g.NumGroups()),
		OptLB:    optLB,
		Epsilon:  eps,
		Delta:    delta,
	}
	for i := 0; i < g.NumGroups(); i++ {
		c := int(math.Ceil(theta * float64(g.GroupSize(i)) / n))
		if c < pilotPerGroup {
			c = pilotPerGroup
		}
		plan.PerGroup[i] = c
		plan.Total += c
	}
	_ = total
	return plan, nil
}

// logChoose returns ln C(n, k) via the log-gamma function.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
