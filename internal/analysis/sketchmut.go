package analysis

import (
	"go/ast"
	"go/types"
)

// SketchMut enforces the snapshot-immutability contract the cache,
// cluster, and planner layers depend on: a published *ris.Collection or
// *graph.Graph is never mutated. Construction happens behind an
// allowlist (builders, ApplyDelta, Refresh, the payload decoders build
// fresh values via composite literals); everywhere else, assigning to a
// field of either type through a pointer — or storing into one of their
// CSR backing slices, including slices obtained from aliasing accessors
// like Graph.OutCSR — is an error, not a style problem.
var SketchMut = &Analyzer{
	Name: "sketchmut",
	Doc:  "flag writes to ris.Collection / graph.Graph snapshots outside their construction allowlist",
	Run:  runSketchMut,
}

// protectedType names one immutable-after-publication type: which
// functions may write its fields, and which accessor methods return
// slices aliasing its backing arrays (so writes through them are writes
// to the snapshot).
type protectedType struct {
	pkgPath string
	name    string
	allow   map[string]bool
	shared  map[string]bool
}

var protectedTypes = []protectedType{
	{
		pkgPath: "fairtcim/internal/ris",
		name:    "Collection",
		allow:   set("Refresh"),
		shared:  set("PoolSizes"),
	},
	{
		pkgPath: "fairtcim/internal/graph",
		name:    "Graph",
		allow:   set("Build", "MustBuild", "buildGroupIndex", "WithGroups", "ApplyDelta"),
		shared: set("OutCSR", "InCSR", "OutThresholds", "InThresholds", "OutEdges",
			"InEdges", "OutNeighbors", "InNeighbors", "GroupMembers", "GroupSizes"),
	},
}

func protectedOf(t types.Type) *protectedType {
	for i := range protectedTypes {
		p := &protectedTypes[i]
		if isNamedType(t, p.pkgPath, p.name) {
			return p
		}
	}
	return nil
}

func runSketchMut(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFuncMut(pass, fn)
			}
		}
	}
	return nil
}

func checkFuncMut(pass *Pass, fn *ast.FuncDecl) {
	// Slices returned by aliasing accessors share the snapshot's backing
	// arrays: record locals bound to such calls so index writes through
	// them are caught too.
	tainted := map[types.Object]string{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		recv := callee.Type().(*types.Signature).Recv()
		if recv == nil {
			return true
		}
		p := protectedOf(recv.Type())
		if p == nil || !p.shared[callee.Name()] {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					tainted[obj] = p.name + "." + callee.Name()
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					tainted[obj] = p.name + "." + callee.Name()
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWriteMut(pass, fn, tainted, lhs)
			}
		case *ast.IncDecStmt:
			checkWriteMut(pass, fn, tainted, n.X)
		}
		return true
	})
}

func checkWriteMut(pass *Pass, fn *ast.FuncDecl, tainted map[types.Object]string, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	indexWrite := false
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		indexWrite = true
		lhs = ast.Unparen(ix.X)
	}

	// Index writes through accessor-returned slices.
	if id, ok := lhs.(*ast.Ident); ok && indexWrite {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if acc, shared := tainted[obj]; shared {
				pass.Reportf(id.Pos(),
					"write to slice returned by %s aliases the snapshot's backing array; copy before modifying", acc)
				return
			}
		}
	}

	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	p := protectedOf(selection.Recv())
	if p == nil {
		return
	}
	if p.allow[fn.Name.Name] {
		return
	}
	// Writing a field of a local *value* copy before it is published is
	// construction, not mutation (refresh's `nc := *c; nc.g = newG`
	// pattern) — but only for direct field stores: an index write into a
	// copied struct still lands in the shared backing array.
	if !indexWrite {
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if _, isPtr := pass.TypesInfo.TypeOf(base).(*types.Pointer); !isPtr {
				if v, ok := pass.TypesInfo.Uses[base].(*types.Var); ok && !v.IsField() {
					return
				}
			}
		}
	}
	pass.Reportf(sel.Pos(),
		"write to %s.%s field %s outside its construction allowlist (%s is immutable once published)",
		p.pkgPath, p.name, sel.Sel.Name, p.name)
}
