package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// All returns the full fairtcimvet suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SketchMut,
		LockOrder,
		ErrEnvelope,
		StatsWire,
		CancelLoop,
	}
}

// Finding is one positioned diagnostic with its source location resolved.
type Finding struct {
	Diagnostic
	Position token.Position
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Run loads patterns relative to dir and applies every analyzer to every
// loaded package, returning findings sorted by position plus the shared
// FileSet (needed to apply fixes). An analyzer error (a crash, not a
// finding) aborts the run.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, *token.FileSet, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	findings, err := RunPackages(pkgs, analyzers)
	if err != nil {
		return nil, nil, err
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	return findings, fset, nil
}

// RunPackages applies analyzers to already-loaded packages.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Diagnostic: d,
					Position:   pkg.Fset.Position(d.Pos),
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Position, findings[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// ApplyFixes applies every suggested fix in findings to the files on
// disk, resolving positions through fset. Edits within one file are
// applied back-to-front so earlier offsets stay valid; overlapping edits
// are rejected. Returns the files rewritten.
func ApplyFixes(fset *token.FileSet, findings []Finding) ([]string, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	for _, f := range findings {
		for _, fix := range f.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := fset.Position(te.End)
				if start.Filename == "" || start.Filename != end.Filename {
					return nil, fmt.Errorf("analysis: fix for %q spans files", f.Message)
				}
				byFile[start.Filename] = append(byFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
			}
		}
	}
	var fixed []string
	for name, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				return nil, fmt.Errorf("analysis: overlapping fixes in %s", name)
			}
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("analysis: fix out of range in %s", name)
			}
			src = append(src[:e.start], append(e.text, src[e.end:]...)...)
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return nil, err
		}
		fixed = append(fixed, name)
	}
	sort.Strings(fixed)
	return fixed, nil
}
