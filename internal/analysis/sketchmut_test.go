package analysis_test

import (
	"testing"

	"fairtcim/internal/analysis"
	"fairtcim/internal/analysis/analysistest"
)

func TestSketchMut(t *testing.T) {
	analysistest.Run(t, "testdata/sketchmut", analysis.SketchMut)
}
