package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns (e.g. "./...") against the module rooted at or
// above dir and returns every matched package parsed and type-checked.
//
// It works the way go vet's unitchecker does: one `go list -export -deps`
// invocation compiles the dependency graph and hands back compiler export
// data, so only the packages under analysis are checked from source —
// everything they import (standard library included) is loaded from
// export data, which is fast and exactly matches what the compiler saw.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
