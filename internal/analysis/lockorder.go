package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a per-package mutex-acquisition graph from
// Lock/RLock call sites and reports (a) cycles, and (b) edges that
// invert a documented ordering — for internal/server, the journal
// compaction contract that jobJournal.mu is taken before jobStore.mu.
//
// Lock identity is type-scoped ("jobStore.mu" is the mu field of any
// jobStore), so self-edges are suppressed: two instances of the same
// type cannot be told apart statically. The walk is a linear
// over-approximation — branch bodies are analyzed with a copy of the
// held set, deferred unlocks hold to function end, goroutine bodies
// start with nothing held — and call effects are propagated through
// same-package static calls, method values, and function literals
// passed as arguments (the shape journal.maybeCompact(store.collect)
// takes), iterated to a fixed point.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "detect mutex-acquisition cycles and inversions of documented lock orderings",
	Run:  runLockOrder,
}

// documentedLockOrders lists, per package-path suffix, orderings the
// code documents: the first lock must always be acquired before the
// second. An observed inverse edge is a violation even without a full
// static cycle.
var documentedLockOrders = map[string][][2]string{
	"internal/server": {
		{"jobJournal.mu", "jobStore.mu"}, // journal compaction snapshots the store under journal.mu
	},
}

type lockKey string

// lockEdge records "from held while acquiring to" with the position of
// the acquisition that created it.
type lockGraph struct {
	edges map[[2]lockKey]token.Pos
}

func (g *lockGraph) add(from, to lockKey, pos token.Pos) {
	if from == to {
		return // same type-scoped key: almost always two instances
	}
	if _, ok := g.edges[[2]lockKey{from, to}]; !ok {
		g.edges[[2]lockKey{from, to}] = pos
	}
}

// funcSummary is what a callee contributes at a call site.
type funcSummary struct {
	own    map[lockKey]bool // locks acquired directly in the body
	locks  map[lockKey]bool // locks acquired transitively
	walked bool
}

type lockAnalysis struct {
	pass      *Pass
	graph     *lockGraph
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]*funcSummary
	litSums   map[*ast.FuncLit]*funcSummary
	changed   bool
}

func runLockOrder(pass *Pass) error {
	la := &lockAnalysis{
		pass:      pass,
		graph:     &lockGraph{edges: map[[2]lockKey]token.Pos{}},
		decls:     map[*types.Func]*ast.FuncDecl{},
		summaries: map[*types.Func]*funcSummary{},
		litSums:   map[*ast.FuncLit]*funcSummary{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				la.decls[fn] = fd
				la.summaries[fn] = &funcSummary{own: map[lockKey]bool{}, locks: map[lockKey]bool{}}
			}
		}
	}
	// Fixed point: each round rebuilds edges with the previous round's
	// transitive lock sets; stop once no summary grows.
	for i := 0; i < 10; i++ {
		la.changed = false
		la.graph = &lockGraph{edges: map[[2]lockKey]token.Pos{}}
		la.litSums = map[*ast.FuncLit]*funcSummary{} // recompute with this round's callee summaries
		for fn, fd := range la.decls {
			sum := la.summaries[fn]
			held := map[lockKey]token.Pos{}
			la.walkStmts(fd.Body.List, held, sum)
		}
		if !la.changed {
			break
		}
	}

	la.reportCycles()
	la.reportInversions()
	return nil
}

// walkStmts processes a statement list in order, mutating held.
func (la *lockAnalysis) walkStmts(stmts []ast.Stmt, held map[lockKey]token.Pos, sum *funcSummary) {
	for _, st := range stmts {
		la.walkStmt(st, held, sum)
	}
}

func copyHeld(held map[lockKey]token.Pos) map[lockKey]token.Pos {
	cp := make(map[lockKey]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func (la *lockAnalysis) walkStmt(st ast.Stmt, held map[lockKey]token.Pos, sum *funcSummary) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		la.walkStmts(st.List, held, sum)
	case *ast.IfStmt:
		if st.Init != nil {
			la.walkStmt(st.Init, held, sum)
		}
		la.walkExpr(st.Cond, held, sum)
		la.walkStmt(st.Body, copyHeld(held), sum)
		if st.Else != nil {
			la.walkStmt(st.Else, copyHeld(held), sum)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			la.walkStmt(st.Init, copyHeld(held), sum)
		}
		la.walkStmt(st.Body, copyHeld(held), sum)
	case *ast.RangeStmt:
		la.walkExpr(st.X, held, sum)
		la.walkStmt(st.Body, copyHeld(held), sum)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			la.walkStmt(c, copyHeld(held), sum)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			la.walkStmt(c, copyHeld(held), sum)
		}
	case *ast.CaseClause:
		la.walkStmts(st.Body, held, sum)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			la.walkStmt(c, copyHeld(held), sum)
		}
	case *ast.CommClause:
		la.walkStmts(st.Body, held, sum)
	case *ast.GoStmt:
		// A spawned goroutine holds nothing from its parent; its locks
		// still count toward the enclosing function's transitive set.
		la.walkExpr(st.Call, map[lockKey]token.Pos{}, sum)
	case *ast.DeferStmt:
		if key, isUnlock := la.lockCallKey(st.Call, false); isUnlock && key != "" {
			// Deferred unlock: the lock stays held for the remainder of
			// the walk, which is exactly the conservative answer.
			return
		}
		la.walkExpr(st.Call, copyHeld(held), sum)
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				la.handleCall(n, held, sum)
				return true
			case *ast.FuncLit:
				ls := la.litSummary(n, sum)
				for k := range ls.locks {
					la.noteLock(sum, k)
				}
				return false
			}
			return true
		})
	}
}

func (la *lockAnalysis) walkExpr(e ast.Expr, held map[lockKey]token.Pos, sum *funcSummary) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			la.handleCall(n, held, sum)
			return true
		case *ast.FuncLit:
			ls := la.litSummary(n, sum)
			for k := range ls.locks {
				la.noteLock(sum, k)
			}
			return false
		}
		return true
	})
}

// handleCall updates held and the edge graph for one call.
func (la *lockAnalysis) handleCall(call *ast.CallExpr, held map[lockKey]token.Pos, sum *funcSummary) {
	if key, isLock := la.lockCallKey(call, true); isLock {
		if key == "" {
			return
		}
		for h := range held {
			la.graph.add(h, key, call.Pos())
		}
		held[key] = call.Pos()
		la.noteOwn(sum, key)
		return
	}
	if key, isUnlock := la.lockCallKey(call, false); isUnlock {
		delete(held, key)
		return
	}

	callee := staticCallee(la.pass.TypesInfo, call)
	var calleeSum *funcSummary
	if callee != nil {
		calleeSum = la.summaries[callee]
	}
	if calleeSum != nil {
		for h := range held {
			for l := range calleeSum.locks {
				la.graph.add(h, l, call.Pos())
			}
		}
		for l := range calleeSum.locks {
			la.noteLock(sum, l)
		}
	}
	// Function-valued arguments (literals or method values) may be
	// invoked by the callee while it holds its own locks: the
	// journal.maybeCompact(store.collect) shape.
	for _, arg := range call.Args {
		argSum := la.argSummary(arg, sum)
		if argSum == nil {
			continue
		}
		for l := range argSum.locks {
			la.noteLock(sum, l)
			for h := range held {
				la.graph.add(h, l, call.Pos())
			}
			if calleeSum != nil {
				for o := range calleeSum.own {
					la.graph.add(o, l, call.Pos())
				}
			}
		}
	}
}

// argSummary resolves a function-valued argument to its lock summary.
func (la *lockAnalysis) argSummary(arg ast.Expr, sum *funcSummary) *funcSummary {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return la.litSummary(arg, sum)
	case *ast.Ident, *ast.SelectorExpr:
		if fn := funcObj(la.pass.TypesInfo, arg.(ast.Expr)); fn != nil {
			return la.summaries[fn]
		}
	}
	return nil
}

// litSummary walks a function literal (with nothing held — it may be
// invoked from anywhere) and caches its lock set.
func (la *lockAnalysis) litSummary(lit *ast.FuncLit, enclosing *funcSummary) *funcSummary {
	if s, ok := la.litSums[lit]; ok && s.walked {
		return s
	}
	s := &funcSummary{own: map[lockKey]bool{}, locks: map[lockKey]bool{}, walked: true}
	la.litSums[lit] = s
	if lit.Body != nil {
		la.walkStmts(lit.Body.List, map[lockKey]token.Pos{}, s)
	}
	return s
}

func (la *lockAnalysis) noteOwn(sum *funcSummary, k lockKey) {
	if !sum.own[k] {
		sum.own[k] = true
		la.changed = true
	}
	la.noteLock(sum, k)
}

func (la *lockAnalysis) noteLock(sum *funcSummary, k lockKey) {
	if !sum.locks[k] {
		sum.locks[k] = true
		la.changed = true
	}
}

// lockCallKey classifies call as a Lock/RLock (wantLock) or
// Unlock/RUnlock acquisition on a sync.Mutex/RWMutex and derives its
// type-scoped key. An empty key with ok=true means "a lock we cannot
// name" (local mutex variables) — tracked as a no-op.
func (la *lockAnalysis) lockCallKey(call *ast.CallExpr, wantLock bool) (lockKey, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if wantLock && name != "Lock" && name != "RLock" {
		return "", false
	}
	if !wantLock && name != "Unlock" && name != "RUnlock" {
		return "", false
	}
	fn, _ := la.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	if n := namedOf(recv.Type()); n == nil || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return "", false
	}
	return la.keyOf(sel.X), true
}

// keyOf names the mutex operand: "Type.field" for struct-held mutexes
// (including embedded ones), the variable name for package-level
// mutexes, "" for locals.
func (la *lockAnalysis) keyOf(e ast.Expr) lockKey {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel := la.pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			if owner := namedOf(sel.Recv()); owner != nil {
				return lockKey(owner.Obj().Name() + "." + e.Sel.Name)
			}
		}
		return lockKey("?." + e.Sel.Name)
	case *ast.Ident:
		if v, ok := la.pass.TypesInfo.Uses[e].(*types.Var); ok {
			if v.Parent() == la.pass.Pkg.Scope() {
				return lockKey(v.Name())
			}
			// Embedded mutex promoted through a named struct receiver.
			if n := namedOf(v.Type()); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
				return lockKey(n.Obj().Name() + ".(embedded)")
			}
		}
		return ""
	}
	return ""
}

func (la *lockAnalysis) reportCycles() {
	adj := map[lockKey][]lockKey{}
	for e := range la.graph.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	for k := range adj {
		sort.Slice(adj[k], func(i, j int) bool { return adj[k][i] < adj[k][j] })
	}
	nodes := make([]lockKey, 0, len(adj))
	for k := range adj {
		nodes = append(nodes, k)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[lockKey]int{}
	var stack []lockKey
	reported := map[string]bool{}
	var visit func(k lockKey)
	visit = func(k lockKey) {
		color[k] = gray
		stack = append(stack, k)
		for _, next := range adj[k] {
			switch color[next] {
			case white:
				visit(next)
			case gray:
				// Found a back edge: stack from next..k is the cycle.
				i := len(stack) - 1
				for i >= 0 && stack[i] != next {
					i--
				}
				cycle := append(append([]lockKey{}, stack[i:]...), next)
				msg := make([]string, len(cycle))
				for j, c := range cycle {
					msg[j] = string(c)
				}
				key := strings.Join(msg, " -> ")
				if !reported[key] {
					reported[key] = true
					pos := la.graph.edges[[2]lockKey{k, next}]
					la.pass.Reportf(pos, "mutex acquisition cycle: %s (deadlock risk)", key)
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[k] = black
	}
	for _, k := range nodes {
		if color[k] == white {
			visit(k)
		}
	}
}

func (la *lockAnalysis) reportInversions() {
	for suffix, pairs := range documentedLockOrders {
		if !pkgPathHasSuffix(la.pass.Pkg.Path(), suffix) {
			continue
		}
		for _, pair := range pairs {
			before, after := lockKey(pair[0]), lockKey(pair[1])
			if pos, ok := la.graph.edges[[2]lockKey{after, before}]; ok {
				la.pass.Reportf(pos,
					"lock ordering violation: %s acquired while holding %s, inverting the documented %s -> %s order",
					before, after, before, after)
			}
		}
	}
}
