package analysis_test

import (
	"testing"

	"fairtcim/internal/analysis"
)

// TestRepositoryIsClean runs the full fairtcimvet suite over the real
// tree and requires zero findings — the same gate CI applies via the
// binary. A failure here means new code broke one of the documented
// invariants (snapshot immutability, lock ordering, the error envelope,
// stats/metrics parity, or sampler cancellation).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	findings, _, err := analysis.Run("../..", []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
