package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairtcim/internal/analysis"
	"fairtcim/internal/analysis/analysistest"
)

func TestErrEnvelope(t *testing.T) {
	analysistest.Run(t, "testdata/errenvelope", analysis.ErrEnvelope)
}

// TestErrEnvelopeFixes applies the suggested fixes to a copy of the
// fixture and checks that the mechanical rewrites land (http.Error ->
// writeError, literal code -> registered constant), the result still
// compiles, and only the findings with no mechanical fix remain.
func TestErrEnvelopeFixes(t *testing.T) {
	tmp := t.TempDir()
	copyTree(t, "testdata/errenvelope", tmp)

	findings, fset, err := analysis.Run(tmp, []string{"./..."}, []*analysis.Analyzer{analysis.ErrEnvelope})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := analysis.ApplyFixes(fset, findings); err != nil {
		t.Fatalf("applying fixes: %v", err)
	}

	src, err := os.ReadFile(filepath.Join(tmp, "internal/server/handlers.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, wantSrc := range []string{
		`writeError(w, http.StatusInternalServerError, CodeInternal, "%s", "boom")`,
		`writeError(w, http.StatusBadRequest, CodeBadRequest, "no graph %q", r.URL.Path)`,
	} {
		if !strings.Contains(string(src), wantSrc) {
			t.Errorf("fixed source missing %q", wantSrc)
		}
	}

	after, _, err := analysis.Run(tmp, []string{"./..."}, []*analysis.Analyzer{analysis.ErrEnvelope})
	if err != nil {
		t.Fatalf("re-run after fixes (fixed tree must still compile): %v", err)
	}
	var remaining []string
	for _, f := range after {
		remaining = append(remaining, f.Message)
	}
	if len(after) != 2 {
		t.Fatalf("want exactly the 2 unfixable findings after -fix, got %d: %v", len(after), remaining)
	}
	if !strings.Contains(after[0].Message, "bare WriteHeader(400)") {
		t.Errorf("finding 0 = %q, want the bare WriteHeader finding", after[0].Message)
	}
	if !strings.Contains(after[1].Message, `"mystery" is not in the registered Code* set`) {
		t.Errorf("finding 1 = %q, want the unregistered-code finding", after[1].Message)
	}
}

// copyTree clones the fixture so ApplyFixes can rewrite it in place.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying fixture: %v", err)
	}
}
