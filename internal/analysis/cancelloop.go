package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// CancelLoop keeps long sampling runs interruptible. In internal/ris and
// internal/cascade, any function that accepts a cancellation channel
// (`cancel <-chan struct{}`) must poll it from every sampling loop — a
// loop that drains a work channel or calls a sampling kernel (reverseBFS,
// Sample*, *World*, simulate*) — either by receiving from the channel or
// by passing it to the callee that does. It also closes the API
// loophole: an exported Sample* entry point that itself runs a sampling
// loop must either take a cancel channel or delegate to a *Cancel
// variant, so "multi-second pool builds are uninterruptible" cannot be
// reintroduced.
var CancelLoop = &Analyzer{
	Name: "cancelloop",
	Doc:  "require sampling loops in ris/cascade to poll their cancellation channel",
	Run:  runCancelLoop,
}

var kernelRe = regexp.MustCompile(`(?i)bfs|sample|world|cascade|simulat`)

func runCancelLoop(pass *Pass) error {
	path := pass.Pkg.Path()
	if !pkgPathHasSuffix(path, "internal/ris") && !pkgPathHasSuffix(path, "internal/cascade") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			cancel := cancelParam(pass, fn)
			if cancel != nil {
				checkCancelLoops(pass, fn.Body, cancel)
				continue
			}
			checkSamplerDelegates(pass, fn)
		}
	}
	return nil
}

// cancelParam returns the function's `<-chan struct{}` parameter object,
// if any.
func cancelParam(pass *Pass, fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if ch, ok := obj.Type().Underlying().(*types.Chan); ok && ch.Dir() == types.RecvOnly {
				if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
					return obj
				}
			}
		}
	}
	return nil
}

// checkCancelLoops walks body (descending into function literals, which
// close over cancel) and reports sampling loops that neither receive
// from cancel nor hand it to a callee.
func checkCancelLoops(pass *Pass, body ast.Node, cancel types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		var pos ast.Node
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody, pos = n.Body, n
		case *ast.RangeStmt:
			loopBody, pos = n.Body, n
		default:
			return true
		}
		if !isSamplingLoop(pass, n, loopBody) {
			return true
		}
		if !pollsCancel(pass, loopBody, cancel) {
			pass.Reportf(pos.Pos(),
				"sampling loop never polls the cancel channel; add a select on cancel or pass it to the sampling callee")
		}
		return true
	})
}

// isSamplingLoop reports whether the loop does per-item sampling work: it
// ranges over a channel (a worker draining a work queue) or its body
// calls a sampling kernel.
func isSamplingLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt) bool {
	if rng, ok := loop.(*ast.RangeStmt); ok {
		if _, isChan := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Chan); isChan {
			return true
		}
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		if callee := staticCallee(pass.TypesInfo, call); callee != nil &&
			kernelRe.MatchString(callee.Name()) && !isInterfaceMethod(callee) {
			found = true
		}
		return !found
	})
	return found
}

// isInterfaceMethod reports whether fn is declared on an interface —
// per-item draws like DelayDist.Sample, not sampling kernels.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// pollsCancel reports whether body receives from cancel or passes it as
// a call argument.
func pollsCancel(pass *Pass, body ast.Node, cancel types.Object) bool {
	uses := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == cancel
	}
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && uses(n.X) {
				polls = true
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if uses(arg) {
					polls = true
				}
			}
		}
		return !polls
	})
	return polls
}

// checkSamplerDelegates flags exported Sample* entry points that run a
// sampling loop with no cancellation path at all.
func checkSamplerDelegates(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	if !fn.Name.IsExported() || !strings.HasPrefix(name, "Sample") || strings.HasSuffix(name, "Cancel") {
		return
	}
	hasSamplingLoop := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if isSamplingLoop(pass, n, n.Body) {
				hasSamplingLoop = true
			}
		case *ast.RangeStmt:
			if isSamplingLoop(pass, n, n.Body) {
				hasSamplingLoop = true
			}
		}
		return !hasSamplingLoop
	})
	if !hasSamplingLoop {
		return
	}
	delegates := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := staticCallee(pass.TypesInfo, call); callee != nil && strings.HasSuffix(callee.Name(), "Cancel") {
				delegates = true
			}
		}
		return !delegates
	})
	if !delegates {
		pass.Reportf(fn.Pos(),
			"exported sampler %s runs a sampling loop with no cancellation path; accept a cancel channel or delegate to a *Cancel variant",
			name)
	}
}
