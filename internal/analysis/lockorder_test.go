package analysis_test

import (
	"testing"

	"fairtcim/internal/analysis"
	"fairtcim/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/lockorder", analysis.LockOrder)
}
