package analysis_test

import (
	"testing"

	"fairtcim/internal/analysis"
	"fairtcim/internal/analysis/analysistest"
)

func TestStatsWire(t *testing.T) {
	analysistest.Run(t, "testdata/statswire", analysis.StatsWire)
}
