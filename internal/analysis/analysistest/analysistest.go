// Package analysistest runs one analyzer over a fixture module and
// checks its findings against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the in-repo
// framework.
//
// A fixture is a self-contained module under testdata/<analyzer>/ with
// its own go.mod — declared as `module fairtcim` so the fixture's
// package paths (fairtcim/internal/ris, fairtcim/internal/server, ...)
// match the production paths the analyzers are configured with. Every
// line that must produce a finding carries a trailing want comment with
// one Go-quoted regexp per expected finding; lines exercising the
// negative space (allowlisted constructors, value-copy construction,
// registered constants) carry none, so a false positive fails the test
// just as loudly as a miss.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fairtcim/internal/analysis"
)

// expectation is one want clause: a regexp that exactly one finding on
// the comment's line must match.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture module rooted at dir, applies a to every package
// in it, and fails t unless the findings and the fixture's want comments
// agree exactly in both directions: every finding must match an
// unconsumed want on its line, and every want must be consumed.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	findings, err := analysis.RunPackages(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := map[string][]*expectation{} // "file:line" -> want clauses
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, raw := range splitQuoted(t, text[len("want "):], pos.String()) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: raw})
					}
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: [%s] %s", f.Position, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no %s finding matched want %q", key, a.Name, w.raw)
			}
		}
	}
}

// splitQuoted parses the whitespace-separated sequence of Go-quoted
// regexps following the want keyword.
func splitQuoted(t *testing.T, s, pos string) []string {
	t.Helper()
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want comment near %q: %v", pos, s, err)
		}
		raw, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("%s: unquoting %q: %v", pos, prefix, err)
		}
		out = append(out, raw)
		s = s[len(prefix):]
	}
	return out
}
