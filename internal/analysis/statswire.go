package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// StatsWire keeps /v1/stats and /metrics from drifting apart. Inside
// internal/server it checks that every numeric counter field on the
// stats wire structs (types named *Stats plus StatsResponse) is
//
//  1. populated by a stats builder — referenced in at least one
//     ordinary function, typically the Stats() snapshot that /v1/stats
//     serializes — and
//  2. exported at /metrics — referenced inside an exposition function,
//     identified as any function whose body contains a "fairtcim_"
//     metric-name literal.
//
// It also checks the sources: every atomic.Int64 counter field declared
// in the package must be read by some *Stats/stats* snapshot method, so
// a new counter cannot be incremented forever yet never reported.
var StatsWire = &Analyzer{
	Name: "statswire",
	Doc:  "cross-check that every stats counter reaches both /v1/stats and /metrics",
	Run:  runStatsWire,
}

func runStatsWire(pass *Pass) error {
	if !pkgPathHasSuffix(pass.Pkg.Path(), "internal/server") {
		return nil
	}

	type statsField struct {
		structName string
		v          *types.Var
		jsonTag    string
		pos        ast.Node
	}
	var universe []statsField
	fieldObjs := map[*types.Var]int{} // → index into universe
	var atomicCounters []*types.Var
	atomicPos := map[*types.Var]*ast.Field{}

	// Collect the wire structs and atomic counter fields from syntax so
	// diagnostics land on the field declarations.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			isWire := strings.HasSuffix(ts.Name.Name, "Stats") || ts.Name.Name == "StatsResponse"
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isNamedType(v.Type(), "sync/atomic", "Int64") {
						atomicCounters = append(atomicCounters, v)
						atomicPos[v] = field
						continue
					}
					if !isWire || !name.IsExported() {
						continue
					}
					if b, ok := v.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
						continue
					}
					tag := ""
					if field.Tag != nil {
						raw := strings.Trim(field.Tag.Value, "`")
						tag = strings.Split(reflect.StructTag(raw).Get("json"), ",")[0]
					}
					fieldObjs[v] = len(universe)
					universe = append(universe, statsField{ts.Name.Name, v, tag, field})
				}
			}
			return true
		})
	}
	if len(universe) == 0 {
		return nil
	}

	// Classify functions and record which stats fields each side touches.
	inExposition := make([]bool, len(universe))
	inBuilder := make([]bool, len(universe))
	atomicRead := map[*types.Var]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exposition := isExpositionFunc(fn)
			statsBuilder := strings.Contains(strings.ToLower(fn.Name.Name), "stats")
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pass.TypesInfo.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				if i, ok := fieldObjs[v]; ok {
					if exposition {
						inExposition[i] = true
					} else {
						inBuilder[i] = true
					}
				}
				if statsBuilder {
					for _, ac := range atomicCounters {
						if v == ac {
							atomicRead[v] = true
						}
					}
				}
				return true
			})
		}
	}

	for i, f := range universe {
		if f.jsonTag == "" || f.jsonTag == "-" {
			pass.Reportf(f.pos.Pos(),
				"stats field %s.%s has no json tag, so it never reaches the /v1/stats payload",
				f.structName, f.v.Name())
			continue
		}
		if !inBuilder[i] {
			pass.Reportf(f.pos.Pos(),
				"stats field %s.%s (json %q) is never populated by a stats builder; /v1/stats will always report zero",
				f.structName, f.v.Name(), f.jsonTag)
		}
		if !inExposition[i] {
			pass.Reportf(f.pos.Pos(),
				"stats field %s.%s (json %q) is served by /v1/stats but missing from the /metrics exposition",
				f.structName, f.v.Name(), f.jsonTag)
		}
	}
	for _, ac := range atomicCounters {
		if !atomicRead[ac] {
			pass.Reportf(atomicPos[ac].Pos(),
				"atomic counter %s is incremented but never read by a Stats() snapshot; it reaches neither /v1/stats nor /metrics",
				ac.Name())
		}
	}
	return nil
}

// isExpositionFunc reports whether fn renders Prometheus text: any
// function whose body mentions a fairtcim_-prefixed series name.
func isExpositionFunc(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && strings.Contains(lit.Value, "fairtcim_") {
			found = true
		}
		return !found
	})
	return found
}
