// Package analysis is fairtcim's static-analysis layer: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic, suggested fixes) plus five
// repo-specific analyzers that mechanically enforce invariants the rest
// of the codebase documents only in comments:
//
//   - sketchmut:   ris.Collection and graph.Graph snapshots are immutable
//     after publication; writes are confined to a constructor allowlist.
//   - lockorder:   per-package mutex-acquisition graphs must be acyclic
//     and must not invert documented edges (journal.mu → store.mu).
//   - errenvelope: every /v1/* error uses the unified envelope with a
//     registered Code* constant; no raw http.Error or bare 4xx/5xx
//     WriteHeader calls.
//   - statswire:   every counter in the server stats structs is both
//     populated by a Stats() builder and exported at /metrics.
//   - cancelloop:  sampling loops in ris/cascade poll their cancel
//     channel (or hand it to the callee) so multi-second pools stay
//     interruptible.
//
// The framework mirrors x/tools so the analyzers read idiomatically and
// could be ported to a real multichecker by swapping the driver; it is
// self-hosted here because the repo's only dependency is the standard
// library. Packages are loaded the way go vet's unitchecker does it:
// `go list -export` supplies compiler export data for every dependency,
// and only the packages under analysis are type-checked from source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Run is invoked once per
// loaded package; it reports findings through the Pass and returns an
// error only for internal failures (not for findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is the interface between the driver and one analyzer run on one
// package, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report reports a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Diagnostic is one finding: a position, a message, and optionally a
// mechanical fix the driver can apply under -fix.
type Diagnostic struct {
	Analyzer       string
	Pos            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a set of edits that resolve the diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
