package analysis_test

import (
	"testing"

	"fairtcim/internal/analysis"
	"fairtcim/internal/analysis/analysistest"
)

func TestCancelLoop(t *testing.T) {
	analysistest.Run(t, "testdata/cancelloop", analysis.CancelLoop)
}
