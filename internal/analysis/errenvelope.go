package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// ErrEnvelope enforces the unified /v1/* error contract inside
// internal/server: every non-2xx response is the
// {"error":{"code","message"}} envelope with a registered Code*
// constant. It flags
//
//   - net/http.Error calls (raw text/plain bodies bypass the envelope),
//   - bare w.WriteHeader(4xx/5xx) with a constant status outside the
//     envelope writers (writeJSON/writeError) and status-forwarding
//     wrappers (methods themselves named WriteHeader, proxies relaying
//     an upstream envelope verbatim),
//   - writeError calls whose code argument is a string literal — the
//     registered constant must be used, and unregistered code strings
//     are rejected outright.
//
// The registered set is discovered from the package itself: every
// string constant named Code*. Suggested fixes rewrite http.Error to
// writeError and literal codes to their registered constant.
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc:  "require the unified error envelope and registered error codes in internal/server",
	Run:  runErrEnvelope,
}

func runErrEnvelope(pass *Pass) error {
	if !pkgPathHasSuffix(pass.Pkg.Path(), "internal/server") {
		return nil
	}

	// Registered codes: package-level string constants named Code*.
	valueToConst := map[string]string{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Code") {
			continue
		}
		if c.Val().Kind() == constant.String {
			valueToConst[constant.StringVal(c.Val())] = name
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkEnvelopeCall(pass, fn, call, valueToConst)
				return true
			})
		}
	}
	return nil
}

func checkEnvelopeCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, valueToConst map[string]string) {
	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil {
		return
	}

	// http.Error bypasses the envelope entirely.
	if callee.Pkg() != nil && callee.Pkg().Path() == "net/http" && callee.Name() == "Error" && len(call.Args) == 3 {
		d := Diagnostic{
			Pos:     call.Pos(),
			Message: "http.Error writes a text/plain body outside the unified error envelope; use writeError with a registered code",
		}
		if fix := httpErrorFix(pass, call); fix != nil {
			d.SuggestedFixes = []SuggestedFix{*fix}
		}
		pass.Report(d)
		return
	}

	// Bare WriteHeader with a constant 4xx/5xx status.
	if callee.Name() == "WriteHeader" && len(call.Args) == 1 {
		if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return
		}
		switch fn.Name.Name {
		case "writeJSON", "writeError", "WriteHeader":
			return // the envelope writers and status-forwarding wrappers
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return // dynamic status (e.g. relaying an upstream response)
		}
		if code, ok := constant.Int64Val(tv.Value); ok && code >= 400 && code <= 599 {
			pass.Reportf(call.Pos(),
				"bare WriteHeader(%d) sends an error status without the envelope body; use writeError with a registered code", code)
		}
		return
	}

	// writeError with a literal (or unregistered) code string.
	if callee.Name() == "writeError" && callee.Pkg() == pass.Pkg && len(call.Args) >= 3 {
		codeArg := ast.Unparen(call.Args[2])
		if id, ok := codeArg.(*ast.Ident); ok {
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && strings.HasPrefix(c.Name(), "Code") {
				return // registered constant
			}
		}
		if sel, ok := codeArg.(*ast.SelectorExpr); ok {
			if c, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Const); ok && strings.HasPrefix(c.Name(), "Code") {
				return
			}
		}
		tv, ok := pass.TypesInfo.Types[codeArg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return // computed at runtime (errCode(err) and friends)
		}
		val := constant.StringVal(tv.Value)
		if name, registered := valueToConst[val]; registered {
			pass.Report(Diagnostic{
				Pos:     codeArg.Pos(),
				Message: fmt.Sprintf("error code %q passed as a literal; use the registered constant %s", val, name),
				SuggestedFixes: []SuggestedFix{{
					Message:   "replace literal with " + name,
					TextEdits: []TextEdit{{Pos: codeArg.Pos(), End: codeArg.End(), NewText: []byte(name)}},
				}},
			})
			return
		}
		pass.Reportf(codeArg.Pos(),
			"error code %q is not in the registered Code* set; register a constant or use an existing one", val)
	}
}

// httpErrorFix rewrites http.Error(w, msg, status) into
// writeError(w, status, CodeInternal, "%s", msg).
func httpErrorFix(pass *Pass, call *ast.CallExpr) *SuggestedFix {
	src := func(e ast.Expr) (string, bool) {
		file := pass.Fset.File(e.Pos())
		if file == nil {
			return "", false
		}
		// Re-render via positions only when the nodes are simple; fall
		// back to no fix otherwise.
		switch e := e.(type) {
		case *ast.Ident:
			return e.Name, true
		case *ast.BasicLit:
			return e.Value, true
		case *ast.SelectorExpr:
			if x, ok := e.X.(*ast.Ident); ok {
				return x.Name + "." + e.Sel.Name, true
			}
		case *ast.CallExpr:
			if fn, ok := e.Fun.(*ast.Ident); ok && len(e.Args) == 1 {
				if arg, ok2 := argSrc(e.Args[0]); ok2 {
					return fn.Name + "(" + arg + ")", true
				}
			}
		}
		return "", false
	}
	w, ok1 := src(call.Args[0])
	msg, ok2 := src(call.Args[1])
	status, ok3 := src(call.Args[2])
	if !ok1 || !ok2 || !ok3 {
		return nil
	}
	text := fmt.Sprintf("writeError(%s, %s, CodeInternal, %s, %s)", w, status, strconv.Quote("%s"), msg)
	return &SuggestedFix{
		Message:   "rewrite to the envelope writer",
		TextEdits: []TextEdit{{Pos: call.Pos(), End: call.End(), NewText: []byte(text)}},
	}
}

func argSrc(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.BasicLit:
		return e.Value, true
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name, true
		}
	}
	return "", false
}
