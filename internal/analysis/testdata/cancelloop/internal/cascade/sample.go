// Package cascade is the cancelloop fixture's sampler API surface: an
// exported Sample* entry point that runs a sampling loop must take a
// cancel channel or delegate to its *Cancel variant.
package cascade

func sampleWorld(i int) int { return i }

// SampleWorlds draws r worlds with no way to stop early.
func SampleWorlds(r int) []int { // want `exported sampler SampleWorlds runs a sampling loop with no cancellation path`
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = sampleWorld(i)
	}
	return out
}

// SampleGood delegates to the cancellable variant: the uninterruptible
// path no longer exists.
func SampleGood(r int) []int {
	out, _ := SampleGoodCancel(r, nil)
	return out
}

// SampleGoodCancel is the common implementation; its loop polls cancel.
func SampleGoodCancel(r int, cancel <-chan struct{}) ([]int, bool) {
	out := make([]int, r)
	for i := 0; i < r; i++ { // ok: polls cancel each world
		if cancel != nil {
			select {
			case <-cancel:
				return nil, false
			default:
			}
		}
		out[i] = sampleWorld(i)
	}
	return out, true
}

// delayDist mirrors DelayDist: per-item draws through an interface
// method are not sampling kernels, so a cheap single-draw helper is not
// forced to grow a cancel parameter.
type delayDist interface {
	Sample() int32
}

// SampleDelays draws one delay per slot; dist.Sample is a per-edge draw,
// not a kernel, so no finding.
func SampleDelays(dist delayDist, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = dist.Sample()
	}
	return out
}
