// Package ris is the cancelloop fixture's pool builder: worker loops
// draining a work channel must poll the cancel channel they were handed,
// either directly or by passing it to the per-item callee.
package ris

func reverseBFS(v int) int { return v }

func sampleOne(v int, cancel <-chan struct{}) int {
	select {
	case <-cancel:
		return 0
	default:
	}
	return reverseBFS(v)
}

// buildPool drains work without ever looking at cancel: a multi-second
// pool build nobody can interrupt.
func buildPool(work chan int, cancel <-chan struct{}) int {
	total := 0
	for v := range work { // want `sampling loop never polls the cancel channel`
		total += reverseBFS(v)
	}
	return total
}

// buildPoolPolling polls cancel between items, the standard pattern.
func buildPoolPolling(work chan int, cancel <-chan struct{}) int {
	total := 0
	for v := range work { // ok: polls cancel each iteration
		select {
		case <-cancel:
			return total
		default:
		}
		total += reverseBFS(v)
	}
	return total
}

// buildPoolDelegating hands cancel to the per-item callee.
func buildPoolDelegating(work chan int, cancel <-chan struct{}) int {
	total := 0
	for v := range work { // ok: cancel flows into the callee
		total += sampleOne(v, cancel)
	}
	return total
}

// buildPoolWorkers spawns worker goroutines: the closure bodies close
// over cancel and are checked too.
func buildPoolWorkers(work chan int, cancel <-chan struct{}) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := range work { // want `sampling loop never polls the cancel channel`
			reverseBFS(v)
		}
	}()
	<-done
}
