module fairtcim

go 1.24
