// Package server is the statswire fixture: wire structs whose fields
// drift from the /metrics exposition in each way the analyzer reports,
// plus atomic counters with and without a Stats() reader.
package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// CacheStats is a /v1/stats wire struct (name suffix Stats).
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"` // want `stats field CacheStats\.Misses \(json "misses"\) is served by /v1/stats but missing from the /metrics exposition`
	Orphan int64 // want `stats field CacheStats\.Orphan has no json tag`
}

// StatsResponse is the top-level /v1/stats payload.
type StatsResponse struct {
	Queued int64 `json:"queued"`
	Ghost  int64 `json:"ghost"` // want `stats field StatsResponse\.Ghost \(json "ghost"\) is never populated by a stats builder` `stats field StatsResponse\.Ghost \(json "ghost"\) is served by /v1/stats but missing from the /metrics exposition`
}

// srv holds the raw counters feeding the wire structs.
type srv struct {
	shed atomic.Int64
	lost atomic.Int64 // want `atomic counter lost is incremented but never read by a Stats\(\) snapshot`
}

// Stats is the /v1/stats builder: it must read every atomic counter and
// populate every wire field.
func (s *srv) Stats() (CacheStats, StatsResponse) {
	c := CacheStats{Hits: 1, Misses: 2, Orphan: 3}
	r := StatsResponse{Queued: s.shed.Load()}
	return c, r
}

// handleMetrics is the /metrics exposition (it mentions fairtcim_
// series names): fields it never renders are drift.
func (s *srv) handleMetrics(w io.Writer) {
	c, r := s.Stats()
	fmt.Fprintf(w, "fairtcim_cache_hits_total %d\n", c.Hits)
	fmt.Fprintf(w, "fairtcim_requests_queued %d\n", r.Queued)
}

func (s *srv) work() {
	s.shed.Add(1)
	s.lost.Add(1)
}
