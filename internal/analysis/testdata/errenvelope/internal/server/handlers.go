// Package server is the errenvelope fixture: a registered Code* set,
// the envelope writers, and handlers that bypass them in every way the
// analyzer must catch.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Registered error codes, discovered by the analyzer as the package's
// Code* string constants.
const (
	CodeBadRequest = "bad_request"
	CodeInternal   = "internal"
)

// errorEnvelope is the unified wire shape.
type errorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON is the envelope writer: its WriteHeader is the one
// legitimate status write.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status) // ok: the envelope writer itself
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders the envelope with a registered code.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Code: code, Message: fmt.Sprintf(format, args...)})
}

// statusRecorder forwards statuses; a method itself named WriteHeader is
// a relay, not an error site.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code) // ok: status-forwarding wrapper
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError)                          // want `http\.Error writes a text/plain body outside the unified error envelope`
	w.WriteHeader(http.StatusBadRequest)                                           // want `bare WriteHeader\(400\) sends an error status without the envelope body`
	writeError(w, http.StatusBadRequest, "bad_request", "no graph %q", r.URL.Path) // want `error code "bad_request" passed as a literal; use the registered constant CodeBadRequest`
	writeError(w, http.StatusBadRequest, "mystery", "what")                        // want `error code "mystery" is not in the registered Code\* set`
}

func handleGood(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeError(w, http.StatusBadRequest, CodeBadRequest, "bad spec: %v", err) // ok: registered constant
	writeError(w, status, errCode(err), "%v", err)                            // ok: code computed at runtime
	w.WriteHeader(http.StatusNoContent)                                       // ok: success status
	w.WriteHeader(status)                                                     // ok: dynamic status relay
}

func errCode(error) string { return CodeInternal }
