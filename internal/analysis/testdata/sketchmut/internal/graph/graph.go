// Package graph is the sketchmut fixture's stand-in for the real CSR
// graph: same type name, same allowlisted constructors, same aliasing
// accessor shape.
package graph

// NodeID mirrors the real graph's node identifier.
type NodeID int32

// Graph is a CSR snapshot, immutable once published.
type Graph struct {
	outOff  []int32
	targets []NodeID
	groups  []int32
}

// Build is the constructor: field writes here are allowlisted.
func Build(n int) *Graph {
	g := &Graph{}
	g.outOff = make([]int32, n+1) // ok: Build is on the allowlist
	g.targets = nil               // ok
	return g
}

// ApplyDelta rebuilds via the value-copy idiom: writes land in a fresh
// copy before publication, and the function is allowlisted anyway.
func (g *Graph) ApplyDelta(off []int32) *Graph {
	ng := *g
	ng.outOff = off // ok: allowlisted + value copy
	return &ng
}

// OutCSR returns slices aliasing the snapshot's backing arrays.
func (g *Graph) OutCSR() ([]int32, []NodeID) { return g.outOff, g.targets }

// GroupSizes aliases the group index.
func (g *Graph) GroupSizes() []int32 { return g.groups }

// poison mutates a published snapshot: both the field reassignment and
// the in-place element store are violations.
func poison(g *Graph) {
	g.groups = nil  // want `write to fairtcim/internal/graph\.Graph field groups outside its construction allowlist`
	g.outOff[0] = 1 // want `write to fairtcim/internal/graph\.Graph field outOff outside its construction allowlist`
}

// copyConstruct builds a fresh value copy: direct field stores are
// construction, but an index write still lands in the shared array.
func copyConstruct(g *Graph) Graph {
	ng := *g
	ng.groups = nil  // ok: direct store into a local value copy
	ng.outOff[0] = 1 // want `write to fairtcim/internal/graph\.Graph field outOff outside its construction allowlist`
	return ng
}
