// Package ris is the sketchmut fixture's stand-in for the real sketch
// collection: Refresh is the one allowlisted mutator, PoolSizes aliases
// the backing array.
package ris

// Collection is an RR-sketch snapshot, immutable once published.
type Collection struct {
	tau  int32
	pool []int
}

// New builds a collection; composite literals are construction, not
// mutation, so no allowlist entry is needed.
func New(tau int32, pool []int) *Collection {
	return &Collection{tau: tau, pool: pool}
}

// PoolSizes returns a slice aliasing the snapshot's backing array.
func (c *Collection) PoolSizes() []int { return c.pool }

// Refresh rebuilds via the allowlisted value-copy idiom.
func (c *Collection) Refresh(tau int32) *Collection {
	nc := *c
	nc.tau = tau // ok: Refresh is on the allowlist
	return &nc
}

// stomp mutates a published collection in place.
func stomp(c *Collection) {
	c.tau = 9 // want `write to fairtcim/internal/ris\.Collection field tau outside its construction allowlist`
}

// copyThenSet is the unlisted value-copy pattern: still construction.
func copyThenSet(c *Collection) Collection {
	nc := *c
	nc.tau = 3 // ok: direct store into a local value copy
	return nc
}
