// Package consumer exercises sketchmut from outside the protected
// packages: writes through aliasing accessors are writes to the
// snapshot, copies are fine.
package consumer

import (
	"fairtcim/internal/graph"
	"fairtcim/internal/ris"
)

// clobber writes through accessor-returned slices that alias the
// snapshots' backing arrays.
func clobber(g *graph.Graph, c *ris.Collection) {
	off, _ := g.OutCSR()
	off[0] = 7 // want `write to slice returned by Graph\.OutCSR aliases the snapshot's backing array`
	sizes := c.PoolSizes()
	sizes[0]++ // want `write to slice returned by Collection\.PoolSizes aliases the snapshot's backing array`
}

// safe copies before modifying and only reads the aliases.
func safe(g *graph.Graph, c *ris.Collection) int {
	off, _ := g.OutCSR()
	cp := append([]int32(nil), off...)
	cp[0] = 7 // ok: cp owns its backing array
	return c.PoolSizes()[0] + int(cp[0])
}
