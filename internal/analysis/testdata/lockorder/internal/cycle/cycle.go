// Package cycle exercises the pure cycle detector (no documented
// ordering here): two lock types acquired in both orders deadlock, two
// instances of one type do not.
package cycle

import "sync"

type alpha struct {
	mu sync.Mutex
	n  int
}

type beta struct {
	mu sync.Mutex
	n  int
}

// lockAB establishes alpha.mu -> beta.mu. On its own this is fine.
func lockAB(a *alpha, b *beta) {
	a.mu.Lock()
	b.mu.Lock()
	b.n = a.n
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA establishes the reverse edge, closing the cycle.
func lockBA(a *alpha, b *beta) {
	b.mu.Lock()
	a.mu.Lock() // want `mutex acquisition cycle: alpha\.mu -> beta\.mu -> alpha\.mu`
	a.n = b.n
	a.mu.Unlock()
	b.mu.Unlock()
}

// merge locks two instances of one type: the type-scoped key suppresses
// the self-edge, so no finding.
func merge(a, b *alpha) {
	a.mu.Lock()
	b.mu.Lock() // ok: same type-scoped key, two instances
	a.n += b.n
	b.mu.Unlock()
	a.mu.Unlock()
}

// handoff releases beta.mu before taking alpha.mu: sequential, no edge.
func handoff(a *alpha, b *beta) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Lock() // ok: nothing held
	a.n++
	a.mu.Unlock()
}
