// Package server is the lockorder fixture's replica of the journal
// compaction contract: jobJournal.mu is documented to come before
// jobStore.mu, and the edge is only derivable interprocedurally —
// compact holds journal.mu while invoking a method value that locks the
// store, exactly the shape the real jobStore.noteFinished takes.
package server

import "sync"

type jobRecord struct{ id string }

// jobJournal's mu is documented to be acquired before jobStore's mu.
type jobJournal struct {
	mu    sync.Mutex
	lines []jobRecord
}

type jobStore struct {
	mu   sync.Mutex
	jobs map[string]jobRecord
}

// compact holds journal.mu while collect runs: callers hand in a method
// value that takes store.mu, establishing journal.mu -> store.mu.
func (j *jobJournal) compact(collect func() []jobRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lines = collect()
}

// retained snapshots the store under its own lock.
func (st *jobStore) retained() []jobRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]jobRecord, 0, len(st.jobs))
	for _, r := range st.jobs {
		out = append(out, r)
	}
	return out
}

// finish follows the documented order: the journal.mu -> store.mu edge
// flows through the method-value argument. No finding.
func (st *jobStore) finish(j *jobJournal) {
	j.compact(st.retained) // ok: documented direction
}

// inverted takes store.mu first, closing the cycle against the edge
// finish established and violating the documented ordering.
func (st *jobStore) inverted(j *jobJournal) {
	st.mu.Lock()
	j.mu.Lock() // want `mutex acquisition cycle` `lock ordering violation: jobJournal\.mu acquired while holding jobStore\.mu`
	j.lines = nil
	j.mu.Unlock()
	st.mu.Unlock()
}
