package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// staticCallee resolves a call to the *types.Func it statically invokes
// (a package function, method, or method value), or nil for calls through
// function values, interfaces, conversions, and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcObj resolves any expression that denotes a function (identifier,
// selector, method value) to its *types.Func.
func funcObj(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// namedOf unwraps pointers and aliases down to the *types.Named type, or
// nil if t has none.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// pkgPathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix — fixtures and the real tree share suffixes like
// "internal/server".
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
