package persist

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

func testMeta() Meta { return Meta{Kind: "test", Version: 3, Fingerprint: 0xfeedface} }

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.sample")
	payload := []byte("the quick brown fox")
	if err := Save(path, testMeta(), payload); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
	// Empty payloads are legal too.
	if err := Save(path, testMeta(), nil); err != nil {
		t.Fatal(err)
	}
	if got, err := Load(path, testMeta()); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %q, %v", got, err)
	}
}

func TestLoadMissingFileIsNotExist(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope"), testMeta())
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.sample")
	payload := []byte("some payload bytes with enough length to corrupt")
	if err := Save(path, testMeta(), payload); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, want error) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path, testMeta()); !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}

	check("truncated header", good[:10], ErrCorrupt)
	check("truncated payload", good[:len(good)-5], ErrCorrupt)
	check("empty file", nil, ErrCorrupt)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-3] ^= 0x40 // payload bit rot
	check("checksum failure", flipped, ErrCorrupt)

	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xff
	check("bad magic", badMagic, ErrCorrupt)

	// Valid frames for the wrong thing are a mismatch, not corruption.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]Meta{
		"wrong version":     {Kind: "test", Version: 4, Fingerprint: 0xfeedface},
		"wrong kind":        {Kind: "diff", Version: 3, Fingerprint: 0xfeedface},
		"wrong fingerprint": {Kind: "test", Version: 3, Fingerprint: 1},
	} {
		if _, err := Load(path, want); !errors.Is(err, ErrMismatch) {
			t.Errorf("%s: err = %v, want ErrMismatch", name, err)
		}
	}
}

func TestEncodeRejectsBadKind(t *testing.T) {
	if _, err := Encode(Meta{Kind: "toolong"}, nil); err == nil {
		t.Fatal("5-byte kind accepted")
	}
}

func TestGraphFingerprint(t *testing.T) {
	g1 := generate.TwoStars()
	g2 := generate.TwoStars()
	if GraphFingerprint(g1) != GraphFingerprint(g2) {
		t.Fatal("identical graphs fingerprint differently")
	}
	sbm, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	if GraphFingerprint(g1) == GraphFingerprint(sbm) {
		t.Fatal("different graphs share a fingerprint")
	}
	// Same topology, different group labels: the sampling distribution of
	// per-group pools changes, so the fingerprint must too.
	labels := make([]int, g1.N())
	relabeled, err := g1.WithGroups(labels)
	if err != nil {
		t.Fatal(err)
	}
	if GraphFingerprint(g1) == GraphFingerprint(relabeled) {
		t.Fatal("relabeled graph shares a fingerprint")
	}
	// A delta produces a graph with a different fingerprint...
	g3, _, err := g1.ApplyDelta(graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, P: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if GraphFingerprint(g1) == GraphFingerprint(g3) {
		t.Fatal("delta-updated graph shares a fingerprint")
	}
	// ...and reverting the delta restores it — exactly the collision that
	// version-keying exists to break.
	g4, _, err := g3.ApplyDelta(graph.Delta{Edges: []graph.EdgeDelta{{From: 1, To: 0, Remove: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if GraphFingerprint(g1) != GraphFingerprint(g4) {
		t.Fatal("inverse delta did not restore the fingerprint")
	}
}

func TestVersionedFingerprint(t *testing.T) {
	fp := GraphFingerprint(generate.TwoStars())
	if VersionedFingerprint(fp, 0) != fp {
		t.Fatal("version 0 must leave static fingerprints unchanged")
	}
	v1, v2 := VersionedFingerprint(fp, 1), VersionedFingerprint(fp, 2)
	if v1 == fp || v2 == fp || v1 == v2 {
		t.Fatalf("versioned fingerprints collide: fp=%x v1=%x v2=%x", fp, v1, v2)
	}
	if VersionedFingerprint(fp, 1) != v1 {
		t.Fatal("not deterministic")
	}
}

func TestVersionedFingerprintRejectsOldFrame(t *testing.T) {
	// A frame persisted under version 1 must be rejected as ErrMismatch —
	// not decoded — when the reader expects version 2 of the same graph,
	// even though the graph content could be byte-identical.
	path := filepath.Join(t.TempDir(), "sketch")
	fp := GraphFingerprint(generate.TwoStars())
	oldMeta := Meta{Kind: "risc", Version: 1, Fingerprint: VersionedFingerprint(fp, 1)}
	if err := Save(path, oldMeta, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	newMeta := oldMeta
	newMeta.Fingerprint = VersionedFingerprint(fp, 2)
	if _, err := Load(path, newMeta); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	// The same frame still loads at its own version.
	if _, err := Load(path, oldMeta); err != nil {
		t.Fatal(err)
	}
}

func TestDecHelpers(t *testing.T) {
	var e Enc
	e.I32(-7)
	e.U64(42)
	e.I32s([]int32{1, 2, 3})
	e.Ints([]int{9, -9})
	d := NewDec(e.Bytes())
	if v := d.I32(); v != -7 {
		t.Fatalf("I32 = %d", v)
	}
	if v := d.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if got := d.I32s(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("I32s = %v", got)
	}
	if got := d.Ints(); len(got) != 2 || got[1] != -9 {
		t.Fatalf("Ints = %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A huge length prefix must not allocate; it fails against the
	// remaining byte count.
	var bad Enc
	bad.U64(1 << 60)
	d = NewDec(bad.Bytes())
	if d.I32s(); !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("oversized length: err = %v", d.Err())
	}

	// Trailing bytes are an error: payloads must be consumed exactly.
	d = NewDec([]byte{1, 2, 3, 4})
	if err := d.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: err = %v", err)
	}
}

func TestEncodeToMatchesEncode(t *testing.T) {
	payload := []byte("streamed payload bytes")
	want, err := Encode(testMeta(), payload)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTo(&buf, testMeta(), payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("EncodeTo bytes differ from Encode — wire and disk formats diverged")
	}
	if err := EncodeTo(&bytes.Buffer{}, Meta{Kind: "toolong!"}, payload); err == nil {
		t.Fatal("EncodeTo accepted a non-4-byte kind")
	}
}

func TestDecodeFromRoundTripAndRejection(t *testing.T) {
	payload := []byte("a payload long enough to truncate meaningfully")
	framed, err := Encode(testMeta(), payload)
	if err != nil {
		t.Fatal(err)
	}

	got, version, err := DecodeFrom(bytes.NewReader(framed), testMeta(), testMeta().Version, 0)
	if err != nil || version != testMeta().Version || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q v%d %v", got, version, err)
	}

	check := func(name string, data []byte, maxPayload int64, want error) {
		t.Helper()
		if _, _, err := DecodeFrom(bytes.NewReader(data), testMeta(), testMeta().Version, maxPayload); !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	check("truncated header", framed[:10], 0, ErrCorrupt)
	check("truncated payload", framed[:len(framed)-7], 0, ErrCorrupt)
	check("empty stream", nil, 0, ErrCorrupt)
	check("trailing garbage", append(append([]byte(nil), framed...), 'x'), 0, ErrCorrupt)
	check("payload over cap", framed, int64(len(payload)-1), ErrCorrupt)

	flipped := append([]byte(nil), framed...)
	flipped[len(flipped)-2] ^= 0x01
	check("bit rot", flipped, 0, ErrCorrupt)

	wrong := testMeta()
	wrong.Fingerprint++
	if _, _, err := DecodeFrom(bytes.NewReader(framed), wrong, wrong.Version, 0); !errors.Is(err, ErrMismatch) {
		t.Fatalf("fingerprint skew: err = %v, want ErrMismatch", err)
	}
}
