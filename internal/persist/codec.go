package persist

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Enc appends little-endian primitives to a growing buffer. The zero
// value is ready to use; read the result with Bytes.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// U32 appends one uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends one uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I32 appends one int32.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// I64 appends one int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// I32s appends a length-prefixed []int32.
func (e *Enc) I32s(s []int32) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.I32(v)
	}
}

// Ints appends a length-prefixed []int as int64 values.
func (e *Enc) Ints(s []int) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.I64(int64(v))
	}
}

// Uvarint appends one unsigned LEB128 varint (1 byte for values < 128,
// growing 7 bits per byte). The compact integers of the version-2 payload
// codecs are built from it.
func (e *Enc) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Svarint appends one zigzag-encoded signed varint: small magnitudes of
// either sign stay short, so nearly-sorted streams delta-encode well even
// when an occasional gap runs backwards.
func (e *Enc) Svarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// DeltaU32s appends a strictly-increasing []int32 as a Uvarint count, the
// first value, then the gaps — the delta+varint stream layout shared by
// the version-2 sketch codecs. Callers must pass a strictly increasing,
// non-negative sequence; Dec.DeltaU32s re-validates on the way back in.
func (e *Enc) DeltaU32s(s []int32) {
	e.Uvarint(uint64(len(s)))
	prev := int32(0)
	for i, v := range s {
		if i == 0 {
			e.Uvarint(uint64(v))
		} else {
			e.Uvarint(uint64(v - prev))
		}
		prev = v
	}
}

// Dec reads little-endian primitives from a buffer. The first malformed
// read latches an error; every later read returns zero values, so callers
// decode straight through and check Err (or Close) once at the end.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// err4 checks n more bytes are available, latching ErrCorrupt if not.
func (d *Dec) err4(n int, what string) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated payload reading %s at offset %d", ErrCorrupt, what, d.off)
		return false
	}
	return true
}

// U32 reads one uint32.
func (d *Dec) U32() uint32 {
	if !d.err4(4, "uint32") {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads one uint64.
func (d *Dec) U64() uint64 {
	if !d.err4(8, "uint64") {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I32 reads one int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// I64 reads one int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Len reads a length prefix, validated against the given per-element
// width so a corrupt length can never trigger a huge allocation.
func (d *Dec) Len(elemBytes int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off)/uint64(elemBytes) {
		d.err = fmt.Errorf("%w: length prefix %d exceeds remaining payload", ErrCorrupt, n)
		return 0
	}
	return int(n)
}

// I32s reads a length-prefixed []int32.
func (d *Dec) I32s() []int32 {
	n := d.Len(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.I32()
	}
	return out
}

// Ints reads a length-prefixed []int encoded as int64 values.
func (d *Dec) Ints() []int {
	n := d.Len(8)
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.I64())
	}
	return out
}

// Uvarint reads one unsigned LEB128 varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: malformed uvarint at offset %d", ErrCorrupt, d.off)
		return 0
	}
	d.off += n
	return v
}

// Svarint reads one zigzag-encoded signed varint.
func (d *Dec) Svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: malformed varint at offset %d", ErrCorrupt, d.off)
		return 0
	}
	d.off += n
	return v
}

// UvarintLen reads a Uvarint length prefix, validated against the bytes
// remaining (varint elements are at least one byte each) so a corrupt
// length can never trigger a huge allocation.
func (d *Dec) UvarintLen() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("%w: varint length prefix %d exceeds remaining payload", ErrCorrupt, n)
		return 0
	}
	return int(n)
}

// DeltaU32s reads a delta+varint stream written by Enc.DeltaU32s into out
// (reallocated when too small) and returns it. The decoded sequence is
// validated to be strictly increasing, non-negative, and bounded by max
// (exclusive) — a corrupt gap is rejected here, before any caller indexes
// with it.
func (d *Dec) DeltaU32s(out []int32, max int32) []int32 {
	n := d.UvarintLen()
	if d.err != nil {
		return nil
	}
	if cap(out) < n {
		out = make([]int32, n)
	}
	out = out[:n]
	prev := int64(-1)
	for i := 0; i < n; i++ {
		var v int64
		if i == 0 {
			v = int64(d.Uvarint())
		} else {
			gap := d.Uvarint()
			if gap == 0 && d.err == nil {
				d.err = fmt.Errorf("%w: zero gap in delta stream at element %d", ErrCorrupt, i)
			}
			v = prev + int64(gap)
		}
		if d.err != nil {
			return nil
		}
		if v <= prev || v >= int64(max) {
			d.err = fmt.Errorf("%w: delta stream element %d decodes to %d, outside (%d,%d)", ErrCorrupt, i, v, prev, max)
			return nil
		}
		out[i] = int32(v)
		prev = v
	}
	return out
}

// UvarintMaxLen bounds the encoded size of one Uvarint — handy for
// capacity estimates in payload encoders.
func UvarintMaxLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Close returns the first decoding error, or ErrCorrupt if undecoded
// bytes remain — a payload must be consumed exactly.
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}
