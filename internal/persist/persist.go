// Package persist implements the on-disk format for warm-restart state:
// a versioned, self-describing frame around an opaque payload, plus the
// little-endian encode/decode helpers the payload codecs (internal/ris,
// internal/cascade, internal/server) are built from.
//
// Every file starts with an 8-byte magic, the payload's codec version, a
// 4-byte kind tag, the fingerprint of the graph the payload was built
// from, the payload length and a CRC-64 checksum of the payload. A reader
// therefore rejects — loudly, never silently — anything that is not a
// state file (ErrCorrupt), was truncated or bit-rotted (ErrCorrupt), or
// was written by a different codec version or for a different graph
// (ErrMismatch). Callers treat either error as "no warm state" and fall
// back to a cold build; a state file can make a restart faster, never
// wrong.
//
// Layering: persist knows about graphs (for fingerprinting) and raw
// bytes, nothing else. What a payload means is the concern of the package
// that owns the encoded type.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"

	"fairtcim/internal/graph"
)

// magic identifies fairtcim warm-restart state files ("FTCWARM" + format
// generation). Bump the trailing digit only if the frame layout itself
// changes; payload layout changes bump the per-kind Meta.Version instead.
const magic = "FTCWARM1"

// headerSize is the fixed frame prefix: magic, version, kind, graph
// fingerprint, payload length, payload checksum.
const headerSize = len(magic) + 4 + 4 + 8 + 8 + 8

// Sentinel errors; both mean "do not use this file", they only differ in
// why. Callers that fall back to a cold build can treat them alike.
var (
	// ErrCorrupt marks files that are not valid state files at all:
	// wrong magic, truncated, or failing the checksum.
	ErrCorrupt = errors.New("persist: corrupt state file")
	// ErrMismatch marks well-formed files that describe something else:
	// a different codec version, kind, or graph fingerprint.
	ErrMismatch = errors.New("persist: state file does not match")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta describes the payload a frame carries; Decode verifies a stored
// frame against the Meta the reader expects.
type Meta struct {
	Kind        string // exactly 4 bytes, e.g. "risc" or "wrld"
	Version     uint32 // payload codec version
	Fingerprint uint64 // GraphFingerprint of the graph the payload binds to
}

// Encode frames a payload: header, checksum, then the payload verbatim.
func Encode(meta Meta, payload []byte) ([]byte, error) {
	if len(meta.Kind) != 4 {
		return nil, fmt.Errorf("persist: kind %q must be exactly 4 bytes", meta.Kind)
	}
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, meta.Version)
	out = append(out, meta.Kind...)
	out = binary.LittleEndian.AppendUint64(out, meta.Fingerprint)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint64(out, crc64.Checksum(payload, crcTable))
	return append(out, payload...), nil
}

// Decode verifies a frame against the expected Meta and returns the
// payload. The returned slice aliases data.
func Decode(data []byte, want Meta) ([]byte, error) {
	payload, _, err := DecodeRange(data, want, want.Version)
	return payload, err
}

// DecodeRange verifies a frame like Decode but accepts any codec version
// in [minVersion, want.Version], returning the payload together with the
// version it was actually written under. This is how a codec that bumped
// its payload layout keeps reading frames from earlier releases: pass the
// oldest version it still decodes, then dispatch on the returned version.
func DecodeRange(data []byte, want Meta, minVersion uint32) ([]byte, uint32, error) {
	if len(data) < headerSize {
		return nil, 0, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(magic)
	version := binary.LittleEndian.Uint32(data[off:])
	off += 4
	kind := string(data[off : off+4])
	off += 4
	fingerprint := binary.LittleEndian.Uint64(data[off:])
	off += 8
	payloadLen := binary.LittleEndian.Uint64(data[off:])
	off += 8
	sum := binary.LittleEndian.Uint64(data[off:])
	off += 8
	if payloadLen != uint64(len(data)-off) {
		return nil, 0, fmt.Errorf("%w: header claims %d payload bytes, file has %d", ErrCorrupt, payloadLen, len(data)-off)
	}
	payload := data[off:]
	if crc64.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("%w: checksum failure", ErrCorrupt)
	}
	// Identity checks come after integrity checks so a truncated file is
	// reported as corrupt, not as a version skew.
	if kind != want.Kind {
		return nil, 0, fmt.Errorf("%w: kind %q, want %q", ErrMismatch, kind, want.Kind)
	}
	if version < minVersion || version > want.Version {
		return nil, 0, fmt.Errorf("%w: codec version %d, want %d..%d", ErrMismatch, version, minVersion, want.Version)
	}
	if fingerprint != want.Fingerprint {
		return nil, 0, fmt.Errorf("%w: graph fingerprint %016x, want %016x", ErrMismatch, fingerprint, want.Fingerprint)
	}
	return payload, version, nil
}

// EncodeTo streams a framed payload to w — the same bytes Encode
// produces, without materializing header+payload in one allocation. This
// is the transfer-endpoint writer: a replica streaming a warm sketch to a
// peer frames it exactly as Save would frame it to disk, so the wire
// format and the state-file format can never diverge.
func EncodeTo(w io.Writer, meta Meta, payload []byte) error {
	if len(meta.Kind) != 4 {
		return fmt.Errorf("persist: kind %q must be exactly 4 bytes", meta.Kind)
	}
	header := make([]byte, 0, headerSize)
	header = append(header, magic...)
	header = binary.LittleEndian.AppendUint32(header, meta.Version)
	header = append(header, meta.Kind...)
	header = binary.LittleEndian.AppendUint64(header, meta.Fingerprint)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(payload)))
	header = binary.LittleEndian.AppendUint64(header, crc64.Checksum(payload, crcTable))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// DecodeFrom reads one frame from r and verifies it like DecodeRange:
// header first, then exactly the payload length the header claims, capped
// at maxPayload (<= 0 means no cap). A short read anywhere is ErrCorrupt —
// a truncated network stream must be indistinguishable from a truncated
// file, and both fall back to a cold build. Returns the payload and the
// codec version it was written under.
func DecodeFrom(r io.Reader, want Meta, minVersion uint32, maxPayload int64) ([]byte, uint32, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, 0, fmt.Errorf("%w: short header read: %v", ErrCorrupt, err)
	}
	if string(header[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(header[len(magic)+4+4+8:])
	if maxPayload > 0 && payloadLen > uint64(maxPayload) {
		return nil, 0, fmt.Errorf("%w: header claims %d payload bytes, cap is %d", ErrCorrupt, payloadLen, maxPayload)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: short payload read: %v", ErrCorrupt, err)
	}
	// One trailing byte distinguishes "stream over" from "stream carries
	// trailing garbage"; DecodeRange would reject the latter for a byte
	// slice and the stream reader must be no laxer.
	var extra [1]byte
	if n, _ := r.Read(extra[:]); n != 0 {
		return nil, 0, fmt.Errorf("%w: trailing bytes after the framed payload", ErrCorrupt)
	}
	return DecodeRange(append(header, payload...), want, minVersion)
}

// Save atomically writes a framed payload: the frame goes to a temp file
// in the same directory, is synced, then renamed over path — a crash
// leaves either the old state or the new, never a torn file.
func Save(path string, meta Meta, payload []byte) error {
	framed, err := Encode(meta, payload)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads and verifies a framed payload. A missing file is reported
// via the underlying fs.ErrNotExist so callers can distinguish "cold" from
// "rejected".
func Load(path string, want Meta) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data, want)
}

// LoadRange is Load for codecs that still decode earlier payload versions:
// any version in [minVersion, want.Version] is accepted and returned
// alongside the payload. See DecodeRange.
func LoadRange(path string, want Meta, minVersion uint32) ([]byte, uint32, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return DecodeRange(data, want, minVersion)
}

// GraphFingerprint hashes everything a sampling distribution depends on —
// node count, group labels, and the full weighted adjacency — into a
// 64-bit identity (FNV-1a). Two graphs with the same fingerprint draw the
// same samples under the same seed, so persisted sketches keyed by it are
// interchangeable; a re-generated or edited graph changes the fingerprint
// and invalidates every file bound to the old one.
func GraphFingerprint(g *graph.Graph) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(g.N()))
	mix(uint64(g.M()))
	mix(uint64(g.NumGroups()))
	for v := 0; v < g.N(); v++ {
		mix(uint64(g.Group(graph.NodeID(v))))
	}
	offsets, targets, probs := g.OutCSR()
	for _, o := range offsets {
		mix(uint64(uint32(o)))
	}
	for _, t := range targets {
		mix(uint64(uint32(t)))
	}
	for _, p := range probs {
		mix(math.Float64bits(p))
	}
	return h
}

// VersionedFingerprint binds a graph fingerprint to a registry version, for
// graphs that mutate in place over their lifetime. Two successive versions
// of a dynamic graph can collide on GraphFingerprint alone only by applying
// a delta and its exact inverse, but the version counter still moves — so
// frames written under the old version must not satisfy readers at the new
// one, and vice versa. Mixing the version through one more FNV round keeps
// the static case untouched: version 0 is reserved for immutable graphs and
// returns fp unchanged.
func VersionedFingerprint(fp, version uint64) uint64 {
	if version == 0 {
		return fp
	}
	const prime64 = 1099511628211
	h := fp
	for i := 0; i < 8; i++ {
		h ^= version & 0xff
		h *= prime64
		version >>= 8
	}
	return h
}
