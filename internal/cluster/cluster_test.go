package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("graph|key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ring owners disagree for %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
		ao, bo := a.Order(key), b.Order(key)
		if len(ao) != 3 || len(bo) != 3 {
			t.Fatalf("Order(%q) should cover all 3 members, got %v / %v", key, ao, bo)
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("failover orders disagree for %q: %v vs %v", key, ao, bo)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys; ring badly unbalanced: %v", m, 100*frac, counts)
		}
	}
}

// Removing a member must only move that member's keys: everyone else's
// ownership is stable (the point of consistent hashing).
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	reduced := NewRing([]string{"http://a", "http://b"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if o := full.Owner(key); o != "http://c" && reduced.Owner(key) != o {
			t.Fatalf("key %q moved from %q to %q though its owner never left", key, o, reduced.Owner(key))
		}
	}
}

func TestCandidatesSkipDownPeersButNeverSelf(t *testing.T) {
	c := New(Config{Self: "http://self", Peers: []string{"http://p1", "http://p2"}})
	key := "some|key"
	if got := len(c.Candidates(key)); got != 3 {
		t.Fatalf("all alive: want 3 candidates, got %d", got)
	}
	c.Monitor().MarkDown("http://p1")
	c.Monitor().MarkDown("http://p2")
	cands := c.Candidates(key)
	if len(cands) != 1 || cands[0] != "http://self" {
		t.Fatalf("all peers down: want [self], got %v", cands)
	}
	if got := c.Stats().PeersUp; got != 0 {
		t.Fatalf("peers_up = %d with every peer down", got)
	}
	if fo := c.FetchOrder(key); len(fo) != 0 {
		t.Fatalf("fetch order should exclude self and down peers, got %v", fo)
	}
}

func TestMonitorProbeEjectsAndReadmits(t *testing.T) {
	healthy := true
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if healthy {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	m := NewMonitor([]string{ts.URL}, time.Hour, ts.Client())
	if !m.Alive(ts.URL) {
		t.Fatal("peers must start alive")
	}
	healthy = false
	m.ProbeAll(context.Background())
	if m.Alive(ts.URL) {
		t.Fatal("failed probe did not eject the peer")
	}
	healthy = true
	m.ProbeAll(context.Background())
	if !m.Alive(ts.URL) {
		t.Fatal("successful probe did not readmit the peer")
	}
	if m.UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1", m.UpCount())
	}
}

func TestFetchSketchTransportFailureMarksDown(t *testing.T) {
	// A listener that is already closed: instant connection refused.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := ts.URL
	ts.Close()

	c := New(Config{Self: "http://self", Peers: []string{dead}})
	if _, err := c.FetchSketch(context.Background(), dead, "k"); err == nil {
		t.Fatal("fetch from a dead peer succeeded")
	}
	if c.Monitor().Alive(dead) {
		t.Fatal("transport failure did not mark the peer down")
	}
}

func TestFetchSketchStatuses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case SketchPath("have"):
			w.Write([]byte("FRAMEBYTES"))
		case SketchPath("miss"):
			w.WriteHeader(http.StatusNotFound)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	c := New(Config{Self: "http://self", Peers: []string{ts.URL}, Client: ts.Client()})

	data, err := c.FetchSketch(context.Background(), ts.URL, "have")
	if err != nil || string(data) != "FRAMEBYTES" {
		t.Fatalf("fetch(have) = %q, %v", data, err)
	}
	if _, err := c.FetchSketch(context.Background(), ts.URL, "miss"); err != ErrNotFound {
		t.Fatalf("fetch(miss) err = %v, want ErrNotFound", err)
	}
	if _, err := c.FetchSketch(context.Background(), ts.URL, "boom"); err == nil || err == ErrNotFound {
		t.Fatalf("fetch(boom) err = %v, want a status error", err)
	}
	if !c.Monitor().Alive(ts.URL) {
		t.Fatal("HTTP-level errors must not eject a healthy peer")
	}
}
