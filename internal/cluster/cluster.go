// Package cluster implements the building blocks of sharded multi-replica
// serving: a consistent-hash ring that assigns (graph, spec-key) ownership
// to replicas, a health monitor that ejects unreachable replicas from
// routing and readmits them when they recover, and a small HTTP client for
// the two cross-replica exchanges — proxying a query to its owner and
// fetching a warm sketch frame (internal/persist wire format) so a cold
// replica never rebuilds what a peer already holds.
//
// Layering: cluster knows about replica base URLs, opaque routing keys and
// raw frame bytes. What a key means, how a frame decodes, and which
// endpoint to proxy are the concern of internal/server; cluster only
// answers "who owns this key", "who is alive", and "move these bytes".
package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultVirtualNodes is how many ring points each member contributes.
// More points smooth the key distribution across members; 64 keeps the
// worst-case imbalance under a few percent for small fleets while the
// ring stays tiny.
const DefaultVirtualNodes = 64

// fnv1a hashes a string (FNV-1a, 64-bit, with a splitmix64 finalizer) —
// the ring's only hash. FNV alone diffuses trailing characters poorly,
// and vnode labels differ only in their suffix, so the finalizer is what
// keeps ring points uniformly spread. Deterministic across processes, so
// every replica given the same member list computes the same ownership.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over member URLs. Ownership
// moves only when the member list itself changes; a member going down is
// handled by skipping it in Order, not by rebuilding the ring — so a
// flapping replica never reshuffles keys among the healthy ones.
type Ring struct {
	members []string
	points  []point
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (<= 0 means DefaultVirtualNodes). Members are deduplicated; order does
// not matter — two replicas given the same set in any order agree on
// every key's owner.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: fnv1a(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the deduplicated member list (sorted).
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key — the first ring point at or after
// the key's hash. Empty string for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.search(key)].member]
}

// search finds the index of the first point at or clockwise-after key.
func (r *Ring) search(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Order returns every member in ring-successor order starting at key's
// owner, deduplicated. This is the failover order: if the owner is down,
// the key falls to the next distinct member clockwise, and so on — the
// same sequence every replica computes.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Stats snapshots the cluster counters for /v1/stats. PeersUp counts
// peer replicas currently believed reachable (self excluded); PeersKnown
// the configured peer count.
type Stats struct {
	PeersKnown      int   `json:"peers_known"`
	PeersUp         int   `json:"peers_up"`
	Proxied         int64 `json:"proxied"`
	Failovers       int64 `json:"failovers"`
	PeerFetches     int64 `json:"peer_fetches"`
	PeerFetchBytes  int64 `json:"peer_fetch_bytes"`
	PeerFetchErrors int64 `json:"peer_fetch_errors"`
	UpdateFanouts   int64 `json:"update_fanouts"`
	Probes          int64 `json:"probes"`
}

// Cluster is one replica's view of the fleet: the ring over every member
// (self included unless self is empty, as in a pure router), the health
// monitor over the peers, and the cross-replica counters. Construct with
// New; the zero value is not usable.
type Cluster struct {
	self  string // advertised base URL of this replica; "" for routers
	peers []string
	ring  *Ring
	mon   *Monitor

	// Counters, surfaced in /v1/stats as the cluster_* family.
	Proxied         atomic.Int64 // requests forwarded to their owning replica
	Failovers       atomic.Int64 // candidates skipped because a replica was down/unreachable
	PeerFetches     atomic.Int64 // sketches fetched from a peer instead of built
	PeerFetchBytes  atomic.Int64 // frame bytes transferred by those fetches
	PeerFetchErrors atomic.Int64 // corrupt/mismatched/failed peer frames (degraded to cold build)
	UpdateFanouts   atomic.Int64 // graph-update batches forwarded to peers
}

// Config parametrizes New. The zero value of optional fields picks the
// documented defaults.
type Config struct {
	// Self is this replica's advertised base URL (what peers dial).
	// Empty means the process is a pure router: it routes and proxies but
	// owns no keys itself.
	Self string
	// Peers are the other replicas' base URLs.
	Peers []string
	// VirtualNodes per ring member; <= 0 means DefaultVirtualNodes.
	VirtualNodes int
	// ProbeInterval is the health-probe period; <= 0 means 2s.
	ProbeInterval time.Duration
	// Client issues every cross-replica request (probes, fetches,
	// proxies); nil means a client with a 30s timeout. Probes always use
	// a short per-probe timeout regardless.
	Client *http.Client
}

// New builds a Cluster. The ring spans self (when non-empty) plus every
// peer, so all replicas given consistent flags agree on ownership.
func New(cfg Config) *Cluster {
	members := append([]string(nil), cfg.Peers...)
	if cfg.Self != "" {
		members = append(members, cfg.Self)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Cluster{
		self:  cfg.Self,
		peers: dedup(cfg.Peers),
		ring:  NewRing(members, cfg.VirtualNodes),
		mon:   NewMonitor(dedup(cfg.Peers), cfg.ProbeInterval, client),
	}
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Self returns this replica's advertised URL ("" for routers).
func (c *Cluster) Self() string { return c.self }

// Peers returns the configured peer URLs (sorted, deduplicated).
func (c *Cluster) Peers() []string { return c.peers }

// Monitor exposes the health monitor (probe control, liveness marks).
func (c *Cluster) Monitor() *Monitor { return c.mon }

// Owner returns the ring owner for key, dead or alive. Routing should use
// Candidates, which folds health in; Owner is for introspection.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Candidates returns the members to try for key, in ring-failover order,
// with ejected (down) peers skipped. Self, when a member, is never
// skipped — a replica can always serve its own traffic. The down-peer
// skips are NOT counted as failovers here: a failover is an attempt that
// failed, counted by the caller when a dial actually fails, while an
// ejected peer costs nothing.
func (c *Cluster) Candidates(key string) []string {
	order := c.ring.Order(key)
	out := make([]string, 0, len(order))
	for _, m := range order {
		if m != c.self && !c.mon.Alive(m) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// FetchOrder returns the peers to ask for a sketch key: ring order from
// the key with self excluded and down peers skipped — the owner first,
// because the owner is where routing concentrates that key's traffic and
// therefore where its sketch is warmest.
func (c *Cluster) FetchOrder(key string) []string {
	order := c.ring.Order(key)
	out := make([]string, 0, len(order))
	for _, m := range order {
		if m == c.self || !c.mon.Alive(m) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// Stats snapshots every counter plus the monitor's liveness view.
func (c *Cluster) Stats() Stats {
	return Stats{
		PeersKnown:      len(c.peers),
		PeersUp:         c.mon.UpCount(),
		Proxied:         c.Proxied.Load(),
		Failovers:       c.Failovers.Load(),
		PeerFetches:     c.PeerFetches.Load(),
		PeerFetchBytes:  c.PeerFetchBytes.Load(),
		PeerFetchErrors: c.PeerFetchErrors.Load(),
		UpdateFanouts:   c.UpdateFanouts.Load(),
		Probes:          c.mon.Probes.Load(),
	}
}
