package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// ErrNotFound reports that a peer answered a sketch fetch with 404: the
// peer is healthy but does not hold the frame. Callers move on to the
// next candidate (or a cold build) without counting an error.
var ErrNotFound = errors.New("cluster: peer does not hold the sketch")

// maxFrameBytes bounds one fetched sketch frame. Frames on real
// workloads are megabytes; a gigabyte means a confused or malicious
// peer, and the fetch degrades to a cold build like any corrupt frame.
const maxFrameBytes = 1 << 30

// SketchPath returns the transfer-endpoint path for a wire key, shared
// by the server (route registration) and the client (fetch) so the two
// can never drift.
func SketchPath(key string) string {
	return "/v1/sketches/" + url.PathEscape(key)
}

// FetchSketch downloads the persist frame for key from peer. The bytes
// are returned unvalidated — the caller must verify the frame against
// its own graph fingerprint before decoding, exactly as it would a state
// file; a transferred frame can make a request faster, never wrong.
func (c *Cluster) FetchSketch(ctx context.Context, peer, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(peer, "/")+SketchPath(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.mon.client.Do(req)
	if err != nil {
		// Transport failure: eject the peer so the next request skips it.
		// Unless the caller's own context died — a client disconnect says
		// nothing about the peer's health.
		if ctx.Err() == nil {
			c.mon.MarkDown(peer)
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s answered HTTP %d for sketch %q", peer, resp.StatusCode, key)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxFrameBytes {
		return nil, fmt.Errorf("cluster: sketch frame from %s exceeds %d bytes", peer, maxFrameBytes)
	}
	return data, nil
}

// Forward replays one request (method, path incl. query, body) against a
// peer. A transport-level failure marks the peer down and is returned
// for the caller to fail over; any HTTP response — errors included — is
// returned verbatim for pass-through, because a 409 or 503 from the
// owner is an answer, not a reason to ask someone else. Extra headers
// (loop guards, fanout marks) ride along via header.
func (c *Cluster) Forward(ctx context.Context, peer, method, path string, body []byte, header http.Header) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(peer, "/")+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.mon.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.mon.MarkDown(peer)
		}
		return nil, err
	}
	return resp, nil
}

// CopyResponse streams a forwarded response to the client: status,
// content type, then the body with per-chunk flushing so streamed
// payloads (the jobs SSE trace) arrive live through the proxy.
func CopyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
