package cluster

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultProbeInterval is the health-probe period when none is
// configured. Short enough that a recovered replica rejoins routing
// within a couple of seconds, long enough that probes are noise.
const DefaultProbeInterval = 2 * time.Second

// probeTimeout bounds one /healthz probe. A peer that cannot answer a
// trivial GET in this window is not a peer worth routing to.
const probeTimeout = 2 * time.Second

// Monitor tracks peer liveness. Two inputs move a peer's state: periodic
// /healthz probes (Run), and MarkDown calls from request paths that hit a
// transport failure — so a dead peer is ejected on the first failed
// request, not a probe period later. Peers start alive: at boot the fleet
// is assumed healthy and the first failed dial corrects the optimism
// immediately.
type Monitor struct {
	peers    []string
	interval time.Duration
	client   *http.Client

	Probes atomic.Int64 // completed probe rounds

	mu   sync.Mutex
	down map[string]bool
}

// NewMonitor builds a monitor over peers probing every interval (<= 0
// means DefaultProbeInterval) with client.
func NewMonitor(peers []string, interval time.Duration, client *http.Client) *Monitor {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	return &Monitor{
		peers:    peers,
		interval: interval,
		client:   client,
		down:     map[string]bool{},
	}
}

// Alive reports whether peer is currently routable. Unknown peers are
// alive — the monitor only tracks the configured fleet, and a caller
// asking about self should route to it.
func (m *Monitor) Alive(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.down[peer]
}

// MarkDown ejects a peer immediately (called on request-path transport
// failures). The next successful probe readmits it.
func (m *Monitor) MarkDown(peer string) {
	m.mu.Lock()
	m.down[peer] = true
	m.mu.Unlock()
}

// UpCount counts peers currently alive.
func (m *Monitor) UpCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.peers {
		if !m.down[p] {
			n++
		}
	}
	return n
}

// ProbeAll probes every peer's /healthz once, updating liveness: a 200
// readmits, anything else (including transport failure) ejects.
func (m *Monitor) ProbeAll(ctx context.Context) {
	for _, p := range m.peers {
		alive := m.probe(ctx, p)
		m.mu.Lock()
		m.down[p] = !alive
		m.mu.Unlock()
	}
	m.Probes.Add(1)
}

// probe is one /healthz round trip.
func (m *Monitor) probe(ctx context.Context, peer string) bool {
	pctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, strings.TrimRight(peer, "/")+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Run probes every interval until ctx is cancelled. The daemon starts it
// once alongside the HTTP server; tests drive ProbeAll directly instead.
func (m *Monitor) Run(ctx context.Context) {
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.ProbeAll(ctx)
		}
	}
}
