// Package datasets constructs the stand-ins for the paper's real-world
// datasets. The originals (Rice-Facebook, Instagram-Activities, the
// Facebook-SNAP ego network) are not redistributable and this module is
// offline, so each stand-in is a random graph calibrated to the *published*
// node, edge and group statistics — exact group sizes and exact per-block
// edge counts — which are precisely the structural quantities the paper
// identifies as driving disparity (group size imbalance, within-group
// density, across-group sparsity). See DESIGN.md §3 for the substitution
// rationale.
//
// In the layering, datasets sits beside internal/generate as a graph
// source: both produce immutable *graph.Graph values consumed by every
// layer above — estimators, solvers, the experiment harness, and the
// serving layer's graph registry (internal/server).
package datasets

import (
	"fmt"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// blockSpec plants an exact number of undirected edges between two node
// ranges (or inside one, when A == B).
type blockSpec struct {
	a, b  int // block indices
	count int // undirected edges to plant
}

// buildBlockGraph creates a graph with the given block sizes and exact
// undirected edge counts per block pair, all with activation probability
// pAct. Group label = block index.
func buildBlockGraph(sizes []int, specs []blockSpec, pAct float64, seed int64) (*graph.Graph, error) {
	n := 0
	starts := make([]int, len(sizes))
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("datasets: block %d has non-positive size %d", i, s)
		}
		starts[i] = n
		n += s
	}
	b := graph.NewBuilder(n)
	labels := make([]int, n)
	for i, s := range sizes {
		for v := 0; v < s; v++ {
			labels[starts[i]+v] = i
		}
	}
	b.SetGroups(labels)

	rng := xrand.New(seed)
	type pairKey struct{ u, v int32 }
	seen := map[pairKey]bool{}
	for _, spec := range specs {
		if spec.a < 0 || spec.a >= len(sizes) || spec.b < 0 || spec.b >= len(sizes) {
			return nil, fmt.Errorf("datasets: block spec (%d,%d) out of range", spec.a, spec.b)
		}
		var maxPairs int
		if spec.a == spec.b {
			maxPairs = sizes[spec.a] * (sizes[spec.a] - 1) / 2
		} else {
			maxPairs = sizes[spec.a] * sizes[spec.b]
		}
		if spec.count > maxPairs {
			return nil, fmt.Errorf("datasets: %d edges requested for block pair (%d,%d) with only %d pairs",
				spec.count, spec.a, spec.b, maxPairs)
		}
		placed := 0
		for placed < spec.count {
			u := int32(starts[spec.a] + rng.Intn(sizes[spec.a]))
			v := int32(starts[spec.b] + rng.Intn(sizes[spec.b]))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := pairKey{u, v}
			if seen[key] {
				continue
			}
			seen[key] = true
			b.AddUndirected(u, v, pAct)
			placed++
		}
	}
	return b.Build()
}

// RiceFacebook returns the Rice-Facebook stand-in: 1205 students in four
// age groups with 42443 undirected edges. The published statistics pin
// group V1 (ages 18–19, the paper's maximum-disparity pair member) at 97
// nodes/513 within-group edges, V2 (age 20) at 344 nodes/7441 within-group
// edges, and 3350 edges between them; the remaining two age blocks and
// edge mass are filled with plausible homophilous counts so the totals
// match the published 1205/42443. pAct is the uniform activation
// probability (the paper uses 0.01 on this dataset).
func RiceFacebook(pAct float64, seed int64) (*graph.Graph, error) {
	sizes := []int{97, 344, 382, 382}
	specs := []blockSpec{
		{0, 0, 513},  // published: within ages 18-19
		{1, 1, 7441}, // published: within age 20
		{0, 1, 3350}, // published: across V1-V2
		{2, 2, 9500}, // filled: within age 21
		{3, 3, 7000}, // filled: within age 22
		{1, 2, 5000}, // filled: adjacent ages mix more
		{2, 3, 4000}, // filled
		{1, 3, 3500}, // filled
		{0, 2, 1500}, // filled: distant ages mix less
		{0, 3, 639},  // filled: remainder so the total is exactly 42443
	}
	total := 0
	for _, s := range specs {
		total += s.count
	}
	if total != 42443 {
		return nil, fmt.Errorf("datasets: Rice edge budget %d != 42443", total)
	}
	return buildBlockGraph(sizes, specs, pAct, seed)
}

// Instagram returns the Instagram-Activities stand-in scaled by scale in
// (0, 1]: at scale 1 it has the published 553628 nodes with 45.5% in the
// male group, 179668 within-male, 201083 within-female and 136039
// across-group undirected edges. (The published per-block counts sum to
// 516790, slightly below the paper's 652830 total — the discrepancy is in
// the source; we keep the per-block counts, which are what matter for
// group structure.) Scaling multiplies node and edge counts alike, which
// preserves average degree. pAct is the uniform activation probability
// (the paper uses 0.06).
func Instagram(scale, pAct float64, seed int64) (*graph.Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datasets: scale %v outside (0,1]", scale)
	}
	n := int(553628*scale + 0.5)
	males := int(float64(n)*0.455 + 0.5)
	females := n - males
	sizes := []int{males, females}
	specs := []blockSpec{
		{0, 0, int(179668*scale + 0.5)},
		{1, 1, int(201083*scale + 0.5)},
		{0, 1, int(136039*scale + 0.5)},
	}
	return buildBlockGraph(sizes, specs, pAct, seed)
}

// FacebookSnap returns the Facebook-SNAP ego-network stand-in: 4039 nodes
// and 88234 undirected edges organized in five planted communities with
// the block sizes the paper reports from spectral clustering (546, 1404,
// 208, 788, 1093). About 92% of edges fall within blocks, allocated
// proportionally to block pair capacity, mirroring the strongly modular
// structure of ego networks. Group labels are the planted blocks; use
// Topological to re-derive them from structure alone as the paper does.
func FacebookSnap(pAct float64, seed int64) (*graph.Graph, error) {
	sizes := []int{546, 1404, 208, 788, 1093}
	const totalEdges = 88234
	withinBudget := totalEdges * 92 / 100

	// Within-block allocation proportional to C(size, 2).
	capTotal := 0.0
	caps := make([]float64, len(sizes))
	for i, s := range sizes {
		caps[i] = float64(s) * float64(s-1) / 2
		capTotal += caps[i]
	}
	var specs []blockSpec
	within := 0
	for i := range sizes {
		c := int(float64(withinBudget) * caps[i] / capTotal)
		specs = append(specs, blockSpec{i, i, c})
		within += c
	}
	// Across-block allocation proportional to size products.
	acrossBudget := totalEdges - within
	prodTotal := 0.0
	type pr struct {
		a, b int
		p    float64
	}
	var pairs []pr
	for a := 0; a < len(sizes); a++ {
		for b := a + 1; b < len(sizes); b++ {
			p := float64(sizes[a]) * float64(sizes[b])
			pairs = append(pairs, pr{a, b, p})
			prodTotal += p
		}
	}
	placed := 0
	for i, p := range pairs {
		c := int(float64(acrossBudget) * p.p / prodTotal)
		if i == len(pairs)-1 {
			c = acrossBudget - placed // exact total
		}
		specs = append(specs, blockSpec{p.a, p.b, c})
		placed += c
	}
	return buildBlockGraph(sizes, specs, pAct, seed)
}
