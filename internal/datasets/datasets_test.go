package datasets

import (
	"testing"

	"fairtcim/internal/community"
	"fairtcim/internal/graph"
)

func TestRiceFacebookPublishedStats(t *testing.T) {
	g, err := RiceFacebook(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1205 {
		t.Fatalf("N = %d, want 1205", g.N())
	}
	if g.M() != 2*42443 {
		t.Fatalf("M = %d, want %d directed edges", g.M(), 2*42443)
	}
	sizes := g.GroupSizes()
	if sizes[0] != 97 || sizes[1] != 344 {
		t.Fatalf("V1/V2 sizes = %v, want 97/344", sizes[:2])
	}
	s := g.ComputeStats()
	if s.WithinEdges[0] != 2*513 {
		t.Fatalf("within-V1 = %d directed, want %d", s.WithinEdges[0], 2*513)
	}
	if s.WithinEdges[1] != 2*7441 {
		t.Fatalf("within-V2 = %d directed, want %d", s.WithinEdges[1], 2*7441)
	}
	// V1-V2 across edges: count directly.
	v1v2 := 0
	for v := 0; v < g.N(); v++ {
		if g.Group(graph.NodeID(v)) != 0 {
			continue
		}
		for _, to := range g.OutNeighbors(graph.NodeID(v)) {
			if g.Group(to) == 1 {
				v1v2++
			}
		}
	}
	if v1v2 != 3350 {
		t.Fatalf("V1-V2 edges = %d, want 3350", v1v2)
	}
	// The paper's disparity mechanism: V2 is much denser per capita than V1.
	d1 := float64(s.WithinEdges[0]) / float64(sizes[0])
	d2 := float64(s.WithinEdges[1]) / float64(sizes[1])
	if d2 <= 2*d1 {
		t.Fatalf("V2 within-density %v should far exceed V1 %v", d2, d1)
	}
}

func TestRiceFacebookDeterministic(t *testing.T) {
	a, err := RiceFacebook(0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RiceFacebook(0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("not deterministic")
	}
	for v := 0; v < a.N(); v++ {
		if a.OutDegree(graph.NodeID(v)) != b.OutDegree(graph.NodeID(v)) {
			t.Fatalf("degree differs at %d", v)
		}
	}
}

func TestInstagramScaled(t *testing.T) {
	g, err := Instagram(0.02, 0.06, 3)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.02
	wantN := int(553628*scale + 0.5)
	if g.N() != wantN {
		t.Fatalf("N = %d, want %d", g.N(), wantN)
	}
	sizes := g.GroupSizes()
	maleFrac := float64(sizes[0]) / float64(g.N())
	if maleFrac < 0.45 || maleFrac > 0.46 {
		t.Fatalf("male fraction %v", maleFrac)
	}
	wantEdges := int(179668*scale+0.5) + int(201083*scale+0.5) + int(136039*scale+0.5)
	if g.M() != 2*wantEdges {
		t.Fatalf("M = %d, want %d", g.M(), 2*wantEdges)
	}
}

func TestInstagramValidation(t *testing.T) {
	if _, err := Instagram(0, 0.06, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := Instagram(1.2, 0.06, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestFacebookSnapShape(t *testing.T) {
	g, err := FacebookSnap(0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4039 {
		t.Fatalf("N = %d, want 4039", g.N())
	}
	if g.M() != 2*88234 {
		t.Fatalf("M = %d, want %d", g.M(), 2*88234)
	}
	want := []int{546, 1404, 208, 788, 1093}
	sizes := g.GroupSizes()
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("block sizes = %v, want %v", sizes, want)
		}
	}
	// Strong modularity of the planted structure.
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = g.Group(graph.NodeID(v))
	}
	if q := community.Modularity(g, labels); q < 0.4 {
		t.Fatalf("planted modularity %v too weak", q)
	}
}

func TestFacebookSnapTopologicalGroups(t *testing.T) {
	// The paper derives the 5 groups by spectral clustering; our detector
	// should substantially recover the planted blocks.
	g, err := FacebookSnap(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := community.SpectralClusters(g, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	regrouped, err := g.WithGroups(labels)
	if err != nil {
		t.Fatal(err)
	}
	if regrouped.NumGroups() != 5 {
		t.Fatalf("topological groups = %d", regrouped.NumGroups())
	}
	// Spectral labels should agree with planted blocks far better than
	// chance: compare modularity.
	planted := make([]int, g.N())
	for v := range planted {
		planted[v] = g.Group(graph.NodeID(v))
	}
	qSpectral := community.Modularity(g, labels)
	if qSpectral < 0.3 {
		t.Fatalf("spectral modularity %v", qSpectral)
	}
}

func TestBuildBlockGraphErrors(t *testing.T) {
	if _, err := buildBlockGraph([]int{0}, nil, 0.1, 1); err == nil {
		t.Fatal("zero-size block accepted")
	}
	if _, err := buildBlockGraph([]int{3}, []blockSpec{{0, 0, 100}}, 0.1, 1); err == nil {
		t.Fatal("over-capacity edge request accepted")
	}
	if _, err := buildBlockGraph([]int{3}, []blockSpec{{0, 5, 1}}, 0.1, 1); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}
