package cascade

import (
	"testing"

	"fairtcim/internal/graph"
)

func TestWorldsTouchedByArcs(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)    // live in every IC world
	b.AddEdge(1, 2, 0.5)  // live in some
	b.AddEdge(2, 3, 0.25) //
	g := b.MustBuild()
	worlds := SampleWorlds(g, IC, 64, 9, 2)

	if got := WorldsTouchedByArcs(worlds, []graph.Arc{{From: 0, To: 1}}); got != len(worlds) {
		t.Fatalf("p=1 arc touched %d of %d worlds", got, len(worlds))
	}
	half := WorldsTouchedByArcs(worlds, []graph.Arc{{From: 1, To: 2}})
	if half == 0 || half == len(worlds) {
		t.Fatalf("p=0.5 arc touched %d of %d worlds, want a strict subset", half, len(worlds))
	}
	// An arc that never existed in the sampled graph is live nowhere.
	if got := WorldsTouchedByArcs(worlds, []graph.Arc{{From: 3, To: 0}}); got != 0 {
		t.Fatalf("nonexistent arc touched %d worlds", got)
	}
	// Out-of-range sources (node count grew elsewhere) are ignored.
	if got := WorldsTouchedByArcs(worlds, []graph.Arc{{From: 99, To: 0}}); got != 0 {
		t.Fatalf("out-of-range arc touched %d worlds", got)
	}
	// Multi-arc batches count each world once.
	both := WorldsTouchedByArcs(worlds, []graph.Arc{{From: 0, To: 1}, {From: 1, To: 2}})
	if both != len(worlds) {
		t.Fatalf("batch touched %d, want all %d", both, len(worlds))
	}
	if got := WorldsTouchedByArcs(nil, []graph.Arc{{From: 0, To: 1}}); got != 0 {
		t.Fatalf("nil worlds touched %d", got)
	}
	if got := WorldsTouchedByArcs(worlds, nil); got != 0 {
		t.Fatalf("nil arcs touched %d", got)
	}
}
