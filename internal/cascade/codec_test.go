package cascade

import (
	"errors"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

// encodeWorldsV1 re-emits the original version-1 payload layout (verbatim
// CSR arrays) so tests can verify pre-bump frames still decode.
func encodeWorldsV1(worlds []*World) []byte {
	var e persist.Enc
	e.U64(uint64(len(worlds)))
	for _, w := range worlds {
		e.I32s(w.offsets)
		e.I32s(w.targets)
	}
	return e.Bytes()
}

// worldsEqual fails the test unless both world sets are structurally
// identical — every node's surviving out-neighborhood matches in every
// world — which makes forward-MC estimates over them byte-identical.
func worldsEqual(t *testing.T, tag string, worlds, back []*World, n int) {
	t.Helper()
	if len(back) != len(worlds) {
		t.Fatalf("%s: %d worlds, want %d", tag, len(back), len(worlds))
	}
	for i, w := range worlds {
		if back[i].N() != w.N() || back[i].M() != w.M() {
			t.Fatalf("%s world %d: shape %d/%d, want %d/%d", tag, i, back[i].N(), back[i].M(), w.N(), w.M())
		}
		for v := 0; v < n; v++ {
			a, b := w.Out(int32(v)), back[i].Out(int32(v))
			if len(a) != len(b) {
				t.Fatalf("%s world %d node %d: %v vs %v", tag, i, v, a, b)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s world %d node %d: %v vs %v", tag, i, v, a, b)
				}
			}
		}
	}
}

func TestWorldCodecRoundTrip(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []Model{IC, LT} {
		worlds := SampleWorlds(g, model, 20, 9, 2)
		back, err := DecodeWorlds(EncodeWorlds(worlds), g.N())
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		worldsEqual(t, model.String(), worlds, back, g.N())
	}
}

// TestWorldCodecCrossVersion: version-1 world payloads (verbatim CSR) must
// keep decoding under the current codec, payload- and frame-level, and the
// version-2 stream must actually be at least twice as small.
func TestWorldCodecCrossVersion(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(6))
	if err != nil {
		t.Fatal(err)
	}
	worlds := SampleWorlds(g, IC, 30, 13, 2)
	v1 := encodeWorldsV1(worlds)
	v2 := EncodeWorlds(worlds)

	back, err := DecodeWorldsVersion(1, v1, g.N())
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	worldsEqual(t, "v1", worlds, back, g.N())

	if len(v2)*2 > len(v1) {
		t.Fatalf("v2 payload %d bytes, not ≥2x smaller than v1's %d", len(v2), len(v1))
	}

	fp := persist.GraphFingerprint(g)
	framed, err := persist.Encode(persist.Meta{Kind: WorldCodecKind, Version: 1, Fingerprint: fp}, v1)
	if err != nil {
		t.Fatal(err)
	}
	want := persist.Meta{Kind: WorldCodecKind, Version: WorldCodecVersion, Fingerprint: fp}
	payload, version, err := persist.DecodeRange(framed, want, WorldCodecMinVersion)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	back, err = DecodeWorldsVersion(version, payload, g.N())
	if err != nil {
		t.Fatal(err)
	}
	worldsEqual(t, "v1-frame", worlds, back, g.N())

	if _, err := DecodeWorldsVersion(WorldCodecVersion+1, v2, g.N()); err == nil {
		t.Error("future codec version accepted")
	}
}

func TestWorldCodecRejectsMalformedPayloads(t *testing.T) {
	g := generate.TwoStars()
	worlds := SampleWorlds(g, IC, 5, 1, 1)
	good := EncodeWorlds(worlds)

	if _, err := DecodeWorlds(good[:len(good)-3], g.N()); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("truncated payload: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodeWorlds(append(append([]byte(nil), good...), 0), g.N()); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("trailing bytes: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodeWorlds(good, g.N()+1); err == nil {
		t.Error("wrong node count accepted")
	}

	// v2: a delta stream decoding to a target outside [0,n).
	var oob persist.Enc
	oob.Uvarint(1)  // one world
	oob.Uvarint(3)  // 3 nodes
	oob.Uvarint(1)  // node 0: one edge...
	oob.Uvarint(0)  // node 1: none
	oob.Uvarint(0)  // node 2: none
	oob.Svarint(99) // ...to a node that does not exist
	if _, err := DecodeWorlds(oob.Bytes(), 3); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("out-of-range v2 target: got %v, want ErrCorrupt", err)
	}

	// v2: a degree claiming more edges than the payload can hold.
	var huge persist.Enc
	huge.Uvarint(1)
	huge.Uvarint(3)
	huge.Uvarint(1 << 40)
	if _, err := DecodeWorlds(huge.Bytes(), 3); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("oversized v2 degree: got %v, want ErrCorrupt", err)
	}

	// v1 layout violations still caught by the v1 decoder.
	var e persist.Enc
	e.U64(1)
	e.I32s([]int32{0, 1, 1, 1}) // 3 nodes, one edge from node 0
	e.I32s([]int32{99})         // ...to a node that does not exist
	if _, err := DecodeWorldsVersion(1, e.Bytes(), 3); err == nil {
		t.Error("out-of-range v1 target accepted")
	}

	var m persist.Enc
	m.U64(1)
	m.I32s([]int32{0, 2, 1, 2})
	m.I32s([]int32{0, 1})
	if _, err := DecodeWorldsVersion(1, m.Bytes(), 3); err == nil {
		t.Error("non-monotone v1 offsets accepted")
	}

	var d persist.Enc
	d.U64(1)
	d.I32s([]int32{0, 1, 1, 2})
	d.I32s([]int32{0})
	if _, err := DecodeWorldsVersion(1, d.Bytes(), 3); err == nil {
		t.Error("v1 offset/target length mismatch accepted")
	}
}

// FuzzDecodeWorlds throws arbitrary bytes at both decoder generations:
// either a clean error comes back or a world set whose every edge is in
// range — never a panic, never a traversal hazard.
func FuzzDecodeWorlds(f *testing.F) {
	g := generate.TwoStars()
	worlds := SampleWorlds(g, IC, 3, 2, 1)
	v2 := EncodeWorlds(worlds)
	v1 := encodeWorldsV1(worlds)
	f.Add(uint32(2), v2)
	f.Add(uint32(1), v1)
	f.Add(uint32(2), v2[:len(v2)/2])
	flipped := append([]byte(nil), v2...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(uint32(2), flipped)
	f.Add(uint32(1), []byte{})
	f.Fuzz(func(t *testing.T, version uint32, payload []byte) {
		back, err := DecodeWorldsVersion(version%3, payload, g.N())
		if err != nil {
			return
		}
		for i, w := range back {
			for v := 0; v < w.N(); v++ {
				for _, to := range w.Out(graph.NodeID(v)) {
					if to < 0 || int(to) >= w.N() {
						t.Fatalf("world %d: accepted edge %d->%d out of range", i, v, to)
					}
				}
			}
		}
	})
}
