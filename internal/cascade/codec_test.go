package cascade

import (
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/persist"
)

// TestWorldCodecRoundTrip: decoded worlds are structurally identical to
// the saved ones — every node's surviving out-neighborhood matches in
// every world — so forward-MC estimates over them are byte-identical.
func TestWorldCodecRoundTrip(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []Model{IC, LT} {
		worlds := SampleWorlds(g, model, 20, 9, 2)
		back, err := DecodeWorlds(EncodeWorlds(worlds), g.N())
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if len(back) != len(worlds) {
			t.Fatalf("%v: %d worlds, want %d", model, len(back), len(worlds))
		}
		for i, w := range worlds {
			if back[i].N() != w.N() || back[i].M() != w.M() {
				t.Fatalf("%v world %d: shape %d/%d, want %d/%d", model, i, back[i].N(), back[i].M(), w.N(), w.M())
			}
			for v := 0; v < g.N(); v++ {
				a, b := w.Out(int32(v)), back[i].Out(int32(v))
				if len(a) != len(b) {
					t.Fatalf("%v world %d node %d: %v vs %v", model, i, v, a, b)
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("%v world %d node %d: %v vs %v", model, i, v, a, b)
					}
				}
			}
		}
	}
}

func TestWorldCodecRejectsMalformedPayloads(t *testing.T) {
	g := generate.TwoStars()
	worlds := SampleWorlds(g, IC, 5, 1, 1)
	good := EncodeWorlds(worlds)

	if _, err := DecodeWorlds(good[:len(good)-3], g.N()); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodeWorlds(append(append([]byte(nil), good...), 0), g.N()); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeWorlds(good, g.N()+1); err == nil {
		t.Error("wrong node count accepted")
	}

	// Target out of range.
	var e persist.Enc
	e.U64(1)
	e.I32s([]int32{0, 1, 1, 1}) // 3 nodes, one edge from node 0
	e.I32s([]int32{99})         // ...to a node that does not exist
	if _, err := DecodeWorlds(e.Bytes(), 3); err == nil {
		t.Error("out-of-range target accepted")
	}

	// Non-monotone offsets.
	var m persist.Enc
	m.U64(1)
	m.I32s([]int32{0, 2, 1, 2})
	m.I32s([]int32{0, 1})
	if _, err := DecodeWorlds(m.Bytes(), 3); err == nil {
		t.Error("non-monotone offsets accepted")
	}

	// Offsets/targets length disagreement.
	var d persist.Enc
	d.U64(1)
	d.I32s([]int32{0, 1, 1, 2})
	d.I32s([]int32{0})
	if _, err := DecodeWorlds(d.Bytes(), 3); err == nil {
		t.Error("offset/target length mismatch accepted")
	}
}
