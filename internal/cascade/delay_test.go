package cascade

import (
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

func TestDelayDistributions(t *testing.T) {
	rng := xrand.New(1)
	if d := (UnitDelay{}).Sample(rng); d != 1 {
		t.Fatalf("unit delay %d", d)
	}
	// Geometric mean 1/M.
	sum := 0.0
	const n = 50000
	gd := GeometricDelay{M: 0.2}
	for i := 0; i < n; i++ {
		sum += float64(gd.Sample(rng))
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("geometric mean %v, want ~5", mean)
	}
	// Uniform within range.
	ud := UniformDelay{Min: 2, Max: 4}
	seen := map[int32]bool{}
	for i := 0; i < 1000; i++ {
		d := ud.Sample(rng)
		if d < 2 || d > 4 {
			t.Fatalf("uniform delay %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform delay support %v", seen)
	}
	if (UniformDelay{Min: 3, Max: 3}).Sample(rng) != 3 {
		t.Fatal("degenerate uniform")
	}
	// Discretized exponential: support >= 1, mean ≈ 1/rate + 1/2.
	ed := ExponentialDelay{Rate: 0.5}
	sum = 0
	for i := 0; i < 50000; i++ {
		d := ed.Sample(rng)
		if d < 1 {
			t.Fatalf("exponential delay %d < 1", d)
		}
		sum += float64(d)
	}
	if mean := sum / 50000; math.Abs(mean-2.5) > 0.1 {
		t.Fatalf("exponential mean %v, want ~2.5", mean)
	}
	for _, d := range []DelayDist{UnitDelay{}, gd, ud, ed} {
		if d.Name() == "" {
			t.Fatal("empty delay name")
		}
	}
}

func TestExponentialDelayBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	ExponentialDelay{Rate: 0}.Sample(xrand.New(1))
}

func TestSampleDelayedWorldUnitEqualsIC(t *testing.T) {
	// With unit delays, the weighted world machinery must agree with the
	// plain IC world BFS for the same structure.
	g := pathGraph(6, 1.0)
	ww := SampleDelayedWorld(g, UnitDelay{}, xrand.New(1))
	dist := ReachableDelayed(ww, []graph.NodeID{0}, 3, nil)
	want := []int32{0, 1, 2, 3, NotActivated, NotActivated}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestReachableDelayedShortestPath(t *testing.T) {
	// Diamond with asymmetric delays: 0->1 (delay 1), 1->3 (delay 1),
	// 0->2 (delay 1), 2->3 (delay 5). Shortest to 3 is 2.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	ww := &WeightedWorld{
		offsets: []int32{0, 2, 3, 4, 4},
		targets: []graph.NodeID{1, 2, 3, 3},
		delays:  []int32{1, 1, 1, 5},
	}
	_ = g
	dist := ReachableDelayed(ww, []graph.NodeID{0}, 100, nil)
	if dist[3] != 2 {
		t.Fatalf("dist[3] = %d, want 2", dist[3])
	}
	// Tight deadline cuts the long branch.
	dist = ReachableDelayed(ww, []graph.NodeID{0}, 1, nil)
	if dist[3] != NotActivated || dist[1] != 1 || dist[2] != 1 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestReachableDelayedScratchReuse(t *testing.T) {
	g := pathGraph(4, 1.0)
	ww := SampleDelayedWorld(g, UnitDelay{}, xrand.New(1))
	scratch := make([]int32, 4)
	out := ReachableDelayed(ww, []graph.NodeID{0}, NoDeadline, scratch)
	if &out[0] != &scratch[0] {
		t.Fatal("scratch not reused")
	}
	out2 := ReachableDelayed(ww, []graph.NodeID{3}, NoDeadline, scratch)
	if out2[0] != NotActivated {
		t.Fatalf("stale scratch: %v", out2)
	}
}

func TestSampleDelayedWorldsDeterministic(t *testing.T) {
	g := pathGraph(100, 0.5)
	a := SampleDelayedWorlds(g, GeometricDelay{M: 0.5}, 10, 3, 1)
	b := SampleDelayedWorlds(g, GeometricDelay{M: 0.5}, 10, 3, 4)
	for i := range a {
		if a[i].M() != b[i].M() {
			t.Fatalf("world %d size differs across parallelism", i)
		}
		for e := range a[i].delays {
			if a[i].delays[e] != b[i].delays[e] || a[i].targets[e] != b[i].targets[e] {
				t.Fatalf("world %d edge %d differs", i, e)
			}
		}
	}
}

func TestRunICMDeadlineZero(t *testing.T) {
	g := pathGraph(3, 1.0)
	times := RunICM(g, []graph.NodeID{0}, 0, 0.5, xrand.New(1))
	if times[0] != 0 || times[1] != NotActivated {
		t.Fatalf("times = %v", times)
	}
}

func TestRunICMMeetingDelaysSlowSpread(t *testing.T) {
	// On a p=1 path, IC reaches node τ at time τ; IC-M with m=0.3 has mean
	// delay ~3.3 per hop, so within the same deadline far fewer nodes
	// activate.
	g := pathGraph(30, 1.0)
	rng := xrand.New(5)
	const tau = 10
	const reps = 400
	icCount, icmCount := 0, 0
	for r := 0; r < reps; r++ {
		for _, tv := range RunIC(g, []graph.NodeID{0}, tau, rng) {
			if tv >= 0 && tv <= tau {
				icCount++
			}
		}
		for _, tv := range RunICM(g, []graph.NodeID{0}, tau, 0.3, rng) {
			if tv >= 0 && tv <= tau {
				icmCount++
			}
		}
	}
	if icmCount >= icCount {
		t.Fatalf("IC-M spread %d not slower than IC %d", icmCount, icCount)
	}
	// With m=1, IC-M degenerates to IC exactly (p=1 path: deterministic).
	times := RunICM(g, []graph.NodeID{0}, tau, 1, rng)
	for i := 0; i <= tau; i++ {
		if times[i] != int32(i) {
			t.Fatalf("m=1 IC-M times = %v", times[:tau+1])
		}
	}
}

func TestRunICMMatchesDelayedWorlds(t *testing.T) {
	// Distributional equivalence: direct IC-M simulation vs weighted
	// live-edge worlds with geometric delays.
	rng := xrand.New(9)
	n := 30
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Bernoulli(0.12) {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j), 0.4)
			}
		}
	}
	g := b.MustBuild()
	seeds := []graph.NodeID{0, 1}
	const tau = 5
	const m = 0.5
	const reps = 5000

	direct := 0.0
	r1 := xrand.New(11)
	for r := 0; r < reps; r++ {
		for _, tv := range RunICM(g, seeds, tau, m, r1) {
			if tv >= 0 && tv <= tau {
				direct++
			}
		}
	}
	direct /= reps

	worlds := SampleDelayedWorlds(g, GeometricDelay{M: m}, reps, 13, 0)
	viaWorlds := 0.0
	scratch := make([]int32, n)
	for _, w := range worlds {
		for _, d := range ReachableDelayed(w, seeds, tau, scratch) {
			if d >= 0 && d <= tau {
				viaWorlds++
			}
		}
	}
	viaWorlds /= reps

	if math.Abs(direct-viaWorlds) > 0.3 {
		t.Fatalf("direct IC-M %v vs delayed worlds %v", direct, viaWorlds)
	}
}

func TestDelayedMonotoneInTau(t *testing.T) {
	check := func(seed int64) bool {
		g := pathGraph(20, 0.8)
		w := SampleDelayedWorld(g, GeometricDelay{M: 0.4}, xrand.New(seed))
		prev := -1
		for _, tau := range []int32{0, 2, 5, 10, NoDeadline} {
			count := 0
			for _, d := range ReachableDelayed(w, []graph.NodeID{0}, tau, nil) {
				if d >= 0 && d <= tau {
					count++
				}
			}
			if count < prev {
				return false
			}
			prev = count
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
