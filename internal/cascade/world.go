package cascade

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// World is one deterministic live-edge subgraph sampled from the diffusion
// model, stored in compressed sparse row form. Node ids are those of the
// source graph.
type World struct {
	offsets []int32
	targets []graph.NodeID
}

// Out returns the surviving out-neighbors of v in this world. The slice is
// shared; callers must not modify it.
func (w *World) Out(v graph.NodeID) []graph.NodeID {
	return w.targets[w.offsets[v]:w.offsets[v+1]]
}

// N returns the number of nodes.
func (w *World) N() int { return len(w.offsets) - 1 }

// M returns the number of surviving edges.
func (w *World) M() int { return len(w.targets) }

// WorldCapacity sizes a live-edge buffer from the expected number of
// surviving edges plus three standard deviations (the survivor count is a
// sum of independent Bernoullis, so its variance is at most its mean) —
// almost never reallocates, never wildly overallocates.
func WorldCapacity(g *graph.Graph) int {
	mean := g.ExpectedLiveEdges()
	return int(mean+3*math.Sqrt(mean)) + 8
}

// SampleICWorld draws one IC live-edge world: every edge survives
// independently with its activation probability. The trials stream
// straight over the graph's flat CSR arrays — no per-node slice headers —
// using the precomputed integer thresholds, so the per-edge cost is one
// generator step plus one compare.
func SampleICWorld(g *graph.Graph, rng *xrand.RNG) *World {
	n := g.N()
	offsets, targets, _ := g.OutCSR()
	thresh := g.OutThresholds()
	w := &World{offsets: make([]int32, n+1)}
	w.targets = make([]graph.NodeID, 0, WorldCapacity(g))
	for v := 0; v < n; v++ {
		w.offsets[v] = int32(len(w.targets))
		for i := offsets[v]; i < offsets[v+1]; i++ {
			if rng.BernoulliT(thresh[i]) {
				w.targets = append(w.targets, targets[i])
			}
		}
	}
	w.offsets[n] = int32(len(w.targets))
	return w
}

// ltScratch is the pooled per-call working state of SampleLTWorld: the
// chosen-in-neighbor and degree/fill arrays are only needed while one
// world is being assembled, so repeated sampling (forward-MC accuracy
// sizing draws thousands of worlds) reuses them instead of allocating
// three n-sized slices per world.
type ltScratch struct {
	chosen []graph.NodeID
	outDeg []int32
	fill   []int32
}

var ltPool = sync.Pool{New: func() any { return &ltScratch{} }}

// grabLT readies a pooled LT scratch for n nodes; outDeg is returned
// zeroed, chosen and fill are fully overwritten by the sampler.
func grabLT(n int) *ltScratch {
	sc := ltPool.Get().(*ltScratch)
	if cap(sc.chosen) < n {
		sc.chosen = make([]graph.NodeID, n)
		sc.outDeg = make([]int32, n)
		sc.fill = make([]int32, n)
	}
	sc.chosen = sc.chosen[:n]
	sc.outDeg = sc.outDeg[:n]
	sc.fill = sc.fill[:n]
	for i := range sc.outDeg {
		sc.outDeg[i] = 0
	}
	return sc
}

// SampleLTWorld draws one LT live-edge world: each node keeps at most one
// incoming edge, chosen with probability proportional to its (normalized)
// weight; the kept reverse edge is stored in forward orientation. This is
// the classical LT live-edge distribution of Kempe et al.
func SampleLTWorld(g *graph.Graph, rng *xrand.RNG) *World {
	n := g.N()
	scale := ltScales(g)
	sc := grabLT(n)
	defer ltPool.Put(sc)
	// chosen[v] = the single in-neighbor v keeps, or -1.
	chosen := sc.chosen
	outDeg := sc.outDeg
	for v := 0; v < n; v++ {
		chosen[v] = -1
		sources, probs := g.InEdges(graph.NodeID(v))
		if len(sources) == 0 {
			continue
		}
		u := rng.Float64()
		acc := 0.0
		for i, src := range sources {
			acc += probs[i] * scale[v]
			if u < acc {
				chosen[v] = src
				outDeg[src]++
				break
			}
		}
	}
	w := &World{offsets: make([]int32, n+1)}
	total := int32(0)
	for v := 0; v < n; v++ {
		w.offsets[v] = total
		total += outDeg[v]
	}
	w.offsets[n] = total
	w.targets = make([]graph.NodeID, total)
	fill := sc.fill
	copy(fill, w.offsets[:n])
	for v := 0; v < n; v++ {
		if u := chosen[v]; u >= 0 {
			w.targets[fill[u]] = graph.NodeID(v)
			fill[u]++
		}
	}
	return w
}

// Model selects the diffusion model worlds are sampled from.
type Model int

// Supported diffusion models.
const (
	IC Model = iota // Independent Cascade (the paper's model)
	LT              // Linear Threshold (extension, §3.1)
)

// String returns the conventional abbreviation.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return "unknown"
	}
}

// SampleWorlds draws r live-edge worlds in parallel. The result is
// deterministic for a given (g, model, r, seed): world i is always drawn
// from the i'th split of the seed stream, independent of scheduling.
// parallelism <= 0 means GOMAXPROCS.
func SampleWorlds(g *graph.Graph, model Model, r int, seed int64, parallelism int) []*World {
	worlds, _ := SampleWorldsCancel(g, model, r, seed, parallelism, nil)
	return worlds
}

// SampleWorldsCancel is SampleWorlds with cooperative cancellation: once
// cancel is closed, workers stop between worlds and the call returns
// context.Canceled. A nil cancel never fires, making this the common
// implementation for both entry points.
func SampleWorldsCancel(g *graph.Graph, model Model, r int, seed int64, parallelism int, cancel <-chan struct{}) ([]*World, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > r {
		parallelism = r
	}
	if parallelism < 1 {
		parallelism = 1
	}
	root := xrand.New(seed)
	worlds := make([]*World, r)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	next := make(chan int, r)
	for i := 0; i < r; i++ {
		next <- i
	}
	close(next)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if cancel != nil {
					select {
					case <-cancel:
						canceled.Store(true)
						return
					default:
					}
				}
				rng := root.SplitN(int64(i))
				switch model {
				case LT:
					worlds[i] = SampleLTWorld(g, rng)
				default:
					worlds[i] = SampleICWorld(g, rng)
				}
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return nil, context.Canceled
	}
	return worlds, nil
}

// Reachable runs a τ-bounded BFS in w from seeds and returns each node's
// hop distance, or NotActivated for nodes beyond the deadline. The scratch
// slice, if non-nil and of length N, is reused as the result to avoid
// allocation in hot loops.
func Reachable(w *World, seeds []graph.NodeID, tau int32, scratch []int32) []int32 {
	n := w.N()
	dist := scratch
	if len(dist) != n {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = NotActivated
	}
	queue := make([]graph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		if dist[s] == NotActivated {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if d >= tau {
			continue
		}
		for _, to := range w.Out(v) {
			if dist[to] == NotActivated {
				dist[to] = d + 1
				queue = append(queue, to)
			}
		}
	}
	return dist
}
